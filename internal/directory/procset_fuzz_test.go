package directory

import (
	"testing"
)

// FuzzProcSet differentially tests the two-word sharer bit vector against
// a map model. Each fuzz byte is one op: the low two bits select
// add/remove/without/only and the rest pick the processor id, so the
// word-boundary ids around 63/64 and the 127 ceiling get exercised.
// After every op the full observable surface must agree with the model:
// Has for all ids, Count, Empty, and ForEach's ascending visit order.
func FuzzProcSet(f *testing.F) {
	f.Add([]byte{0, 4, 252, 255, 1, 63 << 2, 64 << 1})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var s ProcSet
		model := map[int]bool{}
		check := func(opIdx int) {
			t.Helper()
			count := 0
			for id := 0; id < MaxProcs; id++ {
				want := model[id]
				if want {
					count++
				}
				if s.Has(id) != want {
					t.Fatalf("op %d: Has(%d) = %v, model says %v", opIdx, id, s.Has(id), want)
				}
			}
			if s.Count() != count {
				t.Fatalf("op %d: Count = %d, model says %d", opIdx, s.Count(), count)
			}
			if s.Empty() != (count == 0) {
				t.Fatalf("op %d: Empty = %v with %d members", opIdx, s.Empty(), count)
			}
			prev := -1
			visited := 0
			s.ForEach(func(id int) {
				if id <= prev {
					t.Fatalf("op %d: ForEach visited %d after %d (must ascend)", opIdx, id, prev)
				}
				if !model[id] {
					t.Fatalf("op %d: ForEach visited non-member %d", opIdx, id)
				}
				prev = id
				visited++
			})
			if visited != count {
				t.Fatalf("op %d: ForEach visited %d of %d members", opIdx, visited, count)
			}
		}
		for i, op := range ops {
			id := int(op>>2) % MaxProcs
			switch op & 3 {
			case 0:
				s.Add(id)
				model[id] = true
			case 1:
				s.Remove(id)
				delete(model, id)
			case 2:
				// Without is value-semantics: the receiver must not change.
				before := s
				out := s.Without(id)
				if s != before {
					t.Fatalf("op %d: Without mutated the receiver", i)
				}
				s = out
				delete(model, id)
			case 3:
				s = Only(id)
				model = map[int]bool{id: true}
			}
			check(i)
		}
	})
}
