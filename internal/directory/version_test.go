package directory

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/tokens"
)

func TestVersionsAdvancePerCommit(t *testing.T) {
	r := newRig(t, 2, false, nil)
	if r.dir.Version(9) != 0 {
		t.Fatal("uncommitted line has non-zero version")
	}
	r.dir.Mark(0, 5)
	r.dir.BeginCommit(0, []mem.LineAddr{9}, func() {})
	r.eng.Run()
	if r.dir.Version(9) != 1 {
		t.Fatalf("version %d after first commit", r.dir.Version(9))
	}
	if r.dir.LastCommitTID(9) != 5 {
		t.Fatalf("last TID %d, want 5", r.dir.LastCommitTID(9))
	}
	r.dir.Mark(1, 6)
	r.dir.BeginCommit(1, []mem.LineAddr{9}, func() {})
	r.eng.Run()
	if r.dir.Version(9) != 2 {
		t.Fatalf("version %d after second commit", r.dir.Version(9))
	}
	if r.dir.LastCommitTID(9) != 6 {
		t.Fatalf("last TID %d, want 6", r.dir.LastCommitTID(9))
	}
}

func TestHandleReadReportsVersion(t *testing.T) {
	r := newRig(t, 2, false, nil)
	r.dir.Mark(0, 1)
	r.dir.BeginCommit(0, []mem.LineAddr{4}, func() {})
	r.eng.Run()
	var got uint64
	r.dir.HandleRead(1, 4, func(v uint64) { got = v })
	r.eng.Run()
	if got != 1 {
		t.Fatalf("read reply version %d, want 1", got)
	}
}

func TestLastCommitTIDUnknownLine(t *testing.T) {
	r := newRig(t, 1, false, nil)
	if r.dir.LastCommitTID(999) != tokens.TIDNone {
		t.Fatal("unknown line has a committer")
	}
}

func TestHasOlderMark(t *testing.T) {
	r := newRig(t, 3, false, nil)
	r.dir.Mark(0, 10)
	r.dir.Mark(1, 20)
	if !r.dir.HasOlderMark(15, 2) {
		t.Fatal("TID 10 < 15 not detected")
	}
	if r.dir.HasOlderMark(5, 2) {
		t.Fatal("phantom older mark below the oldest")
	}
	// A processor's own mark never blocks itself.
	if r.dir.HasOlderMark(15, 0) {
		t.Fatal("self mark counted as older")
	}
	r.dir.Unmark(0)
	if r.dir.HasOlderMark(15, 2) {
		t.Fatal("withdrawn mark still counted")
	}
}

func TestAnnouncedLifecycle(t *testing.T) {
	r := newRig(t, 2, true, nil)
	if r.dir.Announced(0) {
		t.Fatal("fresh directory has announcements")
	}
	r.dir.AnnounceIntent(0)
	if !r.dir.Announced(0) {
		t.Fatal("announcement not recorded")
	}
	r.dir.WithdrawIntent(0)
	if r.dir.Announced(0) {
		t.Fatal("withdrawal not applied")
	}
	// Withdrawing twice is harmless.
	r.dir.WithdrawIntent(0)
}

func TestNoteLineCommittedDeliveredToCommitter(t *testing.T) {
	r := newRig(t, 2, false, nil)
	r.dir.Mark(0, 1)
	r.dir.BeginCommit(0, []mem.LineAddr{3, 7}, func() {})
	r.eng.Run()
	// fakeProc ignores the callback; the directory-side contract is that
	// versions advanced and ownership moved.
	if r.dir.Version(3) != 1 || r.dir.Version(7) != 1 {
		t.Fatal("line versions not advanced")
	}
	if r.dir.Owner(3) != 0 {
		t.Fatal("ownership not assigned")
	}
}

func TestDirStatsCount(t *testing.T) {
	r := newRig(t, 2, false, nil)
	r.dir.HandleRead(1, 2, func(uint64) {})
	r.dir.Mark(0, 1)
	r.dir.BeginCommit(0, []mem.LineAddr{2, 3}, func() {})
	r.eng.Run()
	st := r.dir.Stats()
	if st.Reads != 1 {
		t.Fatalf("reads %d", st.Reads)
	}
	if st.Commits != 1 || st.LinesCommitted != 2 {
		t.Fatalf("commit stats %+v", st)
	}
}
