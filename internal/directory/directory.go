// Package directory models the memory directories of the Scalable-TCC
// baseline plus the additional per-processor gating table the paper adds
// (§III, Fig. 1): aborter processor id, aborter transaction id, abort
// counter, renew counter, gating timer and OFF bit — and the un-gating
// control circuit of Fig. 2(e).
//
// Each directory owns an interleaved slice of physical memory, tracks a
// full-bit-vector sharer set per line (two 64-bit words, so machines up to
// 128 processors fit), serializes committers by TID, and (with gating
// enabled) decides when an aborted processor's clock stops and restarts.
//
// Service is batch-oriented: read requests and commit line-writes reserve
// their directory-pipeline and memory-port slots on arrival (the same
// earliest-free-slot arithmetic as before), but completions fire through
// one chained service event per queue rather than one pre-scheduled event
// per request — the completion times are reservation-ordered, so a single
// in-flight event walking the FIFO suffices and the queues recycle their
// storage.
package directory

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cm"
	"repro/internal/config"
	"repro/internal/fifo"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tokens"
	"repro/internal/trace"
)

// ProcessorPort is the directory's view of a processor. The tcc package's
// Processor implements it; tests substitute fakes.
type ProcessorPort interface {
	// ID returns the processor id.
	ID() int
	// DeliverInvalidation handles a coherence invalidation of line sent
	// by directory dir because aborter committed it. It reports whether
	// the invalidation aborted the processor's running transaction —
	// the condition under which the directory gates the victim.
	DeliverInvalidation(line mem.LineAddr, aborter, dir int) bool
	// DeliverStopClock freezes the processor's clocks. It reports
	// whether the processor actually froze (a committing processor
	// drops the signal; see tcc for the race this resolves).
	DeliverStopClock(dir int) bool
	// Gated reports whether the processor's clocks are currently
	// stopped. Directories use it to distinguish a stale in-flight
	// request from a genuinely running processor before clearing a
	// local OFF bit.
	Gated() bool
	// DeliverOn restarts the processor's clocks.
	DeliverOn(dir int)
	// TxInfo answers a TxInfoReq: the id (start PC) of the transaction
	// the processor is currently executing. ok=false is the null reply
	// of a gated or idle processor.
	TxInfo() (pc uint64, ok bool)
	// NoteLineCommitted informs the committer of the version its commit
	// assigned to a line, so its cached copy carries the right snapshot
	// version (bookkeeping, delivered with the commit acknowledgement).
	NoteLineCommitted(l mem.LineAddr, version uint64)
}

// lineState is the coherence state of one line: the last committer
// (owner), the full bit vector of sharers (bitset form keeps invalidation
// fan-out deterministic, ascending processor id), and the commit version.
// The version counts commits of the line; processors record the version
// they read and the commit-time validation phase compares against it —
// the mechanism that makes TCC's lazy conflict detection serializable.
//
// The epoch stamps which run of a reused directory the state belongs to:
// a lookup that finds an entry from an earlier epoch treats it as absent
// and reinitializes it in place, which lets Reset invalidate the whole
// line table in O(1) instead of clearing a map that can hold a run's
// entire footprint.
type lineState struct {
	owner   int
	sharers ProcSet
	version uint64
	lastTID tokens.TID
	epoch   uint64
}

// arenaChunk is the lineState allocation batch. Chunked allocation keeps
// every previously handed-out pointer stable (the lines map stores
// pointers across runs) while amortizing one heap allocation over many
// lines.
const arenaChunk = 1024

// retainedLinesMax bounds the line table carried across Reset. A stream
// of cells with disjoint footprints would otherwise grow the map without
// bound; above the limit Reset rebuilds the table and rewinds the arena.
const retainedLinesMax = 1 << 20

// lineArena allocates lineStates in chunks. reset rewinds it for reuse —
// only valid together with dropping every map that points into it.
type lineArena struct {
	chunks [][]lineState
	ci, li int // next free chunk / index within it
}

func (a *lineArena) alloc() *lineState {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]lineState, arenaChunk))
	}
	c := a.chunks[a.ci]
	ls := &c[a.li]
	if a.li++; a.li == len(c) {
		a.ci++
		a.li = 0
	}
	return ls
}

func (a *lineArena) reset() { a.ci, a.li = 0, 0 }

// gateEntry is one row of the paper's Fig. 1 table.
type gateEntry struct {
	off         bool
	aborterProc int
	aborterTx   uint64
	aborterTxOK bool
	abortCount  int
	renewCount  int
	timer       sim.EventRef
	// episode guards against stale timer and TxInfo-reply events after
	// the entry has been cleared or re-armed.
	episode uint64
	// timerFn is the pre-bound expiry callback; timerEp is the episode it
	// fires for. One stored episode is exact because at most one timer
	// event is ever live per entry: armTimer and disarm cancel the old
	// event before timerEp is overwritten, so the live event always reads
	// the episode it was scheduled with. (The control-circuit evaluation
	// that follows expiry has no such single-flight guarantee — a disarm
	// plus re-gate can leave a stale evaluation in flight alongside a new
	// one — so evaluations are pooled ops that carry their own episode.)
	timerFn func()
	timerEp uint64
	// onFn is the pre-bound On delivery (sendOn's bus crossing). It reads
	// no per-episode state, so one shared instance serves any number of
	// in-flight deliveries.
	onFn func()
}

// Stats counts one directory's activity.
type Stats struct {
	// Reads is the number of read-miss requests serviced.
	Reads uint64
	// Commits is the number of write-set commits performed here.
	Commits uint64
	// LinesCommitted is the total committed line count.
	LinesCommitted uint64
	// Gatings, Renewals and Ungates count this directory's gating
	// decisions (the global counters aggregate across directories).
	Gatings  uint64
	Renewals uint64
	Ungates  uint64
}

// readReq is one queued read-miss completion: the service slot was
// reserved at arrival, the chained service event fires at done.
type readReq struct {
	proc  int
	line  mem.LineAddr
	reply func(version uint64)
	done  sim.Time
}

// Directory is one memory directory.
type Directory struct {
	id       int
	eng      *sim.Engine
	bus      bus.Interconnect
	banks    int // effective interconnect bank count (>= 1)
	cfg      config.Machine
	gcfg     config.Gating
	policy   cm.Policy
	procs    []ProcessorPort
	counters *stats.Counters

	// lines maps a line to its arena-backed state. Entries survive Reset
	// (bounded by retainedLinesMax); the epoch stamp decides liveness.
	lines       map[mem.LineAddr]*lineState
	arena       lineArena
	epoch       uint64
	nextFreeDir sim.Time // directory pipeline availability
	nextFreeMem sim.Time // local memory port availability (single R/W port)

	// reads is the memory-port completion queue: reservation times are
	// nondecreasing, so one chained event (readFn) walks the FIFO.
	reads       fifo.Queue[readReq]
	readPending bool
	readFn      func()

	// One commit writes here at a time (writer guard), so the per-line
	// commit walk is a single chained event over this state.
	commitProc  int
	commitTID   tokens.TID
	commitLines []mem.LineAddr
	commitIdx   int
	commitStart sim.Time
	commitDone  func()
	commitFn    func()

	// marked holds commit-request timestamps indexed by processor id;
	// TIDNone means no request (real TIDs start at 1). Flat storage
	// replaces a per-run map: the scans in Head and HasOlderMark walk
	// Processors entries either way, and clearing is a memset.
	marked []tokens.TID
	// announced holds the "Marked" bits of Fig. 2(e), indexed by
	// processor id: Scalable TCC communicates store addresses to home
	// directories eagerly during execution, so a processor is "present"
	// in a directory from its first speculative store homed here until
	// the transaction commits or aborts — not just while it commits. The
	// renewal check of the un-gate circuit tests this set.
	announced []bool
	writer    int // processor currently committing here, or -1

	gate []gateEntry

	// onCommitDone, if set, runs after every completed commit; the
	// system uses it to re-evaluate commit grants.
	onCommitDone func()

	// rec, when non-nil, receives structured protocol events.
	rec *trace.Recorder

	// ctlBank is the bank gating control traffic interleaves on: control
	// messages have no line address, so they ride the issuing directory's
	// id.
	ctlBank int

	// replyFree pools the read-reply bus crossings, so the miss hot
	// path sends data back without allocating a closure per read (the
	// requester side pools its halves of the round trip the same way —
	// see tcc's missOp). invFree, evalFree and txFree pool the other
	// per-event protocol crossings — invalidation deliveries, gating
	// control-circuit evaluations and TxInfo round trips — which in
	// high-conflict workloads outnumber everything else. All four pools
	// survive Reset.
	replyFree []*replyOp
	invFree   []*invOp
	evalFree  []*evalOp
	txFree    []*txInfoOp

	stats Stats
}

// replyOp is one pooled read-reply delivery: the reply callback and the
// line version it carries across the bus.
type replyOp struct {
	d     *Directory
	reply func(version uint64)
	v     uint64
	fn    func()
}

func (d *Directory) getReply() *replyOp {
	if n := len(d.replyFree); n > 0 {
		r := d.replyFree[n-1]
		d.replyFree = d.replyFree[:n-1]
		return r
	}
	r := &replyOp{d: d}
	r.fn = func() { r.d.replyDelivered(r) }
	return r
}

// replyDelivered lands a pooled reply at its requester. The op returns
// to the pool first: the reply may trigger the processor's next miss on
// this directory, which is then free to reuse it.
func (d *Directory) replyDelivered(r *replyOp) {
	reply, v := r.reply, r.v
	r.reply = nil
	d.replyFree = append(d.replyFree, r)
	reply(v)
}

// invOp is one pooled invalidation delivery: a committed line crossing
// the bus to kill a sharer's copy (and possibly its transaction).
type invOp struct {
	d         *Directory
	victim    int
	committer int
	line      mem.LineAddr
	fn        func()
}

func (d *Directory) getInv() *invOp {
	if n := len(d.invFree); n > 0 {
		op := d.invFree[n-1]
		d.invFree = d.invFree[:n-1]
		return op
	}
	op := &invOp{d: d}
	op.fn = func() { op.d.invDelivered(op) }
	return op
}

// invDelivered lands a pooled invalidation at its victim. The op returns
// to the pool first: the abort it may trigger can commit another line of
// the same walk, which is then free to reuse it.
func (d *Directory) invDelivered(op *invOp) {
	v, committer, l := op.victim, op.committer, op.line
	d.invFree = append(d.invFree, op)
	d.rec.Record(trace.Event{At: d.eng.Now(), Kind: trace.EvInvalidate,
		Proc: v, Other: committer, Dir: d.id, Line: l})
	aborted := d.procs[v].DeliverInvalidation(l, committer, d.id)
	if aborted {
		d.counters.Aborts++
		d.rec.Record(trace.Event{At: d.eng.Now(), Kind: trace.EvAbort,
			Proc: v, Other: committer, Dir: d.id, Line: l})
		if d.gcfg.Enabled {
			d.gateVictim(v, committer)
		}
	}
}

// evalOp is one pooled control-circuit evaluation: the Fig. 2(e) decision
// delayed by ControlCircuitCycles after a timer expiry. Evaluations carry
// their own episode because they cannot be cancelled: a disarm (via
// noteProcessorAlive) followed by a fresh gating episode can leave a
// stale evaluation in flight next to the new episode's own, and only the
// episode captured at scheduling time tells them apart.
type evalOp struct {
	d      *Directory
	victim int
	ep     uint64
	fn     func()
}

func (d *Directory) getEval() *evalOp {
	if n := len(d.evalFree); n > 0 {
		op := d.evalFree[n-1]
		d.evalFree = d.evalFree[:n-1]
		return op
	}
	op := &evalOp{d: d}
	op.fn = func() { op.d.evalFired(op) }
	return op
}

func (d *Directory) evalFired(op *evalOp) {
	victim, ep := op.victim, op.ep
	d.evalFree = append(d.evalFree, op)
	g := &d.gate[victim]
	if g.episode != ep || !g.off {
		return
	}
	d.evaluateUngate(victim, g, ep)
}

// txInfoOp is one pooled TxInfo round trip of the renewal check: the
// request crossing the bus to the aborter, and the reply carrying its
// current transaction id back.
type txInfoOp struct {
	d       *Directory
	victim  int
	aborter int
	ep      uint64
	pc      uint64
	ok      bool
	reqFn   func()
	repFn   func()
}

func (d *Directory) getTxInfo() *txInfoOp {
	if n := len(d.txFree); n > 0 {
		op := d.txFree[n-1]
		d.txFree = d.txFree[:n-1]
		return op
	}
	op := &txInfoOp{d: d}
	op.reqFn = func() {
		op.pc, op.ok = op.d.procs[op.aborter].TxInfo()
		op.d.bus.Send(op.aborter, op.d.node(), op.d.ctlBank, op.repFn)
	}
	op.repFn = func() { op.d.txInfoDelivered(op) }
	return op
}

func (d *Directory) txInfoDelivered(op *txInfoOp) {
	victim, ep, pc, ok := op.victim, op.ep, op.pc, op.ok
	d.txFree = append(d.txFree, op)
	g := &d.gate[victim]
	if g.episode != ep || !g.off {
		return
	}
	if !ok || !g.aborterTxOK || pc != g.aborterTx {
		d.sendOn(victim, g)
		return
	}
	// Renewal: the enemy transaction is still committing the same
	// transaction that killed us. Extend the gate.
	if g.renewCount < d.satMax(d.gcfg.RenewCounterBits) {
		g.renewCount++
	}
	d.counters.Renewals++
	d.stats.Renewals++
	d.rec.Record(trace.Event{At: d.eng.Now(), Kind: trace.EvRenew,
		Proc: victim, Other: g.aborterProc, Dir: d.id})
	d.armTimer(victim, g, ep)
}

// New builds directory id. Attach must be called before traffic arrives.
func New(id int, eng *sim.Engine, b bus.Interconnect, cfg config.Machine, gcfg config.Gating, policy cm.Policy, counters *stats.Counters) *Directory {
	if cfg.Processors > MaxProcs {
		panic(fmt.Sprintf("directory: %d processors exceed the %d-bit sharer vector", cfg.Processors, MaxProcs))
	}
	d := &Directory{
		id:        id,
		eng:       eng,
		bus:       b,
		banks:     b.Banks(),
		cfg:       cfg,
		gcfg:      gcfg,
		policy:    policy,
		counters:  counters,
		lines:     make(map[mem.LineAddr]*lineState),
		epoch:     1, // zero-valued arena entries must never look current
		marked:    make([]tokens.TID, cfg.Processors),
		announced: make([]bool, cfg.Processors),
		writer:    -1,
		gate:      make([]gateEntry, cfg.Processors),
		ctlBank:   bus.BankOf(uint64(id), b.Banks()),
	}
	d.readFn = d.serviceRead
	d.commitFn = d.commitStep
	return d
}

// Attach wires the processor ports (indexed by processor id).
func (d *Directory) Attach(procs []ProcessorPort, onCommitDone func()) {
	d.procs = procs
	d.onCommitDone = onCommitDone
}

// node returns the directory's interconnect node: directories tile
// round-robin across the processor nodes (directory j beside processor
// j mod P), the placement every topology shares. Bus-class interconnects
// ignore the node ids entirely.
func (d *Directory) node() int { return d.id % d.cfg.Processors }

// SetRecorder attaches an event recorder (nil detaches).
func (d *Directory) SetRecorder(r *trace.Recorder) { d.rec = r }

// Reset returns the directory to its initial state for a new run on the
// same machine shape, taking the new run's gating knobs and contention
// policy (the only construction inputs a variant sweep changes). The line
// table survives as stale-epoch arena entries — reinitialized lazily on
// first touch, rebuilt wholesale only above retainedLinesMax — and the
// FIFO ring, gate table and pooled-op free lists keep their storage. The caller
// must have reset the engine first: pending reads, commit steps and
// gating timers are assumed discarded. A reset directory is observably
// identical to one built fresh by New.
func (d *Directory) Reset(gcfg config.Gating, policy cm.Policy) {
	d.gcfg = gcfg
	d.policy = policy
	d.epoch++
	if len(d.lines) > retainedLinesMax {
		d.lines = make(map[mem.LineAddr]*lineState)
		d.arena.reset()
	}
	d.nextFreeDir = 0
	d.nextFreeMem = 0
	d.reads.Clear()
	d.readPending = false
	d.commitProc = 0
	d.commitTID = tokens.TIDNone
	d.commitLines = nil
	d.commitIdx = 0
	d.commitStart = 0
	d.commitDone = nil
	clear(d.marked) // TID zero value is TIDNone
	clear(d.announced)
	d.writer = -1
	for i := range d.gate {
		// Zero the protocol state (zero EventRefs are inert; episodes
		// restart at 0 as in New) but keep the pre-bound callbacks: they
		// capture only this entry's index and pointer, both stable.
		g := &d.gate[i]
		*g = gateEntry{timerFn: g.timerFn, onFn: g.onFn}
	}
	d.rec = nil
	d.stats = Stats{}
}

// Stats returns a copy of this directory's activity counters.
func (d *Directory) Stats() Stats { return d.stats }

// ID returns the directory id.
func (d *Directory) ID() int { return d.id }

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// line returns the live state of l, materializing it — from the arena,
// reusing a stale-epoch entry in place when one exists — on first touch
// this run.
func (d *Directory) line(l mem.LineAddr) *lineState {
	ls, ok := d.lines[l]
	if !ok {
		ls = d.arena.alloc()
		d.lines[l] = ls
	}
	if ls.epoch != d.epoch {
		*ls = lineState{owner: -1, epoch: d.epoch}
	}
	return ls
}

// lookup returns the live state of l, or nil if the line has not been
// touched this run (entries from earlier epochs are treated as absent).
func (d *Directory) lookup(l mem.LineAddr) *lineState {
	if ls, ok := d.lines[l]; ok && ls.epoch == d.epoch {
		return ls
	}
	return nil
}

// Sharers returns the sharer set of a line (for tests and stats).
func (d *Directory) Sharers(l mem.LineAddr) ProcSet {
	if ls := d.lookup(l); ls != nil {
		return ls.sharers
	}
	return ProcSet{}
}

// Owner returns the owning processor of a line, or -1.
func (d *Directory) Owner(l mem.LineAddr) int {
	if ls := d.lookup(l); ls != nil {
		return ls.owner
	}
	return -1
}

// Version returns the commit version of a line (0 = never committed).
func (d *Directory) Version(l mem.LineAddr) uint64 {
	if ls := d.lookup(l); ls != nil {
		return ls.version
	}
	return 0
}

// LastCommitTID returns the TID of the line's most recent committer.
func (d *Directory) LastCommitTID(l mem.LineAddr) tokens.TID {
	if ls := d.lookup(l); ls != nil {
		return ls.lastTID
	}
	return tokens.TIDNone
}

// HasOlderMark reports whether any processor other than self holds a
// commit request here with a TID below tid. The commit grant probes every
// directory of a transaction's read-set with this predicate — Scalable
// TCC's validation rule that an older committer which might write the
// read-set must drain first.
func (d *Directory) HasOlderMark(tid tokens.TID, self int) bool {
	for p, t := range d.marked {
		if t != tokens.TIDNone && p != self && t < tid {
			return true
		}
	}
	return false
}

// HandleRead services a read-miss request that has arrived at the
// directory (bus transit already paid by the sender). The reply callback
// runs at the requesting processor after the data has crossed back over
// the bus, carrying the commit version of the line the reply data
// reflects. Directory pipeline and the single memory port both serialize:
// the request reserves its slots on arrival and joins the chained
// completion queue.
func (d *Directory) HandleRead(proc int, l mem.LineAddr, reply func(version uint64)) {
	d.stats.Reads++
	d.noteProcessorAlive(proc)
	start := maxTime(d.eng.Now(), d.nextFreeDir)
	dirDone := start + d.cfg.DirectoryCycles
	d.nextFreeDir = dirDone
	memStart := maxTime(dirDone, d.nextFreeMem)
	memDone := memStart + d.cfg.MemoryCycles
	d.nextFreeMem = memDone
	d.reads.Push(readReq{proc: proc, line: l, reply: reply, done: memDone})
	if !d.readPending {
		d.readPending = true
		d.eng.Schedule(memDone, d.readFn)
	}
}

// serviceRead completes the head read (its reservation expires now) and
// re-arms the chain for the next one.
func (d *Directory) serviceRead() {
	d.readPending = false
	r := d.reads.Pop()
	if d.reads.Len() > 0 {
		d.readPending = true
		d.eng.Schedule(d.reads.Front().done, d.readFn)
	}
	ls := d.line(r.line)
	ls.sharers.Add(r.proc)
	// The reply carries the line's data, so it rides the line's bank —
	// the same FIFO later invalidations of the line use, which preserves
	// per-line reply/invalidation ordering on every interconnect shape
	// (on the point-to-point fabrics the same guarantee comes from the
	// deterministic route: same endpoints, same links, FIFO per link).
	op := d.getReply()
	op.reply, op.v = r.reply, ls.version
	d.bus.Send(d.node(), r.proc, bus.BankOf(uint64(r.line), d.banks), op.fn)
}

// noteProcessorAlive implements the paper's local-knowledge reconciliation:
// "if any load/store request comes from a processor which is marked as
// off, directory assumes that it has been turned on by some other
// directory. Then it resets the OFF bit as well in its local table."
// A request from a processor that is in fact frozen is stale traffic that
// was in flight when the clock stopped; clearing the OFF bit for it would
// orphan the gating timer and freeze the victim forever, so those are
// ignored.
func (d *Directory) noteProcessorAlive(proc int) {
	if !d.gcfg.Enabled {
		return
	}
	g := &d.gate[proc]
	if g.off && !d.procs[proc].Gated() {
		d.disarm(g)
	}
}

// disarm clears the OFF bit and cancels the timer without sending On.
func (d *Directory) disarm(g *gateEntry) {
	g.off = false
	g.episode++
	g.timer.Cancel()
	g.timer = sim.EventRef{}
}

// AnnounceIntent records an eager store-address announcement: proc has
// speculative writes homed in this directory. This sets the Fig. 2(e)
// "Marked" bit for the duration of proc's transaction.
func (d *Directory) AnnounceIntent(proc int) {
	d.noteProcessorAlive(proc)
	d.announced[proc] = true
}

// WithdrawIntent clears the announcement (the transaction committed or
// aborted).
func (d *Directory) WithdrawIntent(proc int) {
	d.announced[proc] = false
}

// Announced reports whether proc has announced speculative writes here.
func (d *Directory) Announced(proc int) bool { return d.announced[proc] }

// Mark records processor proc's commit request with timestamp tid: the
// processor has reached its commit instruction and entered the TID queue.
func (d *Directory) Mark(proc int, tid tokens.TID) {
	d.noteProcessorAlive(proc)
	d.marked[proc] = tid
}

// Unmark withdraws the commit request (the transaction aborted).
func (d *Directory) Unmark(proc int) {
	d.marked[proc] = tokens.TIDNone
}

// Marked reports whether proc currently has a commit request here.
func (d *Directory) Marked(proc int) bool {
	return d.marked[proc] != tokens.TIDNone
}

// Head returns the marked processor with the lowest TID, if any. The
// oldest committer goes first — the Scalable-TCC serialization rule.
func (d *Directory) Head() (proc int, ok bool) {
	best := tokens.TID(0)
	proc = -1
	for p, t := range d.marked {
		if t != tokens.TIDNone && (proc == -1 || t < best) {
			proc, best = p, t
		}
	}
	return proc, proc != -1
}

// Busy reports whether a commit is in progress here.
func (d *Directory) Busy() bool { return d.writer != -1 }

// Writer returns the committing processor, or -1.
func (d *Directory) Writer() int { return d.writer }

// BeginCommit starts writing proc's speculative lines that live in this
// directory. The directory is occupied for CommitLineCycles per line; each
// line's commit sends invalidations to all other sharers; done runs (in
// directory context, no bus transit) when the last line has committed.
// The whole write-set walk is one chained event stepping line to line.
// The caller must have established that proc is the head committer and
// the directory is free; the lines slice must stay untouched until done
// runs.
func (d *Directory) BeginCommit(proc int, lines []mem.LineAddr, done func()) {
	if d.writer != -1 {
		panic(fmt.Sprintf("directory %d: BeginCommit(%d) while %d is committing", d.id, proc, d.writer))
	}
	if d.marked[proc] == tokens.TIDNone {
		panic(fmt.Sprintf("directory %d: BeginCommit(%d) without mark", d.id, proc))
	}
	d.writer = proc
	d.stats.Commits++
	d.stats.LinesCommitted += uint64(len(lines))
	start := maxTime(d.eng.Now(), d.nextFreeDir)
	d.commitProc = proc
	d.commitTID = d.marked[proc]
	d.commitLines = lines
	d.commitIdx = 0
	d.commitStart = start
	d.commitDone = done
	var end sim.Time
	if len(lines) == 0 {
		end = start + d.cfg.DirectoryCycles // validation-only touch
	} else {
		end = start + sim.Time(len(lines))*d.cfg.CommitLineCycles
	}
	d.nextFreeDir = end
	at := end
	if len(lines) > 0 {
		at = start + d.cfg.CommitLineCycles
	}
	d.eng.Schedule(at, d.commitFn)
}

// commitStep is the chained commit walk: each firing publishes one line
// at its reserved slot; the final firing (same cycle as the last line)
// also completes the commit.
func (d *Directory) commitStep() {
	i := d.commitIdx
	if i < len(d.commitLines) {
		d.commitIdx++
		d.commitLine(d.commitProc, d.commitTID, d.commitLines[i])
		if d.commitIdx < len(d.commitLines) {
			d.eng.Schedule(d.commitStart+sim.Time(d.commitIdx+1)*d.cfg.CommitLineCycles, d.commitFn)
			return
		}
	}
	proc, done := d.commitProc, d.commitDone
	d.writer = -1
	d.commitLines = nil
	d.commitDone = nil
	d.marked[proc] = tokens.TIDNone
	done()
	if d.onCommitDone != nil {
		d.onCommitDone()
	}
}

// commitLine publishes one line: the version advances, ownership moves to
// the committer and all other sharers receive invalidations. A sharer
// that aborts triggers the gating protocol.
func (d *Directory) commitLine(committer int, tid tokens.TID, l mem.LineAddr) {
	ls := d.line(l)
	victims := ls.sharers.Without(committer)
	ls.owner = committer
	ls.sharers = Only(committer)
	ls.version++
	ls.lastTID = tid
	d.procs[committer].NoteLineCommitted(l, ls.version)
	victims.ForEach(func(v int) {
		d.counters.Invalidations++
		op := d.getInv()
		op.victim, op.committer, op.line = v, committer, l
		d.bus.Send(d.node(), v, bus.BankOf(uint64(l), d.banks), op.fn)
	})
}

// OnProcessorCommitted resets the abort bookkeeping for proc: "Abort count
// field is reset to 0 whenever a thread commits." The system calls this on
// every directory when a transaction commits, treating the counter as a
// property of the (now completed) transaction.
func (d *Directory) OnProcessorCommitted(proc int) {
	if !d.gcfg.Enabled {
		return
	}
	g := &d.gate[proc]
	g.abortCount = 0
	g.renewCount = 0
}

// Off reports this directory's local view of proc's clock state.
func (d *Directory) Off(proc int) bool { return d.gate[proc].off }

// AbortCount returns the local abort counter for proc.
func (d *Directory) AbortCount(proc int) int { return d.gate[proc].abortCount }

// RenewCount returns the local renew counter for proc.
func (d *Directory) RenewCount(proc int) int { return d.gate[proc].renewCount }

func (d *Directory) satMax(bits int) int { return 1<<uint(bits) - 1 }

// gateVictim runs the abort-side of the protocol (§V, Fig. 2(c)–(d)):
// log aborter, bump the abort counter, reset the renew counter, arm the
// timer with the contention-management window, send StopClock to the
// victim and TxInfoReq to the aborter.
func (d *Directory) gateVictim(victim, aborter int) {
	g := &d.gate[victim]
	g.episode++
	ep := g.episode
	g.off = true
	g.aborterProc = aborter
	g.aborterTx = 0
	g.aborterTxOK = false
	if g.abortCount < d.satMax(d.gcfg.AbortCounterBits) {
		g.abortCount++
	}
	g.renewCount = 0
	d.armTimer(victim, g, ep)

	// StopClock to the victim. The stop-clock command rides with the
	// invalidation acknowledgement (this call runs in the delivery
	// context of the invalidation that caused the abort), so the victim
	// cannot issue new traffic between the abort and the freeze.
	if d.procs[victim].DeliverStopClock(d.id) {
		d.counters.Gatings++
		d.stats.Gatings++
		d.rec.Record(trace.Event{At: d.eng.Now(), Kind: trace.EvGate,
			Proc: victim, Other: aborter, Dir: d.id})
	}

	// TxInfoReq to the aborter, reply stored in the table (Fig. 2(d)).
	// The aborter is mid-commit right now, so the query is answered from
	// its architectural state; the answer is recorded immediately — the
	// paper's round trip completes well before the first timer expiry,
	// and modeling it with bus latency would let tiny first windows race
	// past the reply and ungate on an unknown aborter transaction.
	d.counters.TxInfoRequests++
	g.aborterTx, g.aborterTxOK = d.procs[aborter].TxInfo()
}

// armTimer loads the gating timer from the contention-management policy
// using the current abort and renew counts.
func (d *Directory) armTimer(victim int, g *gateEntry, ep uint64) {
	g.timer.Cancel()
	wt := d.policy.Window(g.abortCount, g.renewCount)
	if wt < 1 {
		wt = 1
	}
	if g.timerFn == nil {
		v := victim
		g.timerFn = func() { d.timerExpired(v, g.timerEp) }
	}
	g.timerEp = ep
	g.timer = d.eng.ScheduleAfter(wt, g.timerFn)
}

// timerExpired implements the Fig. 2(e) control circuit. The high fan-in
// OR over Marked processor ids costs ControlCircuitCycles before the
// decision is known, "extending the clock gating period by a small amount
// of time".
func (d *Directory) timerExpired(victim int, ep uint64) {
	g := &d.gate[victim]
	if g.episode != ep || !g.off {
		return
	}
	op := d.getEval()
	op.victim, op.ep = victim, ep
	d.eng.ScheduleAfter(d.gcfg.ControlCircuitCycles, op.fn)
}

// evaluateUngate decides between On and renewal:
//
//	(a) aborter no longer marked in this directory        → On
//	(b) aborter marked but TxInfoReq returns null          → On
//	(c) aborter marked, same transaction as the abort      → renew
//	(d) aborter marked, different transaction              → On
func (d *Directory) evaluateUngate(victim int, g *gateEntry, ep uint64) {
	if d.gcfg.DisableRenewal {
		d.sendOn(victim, g)
		return
	}
	// "The aborter thread is still present in that directory": either it
	// has announced speculative writes homed here (eager store-address
	// communication) or it sits in the commit queue.
	inQueue := d.marked[g.aborterProc] != tokens.TIDNone
	if !inQueue && !d.announced[g.aborterProc] {
		d.sendOn(victim, g)
		return
	}
	d.counters.TxInfoRequests++
	op := d.getTxInfo()
	op.victim, op.aborter, op.ep = victim, g.aborterProc, ep
	d.bus.Send(d.node(), op.aborter, d.ctlBank, op.reqFn)
}

// sendOn delivers the On command and clears the local OFF state.
func (d *Directory) sendOn(victim int, g *gateEntry) {
	d.disarm(g)
	d.counters.Ungates++
	d.stats.Ungates++
	d.rec.Record(trace.Event{At: d.eng.Now(), Kind: trace.EvUngate,
		Proc: victim, Other: g.aborterProc, Dir: d.id})
	if g.onFn == nil {
		v := victim
		g.onFn = func() { d.procs[v].DeliverOn(d.id) }
	}
	d.bus.Send(d.node(), victim, d.ctlBank, g.onFn)
}

// ForceUngateAll is a test/shutdown hook: ungate every processor this
// directory holds off, regardless of the control-circuit conditions.
func (d *Directory) ForceUngateAll() {
	for p := range d.gate {
		g := &d.gate[p]
		if g.off {
			d.sendOn(p, g)
		}
	}
}
