package directory

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/cm"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tokens"
)

// fakeProc is a scriptable ProcessorPort for protocol unit tests.
type fakeProc struct {
	id            int
	invalidations []mem.LineAddr
	abortNext     bool // DeliverInvalidation returns this and resets it
	stopClocks    int
	dropStop      bool // refuse to freeze (committing)
	ons           int
	gated         bool
	txPC          uint64
	txOK          bool
}

func (f *fakeProc) ID() int { return f.id }

func (f *fakeProc) DeliverInvalidation(l mem.LineAddr, aborter, dir int) bool {
	f.invalidations = append(f.invalidations, l)
	a := f.abortNext
	f.abortNext = false
	return a
}

func (f *fakeProc) DeliverStopClock(dir int) bool {
	f.stopClocks++
	if f.dropStop {
		return false
	}
	f.gated = true
	return true
}

func (f *fakeProc) DeliverOn(dir int) {
	f.ons++
	f.gated = false
}

func (f *fakeProc) Gated() bool { return f.gated }

func (f *fakeProc) TxInfo() (uint64, bool) { return f.txPC, f.txOK }

func (f *fakeProc) NoteLineCommitted(l mem.LineAddr, version uint64) {}

type rig struct {
	eng      *sim.Engine
	bus      *bus.Bus
	dir      *Directory
	procs    []*fakeProc
	counters stats.Counters
}

func newRig(t *testing.T, nProcs int, gated bool, edit func(*config.Config)) *rig {
	t.Helper()
	cfg := config.Default(nProcs)
	if gated {
		cfg = cfg.WithGating(8)
	}
	if edit != nil {
		edit(&cfg)
	}
	r := &rig{eng: sim.NewEngine()}
	r.bus = bus.New(r.eng, cfg.Machine.BusCycles)
	r.dir = New(0, r.eng, r.bus, cfg.Machine, cfg.Gating, cm.GatingAware{W0: cfg.Gating.W0}, &r.counters)
	ports := make([]ProcessorPort, nProcs)
	for i := 0; i < nProcs; i++ {
		r.procs = append(r.procs, &fakeProc{id: i, txPC: 0x100 + uint64(i), txOK: true})
		ports[i] = r.procs[i]
	}
	r.dir.Attach(ports, nil)
	return r
}

func TestHandleReadAddsSharerAndReplies(t *testing.T) {
	r := newRig(t, 2, false, nil)
	replied := sim.Time(-1)
	r.dir.HandleRead(1, 40, func(uint64) { replied = r.eng.Now() })
	r.eng.Run()
	if replied < 0 {
		t.Fatal("no reply")
	}
	// dir 10 + mem 100 + bus 2 = 112 minimum.
	if replied < 112 {
		t.Fatalf("reply at %d, too fast", replied)
	}
	if !r.dir.Sharers(40).Has(1) {
		t.Fatal("requester not recorded as sharer")
	}
}

func TestHandleReadSerializesMemoryPort(t *testing.T) {
	r := newRig(t, 2, false, nil)
	var first, second sim.Time
	r.dir.HandleRead(0, 1, func(uint64) { first = r.eng.Now() })
	r.dir.HandleRead(1, 2, func(uint64) { second = r.eng.Now() })
	r.eng.Run()
	if second-first < 100 {
		t.Fatalf("memory port not serialized: %d then %d", first, second)
	}
}

func TestHeadPicksLowestTID(t *testing.T) {
	r := newRig(t, 3, false, nil)
	r.dir.Mark(2, tokens.TID(30))
	r.dir.Mark(0, tokens.TID(10))
	r.dir.Mark(1, tokens.TID(20))
	if p, ok := r.dir.Head(); !ok || p != 0 {
		t.Fatalf("head = %d,%v; want 0", p, ok)
	}
	r.dir.Unmark(0)
	if p, _ := r.dir.Head(); p != 1 {
		t.Fatalf("head after unmark = %d; want 1", p)
	}
}

func TestHeadEmpty(t *testing.T) {
	r := newRig(t, 2, false, nil)
	if _, ok := r.dir.Head(); ok {
		t.Fatal("empty directory has a head")
	}
}

func TestBeginCommitInvalidatesSharers(t *testing.T) {
	r := newRig(t, 3, false, nil)
	// Lines 5 and 9 shared by procs 1 and 2.
	r.dir.line(5).sharers.Add(1)
	r.dir.line(5).sharers.Add(2)
	r.dir.line(9).sharers.Add(1)
	r.dir.Mark(0, 1)
	done := false
	r.dir.BeginCommit(0, []mem.LineAddr{5, 9}, func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("commit did not complete")
	}
	if len(r.procs[1].invalidations) != 2 {
		t.Fatalf("proc 1 got %v", r.procs[1].invalidations)
	}
	if len(r.procs[2].invalidations) != 1 || r.procs[2].invalidations[0] != 5 {
		t.Fatalf("proc 2 got %v", r.procs[2].invalidations)
	}
	if len(r.procs[0].invalidations) != 0 {
		t.Fatal("committer invalidated itself")
	}
	if r.dir.Owner(5) != 0 || r.dir.Sharers(5) != Only(0) {
		t.Fatal("ownership not transferred")
	}
	if r.dir.Busy() {
		t.Fatal("directory still busy")
	}
	if r.dir.Marked(0) {
		t.Fatal("mark survived commit")
	}
	if r.counters.Invalidations != 3 {
		t.Fatalf("invalidations counted %d", r.counters.Invalidations)
	}
}

func TestBeginCommitOccupiesPerLine(t *testing.T) {
	r := newRig(t, 1, false, nil)
	r.dir.Mark(0, 1)
	var doneAt sim.Time
	r.dir.BeginCommit(0, []mem.LineAddr{1, 2, 3}, func() { doneAt = r.eng.Now() })
	r.eng.Run()
	if doneAt != 30 { // 3 lines x 10 cycles
		t.Fatalf("commit finished at %d, want 30", doneAt)
	}
}

func TestBeginCommitWhileBusyPanics(t *testing.T) {
	r := newRig(t, 2, false, nil)
	r.dir.Mark(0, 1)
	r.dir.Mark(1, 2)
	r.dir.BeginCommit(0, []mem.LineAddr{1}, func() {})
	defer func() {
		if recover() == nil {
			t.Error("double BeginCommit did not panic")
		}
	}()
	r.dir.BeginCommit(1, []mem.LineAddr{2}, func() {})
}

func TestBeginCommitWithoutMarkPanics(t *testing.T) {
	r := newRig(t, 1, false, nil)
	defer func() {
		if recover() == nil {
			t.Error("BeginCommit without mark did not panic")
		}
	}()
	r.dir.BeginCommit(0, []mem.LineAddr{1}, func() {})
}

// gateRig sets up: proc 1 is a sharer of line 7; proc 0 commits it; proc 1
// reports abort -> gating protocol engages.
func gateRig(t *testing.T, edit func(*config.Config)) *rig {
	t.Helper()
	r := newRig(t, 2, true, edit)
	r.dir.line(7).sharers.Add(1)
	r.procs[1].abortNext = true
	r.dir.Mark(0, 1)
	r.dir.BeginCommit(0, []mem.LineAddr{7}, func() {})
	return r
}

func TestGatingOnAbort(t *testing.T) {
	r := gateRig(t, nil)
	r.eng.RunUntil(14) // commit at 10, inval over bus at 12
	if !r.dir.Off(1) {
		t.Fatal("victim not marked OFF")
	}
	if r.procs[1].stopClocks != 1 || !r.procs[1].gated {
		t.Fatal("StopClock not delivered")
	}
	if r.dir.AbortCount(1) != 1 || r.dir.RenewCount(1) != 0 {
		t.Fatalf("counters Na=%d Nr=%d", r.dir.AbortCount(1), r.dir.RenewCount(1))
	}
	if r.counters.Gatings != 1 || r.counters.Aborts != 1 {
		t.Fatalf("counters %+v", r.counters)
	}
}

func TestUngateWhenAborterGone(t *testing.T) {
	r := gateRig(t, nil)
	// After the commit completes, proc 0 is unmarked; timer expiry must
	// send On.
	r.eng.Run()
	if r.procs[1].ons != 1 {
		t.Fatalf("victim got %d On commands, want 1", r.procs[1].ons)
	}
	if r.dir.Off(1) {
		t.Fatal("OFF bit survived ungate")
	}
	if r.counters.Ungates != 1 {
		t.Fatalf("ungates %d", r.counters.Ungates)
	}
}

func TestRenewalWhileAborterPresentSameTx(t *testing.T) {
	// Keep the aborter "present" via an eager announcement executing the
	// same transaction: the first timer expiry must renew, not ungate.
	r := gateRig(t, nil)
	r.dir.AnnounceIntent(0) // aborter announced (executing same tx)
	r.eng.RunUntil(40)      // first window W0*(1+0)=8 expires ~t=20-26
	if r.counters.Renewals < 1 {
		t.Fatalf("no renewal happened (renewals=%d)", r.counters.Renewals)
	}
	if r.dir.RenewCount(1) < 1 {
		t.Fatalf("renew count %d", r.dir.RenewCount(1))
	}
	if r.procs[1].ons != 0 {
		t.Fatal("victim was ungated despite present aborter")
	}
	// Withdraw the announcement: the next expiry must ungate.
	r.dir.WithdrawIntent(0)
	r.eng.Run()
	if r.procs[1].ons != 1 {
		t.Fatalf("victim not ungated after withdrawal (ons=%d)", r.procs[1].ons)
	}
}

func TestUngateWhenAborterChangedTx(t *testing.T) {
	r := gateRig(t, nil)
	r.dir.AnnounceIntent(0)
	r.eng.RunUntil(14) // let the gating happen with the original tx id
	// The aborter moved on to a different static transaction.
	r.procs[0].txPC = 0x999
	r.eng.RunUntil(60)
	if r.procs[1].ons != 1 {
		t.Fatalf("victim not ungated on tx change (ons=%d)", r.procs[1].ons)
	}
	if r.counters.Renewals != 0 {
		t.Fatalf("renewed despite tx change (%d)", r.counters.Renewals)
	}
}

func TestUngateOnNullTxInfoReply(t *testing.T) {
	// "In the case the processor P0 has itself been turned off ... the
	// reply to the TxInfoReq message will be null ... turning the victim
	// processor on."
	r := gateRig(t, nil)
	r.dir.AnnounceIntent(0)
	r.procs[0].txOK = false // gated aborter: null reply
	r.eng.RunUntil(60)
	if r.procs[1].ons != 1 {
		t.Fatal("victim not ungated on null reply")
	}
}

func TestDisableRenewalAblation(t *testing.T) {
	r := gateRig(t, func(c *config.Config) { c.Gating.DisableRenewal = true })
	r.dir.AnnounceIntent(0) // would renew if the mechanism were on
	r.eng.RunUntil(60)
	if r.counters.Renewals != 0 {
		t.Fatal("renewal happened despite DisableRenewal")
	}
	if r.procs[1].ons != 1 {
		t.Fatal("victim not ungated blindly")
	}
}

func TestAbortCounterSaturates(t *testing.T) {
	r := newRig(t, 2, true, func(c *config.Config) { c.Gating.AbortCounterBits = 2 })
	for i := 0; i < 10; i++ {
		r.dir.gateVictim(1, 0)
	}
	if got := r.dir.AbortCount(1); got != 3 {
		t.Fatalf("2-bit abort counter at %d, want saturation at 3", got)
	}
}

func TestRepeatGatingGrowsWindow(t *testing.T) {
	// Second abort at the same directory doubles the base window term.
	r := newRig(t, 2, true, nil)
	r.dir.gateVictim(1, 0)
	if r.dir.AbortCount(1) != 1 {
		t.Fatal("first gate Na != 1")
	}
	r.dir.gateVictim(1, 0)
	if r.dir.AbortCount(1) != 2 {
		t.Fatal("second gate Na != 2")
	}
	if r.dir.RenewCount(1) != 0 {
		t.Fatal("renew count not reset by new abort")
	}
}

func TestLoadStoreFromRunningProcClearsStaleOff(t *testing.T) {
	r := newRig(t, 2, true, nil)
	r.dir.gateVictim(1, 0)
	r.eng.RunUntil(5)
	// Proc 1 was woken elsewhere (its Gated()==false since dropStop...).
	r.procs[1].gated = false
	r.dir.HandleRead(1, 3, func(uint64) {})
	if r.dir.Off(1) {
		t.Fatal("stale OFF bit not cleared by load from running processor")
	}
}

func TestLoadStoreFromFrozenProcKeepsOff(t *testing.T) {
	// A request that was in flight when the clock stopped must NOT clear
	// the OFF bit (the processor is genuinely frozen).
	r := newRig(t, 2, true, nil)
	r.dir.gateVictim(1, 0)
	r.eng.RunUntil(5) // StopClock delivered synchronously in gateVictim
	if !r.procs[1].gated {
		t.Fatal("setup: victim should be frozen")
	}
	r.dir.HandleRead(1, 3, func(uint64) {})
	if !r.dir.Off(1) {
		t.Fatal("OFF bit cleared by a stale in-flight request")
	}
}

func TestOnProcessorCommittedResetsCounters(t *testing.T) {
	r := newRig(t, 2, true, nil)
	r.dir.gateVictim(1, 0)
	r.dir.gateVictim(1, 0)
	r.dir.OnProcessorCommitted(1)
	if r.dir.AbortCount(1) != 0 || r.dir.RenewCount(1) != 0 {
		t.Fatal("commit did not reset the gate counters")
	}
}

func TestForceUngateAll(t *testing.T) {
	r := newRig(t, 3, true, nil)
	r.dir.gateVictim(1, 0)
	r.dir.gateVictim(2, 0)
	r.dir.ForceUngateAll()
	r.eng.Run()
	if r.procs[1].ons != 1 || r.procs[2].ons != 1 {
		t.Fatal("ForceUngateAll did not ungate everyone")
	}
	if r.dir.Off(1) || r.dir.Off(2) {
		t.Fatal("OFF bits survive ForceUngateAll")
	}
}

func TestTooManyProcessorsPanics(t *testing.T) {
	cfg := config.Default(MaxProcs + 1)
	defer func() {
		if recover() == nil {
			t.Errorf("%d processors did not panic (%d-bit sharer vector)", MaxProcs+1, MaxProcs)
		}
	}()
	var c stats.Counters
	New(0, sim.NewEngine(), bus.New(sim.NewEngine(), 1), cfg.Machine, cfg.Gating, cm.None{}, &c)
}

func TestEmptyCommitStillTouchesDirectory(t *testing.T) {
	r := newRig(t, 1, false, nil)
	r.dir.Mark(0, 1)
	done := false
	r.dir.BeginCommit(0, nil, func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("empty commit did not complete")
	}
}
