package directory

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestProcSetBasics(t *testing.T) {
	var s ProcSet
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero set not empty")
	}
	// Exercise both words, including the word boundary and the top id.
	ids := []int{0, 1, 63, 64, 65, 100, MaxProcs - 1}
	for _, i := range ids {
		s.Add(i)
	}
	if s.Count() != len(ids) {
		t.Fatalf("count %d, want %d", s.Count(), len(ids))
	}
	for _, i := range ids {
		if !s.Has(i) {
			t.Fatalf("id %d missing", i)
		}
	}
	if s.Has(62) || s.Has(66) {
		t.Fatal("spurious membership")
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Remove(64) had no effect")
	}
	if s.Without(63).Has(63) {
		t.Fatal("Without(63) kept 63")
	}
	if !s.Has(63) {
		t.Fatal("Without mutated the receiver")
	}
}

func TestProcSetForEachAscending(t *testing.T) {
	var s ProcSet
	want := []int{2, 40, 63, 64, 90, 127}
	// Insert in scrambled order; iteration must be ascending regardless.
	for _, i := range []int{90, 2, 127, 64, 63, 40} {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v (fan-out must be ascending and deterministic)", got, want)
		}
	}
}

// TestWideMachineSharers exercises the second sharer word end-to-end: a
// 128-processor directory records high-id sharers and invalidates them on
// commit.
func TestWideMachineSharers(t *testing.T) {
	r := newRig(t, MaxProcs, false, nil)
	for _, p := range []int{1, 70, 127} {
		got := sim.Time(-1)
		r.dir.HandleRead(p, 40, func(uint64) { got = r.eng.Now() })
		r.eng.Run()
		if got < 0 {
			t.Fatalf("proc %d read never replied", p)
		}
		if !r.dir.Sharers(40).Has(p) {
			t.Fatalf("proc %d not recorded as sharer", p)
		}
	}
	// Proc 1 commits line 40: both high-id sharers must be invalidated.
	r.dir.Mark(1, 1)
	r.dir.BeginCommit(1, []mem.LineAddr{40}, func() {})
	r.eng.Run()
	if len(r.procs[70].invalidations) != 1 || len(r.procs[127].invalidations) != 1 {
		t.Fatalf("high-id sharers not invalidated: p70=%v p127=%v",
			r.procs[70].invalidations, r.procs[127].invalidations)
	}
	if len(r.procs[1].invalidations) != 0 {
		t.Fatal("committer invalidated itself")
	}
	if r.dir.Sharers(40) != Only(1) {
		t.Fatal("sharer set not reset to the committer")
	}
}
