package directory

import "math/bits"

// MaxProcs is the widest machine the sharer vectors support. The paper's
// full-bit-vector directories are modeled as two 64-bit words, which
// covers the 64- and 128-processor scale points beyond the original
// 32-processor ceiling.
const MaxProcs = 128

// ProcSet is a full bit vector over processor ids, the directory's sharer
// representation. The zero value is the empty set.
type ProcSet struct {
	w [2]uint64
}

// Add inserts processor i.
func (s *ProcSet) Add(i int) { s.w[i>>6] |= 1 << uint(i&63) }

// Remove deletes processor i.
func (s *ProcSet) Remove(i int) { s.w[i>>6] &^= 1 << uint(i&63) }

// Has reports whether processor i is in the set.
func (s ProcSet) Has(i int) bool { return s.w[i>>6]&(1<<uint(i&63)) != 0 }

// Empty reports whether the set has no members.
func (s ProcSet) Empty() bool { return s.w[0] == 0 && s.w[1] == 0 }

// Count returns the number of members.
func (s ProcSet) Count() int {
	return bits.OnesCount64(s.w[0]) + bits.OnesCount64(s.w[1])
}

// Only returns the set containing just processor i.
func Only(i int) ProcSet {
	var s ProcSet
	s.Add(i)
	return s
}

// Without returns s minus processor i.
func (s ProcSet) Without(i int) ProcSet {
	s.Remove(i)
	return s
}

// ForEach calls f for every member in ascending processor id — the
// deterministic fan-out order invalidations rely on.
func (s ProcSet) ForEach(f func(int)) {
	for w := 0; w < 2; w++ {
		v := s.w[w]
		for v != 0 {
			f(w<<6 + bits.TrailingZeros64(v))
			v &= v - 1
		}
	}
}
