package report

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Timeline renders a closed residency ledger as an ASCII Gantt chart: one
// row per processor, one column per time bucket, the dominant state of
// each bucket drawn as a glyph. It makes gating behaviour visible at a
// glance — bursts of '.' (gated) appearing after conflicts, miss stalls as
// 'm', commits as 'C'.
type Timeline struct {
	Ledger *stats.Ledger
	// Width is the number of time buckets (default 100).
	Width int
	// From/To bound the rendered window; zero values mean the full run.
	From, To sim.Time
}

// stateGlyphs maps each power state to its chart glyph.
var stateGlyphs = [stats.NumStates]byte{
	stats.StateRun:    '#',
	stats.StateMiss:   'm',
	stats.StateCommit: 'C',
	stats.StateGated:  '.',
}

// Render draws the chart.
func (tl Timeline) Render() string {
	l := tl.Ledger
	if l == nil || !l.Closed() {
		return "(timeline: no closed ledger)\n"
	}
	width := tl.Width
	if width <= 0 {
		width = 100
	}
	from, to := tl.From, tl.To
	if to == 0 || to > l.End() {
		to = l.End()
	}
	if from >= to {
		return "(timeline: empty window)\n"
	}
	span := to - from
	var b strings.Builder
	fmt.Fprintf(&b, "timeline [%d, %d) — '#'=run 'm'=miss 'C'=commit '.'=gated\n", from, to)
	for p := 0; p < l.Procs(); p++ {
		row := make([]byte, width)
		for i := 0; i < width; i++ {
			lo := from + sim.Time(int64(span)*int64(i)/int64(width))
			hi := from + sim.Time(int64(span)*int64(i+1)/int64(width))
			if hi <= lo {
				hi = lo + 1
			}
			row[i] = stateGlyphs[dominantState(l, p, lo, hi)]
		}
		fmt.Fprintf(&b, "p%-3d |%s|\n", p, row)
	}
	return b.String()
}

// dominantState returns the state processor p spent the most time in
// within [lo, hi).
func dominantState(l *stats.Ledger, p int, lo, hi sim.Time) stats.State {
	var acc [stats.NumStates]sim.Time
	for _, seg := range l.Segments(p) {
		a, z := seg.From, seg.To
		if a < lo {
			a = lo
		}
		if z > hi {
			z = hi
		}
		if z > a {
			acc[seg.State] += z - a
		}
	}
	best := stats.StateRun
	var bestT sim.Time = -1
	for s := 0; s < stats.NumStates; s++ {
		if acc[s] > bestT {
			bestT = acc[s]
			best = stats.State(s)
		}
	}
	return best
}
