package report

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func timelineLedger() *stats.Ledger {
	l := stats.NewLedger(2)
	l.Transition(0, stats.StateMiss, 25)
	l.Transition(0, stats.StateRun, 50)
	l.Transition(1, stats.StateGated, 50)
	l.Close(100)
	return l
}

func TestTimelineRender(t *testing.T) {
	out := Timeline{Ledger: timelineLedger(), Width: 20}.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 procs
		t.Fatalf("timeline lines:\n%s", out)
	}
	if !strings.Contains(lines[1], "m") {
		t.Fatalf("proc 0 row missing miss glyph:\n%s", out)
	}
	if !strings.Contains(lines[2], ".") {
		t.Fatalf("proc 1 row missing gated glyph:\n%s", out)
	}
	// Proc 1 is run for the first half, gated for the second.
	row := lines[2][strings.Index(lines[2], "|")+1:]
	if row[0] != '#' || row[18] != '.' {
		t.Fatalf("proc 1 glyph placement wrong: %q", row)
	}
}

func TestTimelineWindow(t *testing.T) {
	out := Timeline{Ledger: timelineLedger(), Width: 10, From: 50, To: 100}.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	row1 := lines[2]
	if strings.Contains(row1, "#") {
		t.Fatalf("windowed row should be fully gated:\n%s", out)
	}
}

func TestTimelineDegenerateInputs(t *testing.T) {
	if out := (Timeline{}).Render(); !strings.Contains(out, "no closed ledger") {
		t.Fatalf("nil ledger output %q", out)
	}
	l := stats.NewLedger(1)
	l.Close(10)
	if out := (Timeline{Ledger: l, From: 5, To: 5}).Render(); !strings.Contains(out, "empty window") {
		t.Fatalf("empty window output %q", out)
	}
}

func TestTimelineDefaultWidth(t *testing.T) {
	out := Timeline{Ledger: timelineLedger()}.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	body := lines[1][strings.Index(lines[1], "|")+1 : strings.LastIndex(lines[1], "|")]
	if len(body) != 100 {
		t.Fatalf("default width %d, want 100", len(body))
	}
}
