// Package report renders the reproduction's tables and figures as plain
// text: fixed-width tables for Tables I/II and the figure data series,
// plus simple ASCII bar charts for the paper's bar figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Note is printed under the table (provenance, units).
	Note string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table with column alignment.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Right-align numbers, left-align first column.
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		total -= 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		b.WriteString(t.Note)
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table (title
// and note omitted; pipe characters in cells are escaped). Cells are
// padded to column width so the source is as readable as the rendering.
func (t *Table) Markdown() string {
	escape := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(escape(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(escape(c)) > widths[i] {
				widths[i] = len(escape(c))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for i := range t.Headers {
			cell := ""
			if i < len(cells) {
				cell = escape(cells[i])
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	b.WriteByte('|')
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteByte('|')
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Bar is one bar of a BarChart.
type Bar struct {
	Label string
	Value float64
	// Annotation is printed after the bar (the paper annotates each
	// gated bar with its speed-up or reduction factor).
	Annotation string
}

// BarChart is a horizontal ASCII bar chart.
type BarChart struct {
	Title string
	Bars  []Bar
	// Width is the maximum bar width in characters (default 50).
	Width int
	// Unit is appended to the printed values.
	Unit string
}

// Add appends a bar.
func (c *BarChart) Add(label string, value float64, annotation string) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value, Annotation: annotation})
}

// Render draws the chart.
func (c *BarChart) Render() string {
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(c.Title)))
		b.WriteByte('\n')
	}
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxVal := 0.0
	maxLabel := 0
	for _, bar := range c.Bars {
		if bar.Value > maxVal {
			maxVal = bar.Value
		}
		if len(bar.Label) > maxLabel {
			maxLabel = len(bar.Label)
		}
	}
	for _, bar := range c.Bars {
		n := 0
		if maxVal > 0 {
			n = int(bar.Value / maxVal * float64(width))
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g%s", maxLabel, bar.Label, strings.Repeat("#", n), bar.Value, c.Unit)
		if bar.Annotation != "" {
			fmt.Fprintf(&b, "  (%s)", bar.Annotation)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is a labeled sequence of (x, y) points rendered as a text table,
// used for the line-style figures (Figure 3, Figure 7).
type Series struct {
	Name   string
	Points []Point
}

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// SeriesSet renders several series over a shared x axis.
type SeriesSet struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// XFormat and YFormat are fmt verbs for the values (default %g).
	XFormat, YFormat string
}

// Render formats the set as a table with one column per series.
func (s *SeriesSet) Render() string {
	xf := s.XFormat
	if xf == "" {
		xf = "%g"
	}
	yf := s.YFormat
	if yf == "" {
		yf = "%g"
	}
	t := Table{Title: s.Title}
	t.Headers = append(t.Headers, s.XLabel)
	for _, sr := range s.Series {
		t.Headers = append(t.Headers, sr.Name)
	}
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := make(map[float64]bool)
	for _, sr := range s.Series {
		for _, p := range sr.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		row := []string{fmt.Sprintf(xf, x)}
		for _, sr := range s.Series {
			cell := ""
			for _, p := range sr.Points {
				if p.X == x {
					cell = fmt.Sprintf(yf, p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	if s.YLabel != "" {
		t.Note = "y: " + s.YLabel
	}
	return t.Render()
}

// Percent formats a fraction as a signed percentage string.
func Percent(frac float64) string {
	return fmt.Sprintf("%+.1f%%", frac*100)
}

// Factor formats a ratio the way the paper annotates bars (e.g. "1.19x").
func Factor(ratio float64) string {
	return fmt.Sprintf("%.2fx", ratio)
}
