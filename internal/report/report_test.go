package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "My Table",
		Headers: []string{"name", "value"},
		Note:    "a note",
	}
	tb.AddRow("alpha", "1")
	tb.AddRow("longer-name", "23456")
	out := tb.Render()
	for _, want := range []string{"My Table", "========", "name", "value", "alpha", "longer-name", "23456", "a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Column alignment: all data rows must have the header's separator
	// width or less... just assert the separator exists.
	if !strings.Contains(out, "---") {
		t.Fatal("no separator rendered")
	}
}

func TestTableAlignsColumns(t *testing.T) {
	tb := Table{Headers: []string{"k", "v"}}
	tb.AddRow("a", "1")
	tb.AddRow("bb", "22")
	lines := strings.Split(strings.TrimSpace(tb.Render()), "\n")
	// header, separator, two rows
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), tb.Render())
	}
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows not aligned:\n%s", tb.Render())
	}
}

func TestBarChartRender(t *testing.T) {
	c := BarChart{Title: "Chart", Width: 10, Unit: "u"}
	c.Add("big", 100, "1.00x")
	c.Add("half", 50, "")
	out := c.Render()
	if !strings.Contains(out, "##########") {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Fatalf("half bar missing:\n%s", out)
	}
	if !strings.Contains(out, "(1.00x)") {
		t.Fatalf("annotation missing:\n%s", out)
	}
	if !strings.Contains(out, "100u") {
		t.Fatalf("unit missing:\n%s", out)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := BarChart{}
	c.Add("zero", 0, "")
	out := c.Render() // must not divide by zero
	if !strings.Contains(out, "zero") {
		t.Fatal("label missing")
	}
}

func TestSeriesSetRender(t *testing.T) {
	s := SeriesSet{
		Title:  "S",
		XLabel: "x",
		YLabel: "why",
		Series: []Series{
			{Name: "a", Points: []Point{{1, 10}, {2, 20}}},
			{Name: "b", Points: []Point{{1, 11}, {3, 33}}},
		},
	}
	out := s.Render()
	for _, want := range []string{"S", "x", "a", "b", "10", "11", "20", "33", "y: why"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSeriesSetCustomFormats(t *testing.T) {
	s := SeriesSet{
		XLabel: "x", XFormat: "%.0f", YFormat: "%.2f",
		Series: []Series{{Name: "a", Points: []Point{{1.4, 2.5}}}},
	}
	out := s.Render()
	if !strings.Contains(out, "2.50") {
		t.Fatalf("y format not applied:\n%s", out)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.19); got != "+19.0%" {
		t.Fatalf("Percent(0.19) = %q", got)
	}
	if got := Percent(-0.041); got != "-4.1%" {
		t.Fatalf("Percent(-0.041) = %q", got)
	}
}

func TestFactor(t *testing.T) {
	if got := Factor(1.19); got != "1.19x" {
		t.Fatalf("Factor = %q", got)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{
		Title:   "ignored in markdown",
		Headers: []string{"id", "status"},
	}
	tb.AddRow("M00001", "done")
	tb.AddRow("M00002", "a|b") // pipe must be escaped
	out := tb.Markdown()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if lines[0] != "| id     | status |" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "|--------|--------|" {
		t.Fatalf("separator %q", lines[1])
	}
	if !strings.Contains(lines[3], `a\|b`) {
		t.Fatalf("pipe not escaped: %q", lines[3])
	}
	if strings.Contains(out, "ignored") {
		t.Fatal("markdown rendering must omit the title")
	}
	for _, l := range lines {
		if len(l) != len(lines[0]) {
			t.Fatalf("ragged markdown table:\n%s", out)
		}
	}
}
