// Package config collects every tunable of the simulated machine in one
// place. The defaults reproduce Table II of the paper plus the protocol
// constants its text fixes (W0 = 8 for the experiments, 8-bit abort
// counter saturation, and so on).
package config

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/sim"
)

// MaxProcessors is the widest machine the simulator models. The
// directories keep full-bit-vector sharer sets in two 64-bit words, so
// the scale axis tops out at 128 cores; Validate rejects anything wider.
const MaxProcessors = 128

// MaxBanks bounds the banked interconnect's bank count. Banks must be a
// power of two (the address interleave masks low line-address bits), and
// more banks than half the machine's ceiling would model more independent
// wire sets than components that could drive them.
const MaxBanks = 64

// Machine describes the simulated hardware platform (paper Table II).
type Machine struct {
	// Processors is the number of single-issue in-order cores (1–16 in
	// the paper's experiments; this reproduction scales the axis to
	// MaxProcessors).
	Processors int
	// Directories is the number of memory directories. The paper's
	// example system pairs one directory with each processor.
	Directories int
	// L1SizeBytes is the L1 data cache capacity (64 KB).
	L1SizeBytes int
	// L1LineBytes is the cache line size (64 B).
	L1LineBytes int
	// L1Ways is the associativity (2-way).
	L1Ways int
	// L1HitCycles is the L1 hit latency (1 cycle).
	L1HitCycles sim.Time
	// BusCycles is the occupancy of one message on the common
	// split-transaction bus (per bank, when Banks selects the banked
	// interconnect).
	BusCycles sim.Time
	// Banks selects the interconnect model: 0 (the default) is the
	// paper's single split-transaction bus; a positive power of two is
	// the address-interleaved banked bus with that many banks. Banks=1
	// is the banked model degenerated to one bank — cycle-identical to
	// the single bus, kept distinct so the two implementations can be
	// differentially tested against each other.
	Banks int
	// Topology selects the interconnect model by shape: "" or "bus"
	// (the default) is whatever the Banks axis selects; "xbar", "mesh"
	// and "ring" are the point-to-point fabrics, optionally with an
	// explicit size ("xbar:N", "ring:N", "mesh:RxC" — unsized forms
	// scale with the processor count; see bus.ParseTopology). BusCycles
	// is the per-link occupancy on every topology. The fabrics route by
	// endpoint, so they do not compose with Banks: a non-bus topology
	// requires Banks to be 0.
	Topology string
	// DirectoryCycles is the directory access latency (10 cycles).
	DirectoryCycles sim.Time
	// MemoryCycles is the main-memory access latency (100 cycles,
	// single read/write port — the port is modeled by the directory
	// serializing its accesses).
	MemoryCycles sim.Time
	// MemoryBytes is the physical memory size (1 GB).
	MemoryBytes uint64
	// CommitLineCycles is the directory occupancy for committing one
	// speculative line (one directory access per line).
	CommitLineCycles sim.Time
	// TokenCycles is the token-vendor service time for one TID request,
	// excluding the bus crossings on either side.
	TokenCycles sim.Time
}

// Gating describes the clock-gating protocol of the paper (§III, §V, §VI).
type Gating struct {
	// Enabled turns the whole mechanism on. Off reproduces the
	// ungated baseline.
	Enabled bool
	// W0 is the base gating window of the contention-management
	// formula Wt = W0*(2^ceil(lg Na) + 2^ceil(lg Nr)). The paper's
	// experiments use 8.
	W0 sim.Time
	// AbortCounterBits bounds the per-directory abort counter (8 in
	// the paper: saturates at 255).
	AbortCounterBits int
	// RenewCounterBits bounds the renew counter (modeled with the
	// same width).
	RenewCounterBits int
	// ControlCircuitCycles is the delay of the Fig. 2(e) un-gate
	// control circuit (the high fan-in OR takes multiple cycles,
	// which "extends the clock gating period further by a small
	// amount of time").
	ControlCircuitCycles sim.Time
	// WakeupCycles is the delay between the On command reaching the
	// processor's main PLL and the core executing again.
	WakeupCycles sim.Time
	// DisableRenewal turns off the renewal check: the directory
	// un-gates blindly when the timer expires. Used for the ablation
	// of the renewal mechanism.
	DisableRenewal bool
	// Policy selects the contention-management policy that sizes the
	// gating window: "gating-aware" (the paper's equation 8, default),
	// "exponential" (polite exponential back-off), "linear", or
	// "fixed" (constant window W0). Used by the policy ablation.
	Policy PolicyKind
}

// PolicyKind names a contention-management policy.
type PolicyKind string

// The selectable gating-window policies.
const (
	// PolicyGatingAware is the paper's staircase policy (default).
	PolicyGatingAware PolicyKind = "gating-aware"
	// PolicyExponential is conventional exponential polite back-off.
	PolicyExponential PolicyKind = "exponential"
	// PolicyLinear grows the window linearly with the abort count.
	PolicyLinear PolicyKind = "linear"
	// PolicyFixed always gates for exactly W0 cycles.
	PolicyFixed PolicyKind = "fixed"
)

// Config is a full simulation configuration.
type Config struct {
	Machine Machine
	Gating  Gating
	// Seed drives all randomness (workload generation).
	Seed uint64
	// MaxCycles aborts the simulation if it runs past this time; a
	// safety net against protocol livelock. Zero means no limit.
	MaxCycles sim.Time
}

// Default returns the paper's Table II machine with gating disabled and
// processors cores.
func Default(processors int) Config {
	return Config{
		Machine: Machine{
			Processors:       processors,
			Directories:      processors,
			L1SizeBytes:      64 << 10,
			L1LineBytes:      64,
			L1Ways:           2,
			L1HitCycles:      1,
			BusCycles:        2,
			DirectoryCycles:  10,
			MemoryCycles:     100,
			MemoryBytes:      1 << 30,
			CommitLineCycles: 10,
			TokenCycles:      2,
		},
		Gating: Gating{
			Enabled:              false,
			W0:                   8,
			AbortCounterBits:     8,
			RenewCounterBits:     8,
			ControlCircuitCycles: 4,
			WakeupCycles:         4,
		},
		Seed: 1,
	}
}

// Default64 is the 64-processor scale-axis preset: the Table II machine
// widened to 64 cores with one directory per core, the first design point
// beyond the paper's evaluation grid.
func Default64() Config { return Default(64) }

// Default128 is the 128-processor scale-axis preset — the widest machine
// the full-bit-vector directories support (MaxProcessors).
func Default128() Config { return Default(128) }

// DefaultBanked64 is the 64-processor machine on a 4-banked interconnect:
// the wide-machine design point where the single bus starts to saturate
// and banking first pays off.
func DefaultBanked64() Config { return Default64().WithBanks(4) }

// DefaultBanked128 is the widest machine on an 8-banked interconnect —
// the scale-axis endpoint the banked model exists for.
func DefaultBanked128() Config { return Default128().WithBanks(8) }

// WithBanks returns a copy of c on a banks-banked interconnect (0 restores
// the single split bus).
func (c Config) WithBanks(banks int) Config {
	c.Machine.Banks = banks
	return c
}

// WithTopology returns a copy of c on the given interconnect topology
// ("" restores the default bus selected by Banks).
func (c Config) WithTopology(topology string) Config {
	c.Machine.Topology = topology
	return c
}

// ValidateBanks checks a bank count in isolation: 0 selects the single
// split bus, anything else must be a power of two no wider than MaxBanks.
// Validate applies it to Machine.Banks; the CLI uses it to reject a bad
// -banks value before any work starts.
func ValidateBanks(banks int) error {
	if banks < 0 {
		return fmt.Errorf("config: banks %d must be non-negative", banks)
	}
	if banks > 0 && (banks&(banks-1) != 0 || banks > MaxBanks) {
		return fmt.Errorf("config: banks %d must be a power of two up to %d (the address interleave masks low line bits)", banks, MaxBanks)
	}
	return nil
}

// WithGating returns a copy of c with the gating protocol enabled and the
// given W0 (0 keeps the current value).
func (c Config) WithGating(w0 sim.Time) Config {
	c.Gating.Enabled = true
	if w0 > 0 {
		c.Gating.W0 = w0
	}
	return c
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	m := c.Machine
	if m.Processors <= 0 {
		return fmt.Errorf("config: processors %d must be positive", m.Processors)
	}
	if m.Processors > MaxProcessors {
		return fmt.Errorf("config: processors %d exceed the %d-wide directory sharer vectors", m.Processors, MaxProcessors)
	}
	if m.Directories <= 0 {
		return fmt.Errorf("config: directories %d must be positive", m.Directories)
	}
	if m.L1LineBytes <= 0 || m.L1LineBytes&(m.L1LineBytes-1) != 0 {
		return fmt.Errorf("config: line size %d not a power of two", m.L1LineBytes)
	}
	if m.L1SizeBytes <= 0 || m.L1SizeBytes%(m.L1Ways*m.L1LineBytes) != 0 {
		return fmt.Errorf("config: L1 size %d incompatible with geometry", m.L1SizeBytes)
	}
	if err := ValidateBanks(m.Banks); err != nil {
		return err
	}
	if err := bus.ValidateTopology(m.Topology, m.Banks, m.Processors); err != nil {
		return err
	}
	if m.L1HitCycles <= 0 || m.BusCycles <= 0 || m.DirectoryCycles <= 0 ||
		m.MemoryCycles <= 0 || m.CommitLineCycles <= 0 || m.TokenCycles <= 0 {
		return fmt.Errorf("config: all latencies must be positive")
	}
	if m.MemoryBytes == 0 || m.MemoryBytes%uint64(m.L1LineBytes) != 0 {
		return fmt.Errorf("config: memory size %d incompatible with line size", m.MemoryBytes)
	}
	g := c.Gating
	if g.Enabled {
		if g.W0 <= 0 {
			return fmt.Errorf("config: gating W0 %d must be positive", g.W0)
		}
		if g.AbortCounterBits <= 0 || g.AbortCounterBits > 32 {
			return fmt.Errorf("config: abort counter bits %d out of range", g.AbortCounterBits)
		}
		if g.RenewCounterBits <= 0 || g.RenewCounterBits > 32 {
			return fmt.Errorf("config: renew counter bits %d out of range", g.RenewCounterBits)
		}
		if g.ControlCircuitCycles < 0 || g.WakeupCycles < 0 {
			return fmt.Errorf("config: gating delays must be non-negative")
		}
		switch g.Policy {
		case "", PolicyGatingAware, PolicyExponential, PolicyLinear, PolicyFixed:
		default:
			return fmt.Errorf("config: unknown gating policy %q", g.Policy)
		}
	}
	return nil
}
