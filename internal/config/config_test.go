package config

import "testing"

func TestDefaultMatchesTableII(t *testing.T) {
	c := Default(16)
	m := c.Machine
	if m.Processors != 16 {
		t.Errorf("processors %d", m.Processors)
	}
	if m.L1SizeBytes != 64<<10 {
		t.Errorf("L1 size %d, want 64KB", m.L1SizeBytes)
	}
	if m.L1LineBytes != 64 {
		t.Errorf("line size %d, want 64", m.L1LineBytes)
	}
	if m.L1Ways != 2 {
		t.Errorf("ways %d, want 2", m.L1Ways)
	}
	if m.L1HitCycles != 1 {
		t.Errorf("L1 latency %d, want 1", m.L1HitCycles)
	}
	if m.DirectoryCycles != 10 {
		t.Errorf("directory latency %d, want 10", m.DirectoryCycles)
	}
	if m.MemoryCycles != 100 {
		t.Errorf("memory latency %d, want 100", m.MemoryCycles)
	}
	if m.MemoryBytes != 1<<30 {
		t.Errorf("memory size %d, want 1GB", m.MemoryBytes)
	}
	if c.Gating.Enabled {
		t.Error("gating enabled by default")
	}
	if c.Gating.W0 != 8 {
		t.Errorf("W0 %d, want the paper's 8", c.Gating.W0)
	}
	if c.Gating.AbortCounterBits != 8 {
		t.Errorf("abort counter bits %d, want 8", c.Gating.AbortCounterBits)
	}
}

func TestDefaultValidates(t *testing.T) {
	for _, np := range []int{1, 2, 4, 8, 16} {
		if err := Default(np).Validate(); err != nil {
			t.Errorf("Default(%d) invalid: %v", np, err)
		}
		if err := Default(np).WithGating(0).Validate(); err != nil {
			t.Errorf("Default(%d) gated invalid: %v", np, err)
		}
	}
}

func TestWithGating(t *testing.T) {
	c := Default(4).WithGating(32)
	if !c.Gating.Enabled {
		t.Fatal("WithGating did not enable")
	}
	if c.Gating.W0 != 32 {
		t.Fatalf("W0 %d, want 32", c.Gating.W0)
	}
	// Zero keeps the default.
	c2 := Default(4).WithGating(0)
	if c2.Gating.W0 != 8 {
		t.Fatalf("W0 %d, want untouched 8", c2.Gating.W0)
	}
}

func TestWithGatingDoesNotMutateReceiver(t *testing.T) {
	c := Default(4)
	_ = c.WithGating(99)
	if c.Gating.Enabled {
		t.Fatal("WithGating mutated its receiver")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Config)
	}{
		{"zero processors", func(c *Config) { c.Machine.Processors = 0 }},
		{"zero directories", func(c *Config) { c.Machine.Directories = 0 }},
		{"line not power of two", func(c *Config) { c.Machine.L1LineBytes = 48 }},
		{"bad L1 size", func(c *Config) { c.Machine.L1SizeBytes = 1000 }},
		{"zero hit latency", func(c *Config) { c.Machine.L1HitCycles = 0 }},
		{"zero bus", func(c *Config) { c.Machine.BusCycles = 0 }},
		{"zero directory latency", func(c *Config) { c.Machine.DirectoryCycles = 0 }},
		{"zero memory latency", func(c *Config) { c.Machine.MemoryCycles = 0 }},
		{"zero commit cost", func(c *Config) { c.Machine.CommitLineCycles = 0 }},
		{"zero token cost", func(c *Config) { c.Machine.TokenCycles = 0 }},
		{"memory not line multiple", func(c *Config) { c.Machine.MemoryBytes = 1000 }},
		{"gated zero W0", func(c *Config) { c.Gating.Enabled = true; c.Gating.W0 = 0 }},
		{"gated bad abort bits", func(c *Config) { c.Gating.Enabled = true; c.Gating.AbortCounterBits = 0 }},
		{"gated bad renew bits", func(c *Config) { c.Gating.Enabled = true; c.Gating.RenewCounterBits = 64 }},
		{"gated negative wakeup", func(c *Config) { c.Gating.Enabled = true; c.Gating.WakeupCycles = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Default(4)
			c.edit(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("%s passed validation", c.name)
			}
		})
	}
}

func TestScaleAxisPresets(t *testing.T) {
	// The 64p/128p scale presets must validate as-is (with and without
	// gating), and the processor ceiling is tied to the directory sharer
	// vector width.
	for _, cfg := range []Config{Default64(), Default128()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%dp preset invalid: %v", cfg.Machine.Processors, err)
		}
		if err := cfg.WithGating(0).Validate(); err != nil {
			t.Fatalf("%dp gated preset invalid: %v", cfg.Machine.Processors, err)
		}
	}
	if Default64().Machine.Processors != 64 || Default128().Machine.Processors != MaxProcessors {
		t.Fatal("scale presets have wrong core counts")
	}
	over := Default(MaxProcessors + 1)
	if err := over.Validate(); err == nil {
		t.Fatalf("%d processors passed validation", MaxProcessors+1)
	}
}

func TestBankedPresetsAndValidation(t *testing.T) {
	// The banked presets must validate as-is, pair the wide machines with
	// their bank counts, and leave everything but the interconnect at the
	// Table II values.
	if cfg := DefaultBanked64(); cfg.Machine.Processors != 64 || cfg.Machine.Banks != 4 {
		t.Fatalf("DefaultBanked64 = %dp/%d banks, want 64p/4", cfg.Machine.Processors, cfg.Machine.Banks)
	}
	if cfg := DefaultBanked128(); cfg.Machine.Processors != MaxProcessors || cfg.Machine.Banks != 8 {
		t.Fatalf("DefaultBanked128 = %dp/%d banks, want %dp/8", cfg.Machine.Processors, cfg.Machine.Banks, MaxProcessors)
	}
	for _, cfg := range []Config{DefaultBanked64(), DefaultBanked128()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("banked preset (%dp) invalid: %v", cfg.Machine.Processors, err)
		}
		if err := cfg.WithGating(0).Validate(); err != nil {
			t.Fatalf("banked gated preset (%dp) invalid: %v", cfg.Machine.Processors, err)
		}
		want := Default(cfg.Machine.Processors).Machine
		want.Banks = cfg.Machine.Banks
		if cfg.Machine != want {
			t.Fatalf("banked preset deviates beyond the interconnect: %+v", cfg.Machine)
		}
	}
	// Banks must be 0 (single bus) or a power of two within MaxBanks.
	for _, banks := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
		if err := Default(8).WithBanks(banks).Validate(); err != nil {
			t.Errorf("banks=%d rejected: %v", banks, err)
		}
	}
	for _, banks := range []int{-1, 3, 5, 6, 7, 12, 65, 128} {
		if err := Default(8).WithBanks(banks).Validate(); err == nil {
			t.Errorf("banks=%d passed validation", banks)
		}
	}
}
