package mem

import (
	"testing"
	"testing/quick"
)

func TestNewGeometryValidation(t *testing.T) {
	cases := []struct {
		name     string
		line     uint64
		dirs     int
		memBytes uint64
		wantErr  bool
	}{
		{"valid", 64, 4, 1 << 20, false},
		{"line not power of two", 48, 4, 1 << 20, true},
		{"zero line", 0, 4, 1 << 20, true},
		{"zero dirs", 64, 0, 1 << 20, true},
		{"negative dirs", 64, -1, 1 << 20, true},
		{"memory not multiple of line", 64, 4, 100, true},
		{"zero memory", 64, 4, 0, true},
		{"single byte line", 1, 1, 16, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewGeometry(c.line, c.dirs, c.memBytes)
			if (err != nil) != c.wantErr {
				t.Fatalf("NewGeometry(%d,%d,%d) err=%v, wantErr=%v",
					c.line, c.dirs, c.memBytes, err, c.wantErr)
			}
		})
	}
}

func TestMustGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGeometry with bad args did not panic")
		}
	}()
	MustGeometry(3, 1, 64)
}

func TestGeometryAccessors(t *testing.T) {
	g := MustGeometry(64, 8, 1<<20)
	if g.LineBytes() != 64 {
		t.Errorf("LineBytes %d", g.LineBytes())
	}
	if g.LineShift() != 6 {
		t.Errorf("LineShift %d, want 6", g.LineShift())
	}
	if g.NumDirs() != 8 {
		t.Errorf("NumDirs %d", g.NumDirs())
	}
	if g.MemBytes() != 1<<20 {
		t.Errorf("MemBytes %d", g.MemBytes())
	}
	if g.TotalLines() != (1<<20)/64 {
		t.Errorf("TotalLines %d", g.TotalLines())
	}
}

func TestLineOfStripsOffset(t *testing.T) {
	g := MustGeometry(64, 4, 1<<20)
	if g.LineOf(0) != 0 {
		t.Error("LineOf(0) != 0")
	}
	if g.LineOf(63) != 0 {
		t.Error("LineOf(63) != 0 (same line)")
	}
	if g.LineOf(64) != 1 {
		t.Error("LineOf(64) != 1")
	}
	if g.LineOf(129) != 2 {
		t.Error("LineOf(129) != 2")
	}
}

func TestAddrOfIsLineStart(t *testing.T) {
	g := MustGeometry(64, 4, 1<<20)
	if g.AddrOf(3) != 192 {
		t.Errorf("AddrOf(3) = %d, want 192", g.AddrOf(3))
	}
}

func TestHomeDirInterleaves(t *testing.T) {
	g := MustGeometry(64, 4, 1<<20)
	for l := LineAddr(0); l < 16; l++ {
		if got, want := g.HomeDir(l), int(uint64(l)%4); got != want {
			t.Fatalf("HomeDir(%d) = %d, want %d", l, got, want)
		}
	}
}

func TestContains(t *testing.T) {
	g := MustGeometry(64, 4, 1024)
	if !g.Contains(0) || !g.Contains(1023) {
		t.Error("Contains rejects in-range addresses")
	}
	if g.Contains(1024) {
		t.Error("Contains accepts out-of-range address")
	}
}

// Property: LineOf/AddrOf round-trip — AddrOf(LineOf(a)) is the largest
// line boundary not above a.
func TestQuickLineRoundTrip(t *testing.T) {
	g := MustGeometry(64, 16, 1<<30)
	f := func(raw uint32) bool {
		a := Addr(raw)
		l := g.LineOf(a)
		base := g.AddrOf(l)
		return base <= a && uint64(a)-uint64(base) < g.LineBytes() && g.LineOf(base) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: HomeDir is always a valid directory index.
func TestQuickHomeDirInRange(t *testing.T) {
	g := MustGeometry(64, 7, 1<<30)
	f := func(raw uint64) bool {
		d := g.HomeDir(LineAddr(raw))
		return d >= 0 && d < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
