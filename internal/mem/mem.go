// Package mem defines the physical-memory geometry shared by the cache,
// directory and processor models: addresses, cache-line arithmetic, and the
// interleaving of lines across directories.
//
// The baseline system (paper Table II) is a distributed-shared-memory
// machine in the style of Scalable TCC: physical memory is split into
// segments, each owned by a directory; a line's home directory is a pure
// function of its address.
package mem

import "fmt"

// Addr is a physical byte address.
type Addr uint64

// LineAddr identifies a cache line (the address with the offset bits
// stripped). All coherence and conflict detection in TCC happens at line
// granularity.
type LineAddr uint64

// Geometry captures the line size and directory interleaving of the
// machine. It is immutable after construction.
type Geometry struct {
	lineBytes  uint64
	lineShift  uint
	numDirs    int
	memBytes   uint64
	totalLines uint64
}

// NewGeometry builds a Geometry. lineBytes must be a power of two;
// numDirs must be positive; memBytes must be a multiple of lineBytes.
func NewGeometry(lineBytes uint64, numDirs int, memBytes uint64) (*Geometry, error) {
	if lineBytes == 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("mem: line size %d is not a power of two", lineBytes)
	}
	if numDirs <= 0 {
		return nil, fmt.Errorf("mem: directory count %d must be positive", numDirs)
	}
	if memBytes == 0 || memBytes%lineBytes != 0 {
		return nil, fmt.Errorf("mem: memory size %d is not a multiple of line size %d", memBytes, lineBytes)
	}
	shift := uint(0)
	for b := lineBytes; b > 1; b >>= 1 {
		shift++
	}
	return &Geometry{
		lineBytes:  lineBytes,
		lineShift:  shift,
		numDirs:    numDirs,
		memBytes:   memBytes,
		totalLines: memBytes / lineBytes,
	}, nil
}

// MustGeometry is NewGeometry that panics on error, for use in tests and
// configuration defaults that are known valid.
func MustGeometry(lineBytes uint64, numDirs int, memBytes uint64) *Geometry {
	g, err := NewGeometry(lineBytes, numDirs, memBytes)
	if err != nil {
		panic(err)
	}
	return g
}

// LineBytes returns the cache-line size in bytes.
func (g *Geometry) LineBytes() uint64 { return g.lineBytes }

// LineShift returns log2(line size).
func (g *Geometry) LineShift() uint { return g.lineShift }

// NumDirs returns the number of directories in the system.
func (g *Geometry) NumDirs() int { return g.numDirs }

// MemBytes returns the physical memory size.
func (g *Geometry) MemBytes() uint64 { return g.memBytes }

// TotalLines returns the number of cache lines in physical memory.
func (g *Geometry) TotalLines() uint64 { return g.totalLines }

// LineOf maps a byte address to its cache line.
func (g *Geometry) LineOf(a Addr) LineAddr {
	return LineAddr(uint64(a) >> g.lineShift)
}

// AddrOf returns the first byte address of a line.
func (g *Geometry) AddrOf(l LineAddr) Addr {
	return Addr(uint64(l) << g.lineShift)
}

// HomeDir returns the directory that owns a line. Lines are interleaved
// across directories at line granularity, the finest interleave, which
// spreads commit traffic evenly — the same choice Scalable TCC evaluates.
func (g *Geometry) HomeDir(l LineAddr) int {
	return int(uint64(l) % uint64(g.numDirs))
}

// Contains reports whether the byte address is inside physical memory.
func (g *Geometry) Contains(a Addr) bool {
	return uint64(a) < g.memBytes
}
