package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

func geom(t *testing.T) *mem.Geometry {
	t.Helper()
	return mem.MustGeometry(64, 4, 1<<24)
}

func small(t *testing.T) *Cache {
	t.Helper()
	// 4 sets x 2 ways x 64B = 512B cache: tiny, to force evictions.
	return MustNew(geom(t), Config{SizeBytes: 512, Ways: 2})
}

func TestNewValidation(t *testing.T) {
	g := geom(t)
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid 64KB 2-way", Config{64 << 10, 2}, false},
		{"zero ways", Config{64 << 10, 0}, true},
		{"size not divisible", Config{1000, 2}, true},
		{"sets not power of two", Config{3 * 2 * 64, 2}, true},
		{"direct mapped", Config{4096, 1}, false},
		{"fully-ish associative", Config{512, 8}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(g, c.cfg)
			if (err != nil) != c.wantErr {
				t.Fatalf("New(%+v) err=%v wantErr=%v", c.cfg, err, c.wantErr)
			}
		})
	}
}

func TestMissThenHit(t *testing.T) {
	c := small(t)
	res, err := c.Access(100, false)
	if err != nil || res.Hit {
		t.Fatalf("first access: res=%+v err=%v, want miss", res, err)
	}
	res, err = c.Access(100, false)
	if err != nil || !res.Hit {
		t.Fatalf("second access: res=%+v err=%v, want hit", res, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSpeculativeBitsTracked(t *testing.T) {
	c := small(t)
	c.Access(1, false)
	c.Access(2, true)
	if !c.SpeculativelyRead(1) || c.SpeculativelyModified(1) {
		t.Fatal("line 1 should be SR only")
	}
	if !c.SpeculativelyModified(2) || c.SpeculativelyRead(2) {
		t.Fatal("line 2 should be SM only")
	}
	c.Access(1, true) // read then write: both bits
	if !c.SpeculativelyRead(1) || !c.SpeculativelyModified(1) {
		t.Fatal("line 1 should be SR+SM")
	}
	if c.ReadSetSize() != 1 || c.WriteSetSize() != 2 {
		t.Fatalf("set sizes rs=%d ws=%d", c.ReadSetSize(), c.WriteSetSize())
	}
}

func TestReadWriteSetsSortedAndDistinct(t *testing.T) {
	c := MustNew(geom(t), Config{SizeBytes: 64 << 10, Ways: 2})
	for _, l := range []mem.LineAddr{900, 3, 55, 3, 900} {
		c.Access(l, false)
	}
	rs := c.ReadSet()
	want := []mem.LineAddr{3, 55, 900}
	if len(rs) != len(want) {
		t.Fatalf("ReadSet %v, want %v", rs, want)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("ReadSet %v, want %v", rs, want)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t) // 4 sets, 2 ways
	// Three lines in the same set (set = line % 4): 0, 4, 8.
	c.Access(0, false)
	c.Access(4, false)
	c.Access(0, false) // touch 0: 4 becomes LRU
	res, err := c.Access(8, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Evicted || res.Victim != 4 {
		t.Fatalf("expected eviction of line 4, got %+v", res)
	}
	if !c.Present(0) || c.Present(4) || !c.Present(8) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestEvictionDropsSpecReadBit(t *testing.T) {
	c := small(t)
	c.Access(0, false)
	c.Access(4, false)
	c.Access(8, false) // evicts 0 (LRU)
	if c.SpeculativelyRead(0) {
		t.Fatal("evicted line still reports SR")
	}
	if c.ReadSetSize() != 2 {
		t.Fatalf("ReadSetSize %d, want 2", c.ReadSetSize())
	}
}

func TestSMLinesPinnedAgainstEviction(t *testing.T) {
	c := small(t)     // 2 ways per set
	c.Access(0, true) // SM
	c.Access(4, false)
	// New line in the same set must evict the clean line 4, not SM line 0.
	res, err := c.Access(8, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Evicted || res.Victim != 4 {
		t.Fatalf("expected clean victim 4, got %+v", res)
	}
	if !c.SpeculativelyModified(0) {
		t.Fatal("SM line was evicted")
	}
}

func TestOverflowWhenAllWaysSM(t *testing.T) {
	c := small(t)
	c.Access(0, true)
	c.Access(4, true)
	_, err := c.Access(8, true)
	if err != ErrOverflow {
		t.Fatalf("expected ErrOverflow, got %v", err)
	}
	if c.Stats().Overflows != 1 {
		t.Fatalf("overflow not counted: %+v", c.Stats())
	}
}

func TestClearSpeculativeCommitKeepsLines(t *testing.T) {
	c := small(t)
	c.Access(1, false)
	c.Access(2, true)
	c.ClearSpeculative(false)
	if !c.Present(1) || !c.Present(2) {
		t.Fatal("commit-clear dropped lines")
	}
	if c.SpeculativelyRead(1) || c.SpeculativelyModified(2) {
		t.Fatal("commit-clear left speculative bits")
	}
	if c.ReadSetSize() != 0 || c.WriteSetSize() != 0 {
		t.Fatal("commit-clear left set entries")
	}
}

func TestClearSpeculativeAbortDropsWrittenLines(t *testing.T) {
	c := small(t)
	c.Access(1, false)
	c.Access(2, true)
	c.ClearSpeculative(true)
	if !c.Present(1) {
		t.Fatal("abort-clear dropped a read-only line")
	}
	if c.Present(2) {
		t.Fatal("abort-clear kept a speculatively written line")
	}
}

func TestInvalidate(t *testing.T) {
	c := small(t)
	c.Access(1, false)
	present, sr := c.Invalidate(1)
	if !present || !sr {
		t.Fatalf("Invalidate(1) = (%v,%v), want (true,true)", present, sr)
	}
	if c.Present(1) {
		t.Fatal("line present after invalidation")
	}
	present, sr = c.Invalidate(1)
	if present || sr {
		t.Fatal("second invalidation reported presence")
	}
	if c.Stats().Invalidations != 1 {
		t.Fatalf("invalidation count %d", c.Stats().Invalidations)
	}
}

func TestInvalidateNonSpeculativeLine(t *testing.T) {
	c := small(t)
	c.Access(5, false)
	c.ClearSpeculative(false) // now resident but not speculative
	present, sr := c.Invalidate(5)
	if !present || sr {
		t.Fatalf("Invalidate = (%v,%v), want (true,false)", present, sr)
	}
}

// Property: after any access sequence, ReadSet/WriteSet agree with the
// per-line predicates and contain no duplicates.
func TestQuickSetConsistency(t *testing.T) {
	g := mem.MustGeometry(64, 4, 1<<24)
	f := func(seed uint64, opsRaw []byte) bool {
		c := MustNew(g, Config{SizeBytes: 2048, Ways: 2})
		rng := sim.NewRNG(seed, 1)
		for range opsRaw {
			line := mem.LineAddr(rng.Intn(64))
			write := rng.Bool(0.5)
			if _, err := c.Access(line, write); err != nil {
				// Overflow is legal under this tiny cache; the caller
				// (processor model) handles it. State must stay sane.
				continue
			}
		}
		rs, ws := c.ReadSet(), c.WriteSet()
		seen := map[mem.LineAddr]bool{}
		for _, l := range rs {
			if seen[l] || !c.SpeculativelyRead(l) {
				return false
			}
			seen[l] = true
		}
		seen = map[mem.LineAddr]bool{}
		for _, l := range ws {
			if seen[l] || !c.SpeculativelyModified(l) {
				return false
			}
			seen[l] = true
		}
		if len(rs) != c.ReadSetSize() || len(ws) != c.WriteSetSize() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every access is tallied exactly once — successful ones as a
// hit or a completed miss, failed ones as a miss that overflowed.
func TestQuickStatsBalance(t *testing.T) {
	g := mem.MustGeometry(64, 4, 1<<24)
	f := func(seed uint64, n uint8) bool {
		c := MustNew(g, Config{SizeBytes: 1024, Ways: 2})
		rng := sim.NewRNG(seed, 2)
		ok := uint64(0)
		for i := 0; i < int(n); i++ {
			if _, err := c.Access(mem.LineAddr(rng.Intn(32)), rng.Bool(0.3)); err == nil {
				ok++
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == ok+st.Overflows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
