// Package cache models the private L1 data cache of a TCC processor:
// set-associative with LRU replacement, extended with the speculative-read
// (SR) and speculative-modified (SM) bits that TCC uses for conflict
// detection and versioning.
//
// TCC is lazy/lazy: transactional reads mark SR, transactional writes are
// buffered in the cache with SM set and become visible to the rest of the
// system only at commit. An abort flash-clears all speculative state. A
// line with SM set must never be silently evicted mid-transaction — in
// real TCC hardware this causes a transaction overflow; the model surfaces
// it as ErrOverflow so the processor can serialize (the paper's workloads
// fit in L1, but the condition must still be handled).
package cache

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/mem"
)

// ErrOverflow is returned when a speculatively-modified line would have to
// be evicted to make room. TCC cannot spill speculative state, so the
// transaction must be aborted and retried in a serialized mode.
var ErrOverflow = errors.New("cache: speculative state overflow")

// line is one cache line's metadata. Data contents are not modeled — the
// simulator tracks timing and coherence, not values.
type line struct {
	tag   mem.LineAddr
	valid bool
	sr    bool // speculatively read this transaction
	sm    bool // speculatively modified this transaction
	lru   uint64
}

// Stats counts cache events for reporting.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
	Overflows     uint64
}

// Cache is a set-associative L1 data cache with speculative bits.
type Cache struct {
	geom     *mem.Geometry
	sets     int
	ways     int
	lines    []line // sets*ways, row-major by set
	tick     uint64 // LRU clock
	stats    Stats
	specRead map[mem.LineAddr]struct{} // read-set (SR lines), for fast enumeration
	specMod  map[mem.LineAddr]struct{} // write-set (SM lines)
	// dropScratch backs ClearSpeculative's return slice, reused across
	// calls so per-abort reporting is allocation-free in steady state.
	dropScratch []mem.LineAddr
}

// Config describes a cache shape.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
}

// New builds a cache over the given geometry. Size must be a multiple of
// ways*lineBytes and the resulting set count must be a power of two.
func New(geom *mem.Geometry, cfg Config) (*Cache, error) {
	lb := int(geom.LineBytes())
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: ways %d must be positive", cfg.Ways)
	}
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%(cfg.Ways*lb) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by ways*line (%d*%d)", cfg.SizeBytes, cfg.Ways, lb)
	}
	sets := cfg.SizeBytes / (cfg.Ways * lb)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return &Cache{
		geom:     geom,
		sets:     sets,
		ways:     cfg.Ways,
		lines:    make([]line, sets*cfg.Ways),
		specRead: make(map[mem.LineAddr]struct{}),
		specMod:  make(map[mem.LineAddr]struct{}),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(geom *mem.Geometry, cfg Config) *Cache {
	c, err := New(geom, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) setOf(l mem.LineAddr) int {
	return int(uint64(l) % uint64(c.sets))
}

func (c *Cache) find(l mem.LineAddr) *line {
	set := c.setOf(l)
	base := set * c.ways
	for i := 0; i < c.ways; i++ {
		ln := &c.lines[base+i]
		if ln.valid && ln.tag == l {
			return ln
		}
	}
	return nil
}

// Present reports whether the line is valid in the cache.
func (c *Cache) Present(l mem.LineAddr) bool { return c.find(l) != nil }

// AccessResult describes the outcome of a load or store probe.
type AccessResult struct {
	Hit     bool
	Victim  mem.LineAddr // line evicted to make room (valid only if Evicted)
	Evicted bool
}

// Access performs a transactional load (write=false) or store (write=true)
// of the line. On a hit it updates LRU and speculative bits. On a miss it
// allocates the line, evicting the LRU way (never an SM line: if all ways
// in the set hold SM lines the access fails with ErrOverflow).
func (c *Cache) Access(l mem.LineAddr, write bool) (AccessResult, error) {
	c.tick++
	if ln := c.find(l); ln != nil {
		c.stats.Hits++
		ln.lru = c.tick
		c.markSpec(ln, write)
		return AccessResult{Hit: true}, nil
	}
	c.stats.Misses++
	set := c.setOf(l)
	base := set * c.ways
	victim := -1
	var victimLRU uint64 = ^uint64(0)
	for i := 0; i < c.ways; i++ {
		ln := &c.lines[base+i]
		if !ln.valid {
			victim = i
			victimLRU = 0
			break
		}
		if ln.sm {
			continue // cannot evict speculative dirty state
		}
		if ln.lru < victimLRU {
			victim = i
			victimLRU = ln.lru
		}
	}
	if victim < 0 {
		c.stats.Overflows++
		return AccessResult{}, ErrOverflow
	}
	ln := &c.lines[base+victim]
	res := AccessResult{}
	if ln.valid {
		c.stats.Evictions++
		res.Victim = ln.tag
		res.Evicted = true
		c.dropSpec(ln)
	}
	*ln = line{tag: l, valid: true, lru: c.tick}
	c.markSpec(ln, write)
	return res, nil
}

func (c *Cache) markSpec(ln *line, write bool) {
	if write {
		if !ln.sm {
			ln.sm = true
			c.specMod[ln.tag] = struct{}{}
		}
	} else {
		if !ln.sr {
			ln.sr = true
			c.specRead[ln.tag] = struct{}{}
		}
	}
}

func (c *Cache) dropSpec(ln *line) {
	if ln.sr {
		delete(c.specRead, ln.tag)
		ln.sr = false
	}
	if ln.sm {
		delete(c.specMod, ln.tag)
		ln.sm = false
	}
}

// SpeculativelyRead reports whether the line carries the SR bit.
func (c *Cache) SpeculativelyRead(l mem.LineAddr) bool {
	ln := c.find(l)
	return ln != nil && ln.sr
}

// SpeculativelyModified reports whether the line carries the SM bit.
func (c *Cache) SpeculativelyModified(l mem.LineAddr) bool {
	ln := c.find(l)
	return ln != nil && ln.sm
}

// ReadSet returns the lines currently marked SR, in ascending line order.
// Deterministic ordering matters: the commit sequence derives from this
// slice and must not depend on map iteration order.
func (c *Cache) ReadSet() []mem.LineAddr {
	return sortedLines(c.specRead)
}

// WriteSet returns the lines currently marked SM, in ascending line order.
func (c *Cache) WriteSet() []mem.LineAddr {
	return sortedLines(c.specMod)
}

func sortedLines(set map[mem.LineAddr]struct{}) []mem.LineAddr {
	out := make([]mem.LineAddr, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadSetSize returns the number of SR lines.
func (c *Cache) ReadSetSize() int { return len(c.specRead) }

// WriteSetSize returns the number of SM lines.
func (c *Cache) WriteSetSize() int { return len(c.specMod) }

// ClearSpeculative flash-clears all SR/SM bits. Called on abort (discarding
// the write-set: the lines' data is stale so they are also invalidated, as
// TCC buffers new values in place) and on commit (keeping the data: lines
// stay valid, bits clear). It returns the lines dropped from the cache
// (non-empty only on abort), so the owner can discard their version
// bookkeeping; the slice is reused scratch, valid only until the next call.
//
// Only the lines in the speculative sets are visited — the sets mirror the
// SR/SM bits exactly — so the cost scales with the transaction footprint,
// not the cache size, and the set maps are cleared in place rather than
// reallocated. The returned order follows map iteration: its only consumer
// deletes version entries, which is order-independent, so determinism is
// unaffected.
func (c *Cache) ClearSpeculative(abort bool) (dropped []mem.LineAddr) {
	if abort {
		dropped = c.dropScratch[:0]
		for l := range c.specMod {
			if ln := c.find(l); ln != nil {
				ln.valid = false // speculative data never became architectural
				ln.sr, ln.sm = false, false
				dropped = append(dropped, l)
			}
		}
		c.dropScratch = dropped
	} else {
		for l := range c.specMod {
			if ln := c.find(l); ln != nil {
				ln.sm = false
			}
		}
	}
	for l := range c.specRead {
		if ln := c.find(l); ln != nil {
			ln.sr = false
		}
	}
	clear(c.specRead)
	clear(c.specMod)
	return dropped
}

// Reset returns the cache to its post-construction state — every line
// invalid, LRU clock at zero, counters and speculative sets cleared —
// keeping the line array, the set maps' storage, and the drop scratch, so
// a reused cache warms up without reallocating.
func (c *Cache) Reset() {
	clear(c.lines)
	c.tick = 0
	c.stats = Stats{}
	clear(c.specRead)
	clear(c.specMod)
}

// Invalidate drops the line if present (coherence invalidation from a
// remote commit). It returns whether the line was present and whether it
// was speculatively read — the condition under which the owning processor
// must abort.
func (c *Cache) Invalidate(l mem.LineAddr) (present, wasSpecRead bool) {
	ln := c.find(l)
	if ln == nil {
		return false, false
	}
	c.stats.Invalidations++
	wasSpecRead = ln.sr
	c.dropSpec(ln)
	ln.valid = false
	return true, wasSpecRead
}
