package sim

import (
	"testing"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine at %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine has %d pending events", e.Pending())
	}
}

func TestScheduleAndRunAdvancesClock(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(5, func() { fired = append(fired, e.Now()) })
	e.Schedule(2, func() { fired = append(fired, e.Now()) })
	e.Schedule(9, func() { fired = append(fired, e.Now()) })
	end := e.Run()
	if end != 9 {
		t.Fatalf("Run returned %d, want 9", end)
	}
	want := []Time{2, 5, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestScheduleAfterIsRelative(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.Schedule(10, func() {
		e.ScheduleAfter(7, func() { at = e.Now() })
	})
	e.Run()
	if at != 17 {
		t.Fatalf("relative event at %d, want 17", at)
	}
}

func TestSameCycleFIFOOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(3, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events fired out of insertion order: %v", order)
		}
	}
}

func TestPriorityOrdersWithinCycle(t *testing.T) {
	e := NewEngine()
	var order []string
	e.ScheduleWithPriority(4, 1, func() { order = append(order, "low") })
	e.ScheduleWithPriority(4, 0, func() { order = append(order, "high") })
	e.Run()
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Fatalf("priority order wrong: %v", order)
	}
}

func TestCancelSkipsEvent(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(5, func() { ran = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() false after Cancel")
	}
	e.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	if got := e.Fired(); got != 0 {
		t.Fatalf("Fired()=%d after canceled-only run, want 0", got)
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine()
	ran := false
	var victim EventRef
	e.Schedule(1, func() { victim.Cancel() })
	victim = e.Schedule(2, func() { ran = true })
	e.Run()
	if ran {
		t.Fatal("event canceled at t=1 still ran at t=2")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestScheduleNilFuncPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("scheduling nil func did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 5, 10, 20} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	now := e.RunUntil(10)
	if now != 10 {
		t.Fatalf("RunUntil returned %d, want 10", now)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1,5,10 only", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
	// Continuing runs the rest.
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("after full run fired %v", fired)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 100; i++ {
		e.Schedule(i, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
}

func TestStepSingleEvent(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++ })
	e.Schedule(2, func() { count++ })
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if count != 1 {
		t.Fatalf("Step ran %d events, want 1", count)
	}
	e.Run()
	if e.Step() {
		t.Fatal("Step returned true on drained queue")
	}
}

func TestEventsCascade(t *testing.T) {
	// An event chain scheduling its successor must run to completion.
	e := NewEngine()
	depth := 0
	var next func()
	next = func() {
		depth++
		if depth < 1000 {
			e.ScheduleAfter(1, next)
		}
	}
	e.Schedule(0, next)
	end := e.Run()
	if depth != 1000 {
		t.Fatalf("cascade depth %d, want 1000", depth)
	}
	if end != 999 {
		t.Fatalf("cascade ended at %d, want 999", end)
	}
}

func TestFiredCountsExecutedOnly(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	ev := e.Schedule(2, func() {})
	ev.Cancel()
	e.Schedule(3, func() {})
	e.Run()
	if e.Fired() != 2 {
		t.Fatalf("Fired()=%d, want 2", e.Fired())
	}
}

func TestManyEventsHeapOrdering(t *testing.T) {
	// Insert times in a scrambled deterministic order; execution must be
	// globally sorted.
	e := NewEngine()
	rng := NewRNG(99, 1)
	var last Time = -1
	ok := true
	for i := 0; i < 5000; i++ {
		at := Time(rng.Intn(100000))
		e.Schedule(at, func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
		})
	}
	e.Run()
	if !ok {
		t.Fatal("events executed out of time order")
	}
}
