package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42, 7)
	b := NewRNG(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1, 7)
	b := NewRNG(2, 7)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGStreamsDiffer(t *testing.T) {
	a := NewRNG(42, 1)
	b := NewRNG(42, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams produced %d/100 identical draws", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3, 3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(1, 1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestInt63nBounds(t *testing.T) {
	r := NewRNG(5, 5)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9, 9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %f out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11, 4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %f, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13, 2)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %f", frac)
	}
}

func TestGeometricMeanAndMinimum(t *testing.T) {
	r := NewRNG(17, 6)
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Geometric(5)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if math.Abs(mean-5) > 0.2 {
		t.Fatalf("Geometric(5) mean %f", mean)
	}
	if r.Geometric(0.5) != 1 {
		t.Fatal("Geometric with mean <= 1 must return 1")
	}
}

func TestDeriveIndependentAndStable(t *testing.T) {
	a := NewRNG(21, 3)
	d1 := a.Derive(1)
	d2 := a.Derive(1)
	// Deriving twice with the same label before advancing the parent
	// must give identical streams.
	for i := 0; i < 50; i++ {
		if d1.Uint32() != d2.Uint32() {
			t.Fatal("Derive with same label gave different streams")
		}
	}
	d3 := a.Derive(2)
	same := 0
	d1b := NewRNG(21, 3).Derive(1)
	for i := 0; i < 100; i++ {
		if d1b.Uint32() == d3.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different labels produced %d/100 identical draws", same)
	}
}

func TestZipfBounds(t *testing.T) {
	r := NewRNG(23, 8)
	z := NewZipf(r, 100, 0.9)
	for i := 0; i < 10000; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf draw %d out of [0,100)", v)
		}
	}
}

func TestZipfSkewFavorsLowIndices(t *testing.T) {
	r := NewRNG(29, 8)
	z := NewZipf(r, 64, 1.0)
	counts := make([]int, 64)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[32] {
		t.Fatalf("Zipf(1.0): count[0]=%d not above count[32]=%d", counts[0], counts[32])
	}
	// Head mass: index 0 should take a disproportionate share.
	if float64(counts[0])/n < 0.1 {
		t.Fatalf("Zipf(1.0) head share %f too small", float64(counts[0])/n)
	}
}

func TestZipfZeroSkewIsUniform(t *testing.T) {
	r := NewRNG(31, 8)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("uniform Zipf bucket %d frequency %f", i, frac)
		}
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(n=0) did not panic")
		}
	}()
	NewZipf(NewRNG(1, 1), 0, 1)
}

// Property: Intn is always within bounds for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed, stream uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed, stream)
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the same seed always reproduces the same prefix.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed, stream uint64) bool {
		a, b := NewRNG(seed, stream), NewRNG(seed, stream)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
