package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (PCG-XSH-RR,
// 64-bit state, 32-bit output). Every stochastic choice in the simulator —
// workload generation, address selection, compute-burst lengths — draws from
// an RNG seeded from the run configuration, so a run is reproducible from
// its seed alone. math/rand is deliberately avoided: its global state and
// version-dependent stream would break cross-version determinism.
type RNG struct {
	state uint64
	inc   uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams. The stream parameter selects one of 2^63
// independent sequences, so sibling components (one RNG per processor) can
// derive non-overlapping streams from a single run seed.
func NewRNG(seed, stream uint64) *RNG {
	r := &RNG{inc: (stream << 1) | 1}
	r.state = 0
	r.next()
	r.state += seed
	r.next()
	return r
}

func (r *RNG) next() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint32 returns the next 32-bit value in the stream.
func (r *RNG) Uint32() uint32 { return r.next() }

// Uint64 returns the next 64-bit value in the stream.
func (r *RNG) Uint64() uint64 {
	return uint64(r.next())<<32 | uint64(r.next())
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// Bias from the modulo is removed by rejection sampling.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	bound := uint32(n)
	threshold := -bound % bound
	for {
		v := r.next()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63n returns a uniform value in [0, n) for 64-bit ranges.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	max := uint64(n)
	threshold := -max % max
	for {
		v := r.Uint64()
		if v >= threshold {
			return int64(v % max)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m,
// clamped to at least 1. It is used for compute-burst lengths between
// memory operations.
func (r *RNG) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1.0 / m
	n := 1
	for !r.Bool(p) && n < 1<<20 {
		n++
	}
	return n
}

// Derive returns a new generator whose stream is a deterministic function
// of this generator's seed material and the label. It does not advance the
// parent stream.
func (r *RNG) Derive(label uint64) *RNG {
	return NewRNG(r.state^0x9e3779b97f4a7c15, r.inc^(label*0xbf58476d1ce4e5b9))
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with skew
// s >= 0. s = 0 degenerates to uniform. Implemented by inverse-CDF over a
// precomputed table when n is small is wasteful per call, so this uses
// rejection-free approximate inversion adequate for workload skew.
type Zipf struct {
	rng *RNG
	n   int
	s   float64
	// cdf is the cumulative distribution, length n. For the sizes used in
	// workload generation (hot-set sizes of at most a few thousand) the
	// table is cheap and exact.
	cdf []float64
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s using rng.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	z := &Zipf{rng: rng, n: n, s: s, cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Draw returns a sample in [0, n).
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func pow(x, y float64) float64 {
	if y == 0 {
		return 1
	}
	if y == 1 {
		return x
	}
	return math.Pow(x, y)
}
