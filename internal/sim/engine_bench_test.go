package sim

import "testing"

// BenchmarkScheduleAndRun measures raw event throughput: the number to
// watch when optimizing the heap or the event representation.
func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		rng := NewRNG(uint64(i), 1)
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(rng.Intn(100000)), func() {})
		}
		e.Run()
	}
}

// BenchmarkCascade measures the self-scheduling pattern the processor
// model uses (each event schedules its successor).
func BenchmarkCascade(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		n := 0
		var next func()
		next = func() {
			n++
			if n < 1000 {
				e.ScheduleAfter(1, next)
			}
		}
		e.Schedule(0, next)
		e.Run()
	}
}

// BenchmarkRNG measures the generator in isolation.
func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1, 1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

// BenchmarkZipf measures the workload generator's skewed sampler.
func BenchmarkZipf(b *testing.B) {
	z := NewZipf(NewRNG(1, 1), 1024, 0.9)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += z.Draw()
	}
	_ = sink
}
