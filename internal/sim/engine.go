// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every other package in this repository runs
// on: processors, caches, buses and directories are all actors that
// schedule events on a shared virtual clock. Determinism is a hard
// requirement — two runs with the same seed and configuration must produce
// identical cycle counts — so the event queue breaks ties on (time,
// priority, sequence) and all randomness flows through the seeded PCG
// generator in this package.
//
// # Event queue
//
// The queue is a bucketed calendar queue sized for hardware-speed cascades:
// events within the next `window` cycles land in a per-cycle ring bucket
// (O(1) insert, O(bucket) dispatch), and the rare far-future events — long
// gating timers, watchdogs — go to a small binary-heap overflow. Fired
// events return to a free list, so Schedule and dispatch are
// allocation-free in steady state; the allocation guard in
// calendar_test.go pins that property.
//
// Because events are recycled, Schedule returns an EventRef — a
// generation-stamped handle — rather than a raw event pointer. A ref is
// invalidated the moment its event fires or is recycled, so a stale Cancel
// can never hit an unrelated event that happens to reuse the same slot.
package sim

import (
	"fmt"
	"math"
)

// Time is a point on the simulation clock, measured in cycles.
type Time int64

// MaxTime is the largest representable simulation time.
const MaxTime = Time(math.MaxInt64)

// window is the calendar span covered by per-cycle ring buckets. Events
// scheduled at or beyond now+window go to the overflow heap instead. The
// span comfortably covers the model's dense latencies (L1 hits, bus
// occupancy, directory and memory access, commit bursts); only long
// contention-management windows overflow.
const (
	windowBits = 10
	window     = Time(1) << windowBits
	windowMask = window - 1
)

// event is one scheduled callback. Events are engine-owned: they live in
// the calendar or the overflow heap while pending and return to the
// engine's free list when fired or discarded. External code holds
// EventRef handles, never *event.
type event struct {
	at       Time
	priority int // lower runs first among events at the same cycle
	seq      uint64
	gen      uint64 // bumped on recycle; EventRef validity stamp
	fn       func()
	canceled bool
}

// less is the engine's total dispatch order: (time, priority, sequence).
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

// EventRef is a cancellation handle for a scheduled event. The zero value
// is a valid "no event" ref: Cancel is a no-op and Canceled reports false.
// A ref goes stale — permanently inert — once its event fires or is
// discarded, so holding a ref past the event's lifetime is always safe.
type EventRef struct {
	ev  *event
	gen uint64
}

// Cancel marks the event so the engine skips it when its time comes.
// Canceling an already-fired (or zero) ref is a no-op.
func (r EventRef) Cancel() {
	if r.ev != nil && r.ev.gen == r.gen {
		r.ev.canceled = true
	}
}

// Canceled reports whether the referenced event is still pending and has
// been canceled. It reports false for zero and stale refs.
func (r EventRef) Canceled() bool {
	return r.ev != nil && r.ev.gen == r.gen && r.ev.canceled
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	fired   uint64
	stopped bool

	// ring holds near-future events, one bucket per cycle of the
	// [now, now+window) span; bucket index is the cycle modulo window.
	// At any instant every event in one bucket shares the same absolute
	// time, because only times within the window are inserted.
	ring    [][]*event
	ringCnt int
	// ringNext is a lower bound on the earliest event time in the ring,
	// valid while ringCnt > 0; the dispatch scan starts here.
	ringNext Time

	// over is a binary min-heap (by the same (time, priority, seq)
	// order) of events scheduled at or beyond now+window.
	over []*event

	free   []*event
	queued int
}

// NewEngine returns an engine with the clock at cycle zero.
func NewEngine() *Engine {
	return &Engine{ring: make([][]*event, window)}
}

// Reset returns the engine to its initial state — clock at cycle zero,
// sequence counter rewound, no pending events — while keeping the
// allocated storage: the calendar ring buckets, the overflow heap's
// backing array, and the event free list all survive, so a run on a reset
// engine schedules without allocating from the first event. Events still
// pending (a stopped run leaves gating timers, bus deliveries and barrier
// spins queued) are discarded and recycled; their EventRefs go stale
// exactly as if they had fired. A reset engine is indistinguishable from
// a NewEngine to every observer of the public API, which is what lets a
// reused simulated machine reproduce a fresh one bit for bit.
func (e *Engine) Reset() {
	for b := range e.ring {
		bucket := e.ring[b]
		for i, ev := range bucket {
			e.recycle(ev)
			bucket[i] = nil
		}
		e.ring[b] = bucket[:0]
	}
	for i, ev := range e.over {
		e.recycle(ev)
		e.over[i] = nil
	}
	e.over = e.over[:0]
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.stopped = false
	e.ringCnt = 0
	e.ringNext = 0
	e.queued = 0
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled (including
// canceled events not yet discarded).
func (e *Engine) Pending() int { return e.queued }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// that is always a protocol-model bug, never a recoverable condition.
func (e *Engine) Schedule(at Time, fn func()) EventRef {
	return e.ScheduleWithPriority(at, 0, fn)
}

// ScheduleAfter runs fn delay cycles from now.
func (e *Engine) ScheduleAfter(delay Time, fn func()) EventRef {
	return e.ScheduleWithPriority(e.now+delay, 0, fn)
}

// ScheduleWithPriority runs fn at time at; among events scheduled for the
// same cycle, lower priority values run first.
func (e *Engine) ScheduleWithPriority(at Time, priority int, fn func()) EventRef {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil function")
	}
	ev := e.alloc()
	ev.at, ev.priority, ev.seq, ev.fn, ev.canceled = at, priority, e.seq, fn, false
	e.seq++
	e.queued++
	if at-e.now < window {
		b := at & windowMask
		e.ring[b] = append(e.ring[b], ev)
		if e.ringCnt == 0 || at < e.ringNext {
			e.ringNext = at
		}
		e.ringCnt++
	} else {
		e.overPush(ev)
	}
	return EventRef{ev: ev, gen: ev.gen}
}

func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle invalidates outstanding refs to ev and returns it to the free
// list.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.canceled = false
	ev.gen++
	e.free = append(e.free, ev)
}

// nextTime returns the earliest pending event time (canceled events
// included — they are discarded during dispatch).
func (e *Engine) nextTime() (Time, bool) {
	if e.ringCnt > 0 {
		t := e.ringNext
		for len(e.ring[t&windowMask]) == 0 {
			t++
		}
		e.ringNext = t
		if len(e.over) > 0 && e.over[0].at < t {
			return e.over[0].at, true
		}
		return t, true
	}
	if len(e.over) > 0 {
		return e.over[0].at, true
	}
	return 0, false
}

// bucketMin returns the index of the (priority, seq)-minimal event in a
// bucket. All events in a bucket share one time, so no time comparison is
// needed.
func bucketMin(b []*event) int {
	mi := 0
	for i := 1; i < len(b); i++ {
		ev, m := b[i], b[mi]
		if ev.priority < m.priority || (ev.priority == m.priority && ev.seq < m.seq) {
			mi = i
		}
	}
	return mi
}

// fireNext executes the single next live event if its time is ≤ limit,
// discarding canceled events it meets on the way. It reports whether an
// event fired.
func (e *Engine) fireNext(limit Time) bool {
	for {
		if e.stopped {
			return false
		}
		t, ok := e.nextTime()
		if !ok || t > limit {
			return false
		}
		var ev *event
		fromRing := false
		b := e.ring[t&windowMask]
		bi := -1
		if len(b) > 0 && b[0].at == t {
			bi = bucketMin(b)
		}
		switch {
		case bi >= 0 && len(e.over) > 0 && e.over[0].at == t:
			if less(b[bi], e.over[0]) {
				ev, fromRing = b[bi], true
			} else {
				ev = e.over[0]
			}
		case bi >= 0:
			ev, fromRing = b[bi], true
		default:
			ev = e.over[0]
		}
		if fromRing {
			n := len(b) - 1
			b[bi] = b[n]
			b[n] = nil
			e.ring[t&windowMask] = b[:n]
			e.ringCnt--
		} else {
			e.overPop()
		}
		e.queued--
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %d < %d", ev.at, e.now))
		}
		fn := ev.fn
		e.recycle(ev)
		e.now = t
		e.fired++
		fn()
		return true
	}
}

// Step executes the single next event. It returns false when the queue is
// empty or the engine has been stopped.
func (e *Engine) Step() bool {
	return e.fireNext(MaxTime)
}

// Run executes events until the queue drains or Stop is called. It returns
// the final simulation time.
func (e *Engine) Run() Time {
	for e.fireNext(MaxTime) {
	}
	return e.now
}

// RunUntilChecked is RunUntil with a cancellation hook: check is polled
// once every `every` executed events (every <= 0 selects a default of
// 4096) and a non-nil return stops execution immediately with that error.
// With a nil check it behaves exactly like RunUntil. The hook is polled on
// event-count boundaries, not wall-clock, so a run that was not canceled
// executes the identical event sequence as an unchecked one.
func (e *Engine) RunUntilChecked(limit Time, every int, check func() error) (Time, error) {
	if check == nil {
		return e.RunUntil(limit), nil
	}
	if every <= 0 {
		every = 4096
	}
	n := 0
	for e.fireNext(limit) {
		if n++; n >= every {
			n = 0
			if err := check(); err != nil {
				return e.now, err
			}
		}
	}
	if e.now > limit {
		panic("sim: RunUntilChecked overshot limit")
	}
	return e.now, nil
}

// RunUntil executes events with time ≤ limit. Events scheduled beyond the
// limit remain queued. It returns the final simulation time, which never
// exceeds limit.
func (e *Engine) RunUntil(limit Time) Time {
	for e.fireNext(limit) {
	}
	if e.now > limit {
		panic("sim: RunUntil overshot limit")
	}
	return e.now
}

// Stop halts the engine: Run and Step return immediately afterwards.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// overPush inserts an event into the overflow heap.
func (e *Engine) overPush(ev *event) {
	e.over = append(e.over, ev)
	i := len(e.over) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less(e.over[i], e.over[p]) {
			break
		}
		e.over[i], e.over[p] = e.over[p], e.over[i]
		i = p
	}
}

// overPop removes and returns the overflow heap's minimum.
func (e *Engine) overPop() *event {
	h := e.over
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	e.over = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && less(h[r], h[l]) {
			c = r
		}
		if !less(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}
