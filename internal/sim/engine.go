// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every other package in this repository runs
// on: processors, caches, buses and directories are all actors that
// schedule events on a shared virtual clock. Determinism is a hard
// requirement — two runs with the same seed and configuration must produce
// identical cycle counts — so the event queue breaks ties on (time,
// priority, sequence) and all randomness flows through the seeded PCG
// generator in this package.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point on the simulation clock, measured in cycles.
type Time int64

// MaxTime is the largest representable simulation time.
const MaxTime = Time(math.MaxInt64)

// Event is a callback scheduled to run at a specific cycle.
type Event struct {
	At       Time
	Priority int // lower runs first among events at the same cycle
	seq      uint64
	fn       func()
	canceled bool
}

// Cancel marks the event so the engine skips it when its time comes.
// Canceling an already-fired event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	if q[i].Priority != q[j].Priority {
		return q[i].Priority < q[j].Priority
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*Event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	fired   uint64
	stopped bool
}

// NewEngine returns an engine with the clock at cycle zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled (including
// canceled events not yet discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// that is always a protocol-model bug, never a recoverable condition.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	return e.ScheduleWithPriority(at, 0, fn)
}

// ScheduleAfter runs fn delay cycles from now.
func (e *Engine) ScheduleAfter(delay Time, fn func()) *Event {
	return e.ScheduleWithPriority(e.now+delay, 0, fn)
}

// ScheduleWithPriority runs fn at time at; among events scheduled for the
// same cycle, lower priority values run first.
func (e *Engine) ScheduleWithPriority(at Time, priority int, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil function")
	}
	ev := &Event{At: at, Priority: priority, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Step executes the single next event. It returns false when the queue is
// empty or the engine has been stopped.
func (e *Engine) Step() bool {
	for {
		if e.stopped || len(e.queue) == 0 {
			return false
		}
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		if ev.At < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %d < %d", ev.At, e.now))
		}
		e.now = ev.At
		e.fired++
		ev.fn()
		return true
	}
}

// Run executes events until the queue drains or Stop is called. It returns
// the final simulation time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntilChecked is RunUntil with a cancellation hook: check is polled
// once every `every` executed events (every <= 0 selects a default of
// 4096) and a non-nil return stops execution immediately with that error.
// With a nil check it behaves exactly like RunUntil. The hook is polled on
// event-count boundaries, not wall-clock, so a run that was not canceled
// executes the identical event sequence as an unchecked one.
func (e *Engine) RunUntilChecked(limit Time, every int, check func() error) (Time, error) {
	if check == nil {
		return e.RunUntil(limit), nil
	}
	if every <= 0 {
		every = 4096
	}
	n := 0
	for !e.stopped && len(e.queue) > 0 {
		next := e.peek()
		if next == nil || next.At > limit {
			break
		}
		e.Step()
		if n++; n >= every {
			n = 0
			if err := check(); err != nil {
				return e.now, err
			}
		}
	}
	if e.now > limit {
		panic("sim: RunUntilChecked overshot limit")
	}
	return e.now, nil
}

// RunUntil executes events with time ≤ limit. Events scheduled beyond the
// limit remain queued. It returns the final simulation time, which never
// exceeds limit.
func (e *Engine) RunUntil(limit Time) Time {
	for !e.stopped && len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.At > limit {
			break
		}
		e.Step()
	}
	if e.now > limit {
		panic("sim: RunUntil overshot limit")
	}
	return e.now
}

// peek returns the next non-canceled event without executing it, discarding
// canceled events it finds on the way.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// Stop halts the engine: Run and Step return immediately afterwards.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
