package sim

import (
	"container/heap"
	"testing"
)

// This file pins the calendar queue to the engine's dispatch contract from
// two directions: a differential test executing identical random workloads
// on the engine and on a reference container/heap implementation of the
// (time, priority, sequence) order, and allocation guards asserting the
// zero-steady-state-allocation property that motivated the calendar
// design.

// refEvent / refQueue / refEngine reimplement the pre-calendar event queue
// verbatim, kept as the executable specification of the dispatch order.
type refEvent struct {
	at       Time
	priority int
	seq      uint64
	fn       func()
	canceled bool
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].priority != q[j].priority {
		return q[i].priority < q[j].priority
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(*refEvent)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

type refEngine struct {
	now Time
	seq uint64
	q   refQueue
}

func (e *refEngine) schedule(at Time, prio int, fn func()) func() {
	ev := &refEvent{at: at, priority: prio, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.q, ev)
	return func() { ev.canceled = true }
}

func (e *refEngine) run() {
	for len(e.q) > 0 {
		ev := heap.Pop(&e.q).(*refEvent)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fn()
	}
}

// driver is the common face of the two engines under differential test.
type driver struct {
	schedule func(at Time, prio int, fn func()) func()
	now      func() Time
	run      func()
}

func engineDriver(e *Engine) driver {
	return driver{
		schedule: func(at Time, prio int, fn func()) func() {
			r := e.ScheduleWithPriority(at, prio, fn)
			return r.Cancel
		},
		now: e.Now,
		run: func() { e.Run() },
	}
}

func referenceDriver(e *refEngine) driver {
	return driver{
		schedule: e.schedule,
		now:      func() Time { return e.now },
		run:      e.run,
	}
}

// fire records one executed event for trace comparison.
type fire struct {
	at   Time
	prio int
	id   int
}

// runScript executes a deterministic pseudo-random workload on a driver:
// initial events across the horizon, cascades scheduled from inside
// dispatch (including same-cycle re-entry), and random cancellations of
// still-pending events. All decisions derive from the RNG in dispatch
// order, so two engines executing identically draw identically — and any
// ordering divergence shows up as diverging traces.
func runScript(d driver, seed uint64, horizon int64, prios, initial, budget int) []fire {
	rng := NewRNG(seed, uint64(horizon))
	var trace []fire
	var cancels []func()
	nextID := 0

	var schedule func(at Time, prio int)
	schedule = func(at Time, prio int) {
		id := nextID
		nextID++
		cancels = append(cancels, d.schedule(at, prio, func() {
			trace = append(trace, fire{d.now(), prio, id})
			for c := 0; c < 3 && budget > 0; c++ {
				switch rng.Intn(6) {
				case 0: // future cascade
					budget--
					schedule(d.now()+Time(rng.Intn(int(horizon))), rng.Intn(prios))
				case 1: // same-cycle re-entry
					budget--
					schedule(d.now(), rng.Intn(prios))
				case 2: // cancel a random earlier event (may already be done)
					cancels[rng.Intn(len(cancels))]()
				}
			}
		}))
	}
	for i := 0; i < initial; i++ {
		schedule(Time(rng.Intn(int(horizon))), rng.Intn(prios))
	}
	// Cancel a deterministic subset up front too.
	for i := 0; i < initial/8; i++ {
		cancels[rng.Intn(len(cancels))]()
	}
	d.run()
	return trace
}

// TestCalendarMatchesReferenceHeap is the differential test: the calendar
// engine must fire the exact same event sequence as the reference
// container/heap implementation across random (time, priority) workloads,
// spanning dense near-window traffic, priority ties, cancellations and
// far-future overflow times.
func TestCalendarMatchesReferenceHeap(t *testing.T) {
	cases := []struct {
		name    string
		horizon int64 // scheduling spread (exercises ring vs overflow)
		prios   int
	}{
		{"dense-ring", 64, 1},
		{"priorities", 200, 3},
		{"overflow-heavy", 100000, 2},
		{"mixed-horizon", 5000, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				got := runScript(engineDriver(NewEngine()), seed, tc.horizon, tc.prios, 300, 1500)
				want := runScript(referenceDriver(&refEngine{}), seed, tc.horizon, tc.prios, 300, 1500)
				if len(got) != len(want) {
					t.Fatalf("seed %d: engine fired %d events, reference %d", seed, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d: divergence at event %d: engine %+v, reference %+v",
							seed, i, got[i], want[i])
					}
				}
				if len(got) == 0 {
					t.Fatalf("seed %d: empty trace proves nothing", seed)
				}
			}
		})
	}
}

// TestEventRefGoesStaleAfterFire pins the recycling safety property: a ref
// to a fired event must become inert, even after its underlying slot is
// reused by a later Schedule.
func TestEventRefGoesStaleAfterFire(t *testing.T) {
	e := NewEngine()
	r1 := e.Schedule(1, func() {})
	e.Run()
	if r1.Canceled() {
		t.Fatal("stale ref reports Canceled")
	}
	// The freed slot is reused by the next Schedule.
	ran := false
	e.Schedule(2, func() { ran = true })
	r1.Cancel() // must NOT cancel the new event occupying the slot
	e.Run()
	if !ran {
		t.Fatal("stale Cancel killed an unrelated recycled event")
	}
}

// TestZeroRefIsInert pins the zero EventRef as a safe "no event" value.
func TestZeroRefIsInert(t *testing.T) {
	var r EventRef
	r.Cancel()
	if r.Canceled() {
		t.Fatal("zero ref reports Canceled")
	}
}

// TestScheduleDispatchZeroAlloc is the allocation regression guard for the
// hot path: after warm-up, a schedule/fire cycle of pre-bound callbacks
// must not allocate at all — the free list, ring buckets and overflow heap
// all reuse their storage. (The warm-up loops long enough for the clock to
// wrap every ring bucket at least once, so every bucket slice has grown
// its steady-state capacity.)
func TestScheduleDispatchZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	work := func() {
		for i := 0; i < 64; i++ {
			e.ScheduleAfter(Time(i%37), fn)
			e.ScheduleAfter(window+Time(i%101), fn) // overflow path too
		}
		e.Run()
	}
	for i := 0; i < 256; i++ {
		work()
	}
	if avg := testing.AllocsPerRun(50, work); avg != 0 {
		t.Fatalf("steady-state schedule/dispatch allocates %.1f times per cycle, want 0", avg)
	}
}

// TestCascadeZeroAlloc guards the self-scheduling pattern the processor
// model uses: each event schedules its successor through a pre-bound
// closure.
func TestCascadeZeroAlloc(t *testing.T) {
	e := NewEngine()
	n := 0
	var next func()
	next = func() {
		n++
		if n%1000 != 0 {
			e.ScheduleAfter(1, next)
		}
	}
	run := func() {
		e.ScheduleAfter(1, next)
		e.Run()
	}
	run()
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Fatalf("cascade allocates %.1f times per chain, want 0", avg)
	}
}
