// Package core is the high-level experiment runner: it ties workload
// generation, the simulated machine, and the power model into the
// paired-run methodology of the paper — the same trace executed once
// without and once with clock gating, compared by the §IV metrics.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/config"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/tcc"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RunSpec names one experiment: a workload on a machine size.
type RunSpec struct {
	// App is the STAMP preset to run. Ignored if Trace is set.
	App stamp.App
	// Trace optionally supplies a pre-built workload (overrides App).
	Trace *workload.Trace
	// Processors is the core count (the paper uses 4, 8, 16).
	Processors int
	// W0 is the gating window constant (0 means the default, 8).
	W0 sim.Time
	// Seed drives workload generation.
	Seed uint64
	// Model is the power model; the zero value selects the paper's
	// Table I model.
	Model power.Model
	// Configure, if non-nil, edits the machine configuration before each
	// run (applied to both the gated and ungated run).
	Configure func(*config.Config)
}

func (rs RunSpec) model() power.Model {
	if rs.Model == (power.Model{}) {
		return power.Default()
	}
	return rs.Model
}

func (rs RunSpec) trace() (*workload.Trace, error) {
	if rs.Trace != nil {
		return rs.Trace, nil
	}
	return stamp.Generate(rs.App, rs.Processors, rs.Seed)
}

func (rs RunSpec) config(gated bool) config.Config {
	cfg := config.Default(rs.Processors)
	if gated {
		cfg = cfg.WithGating(rs.W0)
	}
	cfg.Seed = rs.Seed
	if rs.Configure != nil {
		rs.Configure(&cfg)
	}
	return cfg
}

// Outcome is the result of one paired (ungated vs gated) experiment.
type Outcome struct {
	Spec       RunSpec
	Ungated    *tcc.Result
	Gated      *tcc.Result
	Comparison power.Comparison
}

// cancelHook converts a context into the periodic cancellation hook the
// simulator polls; background-like contexts install no hook at all, so
// the uncancellable path stays overhead-free.
func cancelHook(ctx context.Context) func() error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() error { return context.Cause(ctx) }
}

// RunOne executes a single configuration (gated or not) of the spec.
func RunOne(rs RunSpec, gated bool) (*tcc.Result, error) {
	return RunOneRecorded(rs, gated, nil)
}

// RunOneCtx is RunOne with context cancellation: the context is checked
// before the run starts and polled periodically while the simulation is
// in flight, so a cancellation surfaces promptly as ctx.Err().
func RunOneCtx(ctx context.Context, rs RunSpec, gated bool) (*tcc.Result, error) {
	return runOne(ctx, rs, gated, nil)
}

// RunOneRecorded is RunOne with a protocol event recorder attached to the
// machine (nil records nothing).
func RunOneRecorded(rs RunSpec, gated bool, rec *trace.Recorder) (*tcc.Result, error) {
	return runOne(context.Background(), rs, gated, rec)
}

func runOne(ctx context.Context, rs RunSpec, gated bool, rec *trace.Recorder) (*tcc.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr, err := rs.trace()
	if err != nil {
		return nil, err
	}
	sys, err := tcc.NewSystem(rs.config(gated), tr)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		sys.SetRecorder(rec)
	}
	sys.SetCancel(cancelHook(ctx))
	return sys.Run()
}

// SystemCache holds one constructed tcc.System for reuse across a stream
// of runs with the same machine shape. A cache belongs to exactly one
// worker goroutine — it is not safe for concurrent use — and caches the
// last shape it saw: a run on a matching shape resets the held System in
// place (allocation-free, bit-identical to fresh construction by the
// System.Reset contract); a shape change rebuilds and the new System takes
// the slot. The zero value is ready to use.
type SystemCache struct {
	sys *tcc.System
	// Reuses counts runs served by an in-place Reset of the held System.
	Reuses uint64
	// Rebuilds counts runs that constructed a fresh System (first use and
	// every shape change).
	Rebuilds uint64
}

// RunPair executes the spec twice on the identical trace — ungated
// baseline and gated — and compares them with the paper's energy model.
func RunPair(rs RunSpec) (*Outcome, error) {
	return RunPairCtx(context.Background(), rs)
}

// RunPairCtx is RunPair with context cancellation threaded through both
// runs: the context is checked between phases and polled inside each
// simulation, so a canceled campaign stops mid-run instead of finishing
// the cell. A run that is not canceled is byte-identical to RunPair.
func RunPairCtx(ctx context.Context, rs RunSpec) (*Outcome, error) {
	return RunPairCached(ctx, rs, nil)
}

// RunPairCached is RunPairCtx with an optional per-worker System cache:
// both runs of the pair (and every later pair of the same machine shape)
// execute on one reused System instead of constructing a fresh machine
// per run. A nil cache selects fresh construction — the exact RunPairCtx
// behavior — and results are byte-identical either way.
func RunPairCached(ctx context.Context, rs RunSpec, sc *SystemCache) (*Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr, err := rs.trace()
	if err != nil {
		return nil, err
	}
	rs.Trace = tr // pin the trace so both runs share it exactly

	ungated, err := runWith(ctx, rs, false, tr, sc)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("core: ungated run: %w", err)
	}
	gated, err := runWith(ctx, rs, true, tr, sc)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("core: gated run: %w", err)
	}
	return &Outcome{
		Spec:       rs,
		Ungated:    ungated,
		Gated:      gated,
		Comparison: power.Compare(rs.model(), ungated.Ledger, gated.Ledger),
	}, nil
}

func runWith(ctx context.Context, rs RunSpec, gated bool, tr *workload.Trace, sc *SystemCache) (*tcc.Result, error) {
	cfg := rs.config(gated)
	if sc != nil && sc.sys != nil {
		switch err := sc.sys.Reset(cfg, tr); {
		case err == nil:
			sc.Reuses++
			sc.sys.SetCancel(cancelHook(ctx))
			return sc.sys.Run()
		case !errors.Is(err, tcc.ErrShapeChange):
			// Invalid config or trace: fresh construction would fail the
			// same validation, so surface the error directly.
			return nil, err
		}
	}
	sys, err := tcc.NewSystem(cfg, tr)
	if err != nil {
		return nil, err
	}
	if sc != nil {
		sc.sys = sys
		sc.Rebuilds++
	}
	sys.SetCancel(cancelHook(ctx))
	return sys.Run()
}
