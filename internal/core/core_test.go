package core

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/power"
	"repro/internal/stamp"
	"repro/internal/workload"
)

// quickSpec is a small high-conflict workload for fast paired runs.
func quickSpec() workload.Spec {
	return workload.Spec{
		Name: "quick", TotalTxs: 64, MeanTxOps: 8, TxOpsJitter: 0.4,
		WriteFrac: 0.5, HotLines: 8, HotFrac: 0.7, ZipfSkew: 1.0,
		PrivateLines: 64, ComputeMean: 3, InterTxMean: 6, TxTypes: 2,
	}
}

func quickTrace(t *testing.T, procs int) *workload.Trace {
	t.Helper()
	qs := quickSpec()
	tr, err := qs.Generate(procs, 17)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunPairProducesBothResults(t *testing.T) {
	out, err := RunPair(RunSpec{Trace: quickTrace(t, 4), Processors: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if out.Ungated == nil || out.Gated == nil {
		t.Fatal("missing run results")
	}
	if out.Ungated.Gated || !out.Gated.Gated {
		t.Fatal("gated flags wrong")
	}
	c := out.Comparison
	if c.N1 != out.Ungated.Cycles || c.N2 != out.Gated.Cycles {
		t.Fatal("comparison cycles do not match runs")
	}
	if math.IsNaN(c.EnergyRatio) || c.EnergyRatio <= 0 {
		t.Fatalf("energy ratio %f", c.EnergyRatio)
	}
}

func TestRunPairUsesSameTrace(t *testing.T) {
	out, err := RunPair(RunSpec{Trace: quickTrace(t, 2), Processors: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// Identical work: both runs commit the same transaction count.
	if out.Ungated.Counters.Commits != out.Gated.Counters.Commits {
		t.Fatalf("commit counts differ: %d vs %d",
			out.Ungated.Counters.Commits, out.Gated.Counters.Commits)
	}
}

func TestRunPairFromPreset(t *testing.T) {
	// Preset path (no explicit trace): shrink the workload via Configure
	// being unavailable for specs — use a tiny preset run at 4 procs.
	out, err := RunPair(RunSpec{App: stamp.KMeans, Processors: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Ungated.TraceName != string(stamp.KMeans) {
		t.Fatalf("trace name %q", out.Ungated.TraceName)
	}
}

func TestRunOneRespectsGatedFlag(t *testing.T) {
	tr := quickTrace(t, 2)
	ug, err := RunOne(RunSpec{Trace: tr, Processors: 2, Seed: 17}, false)
	if err != nil {
		t.Fatal(err)
	}
	g, err := RunOne(RunSpec{Trace: tr, Processors: 2, Seed: 17}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ug.Gated || !g.Gated {
		t.Fatal("gated flag not respected")
	}
}

func TestConfigureHookApplies(t *testing.T) {
	tr := quickTrace(t, 2)
	called := 0
	_, err := RunPair(RunSpec{
		Trace: tr, Processors: 2, Seed: 17,
		Configure: func(c *config.Config) {
			called++
			c.Machine.MemoryCycles = 50
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if called != 2 {
		t.Fatalf("Configure called %d times, want once per run", called)
	}
}

func TestW0Propagates(t *testing.T) {
	tr := quickTrace(t, 4)
	a, err := RunPair(RunSpec{Trace: tr, Processors: 4, Seed: 17, W0: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPair(RunSpec{Trace: tr, Processors: 4, Seed: 17, W0: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Different W0 must change the gated run (ungated identical).
	if a.Ungated.Cycles != b.Ungated.Cycles {
		t.Fatal("ungated runs differ across W0")
	}
	if a.Gated.Cycles == b.Gated.Cycles &&
		a.Gated.Counters.Renewals == b.Gated.Counters.Renewals {
		t.Fatal("W0 had no effect on the gated run")
	}
}

func TestCustomPowerModel(t *testing.T) {
	tr := quickTrace(t, 2)
	deflt, err := RunPair(RunSpec{Trace: tr, Processors: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	srpg, err := RunPair(RunSpec{Trace: tr, Processors: 2, Seed: 17,
		Model: power.Default().WithSRPG(0.1)})
	if err != nil {
		t.Fatal(err)
	}
	// Same runs, cheaper gated state: energy ratio must not decrease.
	if srpg.Comparison.EnergyRatio < deflt.Comparison.EnergyRatio-1e-9 {
		t.Fatalf("SRPG model lowered the energy ratio: %f vs %f",
			srpg.Comparison.EnergyRatio, deflt.Comparison.EnergyRatio)
	}
}

func TestUnknownPresetFails(t *testing.T) {
	if _, err := RunPair(RunSpec{App: stamp.App("nope"), Processors: 2, Seed: 1}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}
