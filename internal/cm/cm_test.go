package cm

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCeilLog2Term(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {7, 8}, {8, 8},
		{9, 16}, {16, 16}, {17, 32}, {255, 256}, {256, 256}, {257, 512},
	}
	for _, c := range cases {
		if got := ceilLog2Term(c.n); got != c.want {
			t.Errorf("ceilLog2Term(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGatingAwareEquation8(t *testing.T) {
	// Wt = W0 * (2^ceil(lg Na) + 2^ceil(lg Nr)) with W0 = 8.
	p := GatingAware{W0: 8}
	cases := []struct {
		na, nr int
		want   sim.Time
	}{
		{1, 0, 8},        // 8*(1+0)
		{1, 1, 16},       // 8*(1+1)
		{1, 2, 24},       // 8*(1+2)
		{2, 0, 16},       // 8*(2+0)
		{3, 0, 32},       // 8*(4+0)
		{3, 3, 64},       // 8*(4+4)
		{255, 0, 2048},   // 8*256 — saturated abort counter
		{255, 255, 4096}, // both saturated
	}
	for _, c := range cases {
		if got := p.Window(c.na, c.nr); got != c.want {
			t.Errorf("Window(%d,%d) = %d, want %d", c.na, c.nr, got, c.want)
		}
	}
}

func TestGatingAwareStaircase(t *testing.T) {
	// The window must be constant between powers of two (the paper's
	// staircase with exponentially spaced discontinuities).
	p := GatingAware{W0: 8}
	if p.Window(5, 0) != p.Window(6, 0) || p.Window(6, 0) != p.Window(8, 0) {
		t.Error("window not flat inside a staircase step")
	}
	if p.Window(8, 0) >= p.Window(9, 0) {
		t.Error("window did not jump at the power-of-two boundary")
	}
}

func TestGatingAwarePanicsOnZeroW0(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero W0 did not panic")
		}
	}()
	GatingAware{}.Window(1, 0)
}

func TestExponentialBackoff(t *testing.T) {
	p := ExponentialBackoff{Base: 10, Max: 100}
	cases := []struct {
		na   int
		want sim.Time
	}{{0, 10}, {1, 10}, {2, 20}, {3, 40}, {4, 80}, {5, 100}, {50, 100}}
	for _, c := range cases {
		if got := p.Window(c.na, 99); got != c.want {
			t.Errorf("exp Window(%d) = %d, want %d", c.na, got, c.want)
		}
	}
}

func TestExponentialBackoffNoOverflow(t *testing.T) {
	p := ExponentialBackoff{Base: 1}
	if w := p.Window(1000, 0); w <= 0 {
		t.Fatalf("huge abort count overflowed: %d", w)
	}
}

func TestLinearBackoff(t *testing.T) {
	p := LinearBackoff{Step: 5, Max: 18}
	cases := []struct {
		na   int
		want sim.Time
	}{{0, 5}, {1, 5}, {2, 10}, {3, 15}, {4, 18}, {100, 18}}
	for _, c := range cases {
		if got := p.Window(c.na, 0); got != c.want {
			t.Errorf("linear Window(%d) = %d, want %d", c.na, got, c.want)
		}
	}
}

func TestNonePolicy(t *testing.T) {
	if (None{}).Window(100, 100) != 0 {
		t.Error("None policy backs off")
	}
}

func TestNames(t *testing.T) {
	for _, p := range []Policy{
		GatingAware{W0: 8},
		ExponentialBackoff{Base: 2, Max: 64},
		LinearBackoff{Step: 4, Max: 32},
		None{},
	} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

// Property: the gating-aware window is monotonically non-decreasing in
// both counters and always positive for Na >= 1.
func TestQuickGatingAwareMonotone(t *testing.T) {
	p := GatingAware{W0: 8}
	f := func(naRaw, nrRaw uint8) bool {
		na := int(naRaw%64) + 1
		nr := int(nrRaw % 64)
		w := p.Window(na, nr)
		if w <= 0 {
			return false
		}
		return p.Window(na+1, nr) >= w && p.Window(na, nr+1) >= w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
