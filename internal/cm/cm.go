// Package cm implements contention-management policies: the paper's
// gating-aware policy (§VI, equation 8) used to size the clock-gating
// window, and conventional back-off baselines used for ablation.
package cm

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
)

// Policy computes how long a victim should back off (and, in the gated
// system, stay clock-gated) as a function of its abort and renew counts.
type Policy interface {
	// Window returns the back-off duration in cycles for a victim with
	// the given abort count (Na >= 1) and renew count (Nr >= 0).
	Window(na, nr int) sim.Time
	// Name identifies the policy in reports.
	Name() string
}

// ceilLog2Term returns 2^ceil(lg n) for n >= 1 and 0 for n == 0. The
// paper's staircase function: the term jumps only when the count crosses a
// power of two, giving "discontinuities at exponentially spaced intervals".
func ceilLog2Term(n int) int64 {
	if n <= 0 {
		return 0
	}
	if n == 1 {
		return 1
	}
	// ceil(lg n) for n>1 is bits.Len of n-1.
	return int64(1) << uint(bits.Len(uint(n-1)))
}

// GatingAware is the paper's policy: Wt = W0 * (2^ceil(lg Na) + 2^ceil(lg Nr)).
type GatingAware struct {
	// W0 is the base window constant. The paper notes it has first-order
	// significance: small for large processor counts, large for small
	// systems.
	W0 sim.Time
}

// Window implements Policy.
func (g GatingAware) Window(na, nr int) sim.Time {
	if g.W0 <= 0 {
		panic(fmt.Sprintf("cm: GatingAware W0 %d must be positive", g.W0))
	}
	return g.W0 * sim.Time(ceilLog2Term(na)+ceilLog2Term(nr))
}

// Name implements Policy.
func (g GatingAware) Name() string { return fmt.Sprintf("gating-aware(W0=%d)", g.W0) }

// ExponentialBackoff is the conventional "polite" exponential back-off:
// window = Base * 2^(Na-1), capped at Max. The paper argues this penalizes
// highly contended applications; the ablation benchmark quantifies that.
type ExponentialBackoff struct {
	Base sim.Time
	Max  sim.Time
}

// Window implements Policy.
func (e ExponentialBackoff) Window(na, _ int) sim.Time {
	if na < 1 {
		na = 1
	}
	shift := na - 1
	if shift > 30 {
		shift = 30
	}
	w := e.Base << uint(shift)
	if e.Max > 0 && w > e.Max {
		w = e.Max
	}
	return w
}

// Name implements Policy.
func (e ExponentialBackoff) Name() string {
	return fmt.Sprintf("exp-backoff(base=%d,max=%d)", e.Base, e.Max)
}

// LinearBackoff backs off proportionally to the abort count.
type LinearBackoff struct {
	Step sim.Time
	Max  sim.Time
}

// Window implements Policy.
func (l LinearBackoff) Window(na, _ int) sim.Time {
	if na < 1 {
		na = 1
	}
	w := l.Step * sim.Time(na)
	if l.Max > 0 && w > l.Max {
		w = l.Max
	}
	return w
}

// Name implements Policy.
func (l LinearBackoff) Name() string {
	return fmt.Sprintf("linear-backoff(step=%d,max=%d)", l.Step, l.Max)
}

// None retries immediately: the ungated baseline's behaviour.
type None struct{}

// Window implements Policy.
func (None) Window(_, _ int) sim.Time { return 0 }

// Name implements Policy.
func (None) Name() string { return "none" }
