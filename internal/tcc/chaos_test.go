package tcc

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestChaosForcedUngates injects forced ungates at random intervals while
// a contended gated workload runs. The protocol is designed to be safe
// under spurious On commands (the paper "biases slightly more on turning
// on"), so correctness must be unaffected: every transaction commits, no
// token leaks, no processor ends frozen.
func TestChaosForcedUngates(t *testing.T) {
	spec := workload.Spec{
		Name: "chaos", TotalTxs: 160, MeanTxOps: 8, TxOpsJitter: 0.4,
		WriteFrac: 0.5, HotLines: 6, HotFrac: 0.8, ZipfSkew: 1.0,
		PrivateLines: 32, ComputeMean: 3, InterTxMean: 5, TxTypes: 2,
	}
	for seed := uint64(1); seed <= 3; seed++ {
		tr, err := spec.Generate(4, seed)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(config.Default(4).WithGating(0), tr)
		if err != nil {
			t.Fatal(err)
		}
		// Chaos driver: every 500-1500 cycles, force-ungate a random
		// directory. Runs alongside the workload on the same engine.
		rng := sim.NewRNG(seed, 0xc4405)
		var chaos func()
		chaos = func() {
			d := sys.Directories()[rng.Intn(len(sys.Directories()))]
			d.ForceUngateAll()
			sys.Engine().ScheduleAfter(sim.Time(500+rng.Intn(1000)), chaos)
		}
		sys.Engine().ScheduleAfter(500, chaos)

		res, err := sys.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if int(res.Counters.Commits) != tr.TotalTxs() {
			t.Fatalf("seed %d: commits %d, want %d", seed, res.Counters.Commits, tr.TotalTxs())
		}
		if sys.Vendor().Outstanding() != 0 {
			t.Fatalf("seed %d: tokens leaked", seed)
		}
		for i, p := range sys.Processors() {
			if p.State() != "done" {
				t.Fatalf("seed %d: proc %d ended in state %s", seed, i, p.State())
			}
		}
	}
}

// TestExtremeW0StillCompletes over-gates aggressively (W0 three orders of
// magnitude beyond the paper's choice). Throughput suffers, but the
// protocol must stay live: the un-gate control circuit always re-arms or
// releases, so work completes.
func TestExtremeW0StillCompletes(t *testing.T) {
	spec := workload.Spec{
		Name: "w0x", TotalTxs: 80, MeanTxOps: 8, TxOpsJitter: 0.4,
		WriteFrac: 0.5, HotLines: 6, HotFrac: 0.8, ZipfSkew: 1.0,
		PrivateLines: 32, ComputeMean: 3, InterTxMean: 5, TxTypes: 2,
	}
	tr, err := spec.Generate(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default(4).WithGating(8192)
	cfg.MaxCycles = 200_000_000
	res := mustRun(t, cfg, tr)
	if int(res.Counters.Commits) != tr.TotalTxs() {
		t.Fatalf("commits %d, want %d", res.Counters.Commits, tr.TotalTxs())
	}
	if res.Counters.Gatings == 0 {
		t.Fatal("extreme-W0 run never gated")
	}
}

// TestSingleCycleWindows drives the other extreme: W0 = 1 produces
// minimal windows whose timers can expire before the gating bookkeeping
// has even settled. The episode guards must keep the table consistent.
func TestSingleCycleWindows(t *testing.T) {
	spec := workload.Spec{
		Name: "w0min", TotalTxs: 120, MeanTxOps: 6, TxOpsJitter: 0.3,
		WriteFrac: 0.5, HotLines: 4, HotFrac: 0.9, ZipfSkew: 0.8,
		PrivateLines: 16, ComputeMean: 2, InterTxMean: 3, TxTypes: 1,
	}
	tr, err := spec.Generate(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, config.Default(8).WithGating(1), tr)
	if int(res.Counters.Commits) != tr.TotalTxs() {
		t.Fatalf("commits %d, want %d", res.Counters.Commits, tr.TotalTxs())
	}
	if res.Counters.SelfAborts != res.Counters.Gatings {
		t.Fatalf("self-aborts %d != gatings %d", res.Counters.SelfAborts, res.Counters.Gatings)
	}
}
