package tcc

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestSnapshotConsistency is the serializability invariant: every
// committed transaction passed validation, meaning all its reads were
// simultaneously current at its commit grant. The test re-derives the
// invariant indirectly — a run with conflicts must produce zero
// *post-validation* anomalies, which the simulator would surface as a
// panic in the version bookkeeping; here we assert the mechanism engages
// at all (validation aborts occur under contention) and that every
// transaction still commits exactly once.
func TestSnapshotConsistency(t *testing.T) {
	spec := workload.Spec{
		Name: "snap", TotalTxs: 200, MeanTxOps: 10, TxOpsJitter: 0.4,
		WriteFrac: 0.5, HotLines: 4, HotFrac: 0.9, ZipfSkew: 0.8,
		PrivateLines: 16, ComputeMean: 1, InterTxMean: 2, TxTypes: 1,
	}
	tr, err := spec.Generate(8, 23)
	if err != nil {
		t.Fatal(err)
	}
	for _, gated := range []bool{false, true} {
		cfg := config.Default(8)
		if gated {
			cfg = cfg.WithGating(0)
		}
		res := mustRun(t, cfg, tr)
		if int(res.Counters.Commits) != tr.TotalTxs() {
			t.Fatalf("gated=%v: commits %d want %d", gated, res.Counters.Commits, tr.TotalTxs())
		}
	}
}

func TestValidationAbortsCounted(t *testing.T) {
	// Validation aborts happen when a conflicting commit lands while the
	// victim's invalidation is still in flight at its commit grant. A
	// ferociously contended single line makes that race common enough to
	// observe across seeds.
	found := false
	for seed := uint64(1); seed <= 8 && !found; seed++ {
		spec := workload.Spec{
			Name: "va", TotalTxs: 400, MeanTxOps: 4, TxOpsJitter: 0.3,
			WriteFrac: 0.5, HotLines: 2, HotFrac: 0.95, ZipfSkew: 0.5,
			PrivateLines: 8, ComputeMean: 1, InterTxMean: 1, TxTypes: 1,
		}
		tr, err := spec.Generate(8, seed)
		if err != nil {
			t.Fatal(err)
		}
		res := mustRun(t, config.Default(8), tr)
		if res.Counters.ValidationAborts > 0 {
			found = true
		}
		// Whatever the race count, work must complete exactly.
		if int(res.Counters.Commits) != tr.TotalTxs() {
			t.Fatalf("seed %d: commits %d want %d", seed, res.Counters.Commits, tr.TotalTxs())
		}
	}
	if !found {
		t.Skip("no validation race observed across seeds (timing-dependent); abort accounting untestable here")
	}
}

func TestPerProcValidationAbortsSumToGlobal(t *testing.T) {
	spec := workload.Spec{
		Name: "sum", TotalTxs: 400, MeanTxOps: 4, TxOpsJitter: 0.3,
		WriteFrac: 0.5, HotLines: 2, HotFrac: 0.95, ZipfSkew: 0.5,
		PrivateLines: 8, ComputeMean: 1, InterTxMean: 1, TxTypes: 1,
	}
	tr, _ := spec.Generate(8, 3)
	res := mustRun(t, config.Default(8), tr)
	var sumV, sumA uint64
	for _, ps := range res.PerProc {
		sumV += ps.ValidationAborts
		sumA += ps.Aborts
	}
	if sumV != res.Counters.ValidationAborts {
		t.Fatalf("per-proc validation aborts %d != global %d", sumV, res.Counters.ValidationAborts)
	}
	if sumA != res.Counters.Aborts {
		t.Fatalf("per-proc aborts %d != global %d", sumA, res.Counters.Aborts)
	}
}

func TestPolicyKindsAllComplete(t *testing.T) {
	spec := workload.Spec{
		Name: "pol", TotalTxs: 120, MeanTxOps: 8, TxOpsJitter: 0.4,
		WriteFrac: 0.5, HotLines: 8, HotFrac: 0.7, ZipfSkew: 1.0,
		PrivateLines: 32, ComputeMean: 2, InterTxMean: 4, TxTypes: 2,
	}
	tr, _ := spec.Generate(4, 19)
	for _, pk := range []config.PolicyKind{
		config.PolicyGatingAware, config.PolicyExponential,
		config.PolicyLinear, config.PolicyFixed,
	} {
		cfg := config.Default(4).WithGating(0)
		cfg.Gating.Policy = pk
		res := mustRun(t, cfg, tr)
		if int(res.Counters.Commits) != tr.TotalTxs() {
			t.Fatalf("policy %s: commits %d want %d", pk, res.Counters.Commits, tr.TotalTxs())
		}
	}
}

func TestDisableRenewalCompletes(t *testing.T) {
	spec := workload.Spec{
		Name: "ren", TotalTxs: 120, MeanTxOps: 8, TxOpsJitter: 0.4,
		WriteFrac: 0.5, HotLines: 8, HotFrac: 0.7, ZipfSkew: 1.0,
		PrivateLines: 32, ComputeMean: 2, InterTxMean: 4, TxTypes: 1,
	}
	tr, _ := spec.Generate(4, 19)
	cfg := config.Default(4).WithGating(0)
	cfg.Gating.DisableRenewal = true
	res := mustRun(t, cfg, tr)
	if res.Counters.Renewals != 0 {
		t.Fatalf("renewals %d with renewal disabled", res.Counters.Renewals)
	}
	if int(res.Counters.Commits) != tr.TotalTxs() {
		t.Fatal("work incomplete")
	}
}
