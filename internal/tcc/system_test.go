package tcc

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// handTrace builds a trace directly from op lists, one slice per thread.
func handTrace(name string, threads ...[]workload.Transaction) *workload.Trace {
	tr := &workload.Trace{Name: name}
	for _, txs := range threads {
		th := workload.Thread{Txs: txs, InterTx: make([]int32, len(txs))}
		for i := range th.InterTx {
			th.InterTx[i] = 1
		}
		tr.Threads = append(tr.Threads, th)
	}
	return tr
}

func rd(l mem.LineAddr) workload.Op { return workload.Op{Kind: workload.OpRead, Line: l} }
func wr(l mem.LineAddr) workload.Op { return workload.Op{Kind: workload.OpWrite, Line: l} }
func cp(n int32) workload.Op        { return workload.Op{Kind: workload.OpCompute, Cycles: n} }
func tx(pc uint64, ops ...workload.Op) workload.Transaction {
	return workload.Transaction{PC: pc, Ops: ops}
}

func mustRun(t *testing.T, cfg config.Config, tr *workload.Trace) *Result {
	t.Helper()
	sys, err := NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleProcessorSingleTx(t *testing.T) {
	tr := handTrace("t", []workload.Transaction{
		tx(1, cp(10), rd(100), wr(200)),
	})
	res := mustRun(t, config.Default(1), tr)
	if res.Counters.Commits != 1 {
		t.Fatalf("commits %d", res.Counters.Commits)
	}
	if res.Counters.Aborts != 0 {
		t.Fatalf("aborts %d in a single-threaded run", res.Counters.Aborts)
	}
	if res.Cycles <= 110 {
		t.Fatalf("cycles %d implausibly low (one miss alone costs >110)", res.Cycles)
	}
	if res.PerProc[0].Commits != 1 {
		t.Fatal("per-proc commit count wrong")
	}
}

func TestReadOnlyTransactionCommitsWithoutToken(t *testing.T) {
	tr := handTrace("ro", []workload.Transaction{
		tx(1, rd(10), rd(20), cp(5)),
	})
	res := mustRun(t, config.Default(1), tr)
	if res.Counters.Commits != 1 {
		t.Fatalf("commits %d", res.Counters.Commits)
	}
	if res.Counters.TokenRequests != 0 {
		t.Fatalf("read-only tx requested %d tokens", res.Counters.TokenRequests)
	}
	if res.PerProc[0].ReadOnlyCommits != 1 {
		t.Fatal("read-only commit not counted")
	}
}

func TestEveryTransactionCommitsExactlyOnce(t *testing.T) {
	spec := workload.Spec{
		Name: "w", TotalTxs: 80, MeanTxOps: 8, TxOpsJitter: 0.4,
		WriteFrac: 0.5, HotLines: 8, HotFrac: 0.7, ZipfSkew: 1.0,
		PrivateLines: 32, ComputeMean: 2, InterTxMean: 5, TxTypes: 2,
	}
	tr, err := spec.Generate(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, gated := range []bool{false, true} {
		cfg := config.Default(4)
		if gated {
			cfg = cfg.WithGating(0)
		}
		res := mustRun(t, cfg, tr)
		if int(res.Counters.Commits) != tr.TotalTxs() {
			t.Fatalf("gated=%v: commits %d, want %d", gated, res.Counters.Commits, tr.TotalTxs())
		}
		for i, ps := range res.PerProc {
			if int(ps.Commits) != len(tr.Threads[i].Txs) {
				t.Fatalf("gated=%v proc %d commits %d, want %d",
					gated, i, ps.Commits, len(tr.Threads[i].Txs))
			}
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	spec := workload.Spec{
		Name: "d", TotalTxs: 60, MeanTxOps: 10, TxOpsJitter: 0.3,
		WriteFrac: 0.4, HotLines: 8, HotFrac: 0.6, ZipfSkew: 0.9,
		PrivateLines: 64, ComputeMean: 3, InterTxMean: 8, TxTypes: 3,
	}
	tr, _ := spec.Generate(4, 9)
	for _, gated := range []bool{false, true} {
		cfg := config.Default(4)
		if gated {
			cfg = cfg.WithGating(0)
		}
		a := mustRun(t, cfg, tr)
		b := mustRun(t, cfg, tr)
		if a.Cycles != b.Cycles {
			t.Fatalf("gated=%v: nondeterministic cycles %d vs %d", gated, a.Cycles, b.Cycles)
		}
		if a.Counters != b.Counters {
			t.Fatalf("gated=%v: nondeterministic counters\n%+v\n%+v", gated, a.Counters, b.Counters)
		}
	}
}

func TestConflictCausesAborts(t *testing.T) {
	// Two threads repeatedly read+write the same line: conflicts are
	// inevitable.
	mk := func() []workload.Transaction {
		var txs []workload.Transaction
		for i := 0; i < 20; i++ {
			txs = append(txs, tx(7, rd(5), cp(20), wr(5)))
		}
		return txs
	}
	tr := handTrace("conflict", mk(), mk())
	res := mustRun(t, config.Default(2), tr)
	if res.Counters.Aborts == 0 {
		t.Fatal("no aborts in a maximally conflicting workload")
	}
	if res.Counters.Commits != 40 {
		t.Fatalf("commits %d, want 40", res.Counters.Commits)
	}
}

func TestGatingEngagesUnderConflict(t *testing.T) {
	mk := func() []workload.Transaction {
		var txs []workload.Transaction
		for i := 0; i < 20; i++ {
			txs = append(txs, tx(7, rd(5), cp(20), wr(5)))
		}
		return txs
	}
	tr := handTrace("conflict", mk(), mk())
	res := mustRun(t, config.Default(2).WithGating(0), tr)
	if res.Counters.Gatings == 0 {
		t.Fatal("gating never engaged")
	}
	if res.Counters.Ungates == 0 {
		t.Fatal("nothing was ever ungated")
	}
	// Every actual freeze ends in exactly one wake-up self-abort.
	if res.Counters.SelfAborts != res.Counters.Gatings {
		t.Fatalf("self-aborts %d != gatings %d",
			res.Counters.SelfAborts, res.Counters.Gatings)
	}
	if res.Counters.Commits != 40 {
		t.Fatalf("commits %d, want 40", res.Counters.Commits)
	}
}

func TestUngatedRunHasNoGatingActivity(t *testing.T) {
	mk := func() []workload.Transaction {
		return []workload.Transaction{tx(7, rd(5), wr(5)), tx(7, rd(5), wr(5))}
	}
	tr := handTrace("x", mk(), mk())
	res := mustRun(t, config.Default(2), tr)
	if res.Counters.Gatings != 0 || res.Counters.Renewals != 0 ||
		res.Counters.Ungates != 0 || res.Counters.SelfAborts != 0 {
		t.Fatalf("gating counters active in ungated run: %+v", res.Counters)
	}
	if res.Gated {
		t.Fatal("result claims gated")
	}
}

func TestTokenVendorBalanced(t *testing.T) {
	spec := workload.Spec{
		Name: "v", TotalTxs: 60, MeanTxOps: 6, TxOpsJitter: 0.3,
		WriteFrac: 0.6, HotLines: 4, HotFrac: 0.8, ZipfSkew: 1.0,
		PrivateLines: 16, ComputeMean: 2, InterTxMean: 4, TxTypes: 1,
	}
	tr, _ := spec.Generate(4, 5)
	for _, gated := range []bool{false, true} {
		cfg := config.Default(4)
		if gated {
			cfg = cfg.WithGating(0)
		}
		sys, err := NewSystem(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if n := sys.Vendor().Outstanding(); n != 0 {
			t.Fatalf("gated=%v: %d TIDs leaked", gated, n)
		}
	}
}

func TestLedgerPartitionsruntime(t *testing.T) {
	spec := workload.Spec{
		Name: "l", TotalTxs: 40, MeanTxOps: 8, TxOpsJitter: 0.2,
		WriteFrac: 0.4, HotLines: 8, HotFrac: 0.5, ZipfSkew: 0.5,
		PrivateLines: 32, ComputeMean: 2, InterTxMean: 5, TxTypes: 2,
	}
	tr, _ := spec.Generate(4, 7)
	res := mustRun(t, config.Default(4).WithGating(0), tr)
	tot := res.Ledger.TotalResidency(0, res.Cycles)
	var sum sim.Time
	for s := 0; s < stats.NumStates; s++ {
		sum += tot[s]
	}
	if sum != 4*res.Cycles {
		t.Fatalf("residency %d != procs x cycles %d", sum, 4*res.Cycles)
	}
}

func TestTinyCacheOverflowStillCompletes(t *testing.T) {
	// 2 sets x 2 ways: write sets larger than the cache force the
	// overflow path.
	var ops []workload.Op
	for l := mem.LineAddr(0); l < 16; l++ {
		ops = append(ops, wr(l))
	}
	tr := handTrace("ov", []workload.Transaction{tx(1, ops...)})
	cfg := config.Default(1)
	cfg.Machine.L1SizeBytes = 2 * 2 * 64
	res := mustRun(t, cfg, tr)
	if res.Counters.Overflows == 0 {
		t.Fatal("overflow path not exercised")
	}
	if res.Counters.Commits != 1 {
		t.Fatal("overflowing transaction did not commit")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	tr := handTrace("g", []workload.Transaction{tx(1, cp(1000), rd(1), wr(2))})
	cfg := config.Default(1)
	cfg.MaxCycles = 100
	sys, err := NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err == nil {
		t.Fatal("MaxCycles violation not reported")
	}
}

func TestThreadCountMismatchRejected(t *testing.T) {
	tr := handTrace("m", []workload.Transaction{tx(1, rd(1))})
	if _, err := NewSystem(config.Default(2), tr); err == nil {
		t.Fatal("thread/processor mismatch accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	tr := handTrace("m", []workload.Transaction{tx(1, rd(1))})
	cfg := config.Default(1)
	cfg.Machine.DirectoryCycles = 0
	if _, err := NewSystem(cfg, tr); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestFewerDirectoriesThanProcessors(t *testing.T) {
	spec := workload.Spec{
		Name: "fd", TotalTxs: 40, MeanTxOps: 6, TxOpsJitter: 0.3,
		WriteFrac: 0.5, HotLines: 8, HotFrac: 0.6, ZipfSkew: 0.8,
		PrivateLines: 32, ComputeMean: 2, InterTxMean: 4, TxTypes: 2,
	}
	tr, _ := spec.Generate(4, 11)
	cfg := config.Default(4).WithGating(0)
	cfg.Machine.Directories = 2
	res := mustRun(t, cfg, tr)
	if int(res.Counters.Commits) != tr.TotalTxs() {
		t.Fatalf("commits %d, want %d", res.Counters.Commits, tr.TotalTxs())
	}
}

func TestGatedNeverSlowerThanTwofold(t *testing.T) {
	// Sanity bound: gating may cost some time but must never explode the
	// runtime (the protocol biases toward turning processors on).
	spec := workload.Spec{
		Name: "s", TotalTxs: 80, MeanTxOps: 10, TxOpsJitter: 0.4,
		WriteFrac: 0.5, HotLines: 8, HotFrac: 0.7, ZipfSkew: 1.0,
		PrivateLines: 32, ComputeMean: 3, InterTxMean: 6, TxTypes: 2,
	}
	tr, _ := spec.Generate(8, 13)
	ug := mustRun(t, config.Default(8), tr)
	g := mustRun(t, config.Default(8).WithGating(0), tr)
	if float64(g.Cycles) > 2*float64(ug.Cycles) {
		t.Fatalf("gated run %d cycles vs ungated %d: pathological slowdown",
			g.Cycles, ug.Cycles)
	}
}

func TestAbortsRequireReadConflict(t *testing.T) {
	// Write-write sharing without reads must not abort (TCC semantics).
	mk := func() []workload.Transaction {
		var txs []workload.Transaction
		for i := 0; i < 10; i++ {
			txs = append(txs, tx(3, cp(5), wr(9)))
		}
		return txs
	}
	tr := handTrace("ww", mk(), mk())
	res := mustRun(t, config.Default(2), tr)
	if res.Counters.Aborts != 0 {
		t.Fatalf("write-write sharing caused %d aborts", res.Counters.Aborts)
	}
}

// Property: arbitrary small workloads complete with every transaction
// committed, under both configurations, with no token leaks.
func TestQuickNoLivelock(t *testing.T) {
	f := func(seed uint64, hotRaw, opsRaw, procsRaw uint8) bool {
		procs := []int{1, 2, 4, 8}[int(procsRaw)%4]
		spec := workload.Spec{
			Name:         "q",
			TotalTxs:     8 * procs,
			MeanTxOps:    int(opsRaw%12) + 2,
			TxOpsJitter:  0.3,
			WriteFrac:    0.5,
			HotLines:     int(hotRaw%16) + 2,
			HotFrac:      0.7,
			ZipfSkew:     1.0,
			PrivateLines: 16,
			ComputeMean:  2,
			InterTxMean:  3,
			TxTypes:      2,
		}
		tr, err := spec.Generate(procs, seed)
		if err != nil {
			return false
		}
		for _, gated := range []bool{false, true} {
			cfg := config.Default(procs)
			if gated {
				cfg = cfg.WithGating(0)
			}
			cfg.MaxCycles = 20_000_000
			sys, err := NewSystem(cfg, tr)
			if err != nil {
				return false
			}
			res, err := sys.Run()
			if err != nil {
				return false
			}
			if int(res.Counters.Commits) != tr.TotalTxs() {
				return false
			}
			if sys.Vendor().Outstanding() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
