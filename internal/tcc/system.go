package tcc

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/cm"
	"repro/internal/config"
	"repro/internal/directory"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tokens"
	"repro/internal/trace"
	"repro/internal/workload"
)

// System is the complete simulated machine for one run of one trace.
type System struct {
	cfg    config.Config
	eng    *sim.Engine
	bus    bus.Interconnect
	nbanks int // effective interconnect bank count (>= 1)
	geom   *mem.Geometry
	vendor *tokens.Vendor
	dirs   []*directory.Directory
	procs  []*Processor

	ledger   *stats.Ledger
	counters stats.Counters

	done           int
	endTime        sim.Time
	tryGrantQueued bool
	tryGrantFn     func() // pre-bound deferred grant round
	traceName      string
	rec            *trace.Recorder
	cancel         func() error

	// segHints carries the previous run's per-processor ledger segment
	// counts into the next Reset, pre-sizing the new ledger's timelines
	// (capacity only — contents are unaffected).
	segHints []int

	// Reused grant-round scratch: candidate list and claimed-directory
	// flags (with the claim list that un-sets them), cleared after every
	// round.
	candScratch []grantCand
	grantedDirs []bool
	claimedList []int
}

// grantCand is one commit-wait processor considered by a grant round.
type grantCand struct {
	p   *Processor
	tid tokens.TID
}

// SetCancel installs a hook polled periodically (on event-count
// boundaries) while Run executes; when it returns a non-nil error the
// simulation stops and Run returns that error. This is how context
// cancellation reaches a run in flight. A nil hook (the default) adds no
// per-event overhead.
func (s *System) SetCancel(f func() error) { s.cancel = f }

// NewSystem builds a machine from the configuration and wires the trace's
// threads onto the processors. The trace must have exactly
// cfg.Machine.Processors threads.
func NewSystem(cfg config.Config, trace *workload.Trace) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trace.NumThreads() != cfg.Machine.Processors {
		return nil, fmt.Errorf("tcc: trace has %d threads but machine has %d processors",
			trace.NumThreads(), cfg.Machine.Processors)
	}
	geom, err := mem.NewGeometry(uint64(cfg.Machine.L1LineBytes), cfg.Machine.Directories, cfg.Machine.MemoryBytes)
	if err != nil {
		return nil, err
	}
	if err := trace.Validate(geom); err != nil {
		return nil, err
	}
	s := &System{
		cfg:    cfg,
		eng:    sim.NewEngine(),
		geom:   geom,
		vendor: tokens.NewVendor(),
		ledger: stats.NewLedger(cfg.Machine.Processors),
	}
	s.traceName = trace.Name
	s.bus = bus.NewInterconnect(s.eng, cfg.Machine.BusCycles, cfg.Machine.Banks,
		cfg.Machine.Processors, cfg.Machine.Topology)
	s.nbanks = s.bus.Banks()
	s.tryGrantFn = func() {
		s.tryGrantQueued = false
		s.tryGrant()
	}
	s.grantedDirs = make([]bool, cfg.Machine.Directories)

	policy := policyFor(cfg.Gating)
	s.dirs = make([]*directory.Directory, cfg.Machine.Directories)
	for i := range s.dirs {
		s.dirs[i] = directory.New(i, s.eng, s.bus, cfg.Machine, cfg.Gating, policy, &s.counters)
	}

	s.procs = make([]*Processor, cfg.Machine.Processors)
	ports := make([]directory.ProcessorPort, cfg.Machine.Processors)
	for i := range s.procs {
		l1 := cache.MustNew(geom, cache.Config{SizeBytes: cfg.Machine.L1SizeBytes, Ways: cfg.Machine.L1Ways})
		s.procs[i] = newProcessor(i, s, l1, &trace.Threads[i])
		ports[i] = s.procs[i]
	}
	for _, d := range s.dirs {
		d.Attach(ports, s.scheduleTryGrant)
	}
	return s, nil
}

// ErrShapeChange is returned by Reset when the new configuration's
// machine shape differs from the one the System was built for. Callers
// holding a cached System detect it with errors.Is and fall back to fresh
// construction; it never indicates an invalid configuration or trace.
var ErrShapeChange = errors.New("tcc: machine shape changed, System must be rebuilt")

// Reset rewinds the System for a new run on the same machine shape:
// engine, interconnect, token vendor, directories, caches and processors
// all return to their initial state in place, keeping their allocated
// storage, and the trace's threads are rewired onto the processors. The
// gating knobs (enabled, W0, policy, renewal) may differ from the
// previous run — they are plain parameters — but any difference in
// cfg.Machine fails with ErrShapeChange, since the component graph is
// sized by the machine shape. Only the ledger is built fresh: it escapes
// into the previous run's Result, which must stay valid after Reset.
//
// The correctness contract is byte-identity: a Run after Reset produces
// bit-identical cycles, counters and CSV bytes to the same Run on a
// freshly constructed System. The differential goldens over the done set
// pin this.
func (s *System) Reset(cfg config.Config, trace *workload.Trace) error {
	if cfg.Machine != s.cfg.Machine {
		return fmt.Errorf("%w: %+v -> %+v", ErrShapeChange, s.cfg.Machine, cfg.Machine)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if trace.NumThreads() != cfg.Machine.Processors {
		return fmt.Errorf("tcc: trace has %d threads but machine has %d processors",
			trace.NumThreads(), cfg.Machine.Processors)
	}
	if err := trace.Validate(s.geom); err != nil {
		return err
	}
	s.cfg = cfg
	s.eng.Reset()
	s.bus.Reset()
	s.vendor.Reset()
	policy := policyFor(cfg.Gating)
	for _, d := range s.dirs {
		d.Reset(cfg.Gating, policy)
	}
	s.counters = stats.Counters{} // &s.counters held by the directories stays valid
	s.ledger = stats.NewLedgerHinted(cfg.Machine.Processors, s.segHints)
	for i, p := range s.procs {
		p.reset(&trace.Threads[i])
	}
	s.done = 0
	s.endTime = 0
	s.tryGrantQueued = false
	s.traceName = trace.Name
	s.rec = nil
	s.cancel = nil
	s.candScratch = s.candScratch[:0]
	s.claimedList = s.claimedList[:0]
	return nil
}

// Engine exposes the simulation engine (for tests).
func (s *System) Engine() *sim.Engine { return s.eng }

// Processors exposes the processor models (for tests).
func (s *System) Processors() []*Processor { return s.procs }

// Directories exposes the directory models (for tests).
func (s *System) Directories() []*directory.Directory { return s.dirs }

// Bus exposes the interconnect (for tests and stats).
func (s *System) Bus() bus.Interconnect { return s.bus }

// lineBank returns the interconnect bank a line's traffic rides: lines
// interleave across banks by line address.
func (s *System) lineBank(l mem.LineAddr) int {
	return bus.BankOf(uint64(l), s.nbanks)
}

// idBank returns the bank for control traffic with no line address (token
// round trips, gating commands): such messages interleave by the
// originating component's id, keeping them deterministic and spread.
func (s *System) idBank(id int) int {
	return bus.BankOf(uint64(id), s.nbanks)
}

// dirNode returns the interconnect node a directory sits on: directories
// tile round-robin across the processor nodes (directory j beside
// processor j mod P), the placement every topology shares. Bus-class
// interconnects ignore the node ids entirely.
func (s *System) dirNode(di int) int {
	return di % s.cfg.Machine.Processors
}

// Vendor exposes the token vendor (for tests).
func (s *System) Vendor() *tokens.Vendor { return s.vendor }

// SetRecorder attaches a protocol event recorder to the whole machine.
// Call before Run.
func (s *System) SetRecorder(r *trace.Recorder) {
	s.rec = r
	for _, d := range s.dirs {
		d.SetRecorder(r)
	}
}

// threadDone is called by a processor when it retires its last
// transaction.
func (s *System) threadDone() {
	s.done++
	if s.done == len(s.procs) {
		s.endTime = s.eng.Now()
		s.eng.Stop()
	}
}

// scheduleTryGrant defers a grant evaluation to the end of the current
// cycle (coalescing repeated requests within one event cascade): however
// many commits complete or marks are withdrawn this cycle, one batched
// grant round runs, and it considers every candidate.
func (s *System) scheduleTryGrant() {
	if s.tryGrantQueued {
		return
	}
	s.tryGrantQueued = true
	s.eng.ScheduleWithPriority(s.eng.Now(), 1, s.tryGrantFn)
}

// tryGrant implements the Scalable-TCC commit serialization as one
// batched arbitration round: every commit-wait processor is a candidate,
// examined oldest-TID first, and a committer starts writing once it heads
// the TID queue in every directory its write-set touches, none of those
// directories is busy, and no candidate granted earlier in the round has
// claimed them. Oldest-first examination keeps the globally oldest
// committer making progress — the property that keeps commit
// deadlock-free.
func (s *System) tryGrant() {
	cands := s.candScratch[:0]
	for _, p := range s.procs {
		if p.state == stateCommitWait && len(p.commitDirs) > 0 {
			cands = append(cands, grantCand{p, p.tid})
		}
	}
	s.candScratch = cands
	slices.SortFunc(cands, func(a, b grantCand) int {
		if a.tid < b.tid {
			return -1
		}
		if a.tid > b.tid {
			return 1
		}
		return 0
	})
	granted := s.grantedDirs // directories claimed in this round
	claimed := s.claimedList[:0]
	for _, c := range cands {
		ok := true
		for _, di := range c.p.commitDirs {
			d := s.dirs[di]
			head, has := d.Head()
			if !has || head != c.p.id || d.Busy() || granted[di] {
				ok = false
				break
			}
		}
		// Read-set probe: an older committer pending in any directory
		// this transaction read from could still write the read-set, so
		// the grant waits until every such committer has drained
		// (Scalable TCC's validation ordering).
		if ok {
			for _, rd := range c.p.readDirs() {
				if s.dirs[rd].HasOlderMark(c.tid, c.p.id) {
					ok = false
					break
				}
			}
		}
		if ok {
			// Claim the directories before granting: grant() may abort
			// the candidate at validation and clear its commitDirs, so
			// the claims are tracked separately for the round reset.
			for _, di := range c.p.commitDirs {
				granted[di] = true
				claimed = append(claimed, di)
			}
			c.p.grant()
		}
	}
	for _, di := range claimed {
		granted[di] = false
	}
	s.claimedList = claimed
}

// policyFor maps the configured policy kind onto a contention manager.
// W0 parameterizes each policy so the ablation compares like for like.
func policyFor(g config.Gating) cm.Policy {
	switch g.Policy {
	case config.PolicyExponential:
		return cm.ExponentialBackoff{Base: g.W0, Max: g.W0 * 512}
	case config.PolicyLinear:
		return cm.LinearBackoff{Step: g.W0, Max: g.W0 * 512}
	case config.PolicyFixed:
		return fixedWindow{w: g.W0}
	default:
		return cm.GatingAware{W0: g.W0}
	}
}

// fixedWindow gates for a constant W0 regardless of history.
type fixedWindow struct{ w sim.Time }

func (f fixedWindow) Window(_, _ int) sim.Time { return f.w }
func (f fixedWindow) Name() string             { return fmt.Sprintf("fixed(%d)", f.w) }

// Result summarizes one run.
type Result struct {
	// Cycles is the parallel-section execution time (N1 or N2).
	Cycles sim.Time
	// Ledger is the closed per-processor residency ledger.
	Ledger *stats.Ledger
	// Counters aggregates system-wide protocol events.
	Counters stats.Counters
	// PerProc holds each processor's statistics.
	PerProc []ProcStats
	// CachePerProc holds each L1's counters.
	CachePerProc []cache.Stats
	// BusStats holds interconnect counters, aggregated over banks.
	BusStats bus.Stats
	// BankStats holds each interconnect bank's private counters (one
	// entry for the single bus), the per-bank breakdown behind the CSV's
	// bank_util/bank_wait_cycles/bank_rounds columns.
	BankStats []bus.Stats
	// DirStats holds each directory's counters.
	DirStats []directory.Stats
	// TraceName labels the workload.
	TraceName string
	// Gated records whether the gating protocol was enabled.
	Gated bool
}

// Run executes the simulation to completion and returns the result. It
// fails if the event queue drains before every thread finishes (a protocol
// livelock — should be impossible and is asserted against in tests) or if
// cfg.MaxCycles is exceeded.
func (s *System) Run() (*Result, error) {
	for _, p := range s.procs {
		p.start()
	}
	limit := s.cfg.MaxCycles
	if limit <= 0 {
		limit = sim.MaxTime
	}
	if _, err := s.eng.RunUntilChecked(limit, 0, s.cancel); err != nil {
		return nil, err
	}
	if s.done != len(s.procs) {
		if s.eng.Now() >= limit {
			return nil, fmt.Errorf("tcc: simulation exceeded MaxCycles=%d with %d/%d threads done",
				limit, s.done, len(s.procs))
		}
		return nil, fmt.Errorf("tcc: event queue drained with %d/%d threads done (protocol livelock)",
			s.done, len(s.procs))
	}
	s.ledger.Close(s.endTime)
	s.segHints = s.ledger.SegmentCounts()
	res := &Result{
		Cycles:       s.endTime,
		Ledger:       s.ledger,
		Counters:     s.counters,
		PerProc:      make([]ProcStats, len(s.procs)),
		CachePerProc: make([]cache.Stats, len(s.procs)),
		BusStats:     s.bus.Stats(),
		BankStats:    s.bus.BankStats(),
		TraceName:    s.traceName,
		Gated:        s.cfg.Gating.Enabled,
	}
	for i, p := range s.procs {
		res.PerProc[i] = p.Stats()
		res.CachePerProc[i] = p.CacheStats()
	}
	res.DirStats = make([]directory.Stats, len(s.dirs))
	for i, d := range s.dirs {
		res.DirStats[i] = d.Stats()
	}
	return res, nil
}

func sortInts(xs []int) { sort.Ints(xs) }
