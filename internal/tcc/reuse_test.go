package tcc

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/workload"
)

// reuseTrace generates a scaled-down app trace for reuse tests.
func reuseTrace(t *testing.T, app stamp.App, threads int, seed uint64, scale int) *workload.Trace {
	t.Helper()
	spec := stamp.MustSpec(app)
	spec.TotalTxs /= scale
	tr, err := spec.Generate(threads, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// assertSameResult compares two Results field for field. Ledgers are
// compared by close time and residency totals (the pointer identity and
// internal segmentation obviously differ).
func assertSameResult(t *testing.T, label string, fresh, reused *Result) {
	t.Helper()
	if fresh.Ledger.End() != reused.Ledger.End() {
		t.Errorf("%s: ledger end %d (fresh) != %d (reused)", label, fresh.Ledger.End(), reused.Ledger.End())
	}
	if !reflect.DeepEqual(fresh.Ledger.ResidencyTotals(), reused.Ledger.ResidencyTotals()) {
		t.Errorf("%s: residency totals diverge", label)
	}
	f, r := *fresh, *reused
	f.Ledger, r.Ledger = nil, nil
	if !reflect.DeepEqual(f, r) {
		t.Errorf("%s: results diverge:\nfresh:  %+v\nreused: %+v", label, f, r)
	}
}

// TestResetRunBitIdentical is the core reuse contract: one System carried
// across a stream of runs — different apps, seeds, gating variants — must
// produce results identical to a freshly constructed System for every
// run. Any state leaking across Reset shows up here as a divergence.
func TestResetRunBitIdentical(t *testing.T) {
	type step struct {
		app       stamp.App
		seed      uint64
		gated     bool
		w0        sim.Time
		policy    config.PolicyKind
		noRenewal bool
	}
	steps := []step{
		{app: stamp.Intruder, seed: 42, gated: false},
		{app: stamp.Intruder, seed: 42, gated: true, w0: 0},
		{app: stamp.Genome, seed: 7, gated: true, w0: 200},
		{app: stamp.Intruder, seed: 43, gated: true, w0: 0, policy: config.PolicyExponential},
		{app: stamp.Yada, seed: 11, gated: true, w0: 0, noRenewal: true},
		{app: stamp.Intruder, seed: 42, gated: false}, // back to the first shape of knobs
	}
	cfgFor := func(s step) config.Config {
		cfg := config.Default(8)
		if s.gated {
			cfg = cfg.WithGating(s.w0)
			cfg.Gating.Policy = s.policy
			cfg.Gating.DisableRenewal = s.noRenewal
		}
		return cfg
	}

	var reused *System
	for i, s := range steps {
		tr := reuseTrace(t, s.app, 8, s.seed, 16)
		cfg := cfgFor(s)

		fresh, err := NewSystem(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		fres, err := fresh.Run()
		if err != nil {
			t.Fatal(err)
		}

		if reused == nil {
			if reused, err = NewSystem(cfg, tr); err != nil {
				t.Fatal(err)
			}
		} else if err := reused.Reset(cfg, tr); err != nil {
			t.Fatal(err)
		}
		rres, err := reused.Run()
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, fmt.Sprintf("step %d (%s seed %d)", i, s.app, s.seed), fres, rres)
	}
}

// TestRunLeavesTraceUntouched pins the immutability half of the trace
// sharing contract (see workload.Trace): the simulator must never mutate
// thread state in place, since the session trace cache hands one *Trace
// to concurrent (and reused) Systems. The gated intruder run exercises
// aborts, restarts, gating and commits — every path that touches thread
// data — and the trace must come out bit-identical.
func TestRunLeavesTraceUntouched(t *testing.T) {
	tr := reuseTrace(t, stamp.Intruder, 8, 42, 16)
	snapshot := &workload.Trace{Name: tr.Name, Spec: tr.Spec, Threads: make([]workload.Thread, len(tr.Threads))}
	for i, th := range tr.Threads {
		snapshot.Threads[i] = workload.Thread{
			Txs:     make([]workload.Transaction, len(th.Txs)),
			InterTx: append([]int32(nil), th.InterTx...),
		}
		for j, tx := range th.Txs {
			snapshot.Threads[i].Txs[j] = workload.Transaction{
				PC:  tx.PC,
				Ops: append([]workload.Op(nil), tx.Ops...),
			}
		}
	}
	for _, gated := range []bool{false, true} {
		cfg := config.Default(8)
		if gated {
			cfg = cfg.WithGating(0)
		}
		sys, err := NewSystem(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(tr, snapshot) {
		t.Fatal("simulation mutated the workload trace in place")
	}
}

// TestResetShapeChange pins the fallback contract: a Reset onto a
// different machine shape fails with ErrShapeChange (detectable via
// errors.Is) and leaves fresh construction as the caller's path, while a
// Reset onto the same shape with different gating knobs succeeds.
func TestResetShapeChange(t *testing.T) {
	tr8 := reuseTrace(t, stamp.Intruder, 8, 1, 32)
	sys, err := NewSystem(config.Default(8), tr8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	tr16 := reuseTrace(t, stamp.Intruder, 16, 1, 32)
	if err := sys.Reset(config.Default(16), tr16); !errors.Is(err, ErrShapeChange) {
		t.Fatalf("Reset onto 16p shape: err = %v, want ErrShapeChange", err)
	}

	cfgBanked := config.Default(8)
	cfgBanked.Machine.Banks = 4
	if err := sys.Reset(cfgBanked, tr8); !errors.Is(err, ErrShapeChange) {
		t.Fatalf("Reset onto banked shape: err = %v, want ErrShapeChange", err)
	}

	if err := sys.Reset(config.Default(8).WithGating(0), tr8); err != nil {
		t.Fatalf("Reset with new gating knobs on same shape: %v", err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}
