// Package tcc assembles the full simulated machine: in-order TCC
// processors executing transactional workload traces over the bus,
// directory, and token-vendor substrates, with the paper's clock-gating
// protocol layered on top when enabled.
package tcc

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/directory"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tokens"
	"repro/internal/trace"
	"repro/internal/workload"
)

// procState is the processor FSM state.
type procState uint8

const (
	// stateIdle: before the thread's first transaction begins.
	stateIdle procState = iota
	// stateRunTx: executing a transaction body (or inter-tx code).
	stateRunTx
	// stateWaitMiss: stalled on an L1 miss.
	stateWaitMiss
	// stateWaitTID: waiting for the token vendor's TID reply.
	stateWaitTID
	// stateCommitWait: marked in directories, spinning for the grant.
	stateCommitWait
	// stateCommitting: writing the write-set (commit-immune).
	stateCommitting
	// stateGated: clocks stopped by a directory.
	stateGated
	// stateDone: all transactions committed; spinning at the barrier.
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateIdle:
		return "idle"
	case stateRunTx:
		return "runTx"
	case stateWaitMiss:
		return "waitMiss"
	case stateWaitTID:
		return "waitTID"
	case stateCommitWait:
		return "commitWait"
	case stateCommitting:
		return "committing"
	case stateGated:
		return "gated"
	case stateDone:
		return "done"
	default:
		return fmt.Sprintf("procState(%d)", uint8(s))
	}
}

// powerState maps an FSM state to its Table I power state. Spinning —
// whether for the commit grant, the TID, or at the final barrier — burns
// full run power (§VII: "at synchronization points the processor consumes
// full run mode power while executing spin-locks").
func (s procState) powerState() stats.State {
	switch s {
	case stateWaitMiss:
		return stats.StateMiss
	case stateCommitting:
		return stats.StateCommit
	case stateGated:
		return stats.StateGated
	default:
		return stats.StateRun
	}
}

// ProcStats aggregates one processor's protocol activity.
type ProcStats struct {
	Commits          uint64
	Aborts           uint64 // remote invalidation aborts
	ValidationAborts uint64 // aborts taken at the commit validation phase
	SelfAborts       uint64 // aborts executed on wake-up from gating
	Gatings          uint64 // times the clock actually froze
	ReadOnlyCommits  uint64
	MaxAttempts      int // worst-case attempts for a single transaction
}

// Processor models one single-issue in-order TCC core executing a
// transaction stream.
type Processor struct {
	id  int
	sys *System

	l1     *cache.Cache
	thread *workload.Thread

	state procState
	// gen invalidates in-flight asynchronous replies (miss data, TID
	// grants, mark deliveries) whenever the transaction they belong to
	// dies: every abort and freeze increments it.
	gen uint64
	// pending is the cancellable local event (compute burst, hit
	// sequence, restart). Every abort path cancels it, which is what
	// lets the pre-bound advance callbacks below skip the generation
	// guard in-flight bus replies need.
	pending sim.EventRef
	// advanceFn and beginTxFn are the pre-bound local-event callbacks
	// (op completion and inter-tx gap completion): binding them once per
	// processor keeps the per-operation hot path allocation-free.
	advanceFn func()
	beginTxFn func()

	txIdx    int
	opIdx    int
	attempts int // execution attempts of the current transaction

	readSet  map[mem.LineAddr]struct{}
	writeSet map[mem.LineAddr]struct{}
	// versions records, for every line resident in the L1, the commit
	// version of the data the cache holds. readVersions snapshots the
	// version each line had when this transaction first read it; the
	// commit-time validation phase compares those snapshots against the
	// directories' current versions (Scalable TCC's validation).
	versions     map[mem.LineAddr]uint64
	readVersions map[mem.LineAddr]uint64
	// announcedDirs tracks the home directories that have received this
	// transaction's eager store-address announcements (Scalable TCC
	// communicates write addresses during execution; data moves at
	// commit). The announcement is what keeps the directory's "Marked"
	// bit set for the renewal check while the transaction executes.
	announcedDirs map[int]bool

	tid         tokens.TID
	commitDirs  []int // directories the current commit touches, ascending
	commitsLeft int   // outstanding per-directory commit completions

	// Reused scratch storage for the commit path: the sorted line
	// buffers and the directory-dedup flags would otherwise be
	// reallocated on every transaction.
	commitScratch []mem.LineAddr
	readDirsBuf   []int
	dirFlag       []bool

	// Free lists of pooled asynchronous round trips (miss replies,
	// token round trips, intent announcements). Each op pre-binds its
	// callbacks once at creation and parks here between uses, so the
	// per-transaction hot path schedules bus traffic without allocating
	// closures. Ops are pooled (not single pre-bound callbacks on the
	// processor) because an aborted transaction's reply can still be in
	// flight when the restarted transaction issues its own: each
	// in-flight round trip needs its own captured state.
	missFree   []*missOp
	tokenFree  []*tokenOp
	annFree    []*announceOp
	commitFree []*commitOp
	wakeFree   []*wakeOp

	// homeCmp is the pre-bound (home, line) comparator the commit path
	// sorts the write-set with; binding it once keeps SortFunc from
	// allocating a closure per commit.
	homeCmp func(a, b mem.LineAddr) int

	stats ProcStats
}

// missOp is one pooled miss round trip: the request crossing the bus to
// the home directory, and the reply crossing back. The op captures the
// state the old per-miss closures closed over; gen guards it against the
// requesting transaction dying while the round trip is in flight.
type missOp struct {
	p        *Processor
	dir      *directory.Directory
	line     mem.LineAddr
	gen      uint64
	read     bool
	resident bool
	sendFn   func()
	replyFn  func(version uint64)
}

// getMiss takes a miss op off the free list, or builds one (binding its
// two callbacks exactly once).
func (p *Processor) getMiss() *missOp {
	if n := len(p.missFree); n > 0 {
		m := p.missFree[n-1]
		p.missFree = p.missFree[:n-1]
		return m
	}
	m := &missOp{p: p}
	m.sendFn = func() { m.dir.HandleRead(m.p.id, m.line, m.replyFn) }
	m.replyFn = func(version uint64) { m.p.missReply(m, version) }
	return m
}

// tokenOp is one pooled TID round trip: request to the vendor, the
// vendor's service delay, and the reply carrying the TID back. The
// directory reply always eventually fires, so every op returns to the
// pool exactly once (or is abandoned with the engine at end of run).
type tokenOp struct {
	p         *Processor
	gen       uint64
	tid       tokens.TID
	requestFn func() // bus delivery: request arrives at the vendor
	serviceFn func() // after TokenCycles: acquire the TID, send reply
	replyFn   func() // bus delivery: reply lands at the processor
}

func (p *Processor) getToken() *tokenOp {
	if n := len(p.tokenFree); n > 0 {
		t := p.tokenFree[n-1]
		p.tokenFree = p.tokenFree[:n-1]
		return t
	}
	t := &tokenOp{p: p}
	t.requestFn = func() {
		t.p.sys.eng.ScheduleAfter(t.p.sys.cfg.Machine.TokenCycles, t.serviceFn)
	}
	t.serviceFn = func() {
		// The vendor allocates the TID at its service instant even if
		// the requester dies before the reply lands; tokenReply keeps
		// the vendor's books straight in that case.
		t.tid = t.p.sys.vendor.Acquire(t.p.id)
		t.p.sys.counters.TokenRequests++
		t.p.sys.bus.Send(bus.VendorNode, t.p.id, 0, t.replyFn)
	}
	t.replyFn = func() { t.p.tokenReply(t) }
	return t
}

// announceOp is one pooled eager store-address announcement crossing the
// bus to a home directory.
type announceOp struct {
	p   *Processor
	dir *directory.Directory
	gen uint64
	fn  func()
}

func (p *Processor) getAnnounce() *announceOp {
	if n := len(p.annFree); n > 0 {
		a := p.annFree[n-1]
		p.annFree = p.annFree[:n-1]
		return a
	}
	a := &announceOp{p: p}
	a.fn = func() { a.p.announceDelivered(a) }
	return a
}

// commitOp is one pooled per-directory commit leg: the request crossing
// the bus to the home directory, and the completion callback the
// directory fires when its commit walk finishes. One op is in flight per
// directory the commit touches.
type commitOp struct {
	p      *Processor
	dir    *directory.Directory
	group  []mem.LineAddr
	sendFn func()
	doneFn func()
}

func (p *Processor) getCommitOp() *commitOp {
	if n := len(p.commitFree); n > 0 {
		c := p.commitFree[n-1]
		p.commitFree = p.commitFree[:n-1]
		return c
	}
	c := &commitOp{p: p}
	c.sendFn = func() { c.dir.BeginCommit(c.p.id, c.group, c.doneFn) }
	c.doneFn = func() { c.p.commitDirDone(c) }
	return c
}

// commitDirDone retires one directory's commit leg. The op returns to
// the pool first: completing the last leg starts the next transaction,
// whose own commit is then free to reuse it.
func (p *Processor) commitDirDone(c *commitOp) {
	c.dir = nil
	c.group = nil
	p.commitFree = append(p.commitFree, c)
	p.commitsLeft--
	if p.commitsLeft == 0 {
		p.completeCommit()
	}
}

// wakeOp is one pooled PLL-relock wake-up: the delay between an On
// delivery and the frozen processor's self-abort. Ops carry their own
// generation because wake-ups cannot be cancelled: a processor that is
// re-gated before a stale wake-up fires has a new wake-up in flight next
// to the old one, and only the generation captured at scheduling time
// tells them apart.
type wakeOp struct {
	p   *Processor
	gen uint64
	fn  func()
}

func (p *Processor) getWake() *wakeOp {
	if n := len(p.wakeFree); n > 0 {
		w := p.wakeFree[n-1]
		p.wakeFree = p.wakeFree[:n-1]
		return w
	}
	w := &wakeOp{p: p}
	w.fn = func() { w.p.wakeFired(w) }
	return w
}

func (p *Processor) wakeFired(w *wakeOp) {
	gen := w.gen
	p.wakeFree = append(p.wakeFree, w)
	if p.gen != gen || p.state != stateGated {
		return
	}
	p.stats.SelfAborts++
	p.sys.counters.SelfAborts++
	p.sys.rec.Record(trace.Event{At: p.sys.eng.Now(), Kind: trace.EvSelfAbort,
		Proc: p.id, TxPC: p.currentTx().PC})
	p.abortCurrent(true)
}

func newProcessor(id int, sys *System, l1 *cache.Cache, thread *workload.Thread) *Processor {
	p := &Processor{
		id:            id,
		sys:           sys,
		l1:            l1,
		thread:        thread,
		state:         stateIdle,
		readSet:       make(map[mem.LineAddr]struct{}),
		writeSet:      make(map[mem.LineAddr]struct{}),
		versions:      make(map[mem.LineAddr]uint64),
		readVersions:  make(map[mem.LineAddr]uint64),
		announcedDirs: make(map[int]bool),
		dirFlag:       make([]bool, sys.cfg.Machine.Directories),
	}
	p.advanceFn = func() {
		p.pending = sim.EventRef{}
		p.opIdx++
		p.step()
	}
	p.beginTxFn = func() {
		p.pending = sim.EventRef{}
		p.beginTx()
	}
	geom := sys.geom
	p.homeCmp = func(a, b mem.LineAddr) int {
		ha, hb := geom.HomeDir(a), geom.HomeDir(b)
		if ha != hb {
			return ha - hb
		}
		return cmp.Compare(a, b)
	}
	return p
}

// reset rewires the processor onto a new thread and returns every piece
// of run state to its post-newProcessor value, keeping the allocated
// storage: the speculative-set maps and scratch buffers clear in place,
// the L1 flash-invalidates, and the pooled round-trip free lists survive
// (ops that were in flight when the previous run ended were dropped with
// the engine's events and simply leave the pool smaller). The state is
// assigned directly rather than through setState, matching construction:
// a fresh ledger already has every processor in StateRun at time zero.
func (p *Processor) reset(thread *workload.Thread) {
	p.thread = thread
	p.state = stateIdle
	p.gen = 0
	p.pending = sim.EventRef{}
	p.txIdx = 0
	p.opIdx = 0
	p.attempts = 0
	clear(p.readSet)
	clear(p.writeSet)
	clear(p.versions)
	clear(p.readVersions)
	clear(p.announcedDirs)
	p.tid = tokens.TIDNone
	p.commitDirs = p.commitDirs[:0]
	p.commitsLeft = 0
	clear(p.dirFlag)
	p.l1.Reset()
	p.stats = ProcStats{}
}

// ID implements directory.ProcessorPort.
func (p *Processor) ID() int { return p.id }

// State returns the FSM state (for tests).
func (p *Processor) State() string { return p.state.String() }

// Stats returns a copy of the processor's counters.
func (p *Processor) Stats() ProcStats { return p.stats }

// CacheStats returns the L1 counters.
func (p *Processor) CacheStats() cache.Stats { return p.l1.Stats() }

// setState transitions the FSM and the power ledger together.
func (p *Processor) setState(s procState) {
	p.state = s
	p.sys.ledger.Transition(p.id, s.powerState(), p.sys.eng.Now())
}

// cancelPending cancels the outstanding local event, if any.
func (p *Processor) cancelPending() {
	p.pending.Cancel()
	p.pending = sim.EventRef{}
}

// start launches the thread at simulation time zero.
func (p *Processor) start() {
	if len(p.thread.Txs) == 0 {
		p.finishThread()
		return
	}
	p.setState(stateRunTx)
	p.scheduleInterTx()
}

// scheduleInterTx runs the non-transactional gap before the current
// transaction, then begins it.
func (p *Processor) scheduleInterTx() {
	gap := sim.Time(p.thread.InterTx[p.txIdx])
	if gap < 1 {
		gap = 1
	}
	p.pending = p.sys.eng.ScheduleAfter(gap, p.beginTxFn)
}

// beginTx starts (or restarts) the current transaction from its first
// operation with empty speculative state.
func (p *Processor) beginTx() {
	p.opIdx = 0
	p.attempts++
	if p.attempts > p.stats.MaxAttempts {
		p.stats.MaxAttempts = p.attempts
	}
	p.sys.rec.Record(trace.Event{At: p.sys.eng.Now(), Kind: trace.EvTxBegin,
		Proc: p.id, TxPC: p.currentTx().PC})
	p.step()
}

// currentTx returns the transaction being executed.
func (p *Processor) currentTx() *workload.Transaction {
	return &p.thread.Txs[p.txIdx]
}

// step executes operations until one requires waiting (compute burst,
// miss, or transaction end).
func (p *Processor) step() {
	tx := p.currentTx()
	for {
		if p.opIdx >= len(tx.Ops) {
			p.reachCommitPoint()
			return
		}
		op := tx.Ops[p.opIdx]
		switch op.Kind {
		case workload.OpCompute:
			p.pending = p.sys.eng.ScheduleAfter(sim.Time(op.Cycles), p.advanceFn)
			return
		case workload.OpRead, workload.OpWrite:
			write := op.Kind == workload.OpWrite
			hit, inserted := p.accessCache(op.Line, write)
			if write {
				p.writeSet[op.Line] = struct{}{}
				p.announceIntent(op.Line)
			} else {
				p.readSet[op.Line] = struct{}{}
				if hit {
					// Snapshot the version of the cached data the first
					// time this transaction reads the line.
					if _, ok := p.readVersions[op.Line]; !ok {
						p.readVersions[op.Line] = p.versions[op.Line]
					}
				}
			}
			if hit {
				// Hit: pay the L1 latency, continue with the next op.
				p.pending = p.sys.eng.ScheduleAfter(p.sys.cfg.Machine.L1HitCycles, p.advanceFn)
				return
			}
			p.issueMiss(op.Line, !write, inserted)
			return
		default:
			panic(fmt.Sprintf("tcc: processor %d: bad op kind %d", p.id, op.Kind))
		}
	}
}

// accessCache probes the L1 and reports hit/miss. Speculative overflow
// (every way of a set pinned by SM lines) falls back to a non-pinning
// access: the logical write-set still tracks the line, only the cache's
// timing state degrades. Real TCC would serialize the transaction; the
// paper's workloads never overflow a 64 KB L1, but tiny-cache tests do.
func (p *Processor) accessCache(l mem.LineAddr, write bool) (hit, resident bool) {
	res, err := p.l1.Access(l, write)
	if err == nil {
		if res.Evicted {
			delete(p.versions, res.Victim)
		}
		return res.Hit, true
	}
	p.sys.counters.Overflows++
	res, err = p.l1.Access(l, false)
	if err == nil {
		if res.Evicted {
			delete(p.versions, res.Victim)
		}
		return res.Hit, true
	}
	// Even the read allocation failed: bypass the cache entirely and
	// charge a miss.
	p.sys.counters.Overflows++
	return false, false
}

// announceIntent sends the eager store-address announcement for a line's
// home directory the first time this transaction writes a line homed
// there. The message rides the bus; a transaction that dies first drops
// the in-flight announcement via the generation guard.
func (p *Processor) announceIntent(l mem.LineAddr) {
	home := p.sys.geom.HomeDir(l)
	if p.announcedDirs[home] {
		return
	}
	p.announcedDirs[home] = true
	a := p.getAnnounce()
	a.dir, a.gen = p.sys.dirs[home], p.gen
	p.sys.bus.Send(p.id, p.sys.dirNode(home), p.sys.lineBank(l), a.fn)
}

// announceDelivered lands a pooled announcement at its directory. The op
// returns to the pool before the directory runs, so announcement traffic
// the directory triggers can reuse it.
func (p *Processor) announceDelivered(a *announceOp) {
	dir, gen := a.dir, a.gen
	a.dir = nil
	p.annFree = append(p.annFree, a)
	if p.gen != gen {
		return
	}
	dir.AnnounceIntent(p.id)
}

// withdrawIntents clears this transaction's announcements everywhere.
func (p *Processor) withdrawIntents() {
	for di := range p.announcedDirs {
		p.sys.dirs[di].WithdrawIntent(p.id)
	}
	clear(p.announcedDirs)
}

// issueMiss sends a read request to the line's home directory and stalls.
// The reply carries the commit version of the delivered data: it refreshes
// the resident-line version table and, for reads, snapshots the
// transaction's read version.
func (p *Processor) issueMiss(l mem.LineAddr, read, resident bool) {
	p.setState(stateWaitMiss)
	home := p.sys.geom.HomeDir(l)
	m := p.getMiss()
	m.dir = p.sys.dirs[home]
	m.line, m.gen, m.read, m.resident = l, p.gen, read, resident
	p.sys.bus.Send(p.id, p.sys.dirNode(home), p.sys.lineBank(l), m.sendFn)
}

// missReply lands a pooled miss round trip's data back at the processor.
// The op's state is copied out and the op returned to the pool before
// any further work: p.step() below may issue the next miss, which is
// then free to reuse it.
func (p *Processor) missReply(m *missOp, version uint64) {
	l, gen, read, resident := m.line, m.gen, m.read, m.resident
	m.dir = nil
	p.missFree = append(p.missFree, m)
	// The fill lands in the cache whatever the fate of the transaction
	// that requested it.
	if resident && p.l1.Present(l) {
		p.versions[l] = version
	}
	if p.gen != gen {
		return // transaction died while the miss was in flight
	}
	if read {
		if _, ok := p.readVersions[l]; !ok {
			p.readVersions[l] = version
		}
	}
	p.setState(stateRunTx)
	p.opIdx++
	p.step()
}

// reachCommitPoint ends the transaction body. Read-only transactions
// commit locally: with nothing to publish, TCC needs no token and no
// directory writes. Writing transactions request a TID.
func (p *Processor) reachCommitPoint() {
	if len(p.writeSet) == 0 {
		p.stats.ReadOnlyCommits++
		p.completeCommit()
		return
	}
	p.setState(stateWaitTID)
	// Token traffic is pinned to one FIFO on every interconnect shape —
	// bank 0 on the bus models, tile 0's local port on the fabrics, the
	// (0,0) pair on the crossbar (bus.VendorNode selects it): the vendor
	// is one global component, and serializing its round trips preserves
	// the invariant enterCommitQueue depends on — TID replies deliver in
	// acquisition order. Spreading them by requester would let a younger
	// committer's reply overtake an older one's on a less loaded path.
	t := p.getToken()
	t.gen = p.gen
	p.sys.bus.Send(p.id, bus.VendorNode, 0, t.requestFn)
}

// tokenReply lands a pooled token round trip's TID back at the
// processor, or releases it when the requesting transaction died in
// flight. The op returns to the pool first: enterCommitQueue's
// downstream traffic can reuse it.
func (p *Processor) tokenReply(t *tokenOp) {
	gen, tid := t.gen, t.tid
	p.tokenFree = append(p.tokenFree, t)
	if p.gen != gen {
		p.sys.vendor.Release(tid)
		return
	}
	p.tid = tid
	p.enterCommitQueue()
}

// enterCommitQueue places the commit request (the TID-stamped mark) in
// every directory the write-set touches. Marking happens atomically with
// the TID reply: the bus delivers TID replies in acquisition order, so a
// younger committer can never probe a directory before an older
// committer's mark is visible — the property the read-set validation
// probe depends on.
func (p *Processor) enterCommitQueue() {
	p.setState(stateCommitWait)
	p.commitDirs = p.commitDirs[:0]
	for l := range p.writeSet {
		home := p.sys.geom.HomeDir(l)
		if !p.dirFlag[home] {
			p.dirFlag[home] = true
			p.commitDirs = append(p.commitDirs, home)
		}
	}
	for _, di := range p.commitDirs {
		p.dirFlag[di] = false
	}
	sortInts(p.commitDirs)
	for _, di := range p.commitDirs {
		p.sys.dirs[di].Mark(p.id, p.tid)
	}
	p.sys.tryGrant()
}

// readDirs returns the home directories of the read-set, deduplicated,
// in a per-processor scratch buffer valid until the next call. The order
// is unspecified: the only consumer ANDs HasOlderMark over the set, which
// is order-independent.
func (p *Processor) readDirs() []int {
	out := p.readDirsBuf[:0]
	for l := range p.readSet {
		home := p.sys.geom.HomeDir(l)
		if !p.dirFlag[home] {
			p.dirFlag[home] = true
			out = append(out, home)
		}
	}
	for _, di := range out {
		p.dirFlag[di] = false
	}
	p.readDirsBuf = out
	return out
}

// validateReadSet is the Scalable-TCC validation phase, run at the commit
// grant: every line this transaction read must still be at the version it
// was read at. A mismatch means an older transaction committed over the
// read-set while our invalidation was still in flight; the transaction
// aborts instead of committing.
func (p *Processor) validateReadSet() bool {
	for l := range p.readSet {
		home := p.sys.geom.HomeDir(l)
		if p.sys.dirs[home].Version(l) != p.readVersions[l] {
			return false
		}
	}
	return true
}

// grant begins the actual commit: the system has established that this
// processor heads the queue in every directory it needs, that those
// directories are free, and that no older committer is pending in any
// read-set directory. Validation runs first; from there the transaction
// is immune to aborts.
func (p *Processor) grant() {
	if !p.validateReadSet() {
		p.stats.ValidationAborts++
		p.sys.counters.ValidationAborts++
		p.sys.rec.Record(trace.Event{At: p.sys.eng.Now(), Kind: trace.EvValidationAbort,
			Proc: p.id, TxPC: p.currentTx().PC})
		p.abortCurrent(true)
		return
	}
	p.setState(stateCommitting)
	p.commitsLeft = len(p.commitDirs)
	// Partition the write-set per home directory without a map: sorted by
	// (home, line), each directory's lines form one contiguous ascending
	// group of the scratch buffer. The sub-slices stay untouched until
	// every directory's commit walk completes (completeCommit runs only
	// after the last one), so handing them to BeginCommit is safe.
	lines := p.commitScratch[:0]
	for l := range p.writeSet {
		lines = append(lines, l)
	}
	p.commitScratch = lines
	geom := p.sys.geom
	slices.SortFunc(lines, p.homeCmp)
	lo := 0
	for _, di := range p.commitDirs {
		hi := lo
		for hi < len(lines) && geom.HomeDir(lines[hi]) == di {
			hi++
		}
		c := p.getCommitOp()
		c.dir, c.group = p.sys.dirs[di], lines[lo:hi]
		lo = hi
		p.sys.bus.Send(p.id, p.sys.dirNode(di), p.sys.idBank(di), c.sendFn)
	}
}

// completeCommit retires the transaction and moves to the next one.
func (p *Processor) completeCommit() {
	if p.tid != tokens.TIDNone {
		p.sys.vendor.Release(p.tid)
		p.tid = tokens.TIDNone
	}
	// "Abort count field is reset to 0 whenever a thread commits."
	for _, d := range p.sys.dirs {
		d.OnProcessorCommitted(p.id)
	}
	p.sys.rec.Record(trace.Event{At: p.sys.eng.Now(), Kind: trace.EvCommit,
		Proc: p.id, TxPC: p.currentTx().PC})
	p.clearSpec(false)
	p.commitDirs = p.commitDirs[:0]
	p.stats.Commits++
	p.sys.counters.Commits++
	p.attempts = 0
	p.txIdx++
	p.gen++
	if p.txIdx >= len(p.thread.Txs) {
		p.finishThread()
		return
	}
	p.setState(stateRunTx)
	p.scheduleInterTx()
}

func (p *Processor) finishThread() {
	p.setState(stateDone)
	p.sys.threadDone()
}

// clearSpec flash-clears speculative state. abort=true also drops the
// speculatively written lines from the cache.
func (p *Processor) clearSpec(abort bool) {
	for _, l := range p.l1.ClearSpeculative(abort) {
		delete(p.versions, l)
	}
	clear(p.readSet)
	clear(p.writeSet)
	clear(p.readVersions)
	p.withdrawIntents()
}

// abortCurrent kills the running transaction: release the token, withdraw
// commit intent, discard speculative state, and (unless frozen) restart.
func (p *Processor) abortCurrent(restart bool) {
	p.gen++
	p.cancelPending()
	if p.tid != tokens.TIDNone {
		p.sys.vendor.Release(p.tid)
		p.tid = tokens.TIDNone
	}
	if len(p.commitDirs) > 0 {
		for _, di := range p.commitDirs {
			p.sys.dirs[di].Unmark(p.id)
		}
		p.commitDirs = p.commitDirs[:0]
		// Withdrawing a mark can unblock a younger committer.
		p.sys.scheduleTryGrant()
	}
	p.clearSpec(true)
	if restart {
		p.setState(stateRunTx)
		p.beginTx()
	}
}

// DeliverInvalidation implements directory.ProcessorPort. It returns true
// when the invalidation aborts the running transaction: the paper's abort
// condition is a committed line present in the victim's speculative
// read-set.
func (p *Processor) DeliverInvalidation(line mem.LineAddr, aborter, dir int) bool {
	// Drop the line from the cache regardless of transactional outcome.
	p.l1.Invalidate(line)
	delete(p.versions, line)
	switch p.state {
	case stateCommitting, stateDone, stateIdle:
		// Commit-immune, finished, or not yet started: no abort.
		return false
	case stateGated:
		// Already frozen: the transaction is already doomed and will
		// self-abort on wake-up. A frozen processor cannot take a new
		// abort (and must not be re-gated: its entry in the aborting
		// directory would double-count).
		return false
	}
	if _, ok := p.readSet[line]; !ok {
		return false // write-only overlap: TCC write-write is not a conflict
	}
	p.stats.Aborts++
	p.abortCurrent(true)
	return true
}

// DeliverStopClock implements directory.ProcessorPort: freeze the clocks.
// A committing processor drops the signal — by the time a StopClock
// chases a processor that has already won the commit race, freezing it
// would stall the directory it occupies; the directory's local OFF view
// reconciles via noteProcessorAlive. Finished processors also drop it.
func (p *Processor) DeliverStopClock(dir int) bool {
	switch p.state {
	case stateCommitting, stateDone:
		return false
	case stateGated:
		return true // already frozen; the freeze stands
	}
	// The freeze kills whatever the processor was doing. Resources are
	// released immediately (the aborted transaction's token and marks
	// die with it); the restart happens at wake-up via self-abort.
	p.abortCurrent(false)
	p.setState(stateGated)
	p.stats.Gatings++
	return true
}

// DeliverOn implements directory.ProcessorPort: restart the clocks. After
// the PLL relock delay the processor self-aborts the transaction it was
// frozen in ("required to maintain the correctness of the program"; not
// tracked by any directory) and re-executes it.
func (p *Processor) DeliverOn(dir int) {
	if p.state != stateGated {
		return // stale On from a directory with an out-of-date view
	}
	w := p.getWake()
	w.gen = p.gen
	p.sys.eng.ScheduleAfter(p.sys.cfg.Gating.WakeupCycles, w.fn)
}

// Gated implements directory.ProcessorPort.
func (p *Processor) Gated() bool { return p.state == stateGated }

// NoteLineCommitted implements directory.ProcessorPort: record the commit
// version assigned to one of our own committed lines, whose data stays
// valid in the L1 after the commit.
func (p *Processor) NoteLineCommitted(l mem.LineAddr, version uint64) {
	if p.l1.Present(l) {
		p.versions[l] = version
	}
}

// TxInfo implements directory.ProcessorPort: the id of the transaction
// currently executing, or a null reply when gated, idle or finished.
func (p *Processor) TxInfo() (uint64, bool) {
	switch p.state {
	case stateGated, stateDone, stateIdle:
		return 0, false
	}
	return p.currentTx().PC, true
}
