package tcc

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
	"repro/internal/workload"
)

// recordedRun executes a gated high-conflict run with a recorder attached.
func recordedRun(t *testing.T) (*Result, *trace.Recorder) {
	t.Helper()
	spec := workload.Spec{
		Name: "ev", TotalTxs: 120, MeanTxOps: 8, TxOpsJitter: 0.4,
		WriteFrac: 0.5, HotLines: 6, HotFrac: 0.8, ZipfSkew: 1.0,
		PrivateLines: 32, ComputeMean: 3, InterTxMean: 5, TxTypes: 2,
	}
	tr, err := spec.Generate(4, 29)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(config.Default(4).WithGating(0), tr)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	sys.SetRecorder(rec)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

func TestEventCountsMatchCounters(t *testing.T) {
	res, rec := recordedRun(t)
	counts := rec.CountByKind()
	checks := []struct {
		kind trace.Kind
		want uint64
	}{
		{trace.EvCommit, res.Counters.Commits},
		{trace.EvAbort, res.Counters.Aborts},
		{trace.EvGate, res.Counters.Gatings},
		{trace.EvRenew, res.Counters.Renewals},
		{trace.EvUngate, res.Counters.Ungates},
		{trace.EvSelfAbort, res.Counters.SelfAborts},
		{trace.EvInvalidate, res.Counters.Invalidations},
		{trace.EvValidationAbort, res.Counters.ValidationAborts},
	}
	for _, c := range checks {
		if uint64(counts[c.kind]) != c.want {
			t.Errorf("%s events %d, counter %d", c.kind, counts[c.kind], c.want)
		}
	}
}

func TestEventsTimeOrdered(t *testing.T) {
	_, rec := recordedRun(t)
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("events out of order at %d: %v then %v", i, events[i-1], events[i])
		}
	}
}

// TestGateLifecycle: each processor's gate events must alternate — a
// frozen processor cannot be frozen again before waking, and every freeze
// eventually ends in a self-abort (the run finishes, so no processor ends
// frozen).
func TestGateLifecycle(t *testing.T) {
	res, rec := recordedRun(t)
	for p := 0; p < 4; p++ {
		frozen := false
		for _, e := range rec.OfProc(p) {
			switch e.Kind {
			case trace.EvGate:
				if frozen {
					t.Fatalf("proc %d gated while frozen at %d", p, e.At)
				}
				frozen = true
			case trace.EvSelfAbort:
				if !frozen {
					t.Fatalf("proc %d self-aborted while running at %d", p, e.At)
				}
				frozen = false
			case trace.EvCommit, trace.EvAbort, trace.EvValidationAbort, trace.EvTxBegin:
				if frozen {
					t.Fatalf("proc %d executed %s while frozen at %d", p, e.Kind, e.At)
				}
			}
		}
		if frozen {
			t.Fatalf("proc %d ended the run frozen", p)
		}
	}
	if res.Counters.Gatings == 0 {
		t.Fatal("scenario produced no gatings; lifecycle untested")
	}
}

// TestCommitsFollowBegins: a commit must always belong to the most recent
// tx-begin of the same processor and PC.
func TestCommitsFollowBegins(t *testing.T) {
	_, rec := recordedRun(t)
	lastPC := map[int]uint64{}
	began := map[int]bool{}
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.EvTxBegin:
			lastPC[e.Proc] = e.TxPC
			began[e.Proc] = true
		case trace.EvCommit:
			if !began[e.Proc] {
				t.Fatalf("proc %d committed without beginning at %d", e.Proc, e.At)
			}
			if e.TxPC != lastPC[e.Proc] {
				t.Fatalf("proc %d committed pc=0x%x but last began 0x%x", e.Proc, e.TxPC, lastPC[e.Proc])
			}
		}
	}
}

// TestAbortersAreRealCommitters: the aborter recorded in each abort event
// must have a commit no earlier than shortly before the abort (the
// invalidation that kills a victim is sent by a line commit of the
// aborter's transaction, which completes within the commit window).
func TestAbortersAreRealCommitters(t *testing.T) {
	_, rec := recordedRun(t)
	aborts := 0
	for _, e := range rec.Events() {
		if e.Kind != trace.EvAbort {
			continue
		}
		aborts++
		if e.Other == e.Proc {
			t.Fatalf("processor %d aborted itself via invalidation at %d", e.Proc, e.At)
		}
	}
	if aborts == 0 {
		t.Fatal("no aborts recorded; assertion vacuous")
	}
}

// TestUngatesPairWithGates: per (proc, dir), gates and ungates alternate.
func TestUngatesPairWithGates(t *testing.T) {
	_, rec := recordedRun(t)
	type key struct{ proc, dir int }
	off := map[key]bool{}
	for _, e := range rec.Events() {
		k := key{e.Proc, e.Dir}
		switch e.Kind {
		case trace.EvGate:
			off[k] = true
		case trace.EvRenew:
			if !off[k] {
				t.Fatalf("renewal without gate for proc %d dir %d at %d", e.Proc, e.Dir, e.At)
			}
		case trace.EvUngate:
			if !off[k] {
				t.Fatalf("ungate without gate for proc %d dir %d at %d", e.Proc, e.Dir, e.At)
			}
			off[k] = false
		}
	}
}
