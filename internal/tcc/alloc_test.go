package tcc

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stamp"
)

// TestHotPathAllocsBounded guards the pooled asynchronous round trips
// (missOp, tokenOp, announceOp here; replyOp in internal/directory):
// every miss used to allocate three closures, every token round trip
// three more, and every store announcement one, which dominated the
// ~0.3M allocations per campaign cell the ROADMAP tracked. With the
// pools in place this paired run measures ~51k allocations (mostly
// system construction and map growth); before them it measured ~95k.
// The 70k bound keeps noise headroom while failing on any return of
// per-round-trip closure allocation. BENCH_engine.json records the
// trajectory (cell_32p_allocs) on every CI run.
func TestHotPathAllocsBounded(t *testing.T) {
	spec := stamp.MustSpec(stamp.Intruder)
	spec.TotalTxs /= 8
	tr, err := spec.Generate(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		for _, gated := range []bool{false, true} {
			cfg := config.Default(8)
			if gated {
				cfg = cfg.WithGating(0)
			}
			sys, err := NewSystem(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(); err != nil {
				t.Fatal(err)
			}
		}
	}
	const bound = 70_000
	if avg := testing.AllocsPerRun(5, run); avg > bound {
		t.Errorf("paired 8p run allocates %.0f times, bound %d — did a pooled round trip regress to closures?", avg, bound)
	}
}
