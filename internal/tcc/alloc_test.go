package tcc

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stamp"
)

// TestHotPathAllocsBounded guards the pooled protocol hot path: misses,
// token round trips, store announcements, read replies, invalidations,
// per-directory commit legs, gating timers, control-circuit evaluations,
// TxInfo round trips and wake-ups are all pooled ops with pre-bound
// callbacks (missOp/tokenOp/announceOp/commitOp/wakeOp here; replyOp/
// invOp/evalOp/txInfoOp in internal/directory), so simulating costs no
// allocation per event. Two bounds pin the two construction modes:
//
//   - Fresh: NewSystem per run. Measures ~8.3k allocations per pair —
//     essentially all construction (engine, directories, caches, maps).
//     Before the pools this path measured ~95k.
//   - Reused: one System Reset in place between runs, the session pool
//     workers' steady state. Measures ~45 allocations per pair (the
//     ledger, the Result, and amortized map and slice growth).
//
// Any return of per-event closure allocation costs thousands per run and
// fails both bounds. BENCH_engine.json records the trajectory
// (cell_32p_allocs, cell_32p_reuse_allocs) on every CI run.
func TestHotPathAllocsBounded(t *testing.T) {
	spec := stamp.MustSpec(stamp.Intruder)
	spec.TotalTxs /= 8
	tr, err := spec.Generate(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfgFor := func(gated bool) config.Config {
		cfg := config.Default(8)
		if gated {
			cfg = cfg.WithGating(0)
		}
		return cfg
	}

	fresh := func() {
		for _, gated := range []bool{false, true} {
			sys, err := NewSystem(cfgFor(gated), tr)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(); err != nil {
				t.Fatal(err)
			}
		}
	}
	const freshBound = 12_000
	if avg := testing.AllocsPerRun(5, fresh); avg > freshBound {
		t.Errorf("fresh paired 8p run allocates %.0f times, bound %d — did a pooled round trip regress to closures?", avg, freshBound)
	}

	sys, err := NewSystem(cfgFor(false), tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil { // warm the pools and the line arena
		t.Fatal(err)
	}
	reused := func() {
		for _, gated := range []bool{false, true} {
			if err := sys.Reset(cfgFor(gated), tr); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(); err != nil {
				t.Fatal(err)
			}
		}
	}
	const reuseBound = 1_000
	if avg := testing.AllocsPerRun(5, reused); avg > reuseBound {
		t.Errorf("reused paired 8p run allocates %.0f times, bound %d — is Reset rebuilding state a reused System should keep?", avg, reuseBound)
	}
}
