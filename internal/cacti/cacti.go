// Package cacti is an analytical model of the power cost of augmenting an
// L1 data cache with TCC support, reproducing the methodology behind the
// paper's §VII and Figure 3.
//
// The paper used CACTI 5.3 to estimate the overhead of the per-line
// speculative read/write (RW) bits as their tracking resolution varies
// from whole-line (64 B) down to byte (1 B) granularity, and an RTL power
// tool for the store-address FIFO and commit controller. This package
// reproduces the published anchor points analytically:
//
//   - a normal data cache is 100 power units;
//   - a 64 KB cache with word-level (2 B) tracking costs ≈ +5 %;
//   - the complete TCC data cache (RW bits + 1024×10-bit store-address
//     FIFO + commit controller) is conservatively 1.5× the normal cache.
package cacti

import (
	"fmt"
	"math"
)

// BasePower is the normalized power of the unmodified data cache.
const BasePower = 100.0

// Resolutions lists the RW-bit granularities of Figure 3, in bytes per
// tracked unit, from line-level down to byte-level.
var Resolutions = []int{64, 32, 16, 8, 4, 2, 1}

// CacheSizesKB lists the cache capacities Figure 3 sweeps.
var CacheSizesKB = []int{16, 32, 64, 128}

// Config parameterizes the model.
type Config struct {
	// LineBytes is the cache line size (64 in the paper).
	LineBytes int
	// FIFOEntries is the store-address FIFO depth (1024 for 64 KB/64 B).
	FIFOEntries int
	// FIFOBits is the width of one FIFO entry (10 bits).
	FIFOBits int
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{LineBytes: 64, FIFOEntries: 1024, FIFOBits: 10}
}

// ValidResolution reports whether resolutionBytes is a legal RW-bit
// tracking resolution for this configuration: in (0, LineBytes]. The
// pricing functions panic outside this range; callers that accept
// user-supplied technology points (energy.Tech.Validate) check first.
func (c Config) ValidResolution(resolutionBytes int) bool {
	return resolutionBytes > 0 && resolutionBytes <= c.LineBytes
}

// rwBitsPerLine returns the number of extra state bits per line at the
// given tracking resolution: one R and one W bit per tracked unit.
func (c Config) rwBitsPerLine(resolutionBytes int) int {
	if resolutionBytes <= 0 || resolutionBytes > c.LineBytes {
		panic(fmt.Sprintf("cacti: resolution %d out of (0,%d]", resolutionBytes, c.LineBytes))
	}
	units := c.LineBytes / resolutionBytes
	return 2 * units
}

// rwOverheadFraction models the array-power overhead of the RW bits as a
// function of the extra-bit fraction and cache size. Adding bits to a data
// array grows its power sub-linearly: sense amps, decoders and wordline
// drivers are shared, and larger caches amortize periphery better. CACTI
// runs show the marginal cost of a storage bit falling slowly with
// capacity; the calibration constant pins the paper's anchor (64 KB @ 2 B
// ⇒ 5 %).
func (c Config) rwOverheadFraction(resolutionBytes, sizeKB int) float64 {
	dataBits := float64(c.LineBytes * 8)
	extraBits := float64(c.rwBitsPerLine(resolutionBytes))
	bitFraction := extraBits / dataBits
	// Marginal power per added bit relative to a data bit, mildly
	// decreasing with capacity (periphery amortization).
	marginal := 0.40 * math.Pow(64.0/float64(sizeKB), 0.15)
	return bitFraction * marginal
}

// RWBitPower returns the normalized power (base = 100) of a cache of
// sizeKB kilobytes whose RW bits track at resolutionBytes granularity —
// the quantity Figure 3 plots.
func (c Config) RWBitPower(resolutionBytes, sizeKB int) float64 {
	return BasePower * (1 + c.rwOverheadFraction(resolutionBytes, sizeKB))
}

// fifoPower returns the normalized power of the store-address FIFO,
// scaled from the 64 KB reference design (1024 entries × 10 bits ≈ 30
// units, the dominant share of the 1.5× multiplier's 45-unit adder).
func (c Config) fifoPower(sizeKB int) float64 {
	// FIFO capacity scales with the number of lines the cache can hold
	// speculatively; entry width grows logarithmically and is folded
	// into the constant.
	ref := float64(c.FIFOEntries*c.FIFOBits) / (1024 * 10)
	scale := float64(sizeKB) / 64.0
	return 30.0 * ref * scale
}

// controllerPower returns the normalized power of the commit controller
// and related control circuitry (size-independent).
func (c Config) controllerPower() float64 { return 10.0 }

// TCCCachePower returns the total normalized power of a TCC data cache:
// RW bits at the given resolution plus FIFO and commit controller. At the
// paper's design point (64 KB, 2 B tracking) this is ≈ 145–150 units,
// matching the "conservatively 1.5×" figure.
func (c Config) TCCCachePower(resolutionBytes, sizeKB int) float64 {
	return c.RWBitPower(resolutionBytes, sizeKB) + c.fifoPower(sizeKB) + c.controllerPower()
}

// Fig3Row is one curve point of Figure 3.
type Fig3Row struct {
	SizeKB          int
	ResolutionBytes int
	Power           float64 // normalized, base = 100
}

// Figure3 generates the full Figure 3 data set: normalized RW-bit cache
// power for every (cache size, resolution) pair.
func Figure3(cfg Config) []Fig3Row {
	rows := make([]Fig3Row, 0, len(CacheSizesKB)*len(Resolutions))
	for _, kb := range CacheSizesKB {
		for _, res := range Resolutions {
			rows = append(rows, Fig3Row{
				SizeKB:          kb,
				ResolutionBytes: res,
				Power:           cfg.RWBitPower(res, kb),
			})
		}
	}
	return rows
}

// TCCFactor returns the power multiplier of the full TCC data cache over
// a normal one at the given design point — the input the Table I
// derivation consumes as Breakdown.TCCCacheFactor.
func (c Config) TCCFactor(resolutionBytes, sizeKB int) float64 {
	return c.TCCCachePower(resolutionBytes, sizeKB) / BasePower
}
