package cacti

import (
	"math"
	"testing"
)

func TestPaperAnchor64KBWordTracking(t *testing.T) {
	// "For a 64KB cache with word level (2B) state tracking the power
	// increase is limited to 5%."
	cfg := DefaultConfig()
	p := cfg.RWBitPower(2, 64)
	if p < 104 || p > 106 {
		t.Fatalf("64KB @ 2B = %f units, want ~105", p)
	}
}

func TestPaperAnchorTCCFactor(t *testing.T) {
	// "the power of the entire data cache that supports TCC is,
	// conservatively, 1.5 times that of the normal data cache."
	cfg := DefaultConfig()
	f := cfg.TCCFactor(2, 64)
	if f < 1.4 || f > 1.6 {
		t.Fatalf("TCC factor %f, want ~1.5", f)
	}
}

func TestPowerIncreasesWithFinerResolution(t *testing.T) {
	cfg := DefaultConfig()
	for _, kb := range CacheSizesKB {
		prev := -1.0
		// Resolutions are ordered coarse -> fine; power must increase.
		for _, res := range Resolutions {
			p := cfg.RWBitPower(res, kb)
			if p <= prev {
				t.Fatalf("size %dKB: power not increasing at res %dB (%f after %f)",
					kb, res, p, prev)
			}
			prev = p
		}
	}
}

func TestOverheadShrinksWithCacheSize(t *testing.T) {
	// Larger caches amortize periphery: relative RW-bit overhead at a
	// fixed resolution must not grow with capacity.
	cfg := DefaultConfig()
	for _, res := range Resolutions {
		prev := math.Inf(1)
		for _, kb := range CacheSizesKB {
			p := cfg.RWBitPower(res, kb)
			if p > prev {
				t.Fatalf("res %dB: overhead grew with size at %dKB", res, kb)
			}
			prev = p
		}
	}
}

func TestLineResolutionNearlyFree(t *testing.T) {
	// Line-granularity tracking adds only 2 bits per 512-bit line.
	cfg := DefaultConfig()
	if p := cfg.RWBitPower(64, 64); p > 101 {
		t.Fatalf("line-level tracking costs %f units, should be ~free", p)
	}
}

func TestRWBitsPerLine(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct{ res, want int }{
		{64, 2}, {32, 4}, {16, 8}, {8, 16}, {4, 32}, {2, 64}, {1, 128},
	}
	for _, c := range cases {
		if got := cfg.rwBitsPerLine(c.res); got != c.want {
			t.Errorf("rwBitsPerLine(%d) = %d, want %d", c.res, got, c.want)
		}
	}
}

func TestBadResolutionPanics(t *testing.T) {
	cfg := DefaultConfig()
	for _, res := range []int{0, -1, 128} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("resolution %d did not panic", res)
				}
			}()
			cfg.RWBitPower(res, 64)
		}()
	}
}

func TestFigure3Complete(t *testing.T) {
	rows := Figure3(DefaultConfig())
	if len(rows) != len(CacheSizesKB)*len(Resolutions) {
		t.Fatalf("Figure3 has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Power < BasePower || r.Power > BasePower*1.3 {
			t.Fatalf("implausible Figure 3 point: %+v", r)
		}
	}
}

func TestTCCCachePowerComponents(t *testing.T) {
	cfg := DefaultConfig()
	// Total = RW-bit array + FIFO + controller; FIFO scales with size.
	small := cfg.TCCCachePower(2, 16)
	big := cfg.TCCCachePower(2, 128)
	if small >= big {
		t.Fatal("TCC adders should grow with cache size (bigger FIFO)")
	}
	if cfg.TCCCachePower(2, 64) <= cfg.RWBitPower(2, 64) {
		t.Fatal("TCC cache power missing FIFO/controller adders")
	}
}
