package experiments

import (
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcc"
)

// This file defines the serializable form of a completed cell — the one
// wire format shared by the JSONL checkpoint sink (checkpoint.go) and the
// distributed campaign fabric (internal/dist). A record holds the fields
// every sweep on the session reads: the comparison, both runs' cycle,
// counter and interconnect-stat sets, and the per-processor residency
// totals the energy model reduces a ledger to (so re-pricing sweeps like
// the SRPG ablation work on restored results). Integers and
// shortest-form floats round-trip through JSON exactly, and energy is a
// function of the integer residency totals alone, so a restored
// outcome's campaign output — reports, CSV, per-bank stat columns — is
// byte-identical to the freshly simulated one. Per-processor, cache and
// directory breakdowns are not persisted: nothing on the campaign
// surface reads them from an outcome.

// RunRecord is the serializable slice of one tcc.Result the campaign
// outputs depend on. Residency carries the ledger's whole-run per-state
// totals: the energy model reduces a ledger to exactly these integers,
// so a ledger restored from them re-prices (e.g. under the SRPG
// ablation's models) bit-identically to the original. Bus and BankBus
// carry the interconnect counters the CSV's bus/bank columns render.
type RunRecord struct {
	Cycles    sim.Time                    `json:"cycles"`
	Counters  stats.Counters              `json:"counters"`
	Residency [][stats.NumStates]sim.Time `json:"residency"`
	TraceName string                      `json:"trace_name,omitempty"`
	Gated     bool                        `json:"gated"`
	Bus       bus.Stats                   `json:"bus"`
	BankBus   []bus.Stats                 `json:"bank_bus,omitempty"`
}

// NewRunRecord captures the serializable slice of one run result.
func NewRunRecord(r *tcc.Result) RunRecord {
	return RunRecord{
		Cycles:    r.Cycles,
		Counters:  r.Counters,
		Residency: r.Ledger.ResidencyTotals(),
		TraceName: r.TraceName,
		Gated:     r.Gated,
		Bus:       r.BusStats,
		BankBus:   r.BankStats,
	}
}

// Result restores the run result the record was captured from, up to the
// fields the campaign surface reads.
func (rr RunRecord) Result() *tcc.Result {
	return &tcc.Result{
		Cycles:    rr.Cycles,
		Counters:  rr.Counters,
		Ledger:    stats.RestoreLedger(rr.Residency, rr.Cycles),
		TraceName: rr.TraceName,
		Gated:     rr.Gated,
		BusStats:  rr.Bus,
		BankStats: rr.BankBus,
	}
}

// CellRecord is the serializable form of one completed cell: the cell
// itself plus both runs and their §IV comparison. It is the payload of
// one checkpoint JSONL line and of one distributed worker return.
type CellRecord struct {
	Cell       Cell             `json:"cell"`
	Ungated    RunRecord        `json:"ungated"`
	Gated      RunRecord        `json:"gated"`
	Comparison power.Comparison `json:"comparison"`
}

// NewCellRecord captures one completed cell for the wire or the
// checkpoint file.
func NewCellRecord(c Cell, out *core.Outcome) CellRecord {
	return CellRecord{
		Cell:       c,
		Ungated:    NewRunRecord(out.Ungated),
		Gated:      NewRunRecord(out.Gated),
		Comparison: out.Comparison,
	}
}

// Outcome restores the paired-run outcome the record was captured from.
func (r CellRecord) Outcome() *core.Outcome {
	return &core.Outcome{
		Spec: core.RunSpec{
			App:        r.Cell.App,
			Processors: r.Cell.Processors,
			W0:         r.Cell.W0,
			Seed:       r.Cell.Seed,
		},
		Ungated:    r.Ungated.Result(),
		Gated:      r.Gated.Result(),
		Comparison: r.Comparison,
	}
}

// Key identifies the cell for result deduplication: exactly the fields
// that change what the cell computes (see cellKey). Both the checkpoint
// sink and the distributed coordinator dedup returned results by this
// key — two sweeps (or two workers) that computed the same paired run
// share one record.
func (c Cell) Key() string { return cellKey(c) }
