package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/report"
)

// SeedStats aggregates a headline metric across seeds.
type SeedStats struct {
	Mean, Min, Max, StdDev float64
}

func newSeedStats(xs []float64) SeedStats {
	s := SeedStats{Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		return SeedStats{}
	}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		s.StdDev += (x - s.Mean) * (x - s.Mean)
	}
	s.StdDev = math.Sqrt(s.StdDev / float64(len(xs)))
	return s
}

// MultiSeedSummary holds the campaign headline metrics across seeds.
type MultiSeedSummary struct {
	Seeds           []uint64
	SpeedUp         SeedStats
	EnergyReduction SeedStats
	PowerReduction  SeedStats
	// Slowdowns counts slowdown configurations per seed.
	Slowdowns []int
}

// MultiSeed runs the multi-seed aggregation on a one-shot Session; see
// Session.MultiSeed.
func MultiSeed(o Options, seeds []uint64) (*MultiSeedSummary, error) {
	s := NewSession(o)
	defer s.Close()
	return s.MultiSeed(context.Background(), seeds)
}

// MultiSeed runs the full campaign once per seed and aggregates the
// headline metrics, quantifying how sensitive the results are to the
// workload randomness (the paper reports single runs; this is the
// reproduction's error bar). The per-seed campaigns execute as one
// combined cell set on the session's worker pool, so cells from
// different seeds run concurrently instead of seed-by-seed.
func (s *Session) MultiSeed(ctx context.Context, seeds []uint64) (*MultiSeedSummary, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: MultiSeed needs at least one seed")
	}
	// One flat cell list across every seed; starts[i] is where seed i's
	// campaign begins, so outcomes slice back into per-seed campaigns.
	var all []Cell
	starts := make([]int, len(seeds))
	perSeed := make([][]Cell, len(seeds))
	for i, seed := range seeds {
		opt := s.opts
		opt.Seed = seed
		cells, err := ShardCells(opt.Cells(), opt.Shard)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		starts[i] = len(all)
		perSeed[i] = cells
		all = append(all, cells...)
	}
	outs, err := s.RunCells(ctx, all)
	if err != nil {
		return nil, fmt.Errorf("experiments: multi-seed campaign: %w", err)
	}
	ms := &MultiSeedSummary{Seeds: seeds}
	var speed, energy, powr []float64
	for i := range seeds {
		opt := s.opts
		opt.Seed = seeds[i]
		c := &Campaign{
			Options:  opt,
			Cells:    perSeed[i],
			Outcomes: outs[starts[i] : starts[i]+len(perSeed[i])],
		}
		sum := c.Summarize()
		speed = append(speed, sum.AvgSpeedUp)
		energy = append(energy, sum.AvgEnergyReduction)
		powr = append(powr, sum.AvgPowerReduction)
		ms.Slowdowns = append(ms.Slowdowns, sum.Slowdowns)
	}
	ms.SpeedUp = newSeedStats(speed)
	ms.EnergyReduction = newSeedStats(energy)
	ms.PowerReduction = newSeedStats(powr)
	return ms, nil
}

// Render formats the multi-seed summary.
func (ms *MultiSeedSummary) Render() string {
	t := report.Table{
		Title:   fmt.Sprintf("Headline metrics across %d seeds", len(ms.Seeds)),
		Headers: []string{"metric", "mean", "min", "max", "stddev"},
	}
	row := func(name string, s SeedStats, pct bool) {
		f := func(v float64) string {
			if pct {
				return fmt.Sprintf("%.1f%%", v*100)
			}
			return fmt.Sprintf("%.3f", v)
		}
		t.AddRow(name, f(s.Mean), f(s.Min), f(s.Max), f(s.StdDev))
	}
	row("avg speed-up", ms.SpeedUp, false)
	row("avg energy reduction", ms.EnergyReduction, true)
	row("avg power reduction", ms.PowerReduction, true)
	return t.Render()
}
