package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/power"
	"repro/internal/stamp"
	"repro/internal/stats"
	"repro/internal/tcc"
)

// TestCSVRendersDegenerateRatiosAsNA is the regression for the NaN leak:
// power.Compare over empty ledgers divides zero by zero, and %.6f used to
// print the resulting NaN literally into the ratio columns. Degenerate
// rows must render the parseable missing-value marker "NA" instead.
func TestCSVRendersDegenerateRatiosAsNA(t *testing.T) {
	empty := func() *tcc.Result {
		l := stats.NewLedger(1)
		l.Close(0) // zero-length run: every residency total is 0
		return &tcc.Result{Ledger: l}
	}
	out := &core.Outcome{
		Ungated:    empty(),
		Gated:      empty(),
		Comparison: power.Compare(power.Default(), empty().Ledger, empty().Ledger),
	}
	c := &Campaign{
		Cells:    []Cell{{App: stamp.Intruder, Processors: 1}},
		Outcomes: []*core.Outcome{out},
	}
	var b strings.Builder
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if strings.Contains(got, "NaN") || strings.Contains(got, "Inf") {
		t.Fatalf("degenerate row leaks a float non-value:\n%s", got)
	}
	if !strings.Contains(got, "NA") {
		t.Fatalf("degenerate ratios did not render as NA:\n%s", got)
	}
}

// TestCheckpointKeyIncludesTech is the collision regression for the
// energy axis: two cells differing only in technology point record the
// same timings but price to different energy columns, so the checkpoint
// must never replay one as the other. The empty sentinel and the spelled
// out default must collide on purpose — they are the same cell.
func TestCheckpointKeyIncludesTech(t *testing.T) {
	base := Cell{App: stamp.Intruder, Processors: 8, Seed: 7}
	t45 := base
	t45.Tech = "t45"
	if base.Key() == t45.Key() {
		t.Fatal("cells differing only in tech share a checkpoint key")
	}
	spelled := base
	spelled.Tech = energy.DefaultName
	if base.Key() != spelled.Key() {
		t.Fatal("empty tech sentinel and spelled-out default must share a key")
	}
}

// TestTraceCacheIgnoresTech extends the trace-cache key audit to the
// energy axis: Tech changes neither the workload nor the machine timing,
// so cells differing only in technology point must share one generated
// trace — the sharing that makes the reprice golden's fresh campaign
// cheap, and the independence that makes journal re-pricing sound.
func TestTraceCacheIgnoresTech(t *testing.T) {
	s := NewSession(Options{Seed: 7, Scale: 0.02})
	defer s.Close()

	base := Cell{App: stamp.Intruder, Processors: 8, Seed: 7}
	repriced := base
	repriced.Tech = "t32"
	outs, err := s.RunCells(context.Background(), []Cell{base, repriced})
	if err != nil {
		t.Fatal(err)
	}
	s.traceMu.Lock()
	entries := len(s.traces)
	s.traceMu.Unlock()
	if entries != 1 {
		t.Fatalf("cells differing only in tech occupy %d trace-cache entries, want 1", entries)
	}
	// Same timings, different pricing: the cycle counts agree, the energy
	// totals do not (t32 leaks more).
	if outs[0].Comparison.N2 != outs[1].Comparison.N2 {
		t.Fatal("tech changed timing; it must be a pure pricing axis")
	}
	if outs[0].Comparison.Eg == outs[1].Comparison.Eg {
		t.Fatal("distinct techs priced identically")
	}
}

// TestReadJournalRobustness pins the journal reader's tolerance
// contract: corrupt interior lines and a torn final line are skipped
// exactly as checkpoint replay drops them, and duplicated cells
// deduplicate last-record-wins.
func TestReadJournalRobustness(t *testing.T) {
	o := tinyOptions()
	o.Apps = []stamp.App{stamp.Intruder}
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	s := NewSession(o)
	defer s.Close()
	if err := s.SetCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunCells(context.Background(), o.Cells()); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	want := len(lines) - 1 // records, excluding the header
	if want < 1 {
		t.Fatalf("campaign journaled %d records", want)
	}

	// Corrupt interior garbage + duplicate of the first record + torn tail.
	mangled := strings.Join(lines, "\n") + "\n" +
		"{not json}\n" +
		lines[1] + "\n" +
		lines[1][:len(lines[1])/2]
	recs, err := ReadJournal(strings.NewReader(mangled))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != want {
		t.Fatalf("mangled journal yields %d records, want %d", len(recs), want)
	}
	for i, rec := range recs {
		if i > 0 && recs[i-1].Cell.Index > rec.Cell.Index {
			t.Fatal("journal records not in canonical index order")
		}
	}

	// A version from the future is refused, not misread.
	future := strings.Replace(lines[0], `"version":3`, `"version":99`, 1)
	if future == lines[0] {
		t.Fatalf("header %q does not carry version 3", lines[0])
	}
	if _, err := ReadJournal(strings.NewReader(future + "\n" + lines[1])); err == nil {
		t.Fatal("foreign journal version accepted")
	}
	if _, err := ReadJournal(strings.NewReader("")); err == nil {
		t.Fatal("empty journal accepted")
	}
}

// TestRepriceRoundTripEquivalence is the RestoreLedger round-trip pin at
// the engine level: re-pricing a journal under an empty tech list (each
// record's own recorded tech) must reproduce the original campaign's CSV
// byte for byte — restored integer residency totals price identically to
// live ones.
func TestRepriceRoundTripEquivalence(t *testing.T) {
	o := tinyOptions()
	o.Apps = []stamp.App{stamp.Intruder, stamp.Vacation}
	o.Tech = "t45"
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	s := NewSession(o)
	defer s.Close()
	if err := s.SetCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	cells := o.Cells()
	outs, err := s.RunCells(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	live := &Campaign{Options: o, Cells: cells, Outcomes: outs}
	var liveCSV strings.Builder
	if err := live.WriteCSV(&liveCSV); err != nil {
		t.Fatal(err)
	}

	restored, err := RepriceFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	var restoredCSV strings.Builder
	if err := restored.WriteCSV(&restoredCSV); err != nil {
		t.Fatal(err)
	}
	if liveCSV.String() != restoredCSV.String() {
		t.Fatalf("round-trip CSV diverges:\nlive:\n%s\nrestored:\n%s", liveCSV.String(), restoredCSV.String())
	}
}
