package experiments

import (
	"testing"

	"repro/internal/stamp"
)

// TestShapeRegression guards the paper's qualitative claims at a reduced
// workload scale: the mechanism must keep winning in the places the paper
// says it wins. If a simulator or workload change breaks one of these,
// the reproduction has regressed even if every unit test passes.
func TestShapeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign; skipped with -short")
	}
	o := Options{Seed: 42, Scale: 0.25}
	c, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}

	byConfig := map[string]float64{} // energy ratio per app/np
	speedups := map[string]float64{}
	for _, out := range c.Outcomes {
		key := string(out.Spec.App)
		if out.Spec.Processors == 16 {
			byConfig[key] = out.Comparison.EnergyRatio
			speedups[key] = out.Comparison.SpeedUp
		}
	}

	// Claim 1: at 16 cores, gating saves energy for every paper app.
	for _, app := range stamp.PaperApps() {
		if r := byConfig[string(app)]; r <= 1.0 {
			t.Errorf("%s/16p energy ratio %.3f: gating did not save energy", app, r)
		}
	}

	// Claim 2: the high-conflict app (intruder) saves the most energy at
	// 16 cores.
	if byConfig["intruder"] < byConfig["genome"] || byConfig["intruder"] < byConfig["yada"] {
		t.Errorf("intruder (%.3f) is not the biggest saver (genome %.3f, yada %.3f)",
			byConfig["intruder"], byConfig["genome"], byConfig["yada"])
	}

	// Claim 3: the campaign average shows both a speed-up and an energy
	// reduction.
	s := c.Summarize()
	if s.AvgSpeedUp <= 1.0 {
		t.Errorf("average speed-up %.3f: gating slowed the machine down", s.AvgSpeedUp)
	}
	if s.AvgEnergyReduction <= 0 {
		t.Errorf("average energy reduction %.3f%%: no savings", s.AvgEnergyReduction*100)
	}

	// Claim 4: slowdowns are the exception, not the rule (paper: 1 of 9).
	if s.Slowdowns > 3 {
		t.Errorf("%d of %d configurations slowed down", s.Slowdowns, len(c.Outcomes))
	}

	// Claim 5: gating-aware CM removes a substantial share of aborts.
	for _, out := range c.Outcomes {
		ug, g := out.Ungated.Counters.Aborts, out.Gated.Counters.Aborts
		if out.Spec.Processors == 16 && g >= ug {
			t.Errorf("%s/16p: aborts did not drop (%d -> %d)", out.Spec.App, ug, g)
		}
	}
}
