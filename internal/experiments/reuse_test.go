package experiments

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/stamp"
)

// TestShapeInterleaveReuseByteIdentical pins the shape-change fallback of
// the per-worker System cache: a single worker streaming cells that
// interleave 8p/32p/128p machines, banks 0/1/4 interconnects and
// bus/mesh/xbar topologies must transparently rebuild its cached System
// on every shape change — never corrupt it — and produce campaign CSV
// bytes identical to a session running every cell on a fresh System.
// Topology rides in Machine, so the struct-equality shape check catches a
// bus→mesh→bus interleave with no extra plumbing; this test is what pins
// that.
func TestShapeInterleaveReuseByteIdentical(t *testing.T) {
	shapes := []struct {
		procs, banks int
		topo         string
	}{
		{8, 0, ""}, {32, 4, ""}, {8, 1, ""}, {8, 0, "mesh"}, {128, 4, ""},
		{32, 1, ""}, {8, 0, "xbar"}, {8, 4, ""}, {128, 1, ""}, {32, 0, ""},
		{8, 0, ""}, // back to the first shape: the cache must have survived the churn
	}
	cells := make([]Cell, len(shapes))
	for i, sh := range shapes {
		cells[i] = Cell{
			Index: i, ID: fmt.Sprintf("shape%d", i),
			App: stamp.Intruder, Processors: sh.procs, Banks: sh.banks,
			Topology: sh.topo, Seed: 7,
		}
	}
	runCSV := func(noReuse bool) string {
		o := Options{Seed: 7, Scale: 0.02, Workers: 1, NoSystemReuse: noReuse}
		s := NewSession(o)
		defer s.Close()
		outs, err := s.RunCells(context.Background(), cells)
		if err != nil {
			t.Fatalf("noReuse=%v: %v", noReuse, err)
		}
		camp := &Campaign{Options: o, Cells: cells, Outcomes: outs}
		var buf strings.Builder
		if err := camp.WriteCSV(&buf); err != nil {
			t.Fatalf("noReuse=%v CSV: %v", noReuse, err)
		}
		return buf.String()
	}
	reused, fresh := runCSV(false), runCSV(true)
	if reused == fresh {
		return
	}
	r, f := strings.Split(reused, "\n"), strings.Split(fresh, "\n")
	if len(r) != len(f) {
		t.Fatalf("row counts diverge: %d (reused) vs %d (fresh)", len(r), len(f))
	}
	for i := range r {
		if r[i] != f[i] {
			t.Fatalf("first diverging row %d (%s):\nreused: %s\nfresh:  %s",
				i, cells[i-1].Label(), r[i], f[i])
		}
	}
}
