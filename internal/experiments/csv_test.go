package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	c, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("output not parseable CSV: %v", err)
	}
	if len(records) != len(c.Outcomes)+1 {
		t.Fatalf("%d records for %d outcomes", len(records), len(c.Outcomes))
	}
	if records[0][0] != "app" || records[0][4] != "speedup" {
		t.Fatalf("header %v", records[0])
	}
	for _, rec := range records[1:] {
		if len(rec) != len(records[0]) {
			t.Fatalf("ragged row %v", rec)
		}
	}
}

// TestAppendCSVValidatesFileHeader pins the append-safety contract: when
// the target can be read back, AppendCSV must refuse a header mismatch
// instead of producing a silently corrupt concatenation, must accept its
// own header, and must leave plain writers (shard buffers) untouched.
func TestAppendCSVValidatesFileHeader(t *testing.T) {
	c, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	open := func(name, content string) *os.File {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	// Mismatched header: refused, file untouched.
	foreign := "app,processors,bogus\nx,y,z\n"
	f := open("foreign.csv", foreign)
	if err := c.AppendCSV(f); err == nil {
		t.Fatal("AppendCSV accepted a foreign header")
	}
	f.Close()
	raw, err := os.ReadFile(filepath.Join(dir, "foreign.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != foreign {
		t.Fatalf("refused append still modified the file:\n%s", raw)
	}

	// Matching header: rows append to a valid CSV.
	var own strings.Builder
	if err := c.WriteCSV(&own); err != nil {
		t.Fatal(err)
	}
	f = open("own.csv", own.String())
	if err := c.AppendCSV(f); err != nil {
		t.Fatalf("AppendCSV refused its own header: %v", err)
	}
	f.Close()
	raw, err = os.ReadFile(filepath.Join(dir, "own.csv"))
	if err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(string(raw))).ReadAll()
	if err != nil {
		t.Fatalf("appended file not parseable CSV: %v", err)
	}
	if want := 1 + 2*len(c.Outcomes); len(records) != want {
		t.Fatalf("%d records after append, want %d", len(records), want)
	}

	// Empty file: nothing to validate, rows only (the shard-N case).
	f = open("empty.csv", "")
	if err := c.AppendCSV(f); err != nil {
		t.Fatalf("AppendCSV refused an empty file: %v", err)
	}
	f.Close()

	// Plain writer (no ReadSeeker): legacy concat behavior preserved.
	var b strings.Builder
	if err := c.AppendCSV(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "app,processors") {
		t.Fatal("plain-writer append emitted a header")
	}
}

// TestAppendCSVAcceptsHeaderlessShardFile pins the accumulate-rows
// workflow: a shard-N file (rows only, no header) must accept further
// appends — only an actual mismatched header row is a refusal.
func TestAppendCSVAcceptsHeaderlessShardFile(t *testing.T) {
	c, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard1.csv")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := c.AppendCSV(f); err != nil {
		t.Fatalf("first rows-only append: %v", err)
	}
	if err := c.AppendCSV(f); err != nil {
		t.Fatalf("append onto a headerless rows file refused: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(string(raw))).ReadAll()
	if err != nil {
		t.Fatalf("accumulated file not parseable CSV: %v", err)
	}
	if want := 2 * len(c.Outcomes); len(records) != want {
		t.Fatalf("%d records, want %d", len(records), want)
	}
}
