package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	c, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("output not parseable CSV: %v", err)
	}
	if len(records) != len(c.Outcomes)+1 {
		t.Fatalf("%d records for %d outcomes", len(records), len(c.Outcomes))
	}
	if records[0][0] != "app" || records[0][4] != "speedup" {
		t.Fatalf("header %v", records[0])
	}
	for _, rec := range records[1:] {
		if len(rec) != len(records[0]) {
			t.Fatalf("ragged row %v", rec)
		}
	}
}
