package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestNewSeedStats(t *testing.T) {
	s := newSeedStats([]float64{1, 2, 3})
	if s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("stats %+v", s)
	}
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("stddev %f, want %f", s.StdDev, want)
	}
	if z := newSeedStats(nil); z.Mean != 0 || z.StdDev != 0 {
		t.Fatalf("empty stats %+v", z)
	}
}

func TestMultiSeed(t *testing.T) {
	o := tinyOptions()
	o.Apps = nil // default three apps at tiny scale
	ms, err := MultiSeed(o, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Seeds) != 3 || len(ms.Slowdowns) != 3 {
		t.Fatalf("summary %+v", ms)
	}
	if ms.SpeedUp.Mean <= 0 {
		t.Fatalf("speed-up mean %f", ms.SpeedUp.Mean)
	}
	if ms.SpeedUp.Min > ms.SpeedUp.Mean || ms.SpeedUp.Max < ms.SpeedUp.Mean {
		t.Fatal("min/max do not bracket the mean")
	}
	out := ms.Render()
	for _, want := range []string{"across 3 seeds", "avg speed-up", "avg energy reduction", "stddev"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMultiSeedNeedsSeeds(t *testing.T) {
	if _, err := MultiSeed(tinyOptions(), nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}
