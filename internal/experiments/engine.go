package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bus"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/workload"
)

// This file defines the campaign's unit of work — the run-cell — and the
// pure enumeration/partitioning logic around it: canonical cell order,
// per-cell seed derivation, and sharding. Execution lives in session.go:
// a Session owns the worker pool, the trace cache and the checkpoint
// sink, and every sweep in this package (campaign, scenario matrix,
// Fig7, multi-seed, ablations) runs its cells through one.

// Cell is one independently runnable unit of a campaign: a paired
// (ungated vs gated) simulation of one application at one machine size,
// with its own gating window, contention level and workload seed. Cells
// carry everything needed to run them — including the machine-config
// variant, named rather than held as a closure — so they can be
// distributed across goroutines or machines and checkpointed to disk
// without shared state.
type Cell struct {
	// Index is the cell's position in the campaign's canonical order.
	// Results are merged by Index, which is what makes parallel and
	// sharded execution deterministic.
	Index int
	// ID optionally names the scenario-matrix case this cell executes
	// (e.g. "M00042"); empty for plain paper campaigns.
	ID string
	// App is the workload preset.
	App stamp.App
	// Processors is the core count.
	Processors int
	// W0 is the gating window constant (0 means the default, 8).
	W0 sim.Time
	// Contention adjusts the workload's conflict intensity; the empty
	// string means ContentionBase (the preset as published).
	Contention Contention
	// Banks selects the cell's interconnect model: 0 means the single
	// split bus, a positive power of two the banked bus with that many
	// banks. Banks changes the machine, never the workload, so the
	// session's trace cache ignores it (and the checkpoint key must not:
	// see cellKey).
	Banks int
	// Topology selects the cell's interconnect shape: "" or "bus" means
	// whatever Banks selects, "xbar"/"mesh"/"ring" (optionally sized,
	// e.g. "mesh:4x4") the point-to-point fabrics. Like Banks it changes
	// the machine, never the workload — the trace cache ignores it, the
	// checkpoint key must not (see cellKey). Non-bus topologies require
	// Banks=0 (config validation enforces it).
	Topology string
	// Tech names the energy.Tech technology point that prices this cell's
	// residency ledgers; empty means the default point (the paper's
	// Table I model). Like Banks it is a machine-pricing axis, not a
	// workload axis — but unlike Banks it does not even change timing, so
	// both the trace cache AND the simulation ignore it entirely: only the
	// pricing layer (core.RunSpec.Model) and the checkpoint key see it.
	// That independence is what makes journal re-pricing sound.
	Tech string
	// Seed drives workload generation for this cell.
	Seed uint64
	// Variant optionally names a machine-config deviation (see
	// variantConfigure): "policy=<kind>" swaps the gating-window policy,
	// "renewal=off" disables the renewal mechanism. Naming the deviation
	// instead of carrying a closure keeps cells serializable, which the
	// checkpoint sink depends on.
	Variant string
}

// Label renders the cell for figures, tables and error messages:
// "app/NNp" for paper-campaign cells, with "/W0=N", the contention level
// and "[variant]" appended when they deviate from the defaults.
func (c Cell) Label() string {
	s := fmt.Sprintf("%s/%dp", c.App, c.Processors)
	if c.W0 != 0 {
		s += fmt.Sprintf("/W0=%d", c.W0)
	}
	if c.Contention != "" && c.Contention != ContentionBase {
		s += "/" + string(c.Contention)
	}
	if c.Banks > 0 {
		s += fmt.Sprintf("/banks=%d", c.Banks)
	}
	if c.Topology != "" && c.Topology != bus.TopoBus {
		s += "/topo=" + c.Topology
	}
	if c.Tech != "" && c.Tech != energy.DefaultName {
		s += "/tech=" + c.Tech
	}
	if c.Variant != "" {
		s += "[" + c.Variant + "]"
	}
	return s
}

// Cell variants: the named machine-config deviations a cell may carry.
const (
	// VariantPolicyPrefix + a config.PolicyKind selects a gating-window
	// policy other than the configuration default.
	VariantPolicyPrefix = "policy="
	// VariantRenewalOff disables the gating-period renewal mechanism.
	VariantRenewalOff = "renewal=off"
)

// PolicyVariant names the cell variant selecting the given gating-window
// policy.
func PolicyVariant(pk config.PolicyKind) string {
	return VariantPolicyPrefix + string(pk)
}

// variantConfigure resolves a cell's Variant into the machine-config
// mutation applied to both runs of the pair. The empty variant means "no
// deviation" and returns a nil mutator.
func variantConfigure(v string) (func(*config.Config), error) {
	switch {
	case v == "":
		return nil, nil
	case v == VariantRenewalOff:
		return func(c *config.Config) { c.Gating.DisableRenewal = true }, nil
	case strings.HasPrefix(v, VariantPolicyPrefix):
		pk := config.PolicyKind(strings.TrimPrefix(v, VariantPolicyPrefix))
		switch pk {
		case config.PolicyGatingAware, config.PolicyExponential,
			config.PolicyLinear, config.PolicyFixed:
			return func(c *config.Config) { c.Gating.Policy = pk }, nil
		}
		return nil, fmt.Errorf("experiments: unknown policy in cell variant %q", v)
	}
	return nil, fmt.Errorf("experiments: unknown cell variant %q", v)
}

// SplitMix64 is the SplitMix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators"). It is used to derive statistically
// independent per-cell seeds from one campaign seed.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CellSeed derives the workload seed of cell index from the campaign
// seed. The derivation depends only on (campaign seed, cell index), never
// on execution order, so any partition of the campaign across workers or
// shards reproduces the same per-cell workloads.
func CellSeed(campaign uint64, index int) uint64 {
	return SplitMix64(campaign + uint64(index)*0x9e3779b97f4a7c15)
}

// Cells enumerates the campaign's run-cells in canonical order (apps
// outer, processor counts inner — the order the paper's figures present).
// With DeriveSeeds set, each cell gets an independent seed via CellSeed;
// otherwise every cell shares the campaign seed, matching the paper's
// single-seed methodology.
func (o Options) Cells() []Cell {
	var cells []Cell
	for _, app := range o.apps() {
		for _, np := range o.processors() {
			c := Cell{
				Index:      len(cells),
				App:        app,
				Processors: np,
				W0:         o.W0,
				Contention: ContentionBase,
				Banks:      o.Banks,
				Topology:   o.Topology,
				Tech:       o.Tech,
				Seed:       o.Seed,
			}
			if o.DeriveSeeds {
				c.Seed = CellSeed(o.Seed, c.Index)
			}
			cells = append(cells, c)
		}
	}
	return cells
}

// Shard selects one contiguous 1/Count slice of a campaign's cells, for
// splitting a campaign across machines. The zero value means "the whole
// campaign". Because shards are contiguous in canonical cell order,
// concatenating the shard outputs 0..Count-1 reproduces the unsharded
// output exactly.
type Shard struct {
	// Index is this shard's position, 0 <= Index < Count.
	Index int
	// Count is the total number of shards; 0 disables sharding.
	Count int
}

func (s Shard) enabled() bool { return s.Count != 0 }

// Validate checks the shard coordinates.
func (s Shard) Validate() error {
	if !s.enabled() {
		if s.Index != 0 {
			return fmt.Errorf("experiments: shard index %d with zero count", s.Index)
		}
		return nil
	}
	if s.Count < 0 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("experiments: shard %d/%d out of range", s.Index, s.Count)
	}
	return nil
}

// ShardCells returns the contiguous slice of cells owned by shard s.
// Slices are balanced to within one cell.
func ShardCells(cells []Cell, s Shard) ([]Cell, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.enabled() {
		return cells, nil
	}
	n := len(cells)
	lo := s.Index * n / s.Count
	hi := (s.Index + 1) * n / s.Count
	return cells[lo:hi], nil
}

func (o Options) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return 1
}

// ScaledSpec returns app's generator parameters with the transaction
// count multiplied by scale, floored at threads. This is the one sizing
// rule every campaign cell and public scaled-trace helper shares, so a
// single experiment can reproduce a campaign cell's workload exactly.
func ScaledSpec(app stamp.App, threads int, scale float64) (workload.Spec, error) {
	spec, err := stamp.Spec(app)
	if err != nil {
		return workload.Spec{}, err
	}
	if scale > 0 && scale != 1.0 {
		spec.TotalTxs = int(float64(spec.TotalTxs) * scale)
		if spec.TotalTxs < threads {
			spec.TotalTxs = threads
		}
	}
	return spec, nil
}

// RunCells executes the given cells on a one-shot Session across
// o.Workers goroutines (1 or fewer means sequential) and returns outcomes
// in the cells' given order. Each cell is self-contained, so the schedule
// cannot affect results: for the same cells, every worker count produces
// identical outcomes. On failure the error of the lowest-index failing
// cell is returned, so error reporting is deterministic too.
//
// Callers running more than one sweep should create a Session themselves
// and reuse it, which also reuses its trace cache.
func (o Options) RunCells(cells []Cell) ([]*core.Outcome, error) {
	s := NewSession(o)
	defer s.Close()
	return s.RunCells(context.Background(), cells)
}

// Run executes the campaign's (possibly sharded) cell set on a one-shot
// Session. Sequential (Workers <= 1) and parallel runs produce
// byte-identical reports and CSV for the same Options. Run wraps
// NewSession(o).Run(context.Background()); use a Session directly for
// streaming results, cancellation, or checkpoint/resume.
func Run(o Options) (*Campaign, error) {
	s := NewSession(o)
	defer s.Close()
	return s.Run(context.Background())
}
