package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/workload"
)

// This file is the campaign execution engine: a campaign is split into
// independent run-cells, each cell is one paired (ungated vs gated)
// simulation, and cells execute across a worker pool. Results are merged
// in canonical cell order, so a parallel run is byte-identical to a
// sequential one, and a sharded run concatenates cleanly with its sibling
// shards.

// Cell is one independently runnable unit of a campaign: a paired
// (ungated vs gated) simulation of one application at one machine size,
// with its own gating window, contention level and workload seed. Cells
// carry everything needed to run them, so they can be distributed across
// goroutines or machines without shared state.
type Cell struct {
	// Index is the cell's position in the campaign's canonical order.
	// Results are merged by Index, which is what makes parallel and
	// sharded execution deterministic.
	Index int
	// ID optionally names the scenario-matrix case this cell executes
	// (e.g. "M00042"); empty for plain paper campaigns.
	ID string
	// App is the workload preset.
	App stamp.App
	// Processors is the core count.
	Processors int
	// W0 is the gating window constant (0 means the default, 8).
	W0 sim.Time
	// Contention adjusts the workload's conflict intensity; the empty
	// string means ContentionBase (the preset as published).
	Contention Contention
	// Seed drives workload generation for this cell.
	Seed uint64
}

// Label renders the cell for figures, tables and error messages:
// "app/NNp" for paper-campaign cells, with "/W0=N" and the contention
// level appended when they deviate from the defaults.
func (c Cell) Label() string {
	s := fmt.Sprintf("%s/%dp", c.App, c.Processors)
	if c.W0 != 0 {
		s += fmt.Sprintf("/W0=%d", c.W0)
	}
	if c.Contention != "" && c.Contention != ContentionBase {
		s += "/" + string(c.Contention)
	}
	return s
}

// SplitMix64 is the SplitMix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators"). It is used to derive statistically
// independent per-cell seeds from one campaign seed.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CellSeed derives the workload seed of cell index from the campaign
// seed. The derivation depends only on (campaign seed, cell index), never
// on execution order, so any partition of the campaign across workers or
// shards reproduces the same per-cell workloads.
func CellSeed(campaign uint64, index int) uint64 {
	return SplitMix64(campaign + uint64(index)*0x9e3779b97f4a7c15)
}

// Cells enumerates the campaign's run-cells in canonical order (apps
// outer, processor counts inner — the order the paper's figures present).
// With DeriveSeeds set, each cell gets an independent seed via CellSeed;
// otherwise every cell shares the campaign seed, matching the paper's
// single-seed methodology.
func (o Options) Cells() []Cell {
	var cells []Cell
	for _, app := range o.apps() {
		for _, np := range o.processors() {
			c := Cell{
				Index:      len(cells),
				App:        app,
				Processors: np,
				W0:         o.W0,
				Contention: ContentionBase,
				Seed:       o.Seed,
			}
			if o.DeriveSeeds {
				c.Seed = CellSeed(o.Seed, c.Index)
			}
			cells = append(cells, c)
		}
	}
	return cells
}

// Shard selects one contiguous 1/Count slice of a campaign's cells, for
// splitting a campaign across machines. The zero value means "the whole
// campaign". Because shards are contiguous in canonical cell order,
// concatenating the shard outputs 0..Count-1 reproduces the unsharded
// output exactly.
type Shard struct {
	// Index is this shard's position, 0 <= Index < Count.
	Index int
	// Count is the total number of shards; 0 disables sharding.
	Count int
}

func (s Shard) enabled() bool { return s.Count != 0 }

// Validate checks the shard coordinates.
func (s Shard) Validate() error {
	if !s.enabled() {
		if s.Index != 0 {
			return fmt.Errorf("experiments: shard index %d with zero count", s.Index)
		}
		return nil
	}
	if s.Count < 0 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("experiments: shard %d/%d out of range", s.Index, s.Count)
	}
	return nil
}

// ShardCells returns the contiguous slice of cells owned by shard s.
// Slices are balanced to within one cell.
func ShardCells(cells []Cell, s Shard) ([]Cell, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.enabled() {
		return cells, nil
	}
	n := len(cells)
	lo := s.Index * n / s.Count
	hi := (s.Index + 1) * n / s.Count
	return cells[lo:hi], nil
}

func (o Options) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return 1
}

// runCell executes one cell's paired simulation.
func (o Options) runCell(c Cell) (*core.Outcome, error) {
	rs, err := o.cellSpec(c)
	if err != nil {
		return nil, err
	}
	return core.RunPair(rs)
}

// ScaledSpec returns app's generator parameters with the transaction
// count multiplied by scale, floored at threads. This is the one sizing
// rule every campaign cell and public scaled-trace helper shares, so a
// single experiment can reproduce a campaign cell's workload exactly.
func ScaledSpec(app stamp.App, threads int, scale float64) (workload.Spec, error) {
	spec, err := stamp.Spec(app)
	if err != nil {
		return workload.Spec{}, err
	}
	if scale > 0 && scale != 1.0 {
		spec.TotalTxs = int(float64(spec.TotalTxs) * scale)
		if spec.TotalTxs < threads {
			spec.TotalTxs = threads
		}
	}
	return spec, nil
}

// cellSpec builds the core.RunSpec for one cell, generating a custom
// trace when the campaign scale or the cell's contention level deviates
// from the preset.
func (o Options) cellSpec(c Cell) (core.RunSpec, error) {
	rs := core.RunSpec{App: c.App, Processors: c.Processors, Seed: c.Seed, W0: c.W0}
	scaled := o.Scale > 0 && o.Scale != 1.0
	shaped := c.Contention != "" && c.Contention != ContentionBase
	if !scaled && !shaped {
		return rs, nil
	}
	spec, err := ScaledSpec(c.App, c.Processors, o.Scale)
	if err != nil {
		return core.RunSpec{}, err
	}
	if shaped {
		spec = c.Contention.Apply(spec)
	}
	tr, err := spec.Generate(c.Processors, c.Seed)
	if err != nil {
		return core.RunSpec{}, err
	}
	rs.Trace = tr
	return rs, nil
}

// RunCells executes the given cells across o.Workers goroutines (1 or
// fewer means sequential) and returns outcomes in the cells' given order.
// Each cell is self-contained, so the schedule cannot affect results:
// for the same cells, every worker count produces identical outcomes.
// On failure the error of the lowest-index failing cell is returned, so
// error reporting is deterministic too.
func (o Options) RunCells(cells []Cell) ([]*core.Outcome, error) {
	outs := make([]*core.Outcome, len(cells))
	errs := make([]error, len(cells))
	workers := o.workers()
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i, c := range cells {
			outs[i], errs[i] = o.runCell(c)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					outs[i], errs[i] = o.runCell(cells[i])
				}
			}()
		}
		for i := range cells {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: cell %d (%s): %w", cells[i].Index, cells[i].Label(), err)
		}
	}
	return outs, nil
}

// Run executes the campaign's (possibly sharded) cell set across the
// configured worker pool. Sequential (Workers <= 1) and parallel runs
// produce byte-identical reports and CSV for the same Options.
func Run(o Options) (*Campaign, error) {
	cells, err := ShardCells(o.Cells(), o.Shard)
	if err != nil {
		return nil, err
	}
	outs, err := o.RunCells(cells)
	if err != nil {
		return nil, err
	}
	return &Campaign{Options: o, Cells: cells, Outcomes: outs}, nil
}
