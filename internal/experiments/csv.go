package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV exports the campaign's per-configuration metrics as CSV for
// external plotting, one row per (app, processor-count) pair.
func (c *Campaign) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"app", "processors", "n1_cycles", "n2_cycles", "speedup",
		"eug", "eg", "energy_ratio", "power_ratio",
		"energy_savings_pct", "power_savings_pct",
		"aborts_ungated", "aborts_gated", "validation_aborts_gated",
		"gatings", "renewals", "ungates", "self_aborts",
		"commits", "invalidations",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, o := range c.Outcomes {
		cmp := o.Comparison
		ug, g := o.Ungated.Counters, o.Gated.Counters
		row := []string{
			string(o.Spec.App),
			fmt.Sprintf("%d", o.Spec.Processors),
			fmt.Sprintf("%d", cmp.N1),
			fmt.Sprintf("%d", cmp.N2),
			fmt.Sprintf("%.6f", cmp.SpeedUp),
			fmt.Sprintf("%.6g", cmp.Eug),
			fmt.Sprintf("%.6g", cmp.Eg),
			fmt.Sprintf("%.6f", cmp.EnergyRatio),
			fmt.Sprintf("%.6f", cmp.AvgPowerRatio),
			fmt.Sprintf("%.3f", cmp.EnergySavings*100),
			fmt.Sprintf("%.3f", cmp.PowerSavings*100),
			fmt.Sprintf("%d", ug.Aborts),
			fmt.Sprintf("%d", g.Aborts),
			fmt.Sprintf("%d", g.ValidationAborts),
			fmt.Sprintf("%d", g.Gatings),
			fmt.Sprintf("%d", g.Renewals),
			fmt.Sprintf("%d", g.Ungates),
			fmt.Sprintf("%d", g.SelfAborts),
			fmt.Sprintf("%d", g.Commits),
			fmt.Sprintf("%d", g.Invalidations),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
