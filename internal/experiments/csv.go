package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/bus"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcc"
)

// csvHeader is the per-configuration CSV schema. The interconnect
// columns render the gated run's bus activity: bus_util is busy-cycles
// over elapsed wire-capacity cycles (cycles × bank count), and the
// bank_* columns break utilization, queueing wait and grant rounds down
// per bank (";"-joined, one value per bank; a single entry on the
// unbanked bus) — the figure-grade data behind banked interconnect
// studies. The energy block after the savings columns breaks the gated
// run's energy down per residency state (eg_run..eg_gated sum to eg)
// and renders the energy-delay figure-of-merit pair (EDP = E·N,
// ED2P = E·N²) for both runs — all pure functions of the integer
// residency totals and the cell's technology point, so fresh, restored
// and re-priced rows render identically. Ratio columns whose
// denominator degenerates to zero (empty ledgers) render "NA", never a
// literal NaN. The trailing cell columns (w0, contention, seed, case,
// tech, banks) make sharded and matrix campaigns self-describing: a row
// identifies its scenario without the Options that produced it. tech is
// the cell's energy technology point (normalized: the empty sentinel
// renders as the default point's name). topology is the interconnect
// topology (normalized: "" renders as "bus"); on the point-to-point
// fabrics the bank_* columns carry one entry per link (mesh/ring: local
// ports then directional channels) or per port (xbar), and bus_rounds
// counts per-link crossings. banks is the bus interconnect shape (0 =
// the single split bus, 1+ = the banked bus) and stays the LAST column,
// with topology immediately before it: the interconnect and topology
// differential goldens compare CSVs with the trailing column(s)
// stripped, since those differ by construction between the campaigns
// they run.
var csvHeader = []string{
	"app", "processors", "n1_cycles", "n2_cycles", "speedup",
	"eug", "eg", "energy_ratio", "power_ratio",
	"energy_savings_pct", "power_savings_pct",
	"eg_run", "eg_miss", "eg_commit", "eg_gated",
	"edp_ug", "edp_g", "ed2p_ug", "ed2p_g",
	"aborts_ungated", "aborts_gated", "validation_aborts_gated",
	"gatings", "renewals", "ungates", "self_aborts",
	"commits", "invalidations",
	"bus_util", "bus_wait_cycles", "bus_rounds",
	"bank_util", "bank_wait_cycles", "bank_rounds",
	"w0", "contention", "seed", "case", "tech", "topology", "banks",
}

// WriteCSV exports the campaign's per-configuration metrics as CSV for
// external plotting, one row per run-cell, header included.
func (c *Campaign) WriteCSV(w io.Writer) error {
	return c.writeCSV(w, true)
}

// AppendCSV writes the rows only. A sharded campaign writes its CSV with
// WriteCSV on shard 0 and AppendCSV on the rest, so the per-shard files
// concatenate into exactly the unsharded WriteCSV output.
//
// When w can be read back (it implements io.ReadSeeker, as *os.File
// does), AppendCSV first validates that any existing header matches the
// schema it is about to append and fails cleanly on mismatch — appending
// rows under a foreign header would produce a silently corrupt
// concatenation. An empty target (including the plain io.Writer shard
// buffers) is appended to without a check.
func (c *Campaign) AppendCSV(w io.Writer) error {
	if rs, ok := w.(io.ReadSeeker); ok {
		if err := validateCSVHeader(rs); err != nil {
			return err
		}
	}
	return c.writeCSV(w, false)
}

// validateCSVHeader checks that if the existing content of rs starts
// with a header row, it is exactly this package's CSV header, then
// positions rs at the end for appending. A first row that is not a
// header (it does not begin with the header's first column name) is a
// rows-only shard file, which append-accumulates without a check — data
// rows can never collide with the header because the first column holds
// application names, never the literal column name.
func validateCSVHeader(rs io.ReadSeeker) error {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("experiments: AppendCSV: seek: %w", err)
	}
	r := csv.NewReader(rs)
	r.FieldsPerRecord = -1
	got, err := r.Read()
	switch {
	case err == io.EOF:
		// Empty file: nothing to validate.
	case err != nil:
		return fmt.Errorf("experiments: AppendCSV: existing content is not CSV: %w", err)
	case len(got) > 0 && got[0] == csvHeader[0]:
		if len(got) != len(csvHeader) {
			return fmt.Errorf("experiments: AppendCSV: existing header has %d columns, appending %d (%v)",
				len(got), len(csvHeader), got)
		}
		for i := range got {
			if got[i] != csvHeader[i] {
				return fmt.Errorf("experiments: AppendCSV: existing header column %d is %q, appending %q",
					i, got[i], csvHeader[i])
			}
		}
	}
	if _, err := rs.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("experiments: AppendCSV: seek to end: %w", err)
	}
	return nil
}

func (c *Campaign) writeCSV(w io.Writer, header bool) error {
	cw := csv.NewWriter(w)
	if header {
		if err := cw.Write(csvHeader); err != nil {
			return err
		}
	}
	for i, o := range c.Outcomes {
		cmp := o.Comparison
		ug, g := o.Ungated.Counters, o.Gated.Counters
		// Cells is always index-aligned with Outcomes; a panic here
		// means a campaign constructor broke that invariant.
		cell := c.Cells[i]
		tech, err := energy.Resolve(cell.Tech)
		if err != nil {
			return err
		}
		egs := tech.Model().EnergyByState(o.Gated.Ledger, 0, o.Gated.Cycles)
		row := []string{
			string(cell.App),
			fmt.Sprintf("%d", cell.Processors),
			fmt.Sprintf("%d", cmp.N1),
			fmt.Sprintf("%d", cmp.N2),
			csvNum("%.6f", cmp.SpeedUp),
			csvNum("%.6g", cmp.Eug),
			csvNum("%.6g", cmp.Eg),
			csvNum("%.6f", cmp.EnergyRatio),
			csvNum("%.6f", cmp.AvgPowerRatio),
			csvNum("%.3f", cmp.EnergySavings*100),
			csvNum("%.3f", cmp.PowerSavings*100),
			csvNum("%.6g", egs[stats.StateRun]),
			csvNum("%.6g", egs[stats.StateMiss]),
			csvNum("%.6g", egs[stats.StateCommit]),
			csvNum("%.6g", egs[stats.StateGated]),
			csvNum("%.6g", energy.EDP(cmp.Eug, int64(cmp.N1))),
			csvNum("%.6g", energy.EDP(cmp.Eg, int64(cmp.N2))),
			csvNum("%.6g", energy.ED2P(cmp.Eug, int64(cmp.N1))),
			csvNum("%.6g", energy.ED2P(cmp.Eg, int64(cmp.N2))),
			fmt.Sprintf("%d", ug.Aborts),
			fmt.Sprintf("%d", g.Aborts),
			fmt.Sprintf("%d", g.ValidationAborts),
			fmt.Sprintf("%d", g.Gatings),
			fmt.Sprintf("%d", g.Renewals),
			fmt.Sprintf("%d", g.Ungates),
			fmt.Sprintf("%d", g.SelfAborts),
			fmt.Sprintf("%d", g.Commits),
			fmt.Sprintf("%d", g.Invalidations),
			busUtil(o.Gated.BusStats.BusyCycles, o.Gated.Cycles, len(o.Gated.BankStats)),
			fmt.Sprintf("%d", o.Gated.BusStats.WaitCycles),
			fmt.Sprintf("%d", o.Gated.BusStats.Rounds),
			perBank(o.Gated, func(s bus.Stats) string { return busUtil(s.BusyCycles, o.Gated.Cycles, 1) }),
			perBank(o.Gated, func(s bus.Stats) string { return fmt.Sprintf("%d", s.WaitCycles) }),
			perBank(o.Gated, func(s bus.Stats) string { return fmt.Sprintf("%d", s.Rounds) }),
			fmt.Sprintf("%d", cell.effectiveW0()),
			string(cell.contentionOrBase()),
			fmt.Sprintf("%d", cell.Seed),
			cell.ID,
			energy.CanonicalName(cell.Tech),
			canonicalTopology(cell.Topology),
			fmt.Sprintf("%d", cell.Banks),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// csvNum renders a float column, turning the NaN/±Inf a degenerate
// ratio produces (power.Compare's safeDiv over an empty ledger) into
// the literal "NA" — a parseable missing-value marker instead of the
// "NaN" that %.6f would print.
func csvNum(format string, v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "NA"
	}
	return fmt.Sprintf(format, v)
}

// busUtil renders busy-cycles over elapsed wire-capacity cycles (the
// run's cycle count times the bank count) as a fixed-precision fraction.
// Pure integer inputs keep the rendering identical across fresh,
// checkpoint-restored and distributed-worker results. A degenerate
// capacity (a zero-cycle run) routes through the csvNum NA path like the
// energy ratio columns: the utilization of no elapsed time is missing
// data, not 0/0.
func busUtil(busy uint64, cycles sim.Time, banks int) string {
	return csvNum("%.4f", float64(busy)/(float64(cycles)*float64(banks)))
}

// perBank renders one ";"-joined value per interconnect bank. A restored
// outcome predating the per-bank record (impossible on the current
// checkpoint version, but cheap to tolerate) renders the empty field.
func perBank(r *tcc.Result, render func(bus.Stats) string) string {
	parts := make([]string, len(r.BankStats))
	for i, s := range r.BankStats {
		parts[i] = render(s)
	}
	return strings.Join(parts, ";")
}

// effectiveW0 resolves the W0=0 sentinel to the window the run actually
// used (config.Default's 8), so CSV rows are self-describing: the same
// configuration gets the same w0 value whether W0 was spelled out or
// defaulted.
func (c Cell) effectiveW0() sim.Time {
	if c.W0 == 0 {
		return matrixDefaultW0
	}
	return c.W0
}

func (c Cell) contentionOrBase() Contention {
	if c.Contention == "" {
		return ContentionBase
	}
	return c.Contention
}
