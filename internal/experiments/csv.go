package experiments

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/sim"
)

// csvHeader is the per-configuration CSV schema. The trailing cell
// columns (w0, contention, seed, case) make sharded and matrix campaigns
// self-describing: a row identifies its scenario without the Options
// that produced it.
var csvHeader = []string{
	"app", "processors", "n1_cycles", "n2_cycles", "speedup",
	"eug", "eg", "energy_ratio", "power_ratio",
	"energy_savings_pct", "power_savings_pct",
	"aborts_ungated", "aborts_gated", "validation_aborts_gated",
	"gatings", "renewals", "ungates", "self_aborts",
	"commits", "invalidations",
	"w0", "contention", "seed", "case",
}

// WriteCSV exports the campaign's per-configuration metrics as CSV for
// external plotting, one row per run-cell, header included.
func (c *Campaign) WriteCSV(w io.Writer) error {
	return c.writeCSV(w, true)
}

// AppendCSV writes the rows only. A sharded campaign writes its CSV with
// WriteCSV on shard 0 and AppendCSV on the rest, so the per-shard files
// concatenate into exactly the unsharded WriteCSV output.
func (c *Campaign) AppendCSV(w io.Writer) error {
	return c.writeCSV(w, false)
}

func (c *Campaign) writeCSV(w io.Writer, header bool) error {
	cw := csv.NewWriter(w)
	if header {
		if err := cw.Write(csvHeader); err != nil {
			return err
		}
	}
	for i, o := range c.Outcomes {
		cmp := o.Comparison
		ug, g := o.Ungated.Counters, o.Gated.Counters
		// Cells is always index-aligned with Outcomes; a panic here
		// means a campaign constructor broke that invariant.
		cell := c.Cells[i]
		row := []string{
			string(cell.App),
			fmt.Sprintf("%d", cell.Processors),
			fmt.Sprintf("%d", cmp.N1),
			fmt.Sprintf("%d", cmp.N2),
			fmt.Sprintf("%.6f", cmp.SpeedUp),
			fmt.Sprintf("%.6g", cmp.Eug),
			fmt.Sprintf("%.6g", cmp.Eg),
			fmt.Sprintf("%.6f", cmp.EnergyRatio),
			fmt.Sprintf("%.6f", cmp.AvgPowerRatio),
			fmt.Sprintf("%.3f", cmp.EnergySavings*100),
			fmt.Sprintf("%.3f", cmp.PowerSavings*100),
			fmt.Sprintf("%d", ug.Aborts),
			fmt.Sprintf("%d", g.Aborts),
			fmt.Sprintf("%d", g.ValidationAborts),
			fmt.Sprintf("%d", g.Gatings),
			fmt.Sprintf("%d", g.Renewals),
			fmt.Sprintf("%d", g.Ungates),
			fmt.Sprintf("%d", g.SelfAborts),
			fmt.Sprintf("%d", g.Commits),
			fmt.Sprintf("%d", g.Invalidations),
			fmt.Sprintf("%d", cell.effectiveW0()),
			string(cell.contentionOrBase()),
			fmt.Sprintf("%d", cell.Seed),
			cell.ID,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// effectiveW0 resolves the W0=0 sentinel to the window the run actually
// used (config.Default's 8), so CSV rows are self-describing: the same
// configuration gets the same w0 value whether W0 was spelled out or
// defaulted.
func (c Cell) effectiveW0() sim.Time {
	if c.W0 == 0 {
		return matrixDefaultW0
	}
	return c.W0
}

func (c Cell) contentionOrBase() Contention {
	if c.Contention == "" {
		return ContentionBase
	}
	return c.Contention
}
