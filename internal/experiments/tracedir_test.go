package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stamp"
)

// countStoreEntries returns how many published trace entries dir holds.
func countStoreEntries(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range ents {
		if filepath.Ext(de.Name()) == ".cgt2" {
			n++
		}
	}
	return n
}

// TraceDir is a cache knob: like NoTraceCache and NoSystemReuse it
// cannot change results, so it must not invalidate checkpoints written
// without it.
func TestTraceDirExcludedFromFingerprint(t *testing.T) {
	base := Options{Seed: 42, Scale: 0.02}
	stored := base
	stored.TraceDir = t.TempDir()
	if base.Fingerprint() != stored.Fingerprint() {
		t.Fatal("TraceDir changed the options fingerprint; cache knobs must be excluded")
	}
}

// TestTraceDirStoreKeyAudit extends the trace-cache key audit to the
// on-disk store: cells differing only in machine axes (banks, topology,
// W0) share one published entry, and a second session on the same
// directory serves entirely from it — zero new generations, identical
// CSV bytes.
func TestTraceDirStoreKeyAudit(t *testing.T) {
	dir := t.TempDir()
	o := Options{Seed: 7, Scale: 0.02, TraceDir: dir,
		Apps: []stamp.App{stamp.Intruder}, Processors: []int{8}}

	s := NewSession(o)
	base := Cell{App: stamp.Intruder, Processors: 8, Seed: 7}
	banked := base
	banked.Banks = 4
	meshed := base
	meshed.Topology = "mesh"
	windowed := base
	windowed.W0 = 16
	if _, err := s.RunCells(context.Background(), []Cell{base, banked, meshed, windowed}); err != nil {
		s.Close()
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countStoreEntries(t, dir); n != 1 {
		t.Fatalf("cells differing only in machine axes published %d store entries, want 1", n)
	}

	// A different processor count is a different workload: new entry.
	s2 := NewSession(o)
	wider := base
	wider.Processors = 16
	if _, err := s2.RunCells(context.Background(), []Cell{wider}); err != nil {
		s2.Close()
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countStoreEntries(t, dir); n != 2 {
		t.Fatalf("store holds %d entries after a wider cell, want 2 (processor count is in the key)", n)
	}
}

// TestTraceDirByteIdentity is the store's correctness contract at the
// campaign level: the same campaign run without a store, with a cold
// store, and again with a warm store (every trace loaded via mmap, none
// generated) produces byte-identical CSV.
func TestTraceDirByteIdentity(t *testing.T) {
	dir := t.TempDir()
	base := Options{Seed: 42, Scale: 0.02, Apps: []stamp.App{stamp.Genome, stamp.Yada}, Processors: []int{4, 8}}

	runCSV := func(o Options) []byte {
		s := NewSession(o)
		defer s.Close()
		camp, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := camp.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	off := runCSV(base)
	stored := base
	stored.TraceDir = dir
	cold := runCSV(stored) // generates and publishes
	if countStoreEntries(t, dir) == 0 {
		t.Fatal("cold run published no store entries")
	}
	warm := runCSV(stored) // second session: every trace store-loaded

	if !bytes.Equal(off, cold) {
		t.Fatal("campaign with a cold trace store differs from one without a store")
	}
	if !bytes.Equal(off, warm) {
		t.Fatal("campaign served from a warm trace store differs from one without a store")
	}
}
