package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bus"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/workload"
)

// This file is the scenario matrix: the single source of truth for
// "every scenario we can run". It enumerates an expanded evaluation grid
// — every STAMP preset, 1–128 processors, several gating windows and
// contention levels — as named, addressable cases. The CLI runs cases by
// ID, docs/E2E.md lists them as a case table, and e2e_test.go executes
// every case the table marks done, so the three can never drift apart.
//
// Case IDs are append-only. The original 432-case grid (processor axis
// 1–32) keeps IDs M00001–M00432 forever; the 48–128-processor scale
// extension is enumerated as a separate block appended after it
// (M00433–M00720); the banked-interconnect block rides behind that
// (M00721–M00752); the energy/EDP technology block behind that
// (M00753–M00800); the point-to-point topology block behind that
// (M00801–M00848). Existing checkpoints, CSVs and docs keep meaning the
// same cases.

// Contention adjusts a workload preset's conflict intensity around the
// published STAMP characteristics.
type Contention string

const (
	// ContentionLow halves the share of operations hitting the shared
	// hot set and spreads them over twice as many lines.
	ContentionLow Contention = "low"
	// ContentionBase is the preset as published (no adjustment).
	ContentionBase Contention = "base"
	// ContentionHigh concentrates accesses: more operations on a quarter
	// of the hot lines with a steeper skew.
	ContentionHigh Contention = "high"
)

// ContentionLevels returns the matrix's contention axis in canonical
// order.
func ContentionLevels() []Contention {
	return []Contention{ContentionLow, ContentionBase, ContentionHigh}
}

// Apply returns the spec adjusted to this contention level. The result
// always satisfies workload.Spec.Validate for valid inputs.
func (c Contention) Apply(s workload.Spec) workload.Spec {
	switch c {
	case ContentionLow:
		s.HotFrac /= 2
		s.HotLines *= 2
		s.ZipfSkew /= 2
	case ContentionHigh:
		s.HotFrac = (1 + s.HotFrac) / 2
		if s.HotLines = s.HotLines / 4; s.HotLines < 2 {
			s.HotLines = 2
		}
		s.ZipfSkew += 0.3
	}
	return s
}

// The matrix axes beyond the application list (which is stamp.AllApps).
var (
	// MatrixProcessors extends the paper's {4, 8, 16} sweep down to a
	// uniprocessor and up to 32 cores — the legacy axis whose case IDs
	// (M00001–M00432) are stable.
	MatrixProcessors = []int{1, 2, 4, 8, 16, 32}
	// MatrixExtensionProcessors is the scale axis beyond the original
	// grid, up to the 128-processor machine ceiling. Its cases are
	// appended after the legacy block so legacy IDs never shift.
	MatrixExtensionProcessors = []int{48, 64, 96, 128}
	// MatrixW0Values brackets the paper's default gating window of 8.
	MatrixW0Values = []sim.Time{2, 8, 32}
	// MatrixBankedProcessors is the machine-width axis of the banked-
	// interconnect block (M00721+): the wide design points where the
	// single split bus saturates and banking pays off.
	MatrixBankedProcessors = []int{64, 128}
	// MatrixBankedBanks is the block's interconnect axis.
	MatrixBankedBanks = []int{4, 8}
	// MatrixTechPoints is the technology axis of the energy/EDP block
	// (M00753+): the non-default energy.Tech points the matrix sweeps.
	// The default point needs no block of its own — every other case
	// already prices under it.
	MatrixTechPoints = []string{"t45", "t32", "t65-srpg50"}
	// MatrixTechProcessors is the machine-width axis of the energy block:
	// the paper's mid-size grid, where gating behavior is the
	// best-characterized.
	MatrixTechProcessors = []int{8, 16}
	// MatrixTopologies is the interconnect axis of the point-to-point
	// topology block (M00801+): the non-bus bus.Interconnect models.
	// Unsized specs let each machine pick its natural dimensions (the
	// mesh folds to a near-square grid of the core count).
	MatrixTopologies = []string{"xbar", "mesh", "ring"}
	// MatrixTopologyProcessors is the machine-width axis of the topology
	// block: the same wide design points as the banked block, where the
	// single bus saturates and a point-to-point fabric pays off.
	MatrixTopologyProcessors = []int{64, 128}
)

// matrixDefaultW0 is the gating window the paper evaluates; scenarios at
// other windows belong to the W0-sweep category.
const matrixDefaultW0 sim.Time = 8

// Scenario is one named case of the scenario matrix: an application at a
// machine size, gating window and contention level. Scenarios are
// addressable by ID (stable while the axes are) and by Name.
type Scenario struct {
	// ID is the case id, "M" + 5 digits in canonical matrix order.
	ID string
	// Ord is the scenario's ordinal in the full matrix (ID minus one).
	// Per-scenario seeds derive from the campaign seed and Ord, so a
	// case's workload is the same whether it runs alone, in a subset,
	// or in a shard.
	Ord int
	// App is the workload preset.
	App stamp.App
	// Processors is the core count.
	Processors int
	// W0 is the gating window constant.
	W0 sim.Time
	// Contention is the workload conflict-intensity level.
	Contention Contention
	// Banks is the interconnect shape: 0 for the single split bus (every
	// case outside the banked block), a power of two for the banked bus.
	Banks int
	// Tech is the energy technology point pricing the case's ledgers:
	// empty for the default point (every case outside the energy block),
	// a registered energy.Tech name inside it.
	Tech string
	// Topology is the interconnect topology: empty for the bus models
	// (every case outside the topology block), a bus.ParseTopology spec
	// ("xbar", "mesh", "ring") inside it.
	Topology string
}

// Name returns the scenario's human-readable address, e.g.
// "genome/8p/W0=8/base" ("/banks=N" appended in the banked block).
func (s Scenario) Name() string {
	n := fmt.Sprintf("%s/%dp/W0=%d/%s", s.App, s.Processors, s.W0, s.Contention)
	if s.Banks > 0 {
		n += fmt.Sprintf("/banks=%d", s.Banks)
	}
	if s.Topology != "" {
		n += "/topo=" + s.Topology
	}
	if s.Tech != "" {
		n += "/tech=" + s.Tech
	}
	return n
}

// Title returns the case-table title.
func (s Scenario) Title() string {
	if s.Topology != "" {
		return fmt.Sprintf("%s on %d processor(s), W0=%d, %s contention, %s interconnect topology: paired gated vs ungated run",
			s.App, s.Processors, s.W0, s.Contention, s.Topology)
	}
	if s.Tech != "" {
		return fmt.Sprintf("%s on %d processor(s), W0=%d, %s contention, %s technology point: paired gated vs ungated run",
			s.App, s.Processors, s.W0, s.Contention, s.Tech)
	}
	if s.Banks > 0 {
		return fmt.Sprintf("%s on %d processor(s), W0=%d, %s contention, %d-banked interconnect: paired gated vs ungated run",
			s.App, s.Processors, s.W0, s.Contention, s.Banks)
	}
	return fmt.Sprintf("%s on %d processor(s), W0=%d, %s contention: paired gated vs ungated run",
		s.App, s.Processors, s.W0, s.Contention)
}

func isPaperApp(a stamp.App) bool {
	for _, p := range stamp.PaperApps() {
		if p == a {
			return true
		}
	}
	return false
}

func isPaperNp(np int) bool { return np == 4 || np == 8 || np == 16 }

// Category buckets the scenario for the case table: which axis it
// exercises beyond the paper's evaluation grid.
func (s Scenario) Category() string {
	switch {
	case s.Topology != "":
		return "topology"
	case s.Tech != "":
		return "energy"
	case s.Banks > 0:
		return "interconnect"
	case s.Contention != ContentionBase:
		return "contention"
	case s.W0 != matrixDefaultW0:
		return "w0 sweep"
	case !isPaperApp(s.App):
		return "extension"
	case isPaperNp(s.Processors):
		return "paper grid"
	default:
		return "scale sweep"
	}
}

// CheckPoint states what the executing E2E test asserts for the case.
// Every executed case also carries the gating-counter invariants —
// renewals imply gatings, self-aborts never exceed wake-ups, a
// uniprocessor never gates — with a contention-specific sharpening: high
// contention on a multiprocessor must actually exercise the gating path.
func (s Scenario) CheckPoint() string {
	const counters = "gating-counter invariants (renewals=0 without gatings, self-aborts <= ungates)"
	switch s.Category() {
	case "topology":
		return "paired run completes on the point-to-point fabric; metrics finite; " + counters +
			"; degenerate-shape byte-identity to the single bus pinned by the topology golden"
	case "energy":
		return "paired run completes under a non-default technology point; energy columns finite; " + counters +
			"; journal reprice byte-identity to fresh simulation pinned by the reprice golden"
	case "interconnect":
		return "paired run completes on the banked interconnect; metrics finite; " + counters +
			"; Banks=1 cycle-equivalence to the single bus pinned by the differential golden"
	case "contention":
		switch s.Contention {
		case ContentionHigh:
			return "paired run completes at raised contention; metrics finite; " + counters +
				"; gated run actually gates (gatings > 0)"
		default:
			return "paired run completes at lowered contention; metrics finite; " + counters +
				" (the knob itself is asserted pairwise in engine tests)"
		}
	case "w0 sweep":
		return "paired run completes at a non-default gating window; metrics finite; " + counters
	default:
		return "paired run completes; cycles and energy positive and finite; " + counters
	}
}

// Priority ranks the case: p1 for the paper's own grid, p2 for the other
// executed cases, p3 for the rest of the matrix.
func (s Scenario) Priority() string {
	if isPaperApp(s.App) && isPaperNp(s.Processors) &&
		s.W0 == matrixDefaultW0 && s.Contention == ContentionBase {
		return "p1"
	}
	if s.Done() {
		return "p2"
	}
	return "p3"
}

// Done reports whether the case is executed by the E2E harness
// (status "done" in docs/E2E.md); the remaining cases are addressable
// through the CLI but not run in CI, and are listed as "NA".
func (s Scenario) Done() bool {
	base := s.Contention == ContentionBase
	defW0 := s.W0 == matrixDefaultW0
	paper := isPaperApp(s.App)
	if s.Topology != "" {
		// Topology block: the paper apps prove out the mesh at 64 cores,
		// and the high-conflict app runs the widest machine on every
		// fabric — the same shape as the banked block's done set, so the
		// two interconnect axes stay comparable at 128 processors.
		return (paper && s.Processors == 64 && s.Topology == bus.TopoMesh) ||
			(s.App == stamp.Intruder && s.Processors == 128)
	}
	if s.Tech != "" {
		// Energy block: the paper apps prove out every technology point at
		// both machine widths — the grid the reprice golden sweeps, so the
		// done set covers every tech the golden re-prices against.
		return paper
	}
	if s.Banks > 0 {
		// Banked-interconnect block: the paper apps prove out 4 banks at
		// 64 cores, and the high-conflict app runs the widest machine on
		// both bank counts — the configurations the scale axis exists for.
		return (paper && s.Processors == 64 && s.Banks == 4) ||
			(s.App == stamp.Intruder && s.Processors == 128)
	}
	// wide marks the appended 48–128-processor scale block, where the
	// non-default W0/contention grid is executed for the bus-saturating
	// apps (the interconnect work's scientific ground truth).
	wide := s.Processors >= 48
	wideApp := s.App == stamp.Intruder ||
		(s.App == stamp.Genome && s.Processors <= 64)
	switch {
	// Every application at small machine sizes, paper defaults.
	case base && defW0 && s.Processors <= 8:
		return true
	// Every application proves out 16 and 32 cores at paper defaults.
	case base && defW0 && (s.Processors == 16 || s.Processors == 32):
		return true
	// 64-processor smoke for the paper's applications.
	case base && defW0 && s.Processors == 64 && paper:
		return true
	// The high-conflict app walks the whole scale axis, 48–128 included.
	case base && defW0 && s.App == stamp.Intruder:
		return true
	// W0 sweep on every paper app across the paper's machine sizes
	// (4/8/16 cores — the grid the paper's own Figure 7 walks).
	case base && isPaperNp(s.Processors) && paper:
		return true
	// Contention sweep on every paper app across the same grid.
	case defW0 && isPaperNp(s.Processors) && paper:
		return true
	// Wide-machine W0 sweep: intruder across the whole 48–128 axis,
	// genome through 64 cores.
	case base && !defW0 && wide && wideApp:
		return true
	// Wide-machine contention sweep on the same grid.
	case !base && defW0 && wide && wideApp:
		return true
	}
	return false
}

// Status returns the case-table status column.
func (s Scenario) Status() string {
	if s.Done() {
		return "done"
	}
	return "NA"
}

// Cell converts the scenario into a run-cell at position index of the
// current run. The cell's seed is derived from the campaign seed and the
// scenario's matrix ordinal (not the run position), so the workload of a
// case is independent of which other cases run alongside it.
func (s Scenario) Cell(index int, campaignSeed uint64) Cell {
	return Cell{
		Index:      index,
		ID:         s.ID,
		App:        s.App,
		Processors: s.Processors,
		W0:         s.W0,
		Contention: s.Contention,
		Banks:      s.Banks,
		Topology:   s.Topology,
		Tech:       s.Tech,
		Seed:       CellSeed(campaignSeed, s.Ord),
	}
}

var (
	matrixOnce   sync.Once
	matrixCache  []Scenario
	matrixByID   map[string]Scenario
	matrixByName map[string]Scenario
)

func buildMatrix() {
	// The legacy grid first (IDs M00001–M00432, stable forever), then
	// the appended 48–128-processor scale block, then the banked-
	// interconnect block. Appending — never interleaving — new axis
	// values is what keeps old IDs meaningful.
	for _, procs := range [][]int{MatrixProcessors, MatrixExtensionProcessors} {
		for _, app := range stamp.AllApps() {
			for _, np := range procs {
				for _, w0 := range MatrixW0Values {
					for _, cont := range ContentionLevels() {
						ord := len(matrixCache)
						matrixCache = append(matrixCache, Scenario{
							ID:         fmt.Sprintf("M%05d", ord+1),
							Ord:        ord,
							App:        app,
							Processors: np,
							W0:         w0,
							Contention: cont,
						})
					}
				}
			}
		}
	}
	// Banked-interconnect block (M00721+): every app at the wide machine
	// sizes on each bank count, paper-default gating window and base
	// contention — the interconnect axis varies, everything else is the
	// established scale-sweep configuration.
	for _, app := range stamp.AllApps() {
		for _, np := range MatrixBankedProcessors {
			for _, banks := range MatrixBankedBanks {
				ord := len(matrixCache)
				matrixCache = append(matrixCache, Scenario{
					ID:         fmt.Sprintf("M%05d", ord+1),
					Ord:        ord,
					App:        app,
					Processors: np,
					W0:         matrixDefaultW0,
					Contention: ContentionBase,
					Banks:      banks,
				})
			}
		}
	}
	// Energy/EDP technology block (M00753+): every app at the paper's
	// mid-size machine widths under each non-default technology point —
	// paper-default gating window, base contention, single bus. Only the
	// pricing axis varies; timing is identical to the corresponding
	// default-tech case, which is exactly what the reprice engine
	// exploits.
	for _, app := range stamp.AllApps() {
		for _, np := range MatrixTechProcessors {
			for _, tech := range MatrixTechPoints {
				ord := len(matrixCache)
				matrixCache = append(matrixCache, Scenario{
					ID:         fmt.Sprintf("M%05d", ord+1),
					Ord:        ord,
					App:        app,
					Processors: np,
					W0:         matrixDefaultW0,
					Contention: ContentionBase,
					Tech:       tech,
				})
			}
		}
	}
	// Point-to-point topology block (M00801+): every app at the wide
	// machine sizes on each non-bus fabric — paper-default gating window,
	// base contention, Banks=0 (the fabrics do not compose with banking).
	// Only the interconnect topology varies against the established
	// scale-sweep configuration, mirroring the banked block so the two
	// interconnect axes answer the same saturation question.
	for _, app := range stamp.AllApps() {
		for _, np := range MatrixTopologyProcessors {
			for _, topo := range MatrixTopologies {
				ord := len(matrixCache)
				matrixCache = append(matrixCache, Scenario{
					ID:         fmt.Sprintf("M%05d", ord+1),
					Ord:        ord,
					App:        app,
					Processors: np,
					W0:         matrixDefaultW0,
					Contention: ContentionBase,
					Topology:   topo,
				})
			}
		}
	}
	matrixByID = make(map[string]Scenario, len(matrixCache))
	matrixByName = make(map[string]Scenario, len(matrixCache))
	for _, s := range matrixCache {
		matrixByID[s.ID] = s
		matrixByName[s.Name()] = s
	}
}

// Matrix returns every scenario in canonical order: the legacy 1–32
// processor grid (applications outer, paper apps first, then processor
// count, gating window and contention level), followed by the appended
// 48–128 processor scale block in the same nesting, followed by the
// banked-interconnect block (applications outer, then machine width and
// bank count), followed by the energy/EDP technology block (applications
// outer, then machine width and technology point), followed by the
// point-to-point topology block (applications outer, then machine width
// and topology).
func Matrix() []Scenario {
	matrixOnce.Do(buildMatrix)
	out := make([]Scenario, len(matrixCache))
	copy(out, matrixCache)
	return out
}

// ScenarioByID resolves a case id such as "M00042".
func ScenarioByID(id string) (Scenario, bool) {
	matrixOnce.Do(buildMatrix)
	s, ok := matrixByID[id]
	return s, ok
}

// ScenarioByName resolves a scenario address such as "genome/8p/W0=8/base".
func ScenarioByName(name string) (Scenario, bool) {
	matrixOnce.Do(buildMatrix)
	s, ok := matrixByName[name]
	return s, ok
}

// DoneScenarios returns the cases the E2E harness executes, in matrix
// order.
func DoneScenarios() []Scenario {
	var out []Scenario
	for _, s := range Matrix() {
		if s.Done() {
			out = append(out, s)
		}
	}
	return out
}

// RunScenarios executes the given scenario-matrix cases on a one-shot
// Session; see Session.RunScenarios.
func RunScenarios(o Options, scenarios []Scenario) (*Campaign, error) {
	s := NewSession(o)
	defer s.Close()
	return s.RunScenarios(context.Background(), scenarios)
}

// ScenarioCells converts the scenarios into run-cells in the given
// (canonical) order, exactly as Session.RunScenarios executes them:
// each cell's seed derives from the campaign seed and the scenario's
// matrix ordinal, and a campaign-wide interconnect override applies to
// every case that does not pin its own shape (the banked and topology
// blocks do).
// The distributed coordinator uses this to own the same canonical cell
// list a local matrix run would execute.
func (o Options) ScenarioCells(scenarios []Scenario) []Cell {
	cells := make([]Cell, len(scenarios))
	for i, sc := range scenarios {
		cells[i] = sc.Cell(i, o.Seed)
		// The two interconnect overrides are mutually exclusive per cell:
		// a fabric does not compose with banking, so a campaign-wide
		// -banks never lands on a topology-block cell and a campaign-wide
		// -topology never lands on a banked-block cell.
		if cells[i].Banks == 0 && cells[i].Topology == "" {
			cells[i].Banks = o.Banks
			if cells[i].Banks == 0 {
				cells[i].Topology = o.Topology
			}
		}
		if cells[i].Tech == "" {
			cells[i].Tech = o.Tech
		}
	}
	return cells
}

// RunScenarios executes the given scenarios as one campaign on the
// session's worker pool (honoring the options' Workers and Shard).
// Scenario seeds derive from the campaign seed and each scenario's matrix
// ordinal; Scale applies as usual. Figures, tables and CSV label rows by
// case id.
func (s *Session) RunScenarios(ctx context.Context, scenarios []Scenario) (*Campaign, error) {
	o := s.opts
	cells, err := ShardCells(o.ScenarioCells(scenarios), o.Shard)
	if err != nil {
		return nil, err
	}
	outs, err := s.RunCells(ctx, cells)
	if err != nil {
		return nil, err
	}
	return &Campaign{Options: o, Cells: cells, Outcomes: outs}, nil
}

// MatrixTable renders the scenario matrix as a plain-text listing.
func MatrixTable() string {
	t := report.Table{
		Title:   fmt.Sprintf("Scenario matrix (%d cases)", len(Matrix())),
		Headers: []string{"case id", "name", "category", "priority", "status"},
	}
	for _, s := range Matrix() {
		t.AddRow(s.ID, s.Name(), s.Category(), s.Priority(), s.Status())
	}
	return t.Render()
}

// E2ECaseTable renders the scenario matrix as the spiderpool-style
// markdown case table embedded in docs/E2E.md.
func E2ECaseTable() string {
	t := report.Table{
		Headers: []string{"case id", "category", "title", "check point", "priority", "status"},
	}
	for _, s := range Matrix() {
		t.AddRow(s.ID, s.Category(), s.Title(), s.CheckPoint(), s.Priority(), s.Status())
	}
	return t.Markdown()
}

// E2EDoc returns the full contents of docs/E2E.md. The file is generated
// (`go run ./cmd/experiments -e2e-doc > docs/E2E.md`) and e2e_test.go
// fails if the committed file differs from this function's output, so
// the case table cannot drift from the scenario matrix.
func E2EDoc() string {
	done := 0
	for _, s := range Matrix() {
		if s.Done() {
			done++
		}
	}
	return fmt.Sprintf(`# E2E scenario matrix

This table enumerates every scenario the streaming session engine can
run: each STAMP preset at 1-128 processors, gating windows W0 of 2/8/32
cycles, low/base/high workload contention, (in the banked block) the
address-interleaved banked interconnect at 4/8 banks, (in the energy
block) the non-default energy technology points t45/t32/t65-srpg50, and
(in the topology block) the point-to-point interconnect fabrics
xbar/mesh/ring. Case ids are append-only: the original 1-32 processor
grid keeps M00001-M00432, the 48/64/96/128-processor scale block is
appended as M00433-M00720, the banked-interconnect block as
M00721-M00752, the energy/EDP technology block as M00753-M00800, and the
point-to-point topology block as M00801-M00848, so existing checkpoints
and CSVs keep naming the same cases. Every sweep — this matrix, the paper
campaign, Fig7, multi-seed, the ablations — executes as run-cells on one
clockgate.Session, which owns the worker pool, the per-workload trace
cache, and the optional JSONL checkpoint sink behind -resume. Cases are
addressable by id:

    go run ./cmd/experiments -matrix M00042,M00049 -detail
    go run ./cmd/experiments -matrix done -detail      # every executed case
    go run ./cmd/experiments -matrix-list              # this table as text
    go run ./cmd/experiments -matrix all -csv out.csv -resume ckpt.jsonl
        # interruptible: re-running restarts at the first incomplete cell

Every case with status "done" (%d of %d) is executed at reduced scale by
e2e_test.go on each CI run — as one streamed campaign whose results are
reordered into canonical order, which the engine guarantees is
byte-identical to a batch run. Each executed case asserts its check-point
column, including the per-contention-level gating-counter invariants.
"NA" cases are runnable on demand but not exercised in CI. This file is
generated — regenerate it with

    go run ./cmd/experiments -e2e-doc > docs/E2E.md

e2e_test.go fails if the committed table differs from the generator, so
the doc, the CLI and the tests share one source of truth.

%s`, done, len(Matrix()), E2ECaseTable())
}
