package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/energy"
)

// The checkpoint sink persists per-cell results as JSONL so an
// interrupted campaign restarts at the first incomplete cell. The file
// starts with a header line pinning the campaign's options fingerprint;
// each later line is one completed cell, serialized as a CellRecord (see
// wire.go — the same record the distributed fabric puts on the wire).
// Integers and shortest-form floats round-trip through JSON exactly, so
// a resumed campaign's output is byte-identical to an uninterrupted one.

// checkpointVersion guards the on-disk format. Version 2 added the
// interconnect counters (RunRecord.Bus/BankBus) that back the CSV's
// bus/bank stat columns. Version 3 added the topology axis to the cell
// key and the campaign fingerprint: a v2 file's keys cannot distinguish
// a mesh cell from a bus cell, so replaying one under the new axis could
// restore the wrong machine's timings. A file written at another version
// is refused with an error naming both versions — delete it (or keep the
// old binary) to proceed.
const checkpointVersion = 3

type checkpointHeader struct {
	Version  int    `json:"version"`
	Campaign string `json:"campaign"`
}

// cellKey identifies a cell for checkpoint lookup: exactly the fields
// that change what the cell computes — not Index (positional metadata)
// and not ID (a scenario label); two sweeps sharing a checkpoint file
// replay any cell that computes the same paired run. The W0 and
// contention sentinels are normalized to the defaults they select
// (W0 0 runs the default window, empty contention runs base), so cells
// agree regardless of which sweep spelled the default out. Banks is part
// of the key: unlike the trace cache (which correctly ignores it — the
// interconnect shape never changes the workload), the checkpoint stores
// cycle-level results, and cells differing only in interconnect shape
// compute different timings. Banks=0 and Banks=1 stay distinct on
// purpose: their cycle-equivalence is a tested property of the engine,
// not an identity the persistence layer may assume.
// Tech is also part of the key (normalized so "" and the default name
// agree): two cells differing only in technology point record identical
// timings but price to different energy columns, and replaying one as the
// other would silently mislabel results. Re-pricing across techs is the
// reprice engine's explicit job (reprice.go), not a key collision.
// Topology is part of the key for the same reason as Banks, with its
// sentinels normalized the same way as Tech's: "" and "bus" both name
// the default bus machine and collide on purpose, while explicit shapes
// ("mesh:1x1" included) stay distinct — their cycle-equivalence to the
// bus is a tested property, not a persistence-layer identity.
func cellKey(c Cell) string {
	return fmt.Sprintf("%s|%d|%d|%s|%s|%d|banks=%d|tech=%s|topology=%s",
		c.App, c.Processors, c.effectiveW0(), c.contentionOrBase(), c.Variant, c.Seed, c.Banks,
		energy.CanonicalName(c.Tech), canonicalTopology(c.Topology))
}

// canonicalTopology normalizes the topology sentinels for keys and
// fingerprints: "" and "bus" both select the default bus machine, so
// they must agree. Explicit specs pass through verbatim — for parsed
// canonical forms see bus.Topology.String.
func canonicalTopology(topology string) string {
	if topology == "" {
		return "bus"
	}
	return topology
}

// Checkpoint is a JSONL result sink attached to a Session. It is safe for
// concurrent use by the session's workers.
type Checkpoint struct {
	mu       sync.Mutex
	f        *os.File
	enc      *json.Encoder
	done     map[string]CellRecord
	restored int
}

// OpenCheckpoint opens (or creates) the checkpoint file at path for the
// campaign identified by fingerprint. Existing records are loaded for
// replay; a file written by a campaign with a different fingerprint is
// refused. A truncated final line — the signature of a killed process —
// is tolerated and dropped; that cell simply re-runs.
func OpenCheckpoint(path, fingerprint string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: open checkpoint: %w", err)
	}
	ck := &Checkpoint{f: f, done: make(map[string]CellRecord)}
	if err := ck.load(fingerprint); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiments: checkpoint seek: %w", err)
	}
	ck.enc = json.NewEncoder(f)
	return ck, nil
}

func (ck *Checkpoint) load(fingerprint string) error {
	raw, err := io.ReadAll(ck.f)
	if err != nil {
		return fmt.Errorf("experiments: checkpoint read: %w", err)
	}
	if len(raw) == 0 {
		// Fresh file: write the header so any later resume is validated.
		hdr, err := json.Marshal(checkpointHeader{Version: checkpointVersion, Campaign: fingerprint})
		if err != nil {
			return err
		}
		_, err = ck.f.Write(append(hdr, '\n'))
		return err
	}
	// A file not ending in '\n' was torn by a mid-write kill. Truncate
	// the fragment away — appending after it would glue the next record
	// onto the same physical line and silently lose it on the following
	// resume.
	if raw[len(raw)-1] != '\n' {
		cut := bytes.LastIndexByte(raw, '\n') + 1
		if err := ck.f.Truncate(int64(cut)); err != nil {
			return fmt.Errorf("experiments: checkpoint truncate torn tail: %w", err)
		}
		raw = raw[:cut]
		if len(raw) == 0 {
			// Even the header was torn: rewrite it.
			hdr, err := json.Marshal(checkpointHeader{Version: checkpointVersion, Campaign: fingerprint})
			if err != nil {
				return err
			}
			_, err = ck.f.WriteAt(append(hdr, '\n'), 0)
			return err
		}
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	var hdr checkpointHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		return fmt.Errorf("experiments: checkpoint header corrupt: %w", err)
	}
	if hdr.Version != checkpointVersion {
		return fmt.Errorf("experiments: checkpoint version %d, want %d", hdr.Version, checkpointVersion)
	}
	if hdr.Campaign != fingerprint {
		return fmt.Errorf("experiments: checkpoint belongs to campaign %s, this campaign is %s (delete the file or fix the options)",
			hdr.Campaign, fingerprint)
	}
	for _, line := range lines[1:] {
		var rec CellRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			// A corrupt interior line; skip it and let the cell re-run.
			continue
		}
		ck.done[cellKey(rec.Cell)] = rec
	}
	return nil
}

// Lookup returns the recorded outcome for an identical cell, if present.
func (ck *Checkpoint) Lookup(c Cell) (*core.Outcome, bool) {
	ck.mu.Lock()
	rec, ok := ck.done[cellKey(c)]
	if ok {
		ck.restored++
	}
	ck.mu.Unlock()
	if !ok {
		return nil, false
	}
	return rec.Outcome(), true
}

// Record appends one completed cell. Each record is a single Write to the
// underlying file, so a kill between cells never tears more than the
// final line.
func (ck *Checkpoint) Record(c Cell, out *core.Outcome) error {
	rec := NewCellRecord(c, out)
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if err := ck.enc.Encode(rec); err != nil {
		return fmt.Errorf("experiments: checkpoint write: %w", err)
	}
	ck.done[cellKey(c)] = rec
	return nil
}

// Len returns the number of completed cells on record.
func (ck *Checkpoint) Len() int {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return len(ck.done)
}

// Restored returns how many lookups were served from the file — the cells
// this process did not have to re-run.
func (ck *Checkpoint) Restored() int {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.restored
}

// Close flushes and closes the file.
func (ck *Checkpoint) Close() error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.f.Close()
}
