package experiments

import (
	"strings"
	"testing"

	"repro/internal/stamp"
)

// quickOptions is a fast, scaled-down campaign for tests.
func quickOptions() Options {
	return Options{
		Seed:       42,
		Scale:      0.05,
		Processors: []int{2, 4},
		Apps:       []stamp.App{stamp.Intruder, stamp.Genome},
	}
}

func TestTableIText(t *testing.T) {
	out := TableI()
	for _, want := range []string{"Run", "1.00", "Cache Miss", "0.32",
		"Transaction Commit", "0.44", "Clock Gated", "0.20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIText(t *testing.T) {
	out := TableII()
	for _, want := range []string{"1-16 single issue in-order cores",
		"64KB, 64 byte line size", "2-way associative, 1 cycle latency",
		"Full-bit vector sharer, 10 cycle latency",
		"1GB, 100 cycle latency, single R/W port"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Text(t *testing.T) {
	out := Fig3()
	for _, want := range []string{"Figure 3", "16KB", "128KB", "1.5x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig3 missing %q:\n%s", want, out)
		}
	}
}

func TestCampaignRunsAndRenders(t *testing.T) {
	c, err := Run(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Outcomes) != 4 { // 2 apps x 2 processor counts
		t.Fatalf("%d outcomes", len(c.Outcomes))
	}
	for _, render := range []struct {
		name string
		out  string
	}{
		{"fig4", c.Fig4()},
		{"fig5", c.Fig5()},
		{"fig6", c.Fig6()},
		{"detail", c.DetailTable()},
	} {
		if !strings.Contains(render.out, "intruder") {
			t.Fatalf("%s missing app label:\n%s", render.name, render.out)
		}
	}
	if !strings.Contains(c.SummaryText(), "Average energy reduction") {
		t.Fatal("summary missing headline metric")
	}
	if !strings.Contains(c.Fig4(), "speed-up") {
		t.Fatal("Fig4 missing speed-up annotations")
	}
	if !strings.Contains(c.Fig5(), "reduction") {
		t.Fatal("Fig5 missing reduction annotations")
	}
}

func TestSummarize(t *testing.T) {
	c, err := Run(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := c.Summarize()
	if s.AvgSpeedUp <= 0 {
		t.Fatalf("avg speedup %f", s.AvgSpeedUp)
	}
	if s.AvgEnergyReduction <= -1 || s.AvgEnergyReduction >= 1 {
		t.Fatalf("avg energy reduction %f out of range", s.AvgEnergyReduction)
	}
	if s.Slowdowns < 0 || s.Slowdowns > len(c.Outcomes) {
		t.Fatalf("slowdowns %d", s.Slowdowns)
	}
}

func TestSummarizeEmptyCampaign(t *testing.T) {
	c := &Campaign{}
	s := c.Summarize()
	if s.AvgSpeedUp != 0 || s.Slowdowns != 0 {
		t.Fatal("empty campaign summary not zero")
	}
}

func TestFig7Runs(t *testing.T) {
	o := quickOptions()
	o.Processors = []int{2}
	o.Apps = []stamp.App{stamp.Intruder}
	out, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 7", "W0", "Np=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig7 missing %q:\n%s", want, out)
		}
	}
}

func TestScaleReducesWork(t *testing.T) {
	o := quickOptions()
	cell := Cell{App: stamp.Intruder, Processors: 2, Seed: o.Seed}
	rsSmall, err := NewSession(o).cellSpec(cell)
	if err != nil {
		t.Fatal(err)
	}
	o.Scale = 0.5
	rsBig, err := NewSession(o).cellSpec(cell)
	if err != nil {
		t.Fatal(err)
	}
	if rsSmall.Trace.TotalTxs() >= rsBig.Trace.TotalTxs() {
		t.Fatalf("scale not applied: %d vs %d",
			rsSmall.Trace.TotalTxs(), rsBig.Trace.TotalTxs())
	}
}

func TestDefaultOptionsMatchPaperMatrix(t *testing.T) {
	o := DefaultOptions()
	if got := o.processors(); len(got) != 3 || got[0] != 4 || got[1] != 8 || got[2] != 16 {
		t.Fatalf("processors %v", got)
	}
	apps := o.apps()
	if len(apps) != 3 {
		t.Fatalf("apps %v", apps)
	}
}
