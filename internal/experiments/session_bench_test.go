package experiments

import (
	"context"
	"testing"
)

// BenchmarkCampaignTraceCache proves the session trace cache's win on the
// sweep the ROADMAP called out: Fig7's W0 axis re-uses one workload per
// (app, Np) point, so with the cache a 5-point W0 sweep provisions each
// trace once instead of five times. The benchmark measures trace
// provisioning only (no simulation), on a fresh session per iteration —
// the within-one-sweep saving, not cross-iteration amortization.
func BenchmarkCampaignTraceCache(b *testing.B) {
	o := Options{Seed: 42, Scale: 0.25, Processors: []int{8}}
	cells := fig7Cells(o) // 1 Np x 5 W0 x 3 apps = 15 cells, 3 unique workloads
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"cached", false}, {"uncached", true}} {
		b.Run(mode.name, func(b *testing.B) {
			opt := o
			opt.NoTraceCache = mode.disable
			for i := 0; i < b.N; i++ {
				s := NewSession(opt)
				for _, c := range cells {
					if _, err := s.trace(c); err != nil {
						b.Fatal(err)
					}
				}
				s.Close()
			}
			b.ReportMetric(float64(len(cells)), "cells")
		})
	}
}

// BenchmarkCampaignFig7Sweep measures the full Fig7 sweep end-to-end
// (simulation included) with and without the trace cache, so the cache's
// effect on real sweep wall-clock is tracked rather than asserted.
func BenchmarkCampaignFig7Sweep(b *testing.B) {
	o := Options{Seed: 42, Scale: 0.1, Processors: []int{8}, Workers: 1}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"cached", false}, {"uncached", true}} {
		b.Run(mode.name, func(b *testing.B) {
			opt := o
			opt.NoTraceCache = mode.disable
			for i := 0; i < b.N; i++ {
				s := NewSession(opt)
				if _, err := s.Fig7(context.Background()); err != nil {
					b.Fatal(err)
				}
				s.Close()
			}
		})
	}
}
