package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/stamp"
)

// AblationResult is one row of an ablation table.
type AblationResult struct {
	Variant     string
	SpeedUp     float64
	EnergyRatio float64
	Gatings     uint64
	Renewals    uint64
}

// AblationPolicies compares gating-window policies on the most contended
// configuration (intruder at the largest core count). The paper's §VI
// argues plain back-off policies are a poor fit for highly contentious
// applications; this quantifies the claim on this simulator.
func AblationPolicies(o Options) ([]AblationResult, error) {
	np := maxProcessors(o)
	var out []AblationResult
	for _, pk := range []config.PolicyKind{
		config.PolicyGatingAware, config.PolicyExponential,
		config.PolicyLinear, config.PolicyFixed,
	} {
		pk := pk
		rs, err := o.runSpec(stamp.Intruder, np)
		if err != nil {
			return nil, err
		}
		prev := rs.Configure
		rs.Configure = func(c *config.Config) {
			if prev != nil {
				prev(c)
			}
			c.Gating.Policy = pk
		}
		res, err := core.RunPair(rs)
		if err != nil {
			return nil, fmt.Errorf("experiments: policy ablation %s: %w", pk, err)
		}
		out = append(out, AblationResult{
			Variant:     string(pk),
			SpeedUp:     res.Comparison.SpeedUp,
			EnergyRatio: res.Comparison.EnergyRatio,
			Gatings:     res.Gated.Counters.Gatings,
			Renewals:    res.Gated.Counters.Renewals,
		})
	}
	return out, nil
}

// AblationRenewal measures the renewal mechanism's contribution on the
// workload the paper credits it for (yada: long, loop-repeated
// transactions).
func AblationRenewal(o Options) ([]AblationResult, error) {
	np := maxProcessors(o)
	var out []AblationResult
	for _, disable := range []bool{false, true} {
		disable := disable
		rs, err := o.runSpec(stamp.Yada, np)
		if err != nil {
			return nil, err
		}
		prev := rs.Configure
		rs.Configure = func(c *config.Config) {
			if prev != nil {
				prev(c)
			}
			c.Gating.DisableRenewal = disable
		}
		res, err := core.RunPair(rs)
		if err != nil {
			return nil, fmt.Errorf("experiments: renewal ablation: %w", err)
		}
		name := "renewal on"
		if disable {
			name = "renewal off"
		}
		out = append(out, AblationResult{
			Variant:     name,
			SpeedUp:     res.Comparison.SpeedUp,
			EnergyRatio: res.Comparison.EnergyRatio,
			Gatings:     res.Gated.Counters.Gatings,
			Renewals:    res.Gated.Counters.Renewals,
		})
	}
	return out, nil
}

// AblationSRPG re-prices one paired run under state-retention power gating
// at several retained-leakage fractions (paper §IV).
func AblationSRPG(o Options) ([]AblationResult, error) {
	np := maxProcessors(o)
	rs, err := o.runSpec(stamp.Intruder, np)
	if err != nil {
		return nil, err
	}
	res, err := core.RunPair(rs)
	if err != nil {
		return nil, fmt.Errorf("experiments: SRPG ablation: %w", err)
	}
	var out []AblationResult
	for _, keep := range []float64{1.0, 0.5, 0.25, 0.1} {
		m := power.Default().WithSRPG(keep)
		cmp := power.Compare(m, res.Ungated.Ledger, res.Gated.Ledger)
		out = append(out, AblationResult{
			Variant:     fmt.Sprintf("retain %.0f%% leakage", keep*100),
			SpeedUp:     cmp.SpeedUp,
			EnergyRatio: cmp.EnergyRatio,
			Gatings:     res.Gated.Counters.Gatings,
			Renewals:    res.Gated.Counters.Renewals,
		})
	}
	return out, nil
}

func maxProcessors(o Options) int {
	np := 0
	for _, p := range o.processors() {
		if p > np {
			np = p
		}
	}
	return np
}

// renderAblation formats one ablation as a table.
func renderAblation(title string, rows []AblationResult) string {
	t := report.Table{
		Title:   title,
		Headers: []string{"variant", "speed-up", "E-ratio", "gatings", "renewals"},
	}
	for _, r := range rows {
		t.AddRow(r.Variant,
			fmt.Sprintf("%.3f", r.SpeedUp),
			fmt.Sprintf("%.3f", r.EnergyRatio),
			fmt.Sprintf("%d", r.Gatings),
			fmt.Sprintf("%d", r.Renewals))
	}
	return t.Render()
}

// Ablations runs the full ablation suite and renders the tables.
func Ablations(o Options) (string, error) {
	pol, err := AblationPolicies(o)
	if err != nil {
		return "", err
	}
	ren, err := AblationRenewal(o)
	if err != nil {
		return "", err
	}
	srpg, err := AblationSRPG(o)
	if err != nil {
		return "", err
	}
	out := renderAblation("Ablation: gating-window policy (intruder, max cores)", pol) + "\n"
	out += renderAblation("Ablation: renewal mechanism (yada, max cores)", ren) + "\n"
	out += renderAblation("Ablation: state-retention power gating (intruder, max cores)", srpg)
	return out, nil
}

// Extended runs the paired campaign over the five extension presets that
// are not part of the paper's evaluation.
func Extended(o Options) (*Campaign, error) {
	o.Apps = []stamp.App{stamp.Bayes, stamp.KMeans, stamp.Labyrinth, stamp.SSCA2, stamp.Vacation}
	return Run(o)
}
