package experiments

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/stamp"
)

// AblationResult is one row of an ablation table.
type AblationResult struct {
	Variant     string
	SpeedUp     float64
	EnergyRatio float64
	Gatings     uint64
	Renewals    uint64
}

// The ablation axes, in the order the tables present them.
var (
	ablationPolicies = []config.PolicyKind{
		config.PolicyGatingAware, config.PolicyExponential,
		config.PolicyLinear, config.PolicyFixed,
	}
	renewalVariantNames = []string{"renewal on", "renewal off"}
	srpgLeakageKeeps    = []float64{1.0, 0.5, 0.25, 0.1}
)

// policyCells enumerates the policy ablation as run-cells on the most
// contended configuration (intruder at the largest core count).
func policyCells(o Options) []Cell {
	np := maxProcessors(o)
	cells := make([]Cell, len(ablationPolicies))
	for i, pk := range ablationPolicies {
		cells[i] = Cell{
			Index:      i,
			App:        stamp.Intruder,
			Processors: np,
			W0:         o.W0,
			Contention: ContentionBase,
			Banks:      o.Banks,
			Seed:       o.Seed,
			Variant:    PolicyVariant(pk),
		}
	}
	return cells
}

// renewalCells enumerates the renewal ablation as run-cells on the
// workload the paper credits the mechanism for (yada: long,
// loop-repeated transactions).
func renewalCells(o Options) []Cell {
	np := maxProcessors(o)
	return []Cell{
		{Index: 0, App: stamp.Yada, Processors: np, W0: o.W0, Contention: ContentionBase, Banks: o.Banks, Seed: o.Seed},
		{Index: 1, App: stamp.Yada, Processors: np, W0: o.W0, Contention: ContentionBase, Banks: o.Banks, Seed: o.Seed,
			Variant: VariantRenewalOff},
	}
}

// srpgCell is the single paired run the SRPG ablation re-prices.
func srpgCell(o Options) Cell {
	return Cell{App: stamp.Intruder, Processors: maxProcessors(o), W0: o.W0,
		Contention: ContentionBase, Banks: o.Banks, Seed: o.Seed}
}

func ablationRow(variant string, cmp power.Comparison, out *core.Outcome) AblationResult {
	return AblationResult{
		Variant:     variant,
		SpeedUp:     cmp.SpeedUp,
		EnergyRatio: cmp.EnergyRatio,
		Gatings:     out.Gated.Counters.Gatings,
		Renewals:    out.Gated.Counters.Renewals,
	}
}

// policyRows, renewalRows and srpgRows turn the respective cells'
// outcomes into table rows; the standalone ablations and the combined
// suite share them, so the two paths cannot drift.
func policyRows(outs []*core.Outcome) []AblationResult {
	rows := make([]AblationResult, len(outs))
	for i, out := range outs {
		rows[i] = ablationRow(string(ablationPolicies[i]), out.Comparison, out)
	}
	return rows
}

func renewalRows(outs []*core.Outcome) []AblationResult {
	rows := make([]AblationResult, len(outs))
	for i, out := range outs {
		rows[i] = ablationRow(renewalVariantNames[i], out.Comparison, out)
	}
	return rows
}

func srpgRows(out *core.Outcome) []AblationResult {
	rows := make([]AblationResult, 0, len(srpgLeakageKeeps))
	for _, keep := range srpgLeakageKeeps {
		m := power.Default().WithSRPG(keep)
		cmp := power.Compare(m, out.Ungated.Ledger, out.Gated.Ledger)
		rows = append(rows, ablationRow(fmt.Sprintf("retain %.0f%% leakage", keep*100), cmp, out))
	}
	return rows
}

// AblationPolicies runs the policy ablation on a one-shot Session; see
// Session.AblationPolicies.
func AblationPolicies(o Options) ([]AblationResult, error) {
	s := NewSession(o)
	defer s.Close()
	return s.AblationPolicies(context.Background())
}

// AblationPolicies compares gating-window policies on the most contended
// configuration (intruder at the largest core count). The paper's §VI
// argues plain back-off policies are a poor fit for highly contentious
// applications; this quantifies the claim on this simulator. The variants
// run as one cell set on the session's worker pool and share one cached
// trace.
func (s *Session) AblationPolicies(ctx context.Context) ([]AblationResult, error) {
	outs, err := s.RunCells(ctx, policyCells(s.opts))
	if err != nil {
		return nil, fmt.Errorf("experiments: policy ablation: %w", err)
	}
	return policyRows(outs), nil
}

// AblationRenewal runs the renewal ablation on a one-shot Session; see
// Session.AblationRenewal.
func AblationRenewal(o Options) ([]AblationResult, error) {
	s := NewSession(o)
	defer s.Close()
	return s.AblationRenewal(context.Background())
}

// AblationRenewal measures the renewal mechanism's contribution on the
// workload the paper credits it for (yada: long, loop-repeated
// transactions). Both variants run on the session's worker pool against
// one cached trace.
func (s *Session) AblationRenewal(ctx context.Context) ([]AblationResult, error) {
	outs, err := s.RunCells(ctx, renewalCells(s.opts))
	if err != nil {
		return nil, fmt.Errorf("experiments: renewal ablation: %w", err)
	}
	return renewalRows(outs), nil
}

// AblationSRPG runs the SRPG ablation on a one-shot Session; see
// Session.AblationSRPG.
func AblationSRPG(o Options) ([]AblationResult, error) {
	s := NewSession(o)
	defer s.Close()
	return s.AblationSRPG(context.Background())
}

// AblationSRPG re-prices one paired run under state-retention power gating
// at several retained-leakage fractions (paper §IV). One cell runs on the
// engine; the re-pricing is pure arithmetic on its ledgers.
func (s *Session) AblationSRPG(ctx context.Context) ([]AblationResult, error) {
	outs, err := s.RunCells(ctx, []Cell{srpgCell(s.opts)})
	if err != nil {
		return nil, fmt.Errorf("experiments: SRPG ablation: %w", err)
	}
	return srpgRows(outs[0]), nil
}

func maxProcessors(o Options) int {
	np := 0
	for _, p := range o.processors() {
		if p > np {
			np = p
		}
	}
	return np
}

// renderAblation formats one ablation as a table.
func renderAblation(title string, rows []AblationResult) string {
	t := report.Table{
		Title:   title,
		Headers: []string{"variant", "speed-up", "E-ratio", "gatings", "renewals"},
	}
	for _, r := range rows {
		t.AddRow(r.Variant,
			fmt.Sprintf("%.3f", r.SpeedUp),
			fmt.Sprintf("%.3f", r.EnergyRatio),
			fmt.Sprintf("%d", r.Gatings),
			fmt.Sprintf("%d", r.Renewals))
	}
	return t.Render()
}

// Ablations runs the ablation suite on a one-shot Session; see
// Session.Ablations.
func Ablations(o Options) (string, error) {
	s := NewSession(o)
	defer s.Close()
	return s.Ablations(context.Background())
}

// Ablations runs the full ablation suite and renders the tables. All
// three studies' cells execute as one combined set on the session's
// worker pool — no per-run fan-out — and the intruder cells share one
// cached trace.
func (s *Session) Ablations(ctx context.Context) (string, error) {
	pol := policyCells(s.opts)
	ren := renewalCells(s.opts)
	srpg := srpgCell(s.opts)
	cells := make([]Cell, 0, len(pol)+len(ren)+1)
	cells = append(cells, pol...)
	cells = append(cells, ren...)
	cells = append(cells, srpg)
	for i := range cells {
		cells[i].Index = i
	}
	outs, err := s.RunCells(ctx, cells)
	if err != nil {
		return "", fmt.Errorf("experiments: ablations: %w", err)
	}

	out := renderAblation("Ablation: gating-window policy (intruder, max cores)",
		policyRows(outs[:len(pol)])) + "\n"
	out += renderAblation("Ablation: renewal mechanism (yada, max cores)",
		renewalRows(outs[len(pol):len(pol)+len(ren)])) + "\n"
	out += renderAblation("Ablation: state-retention power gating (intruder, max cores)",
		srpgRows(outs[len(pol)+len(ren)]))
	return out, nil
}

// Extended runs the paired campaign over the five extension presets that
// are not part of the paper's evaluation.
func Extended(o Options) (*Campaign, error) {
	o.Apps = []stamp.App{stamp.Bayes, stamp.KMeans, stamp.Labyrinth, stamp.SSCA2, stamp.Vacation}
	return Run(o)
}
