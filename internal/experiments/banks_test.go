package experiments

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stamp"
)

// TestTraceCacheKeyAudit pins the trace-cache key audit both ways. The
// interconnect shape must NOT be in the key: Banks and Topology change
// the machine, never the workload, so cells differing only in those axes
// share one generated trace (this sharing is what makes the interconnect
// and topology differential goldens compare identical workloads). The processor count
// MUST be in the key: cells at different machine widths generate
// different workloads even when every other axis matches.
func TestTraceCacheKeyAudit(t *testing.T) {
	s := NewSession(Options{Seed: 7, Scale: 0.02})
	defer s.Close()

	base := Cell{App: stamp.Intruder, Processors: 8, Seed: 7}
	banked := base
	banked.Banks = 4
	meshed := base
	meshed.Topology = "mesh"
	if _, err := s.RunCells(context.Background(), []Cell{base, banked, meshed}); err != nil {
		t.Fatal(err)
	}
	s.traceMu.Lock()
	entries := len(s.traces)
	s.traceMu.Unlock()
	if entries != 1 {
		t.Fatalf("cells differing only in interconnect shape occupy %d trace-cache entries, want 1", entries)
	}

	wider := base
	wider.Processors = 16
	if _, err := s.RunCells(context.Background(), []Cell{wider}); err != nil {
		t.Fatal(err)
	}
	s.traceMu.Lock()
	entries = len(s.traces)
	s.traceMu.Unlock()
	if entries != 2 {
		t.Fatalf("cells at different processor counts occupy %d trace-cache entries, want 2 (processor count must be in the key)", entries)
	}
}

// TestCheckpointKeyIncludesBanks is the collision regression for the
// checkpoint cell key: two cells that differ only in interconnect shape
// compute different timings, so a result recorded for one must never be
// replayed for the other. Before the key carried Banks, a Banks=4 lookup
// would have restored the Banks=1 record.
func TestCheckpointKeyIncludesBanks(t *testing.T) {
	one := Cell{App: stamp.Intruder, Processors: 8, Seed: 7, Banks: 1}
	four := one
	four.Banks = 4
	single := one
	single.Banks = 0
	if cellKey(one) == cellKey(four) || cellKey(one) == cellKey(single) {
		t.Fatalf("cells differing only in interconnect shape collide: %q / %q / %q",
			cellKey(single), cellKey(one), cellKey(four))
	}

	ck, err := OpenCheckpoint(filepath.Join(t.TempDir(), "ck.jsonl"), "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	s := NewSession(Options{Seed: 7, Scale: 0.02})
	defer s.Close()
	outs, err := s.RunCells(context.Background(), []Cell{one})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Record(one, outs[0]); err != nil {
		t.Fatal(err)
	}
	if _, hit := ck.Lookup(four); hit {
		t.Fatal("Banks=4 lookup replayed the Banks=1 record (checkpoint key collision)")
	}
	if _, hit := ck.Lookup(single); hit {
		t.Fatal("single-bus lookup replayed the Banks=1 record (checkpoint key collision)")
	}
	if _, hit := ck.Lookup(one); !hit {
		t.Fatal("identical cell missed its own record")
	}
}

// TestCellSpecConfiguresBanks checks the cell-to-machine plumbing: a
// cell's interconnect shape reaches the machine config, composes with a
// named variant, and the zero value leaves the single bus selected.
func TestCellSpecConfiguresBanks(t *testing.T) {
	s := NewSession(Options{Seed: 7, Scale: 0.02})
	defer s.Close()
	for _, tc := range []struct {
		cell      Cell
		wantBanks int
		wantPol   config.PolicyKind
	}{
		{Cell{App: stamp.Genome, Processors: 4, Seed: 7}, 0, ""},
		{Cell{App: stamp.Genome, Processors: 4, Seed: 7, Banks: 4}, 4, ""},
		{Cell{App: stamp.Genome, Processors: 4, Seed: 7, Banks: 8,
			Variant: PolicyVariant(config.PolicyFixed)}, 8, config.PolicyFixed},
	} {
		rs, err := s.cellSpec(tc.cell)
		if err != nil {
			t.Fatal(err)
		}
		cfg := applySpecConfig(rs, tc.cell.Processors)
		if cfg.Machine.Banks != tc.wantBanks {
			t.Errorf("%s: machine banks %d, want %d", tc.cell.Label(), cfg.Machine.Banks, tc.wantBanks)
		}
		if cfg.Gating.Policy != tc.wantPol {
			t.Errorf("%s: policy %q, want %q (variant must survive the banks mutator)",
				tc.cell.Label(), cfg.Gating.Policy, tc.wantPol)
		}
	}
}

// applySpecConfig materializes the machine config a RunSpec would run
// with, mirroring core.RunSpec.config without exporting it.
func applySpecConfig(rs core.RunSpec, processors int) config.Config {
	cfg := config.Default(processors)
	if rs.Configure != nil {
		rs.Configure(&cfg)
	}
	return cfg
}
