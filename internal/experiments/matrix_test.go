package experiments

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/stamp"
)

func TestMatrixShape(t *testing.T) {
	m := Matrix()
	perCombo := len(MatrixW0Values) * len(ContentionLevels())
	want := len(stamp.AllApps())*(len(MatrixProcessors)+len(MatrixExtensionProcessors))*perCombo +
		len(stamp.AllApps())*len(MatrixBankedProcessors)*len(MatrixBankedBanks) +
		len(stamp.AllApps())*len(MatrixTechProcessors)*len(MatrixTechPoints) +
		len(stamp.AllApps())*len(MatrixTopologyProcessors)*len(MatrixTopologies)
	if len(m) != want {
		t.Fatalf("%d scenarios, want %d", len(m), want)
	}
	if want != 848 {
		t.Fatalf("matrix has %d addressable cases, want 848 (432 legacy + 288 scale extension + 32 banked + 48 energy + 48 topology)", want)
	}
	ids := map[string]bool{}
	names := map[string]bool{}
	for i, s := range m {
		if s.Ord != i {
			t.Errorf("scenario %d has Ord %d", i, s.Ord)
		}
		if want := fmt.Sprintf("M%05d", i+1); s.ID != want {
			t.Errorf("scenario %d has ID %q, want %q", i, s.ID, want)
		}
		if ids[s.ID] || names[s.Name()] {
			t.Errorf("duplicate scenario %s (%s)", s.ID, s.Name())
		}
		ids[s.ID] = true
		names[s.Name()] = true
	}
}

// TestLegacyIDsStable pins the append-only ID contract: the original
// 432-case grid keeps its exact (ID, name) pairs, and the scale extension
// starts at M00433. A failure here means old checkpoints, CSVs and docs
// silently changed meaning.
func TestLegacyIDsStable(t *testing.T) {
	legacy := len(stamp.AllApps()) * len(MatrixProcessors) * len(MatrixW0Values) * len(ContentionLevels())
	if legacy != 432 {
		t.Fatalf("legacy block is %d cases, want 432", legacy)
	}
	for id, name := range map[string]string{
		"M00001": "genome/1p/W0=2/low",
		"M00042": "genome/16p/W0=8/high",
		"M00055": "yada/1p/W0=2/low",
		"M00432": "vacation/32p/W0=32/high",
	} {
		s, ok := ScenarioByID(id)
		if !ok || s.Name() != name {
			t.Errorf("legacy %s = %q, want %q", id, s.Name(), name)
		}
	}
	// The extension block starts right after the legacy grid and walks
	// the appended processor axis.
	first := Matrix()[legacy]
	if first.ID != "M00433" || first.Processors != MatrixExtensionProcessors[0] {
		t.Errorf("extension block starts at %s/%dp, want M00433/%dp",
			first.ID, first.Processors, MatrixExtensionProcessors[0])
	}
	for _, s := range Matrix()[:legacy] {
		for _, np := range MatrixExtensionProcessors {
			if s.Processors == np {
				t.Fatalf("extension processor count %d leaked into legacy block (%s)", np, s.ID)
			}
		}
	}
	// The banked block rides behind the scale extension: everything up to
	// M00720 keeps Banks=0 (the PR-3 grid unchanged), the banked block
	// starts at exactly M00721, and only it carries a bank count.
	busOnly := legacy + len(stamp.AllApps())*len(MatrixExtensionProcessors)*
		len(MatrixW0Values)*len(ContentionLevels())
	for _, s := range Matrix()[:busOnly] {
		if s.Banks != 0 {
			t.Fatalf("bank count %d leaked into pre-banked block (%s)", s.Banks, s.ID)
		}
	}
	banked, ok := ScenarioByID("M00721")
	if !ok || banked.Banks == 0 || banked.Ord != busOnly {
		t.Errorf("banked block should start at M00721 (ord %d), got %+v", busOnly, banked)
	}
	if s, ok := ScenarioByID("M00720"); !ok || s.Banks != 0 || s.Name() != "vacation/128p/W0=32/high" {
		t.Errorf("M00720 = %q, want vacation/128p/W0=32/high with Banks=0", s.Name())
	}
	bankedEnd := busOnly + len(stamp.AllApps())*len(MatrixBankedProcessors)*len(MatrixBankedBanks)
	for _, s := range Matrix()[busOnly:bankedEnd] {
		if s.Banks == 0 {
			t.Errorf("banked-block case %s has no bank count", s.ID)
		}
	}
	// The energy block rides behind the banked block: everything up to
	// M00752 keeps Tech="" (the PR-4 grid unchanged), the energy block
	// starts at exactly M00753, and only it carries a technology point.
	for _, s := range Matrix()[:bankedEnd] {
		if s.Tech != "" {
			t.Fatalf("technology point %q leaked into pre-energy block (%s)", s.Tech, s.ID)
		}
	}
	if s, ok := ScenarioByID("M00752"); !ok || s.Tech != "" || s.Banks == 0 {
		t.Errorf("M00752 = %+v, want the last banked case with no tech point", s)
	}
	tech, ok := ScenarioByID("M00753")
	if !ok || tech.Tech == "" || tech.Ord != bankedEnd {
		t.Errorf("energy block should start at M00753 (ord %d), got %+v", bankedEnd, tech)
	}
	techEnd := bankedEnd + len(stamp.AllApps())*len(MatrixTechProcessors)*len(MatrixTechPoints)
	for _, s := range Matrix()[bankedEnd:techEnd] {
		if s.Tech == "" || s.Banks != 0 {
			t.Errorf("energy-block case %s should carry a tech point and no bank count", s.ID)
		}
	}
	// The topology block rides behind the energy block: everything up to
	// M00800 keeps Topology="" (the PR-5 grid unchanged), the topology
	// block starts at exactly M00801, and only it carries a topology spec
	// (with neither banks nor a tech point — the fabrics do not compose
	// with banking, and pricing stays at the default point).
	for _, s := range Matrix()[:techEnd] {
		if s.Topology != "" {
			t.Fatalf("topology %q leaked into pre-topology block (%s)", s.Topology, s.ID)
		}
	}
	if s, ok := ScenarioByID("M00800"); !ok || s.Topology != "" || s.Tech == "" {
		t.Errorf("M00800 = %+v, want the last energy case with no topology", s)
	}
	topo, ok := ScenarioByID("M00801")
	if !ok || topo.Topology == "" || topo.Ord != techEnd {
		t.Errorf("topology block should start at M00801 (ord %d), got %+v", techEnd, topo)
	}
	for _, s := range Matrix()[techEnd:] {
		if s.Topology == "" || s.Banks != 0 || s.Tech != "" {
			t.Errorf("topology-block case %s should carry a topology and nothing else", s.ID)
		}
	}
}

// TestDoneSetCoversScaleAxis checks the promoted cases: every app proves
// out 32 cores, the paper apps smoke-test 64, and intruder walks the
// scale axis through 128.
func TestDoneSetCoversScaleAxis(t *testing.T) {
	done := map[string]bool{}
	for _, s := range DoneScenarios() {
		if s.Contention == ContentionBase && s.W0 == matrixDefaultW0 {
			done[fmt.Sprintf("%s/%d", s.App, s.Processors)] = true
		}
	}
	for _, app := range stamp.AllApps() {
		if !done[fmt.Sprintf("%s/32", app)] {
			t.Errorf("%s not executed at 32p", app)
		}
	}
	for _, app := range stamp.PaperApps() {
		if !done[fmt.Sprintf("%s/64", app)] {
			t.Errorf("%s not executed at 64p", app)
		}
	}
	for _, np := range []int{48, 96, 128} {
		if !done[fmt.Sprintf("%s/%d", stamp.Intruder, np)] {
			t.Errorf("intruder not executed at %dp", np)
		}
	}
}

func TestScenarioLookup(t *testing.T) {
	for _, s := range Matrix() {
		byID, ok := ScenarioByID(s.ID)
		if !ok || byID != s {
			t.Fatalf("ScenarioByID(%q) = %+v, %v", s.ID, byID, ok)
		}
		byName, ok := ScenarioByName(s.Name())
		if !ok || byName != s {
			t.Fatalf("ScenarioByName(%q) = %+v, %v", s.Name(), byName, ok)
		}
	}
	if _, ok := ScenarioByID("M99999"); ok {
		t.Fatal("bogus id resolved")
	}
	if _, ok := ScenarioByName("nope/1p/W0=8/base"); ok {
		t.Fatal("bogus name resolved")
	}
}

func TestContentionApplyShiftsConflictAndValidates(t *testing.T) {
	for _, app := range stamp.AllApps() {
		base := stamp.MustSpec(app)
		low := ContentionLow.Apply(base)
		high := ContentionHigh.Apply(base)
		if same := ContentionBase.Apply(base); same != base {
			t.Errorf("%s: base contention altered the spec", app)
		}
		if !(low.HotFrac < base.HotFrac && base.HotFrac < high.HotFrac) {
			t.Errorf("%s: HotFrac not ordered: %f / %f / %f", app, low.HotFrac, base.HotFrac, high.HotFrac)
		}
		if !(low.HotLines > base.HotLines && base.HotLines > high.HotLines) {
			t.Errorf("%s: HotLines not ordered: %d / %d / %d", app, low.HotLines, base.HotLines, high.HotLines)
		}
		if err := low.Validate(); err != nil {
			t.Errorf("%s low: %v", app, err)
		}
		if err := high.Validate(); err != nil {
			t.Errorf("%s high: %v", app, err)
		}
	}
}

func TestContentionShapesAborts(t *testing.T) {
	// The contention axis must actually move the conflict rate. Low must
	// conflict less than both base and high for every tested app. (High
	// is not required to exceed base: presets such as intruder already
	// sit at the abort ceiling, where concentrating the hot set further
	// shortens transactions and can reduce overlap.)
	o := Options{Seed: 7, Scale: 0.1}
	s := NewSession(o)
	defer s.Close()
	for _, app := range []stamp.App{stamp.Intruder, stamp.Genome} {
		aborts := map[Contention]uint64{}
		for _, lvl := range ContentionLevels() {
			outs, err := s.RunCells(context.Background(),
				[]Cell{{App: app, Processors: 8, Seed: 7, Contention: lvl}})
			if err != nil {
				t.Fatalf("%s/%s: %v", app, lvl, err)
			}
			aborts[lvl] = outs[0].Ungated.Counters.Aborts
		}
		if aborts[ContentionLow] >= aborts[ContentionBase] || aborts[ContentionLow] >= aborts[ContentionHigh] {
			t.Errorf("%s: low contention does not conflict least: low=%d base=%d high=%d",
				app, aborts[ContentionLow], aborts[ContentionBase], aborts[ContentionHigh])
		}
	}
}

func TestDoneScenariosAreExecutable(t *testing.T) {
	done := DoneScenarios()
	if len(done) == 0 {
		t.Fatal("no done scenarios")
	}
	// Every done scenario resolves and reports itself done; the grid has
	// the coverage the case table promises.
	var hasBig, hasW0, hasContention, hasExtension bool
	for _, s := range done {
		if !s.Done() || s.Status() != "done" {
			t.Errorf("%s: inconsistent done status", s.ID)
		}
		if s.Processors >= 16 {
			hasBig = true
		}
		if s.W0 != matrixDefaultW0 {
			hasW0 = true
		}
		if s.Contention != ContentionBase {
			hasContention = true
		}
		if !isPaperApp(s.App) {
			hasExtension = true
		}
	}
	if !hasBig || !hasW0 || !hasContention || !hasExtension {
		t.Fatalf("done set misses an axis: big=%v w0=%v contention=%v extension=%v",
			hasBig, hasW0, hasContention, hasExtension)
	}
}

func TestScenarioSeedIndependentOfSubset(t *testing.T) {
	m := Matrix()
	s := m[41] // arbitrary non-first scenario
	alone := s.Cell(0, 42)
	inSubset := s.Cell(7, 42)
	if alone.Seed != inSubset.Seed {
		t.Fatalf("scenario seed depends on run position: %d vs %d", alone.Seed, inSubset.Seed)
	}
	if alone.Seed != CellSeed(42, s.Ord) {
		t.Fatalf("scenario seed %d not derived from matrix ordinal", alone.Seed)
	}
}

func TestRunScenariosLabelsByCase(t *testing.T) {
	o := Options{Seed: 42, Scale: 0.02, Workers: 4}
	scenarios := []Scenario{}
	for _, id := range []string{"M00013", "M00014"} {
		s, ok := ScenarioByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		scenarios = append(scenarios, s)
	}
	c, err := RunScenarios(o, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Outcomes) != 2 {
		t.Fatalf("%d outcomes", len(c.Outcomes))
	}
	detail := c.DetailTable()
	if !strings.Contains(detail, "W0=") {
		t.Fatalf("detail table lacks scenario labels:\n%s", detail)
	}
	var csvOut strings.Builder
	if err := c.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	for _, s := range scenarios {
		if !strings.Contains(csvOut.String(), s.ID) {
			t.Errorf("CSV lacks case id %s:\n%s", s.ID, csvOut.String())
		}
	}
}

func TestMatrixTableAndE2EDoc(t *testing.T) {
	table := MatrixTable()
	doc := E2EDoc()
	for _, s := range []Scenario{Matrix()[0], Matrix()[len(Matrix())-1]} {
		if !strings.Contains(table, s.ID) {
			t.Errorf("matrix table missing %s", s.ID)
		}
		if !strings.Contains(doc, s.ID) {
			t.Errorf("E2E doc missing %s", s.ID)
		}
	}
	for _, want := range []string{"case id", "category", "title", "check point", "priority", "status", "| done"} {
		if !strings.Contains(doc, want) {
			t.Errorf("E2E doc missing %q", want)
		}
	}
}
