package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/power"
)

// This file is the re-pricing engine: it streams a checkpoint or fleet
// journal — both are the same JSONL format (checkpoint.go), and the
// distributed coordinator's journal doubles as the -resume checkpoint —
// and re-emits the full campaign under one or many energy technology
// points without re-simulating anything. It works because a CellRecord
// carries the per-state residency totals both runs reduce to, energy is
// a pure function of those integers and the power model, and the
// technology axis never touches timing. Re-pricing a journal under tech
// T is therefore byte-identical to a fresh simulated run under T —
// pinned by the done-set golden in reprice_test.go — at checkpoint-
// arithmetic speed: a whole fleet journal re-prices in milliseconds.

// ReadJournal parses a checkpoint/fleet journal stream: the header line
// is validated for version (the campaign fingerprint is deliberately
// ignored — re-pricing reads any campaign's journal), corrupt interior
// lines and a torn final line are skipped exactly as a checkpoint
// resume would drop them, records are deduplicated by cell key (last
// record wins, matching checkpoint replay), and the surviving records
// are returned sorted by cell index — the campaign's canonical order.
func ReadJournal(r io.Reader) ([]CellRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("experiments: journal read: %w", err)
		}
		return nil, fmt.Errorf("experiments: journal is empty")
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("experiments: journal header corrupt: %w", err)
	}
	if hdr.Version != checkpointVersion {
		return nil, fmt.Errorf("experiments: journal version %d, want %d", hdr.Version, checkpointVersion)
	}
	byKey := make(map[string]int)
	var recs []CellRecord
	for sc.Scan() {
		var rec CellRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			// A corrupt or torn line; skip it like checkpoint replay does.
			continue
		}
		if i, ok := byKey[rec.Cell.Key()]; ok {
			recs[i] = rec
			continue
		}
		byKey[rec.Cell.Key()] = len(recs)
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("experiments: journal read: %w", err)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Cell.Index < recs[j].Cell.Index })
	return recs, nil
}

// ReadJournalFile reads a journal from disk; see ReadJournal.
func ReadJournalFile(path string) ([]CellRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: open journal: %w", err)
	}
	defer f.Close()
	recs, err := ReadJournal(f)
	if err != nil {
		return nil, fmt.Errorf("experiments: journal %s: %w", path, err)
	}
	return recs, nil
}

// Reprice re-prices journal records under the given technology points
// and returns them as one campaign: tech-major (every record under
// techs[0], then every record under techs[1], ...), records in their
// canonical order within each block. No simulation happens — each
// outcome's ledgers are restored from the recorded residency totals and
// the §IV comparison is recomputed under the tech's power model, which
// reproduces a fresh simulated run under that tech exactly. An empty
// tech list re-prices under the records' own recorded tech points
// (useful to regenerate a journal's CSV as-is).
func Reprice(records []CellRecord, techs []string) (*Campaign, error) {
	c := &Campaign{}
	if len(techs) == 0 {
		for _, rec := range records {
			out, err := repriceRecord(rec, rec.Cell.Tech)
			if err != nil {
				return nil, err
			}
			cell := rec.Cell
			cell.Index = len(c.Cells)
			c.Cells = append(c.Cells, cell)
			c.Outcomes = append(c.Outcomes, out)
		}
		return c, nil
	}
	for _, name := range techs {
		if _, err := energy.Resolve(name); err != nil {
			return nil, err
		}
		for _, rec := range records {
			out, err := repriceRecord(rec, name)
			if err != nil {
				return nil, err
			}
			cell := rec.Cell
			cell.Tech = name
			cell.Index = len(c.Cells)
			c.Cells = append(c.Cells, cell)
			c.Outcomes = append(c.Outcomes, out)
		}
	}
	return c, nil
}

// RepriceFile reads a journal from disk and re-prices it; the
// convenience form behind clockgate.Reprice and the CLI's -reprice.
func RepriceFile(path string, techs []string) (*Campaign, error) {
	recs, err := ReadJournalFile(path)
	if err != nil {
		return nil, err
	}
	return Reprice(recs, techs)
}

// repriceRecord rebuilds one outcome with its comparison recomputed
// under the named technology point. The restored ledgers reproduce the
// original runs' whole-run residency totals exactly, so every derived
// float is bit-identical to what a fresh simulation under that tech
// computes.
func repriceRecord(rec CellRecord, tech string) (*core.Outcome, error) {
	t, err := energy.Resolve(tech)
	if err != nil {
		return nil, err
	}
	out := rec.Outcome()
	out.Spec.Model = t.Model()
	out.Comparison = power.Compare(out.Spec.Model, out.Ungated.Ledger, out.Gated.Ledger)
	return out, nil
}
