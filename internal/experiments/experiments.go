// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulator: Table I (power model), Table II
// (simulation parameters), Figure 3 (TCC cache power), Figure 4 (parallel
// execution time), Figure 5 (energy), Figure 6 (average power) and
// Figure 7 (speed-up sensitivity to W0 and processor count), plus the
// headline summary (19 % energy / 4 % speed-up / 13 % power in the paper).
package experiments

import (
	"context"
	"fmt"

	"repro/internal/cacti"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stamp"
)

// Options configures an experiment campaign.
type Options struct {
	// Seed drives workload generation.
	Seed uint64
	// Scale multiplies workload transaction counts; 1.0 is the full
	// paper-scale campaign, smaller values give quick runs for tests.
	Scale float64
	// Processors overrides the paper's {4, 8, 16} sweep when non-empty.
	Processors []int
	// Apps overrides the paper's three applications when non-empty.
	Apps []stamp.App
	// W0 overrides the gating window constant (default 8).
	W0 sim.Time
	// Banks selects the interconnect model for every cell that does not
	// pin its own (scenario-matrix banked cases do): 0 is the paper's
	// single split-transaction bus, a positive power of two is the
	// address-interleaved banked bus. Banks=1 is the banked model
	// degenerated to one bank — cycle-identical to the single bus by the
	// differential golden.
	Banks int
	// Topology selects the interconnect shape for every cell that does
	// not pin its own (scenario-matrix topology cases do): "" or "bus"
	// is whatever Banks selects; "xbar", "mesh" and "ring" (optionally
	// sized, e.g. "mesh:4x4" — see bus.ParseTopology) are the
	// point-to-point fabrics, which require Banks=0.
	Topology string
	// Tech names the energy.Tech technology point pricing every cell that
	// does not pin its own (scenario-matrix energy cases do); empty means
	// the default point, the paper's Table I model. Tech changes only how
	// residency ledgers are priced into energy columns — never timing —
	// so it shares traces with every other tech and is the axis the
	// reprice engine sweeps without re-simulating.
	Tech string
	// Workers is the number of goroutines executing run-cells; 1 or
	// fewer means sequential. Results are merged in canonical cell
	// order, so every worker count produces byte-identical output.
	Workers int
	// DeriveSeeds gives each run-cell an independent seed derived from
	// Seed via CellSeed (SplitMix64 of seed and cell index) instead of
	// sharing Seed across all cells as the paper does.
	DeriveSeeds bool
	// Shard restricts the campaign to one contiguous slice of its
	// cells, for splitting a campaign across machines. The zero value
	// runs everything.
	Shard Shard
	// NoTraceCache disables the session's workload-trace cache, forcing
	// every cell to regenerate its trace. Results are identical either
	// way; this exists for benchmarks and debugging, not production use.
	NoTraceCache bool
	// NoSystemReuse disables the per-worker System cache, constructing a
	// fresh simulated machine for every run. Results are identical either
	// way (the reuse path's byte-identity contract is pinned by the
	// done-set reuse golden); this exists for benchmarks and the
	// differential tests themselves.
	NoSystemReuse bool
	// TraceDir, when non-empty, names an on-disk tracestore directory
	// consulted below the in-process trace cache: an LRU miss loads the
	// trace from the store (mmap'd, zero-copy) before falling back to
	// generation, and generated traces are published for other processes.
	// Generation is deterministic, so the store — like the other cache
	// knobs — cannot change results and is excluded from Fingerprint.
	TraceDir string
}

// DefaultOptions returns the paper's campaign: genome/yada/intruder on
// 4/8/16 processors with W0 = 8 and seed 42.
func DefaultOptions() Options {
	return Options{Seed: 42, Scale: 1.0}
}

func (o Options) processors() []int {
	if len(o.Processors) > 0 {
		return o.Processors
	}
	return []int{4, 8, 16}
}

func (o Options) apps() []stamp.App {
	if len(o.Apps) > 0 {
		return o.Apps
	}
	return stamp.PaperApps()
}

// TableI renders the power model derivation (paper Table I).
func TableI() string {
	m := power.Default()
	t := report.Table{
		Title:   "Table I: Power model of Alpha 21264 (65 nm)",
		Headers: []string{"Operation", "Power Factor"},
		Note: "Derived from: leakage 0.20, TCC D-cache 0.15 (=1.5x0.10), I/O 0.05,\n" +
			"cache+I/O clocks 0.10, miss activity 0.5 (paper §VII).",
	}
	t.AddRow("Run", fmt.Sprintf("%.2f", m.Run))
	t.AddRow("Cache Miss", fmt.Sprintf("%.2f", m.Miss))
	t.AddRow("Transaction Commit", fmt.Sprintf("%.2f", m.Commit))
	t.AddRow("Clock Gated", fmt.Sprintf("%.2f", m.Gated))
	return t.Render()
}

// TableII renders the simulated machine parameters (paper Table II).
func TableII() string {
	cfg := config.Default(16)
	m := cfg.Machine
	t := report.Table{
		Title:   "Table II: Parameters used in the simulation",
		Headers: []string{"Feature", "Description"},
	}
	t.AddRow("CPU", "1-16 single issue in-order cores")
	t.AddRow("L1D", fmt.Sprintf("%dKB, %d byte line size", m.L1SizeBytes>>10, m.L1LineBytes))
	t.AddRow("", fmt.Sprintf("%d-way associative, %d cycle latency", m.L1Ways, m.L1HitCycles))
	t.AddRow("Interconnect", fmt.Sprintf("Common split-transaction bus, %d cycle occupancy", m.BusCycles))
	t.AddRow("Directory", fmt.Sprintf("Full-bit vector sharer, %d cycle latency", m.DirectoryCycles))
	t.AddRow("Main Memory", fmt.Sprintf("%dGB, %d cycle latency, single R/W port", m.MemoryBytes>>30, m.MemoryCycles))
	t.AddRow("Gating", fmt.Sprintf("W0=%d, %d-bit abort counter", cfg.Gating.W0, cfg.Gating.AbortCounterBits))
	return t.Render()
}

// Fig3 renders the TCC data-cache power curves (paper Figure 3).
func Fig3() string {
	cfg := cacti.DefaultConfig()
	set := report.SeriesSet{
		Title:   "Figure 3: Power consumption of data cache supporting TCC",
		XLabel:  "RW-bit resolution (bytes)",
		YLabel:  "normalized power (plain data cache = 100)",
		XFormat: "%.0f",
		YFormat: "%.1f",
	}
	for _, kb := range cacti.CacheSizesKB {
		s := report.Series{Name: fmt.Sprintf("%dKB", kb)}
		for _, res := range cacti.Resolutions {
			s.Points = append(s.Points, report.Point{
				X: float64(res),
				Y: cfg.RWBitPower(res, kb),
			})
		}
		set.Series = append(set.Series, s)
	}
	out := set.Render()
	out += fmt.Sprintf("\nFull TCC data cache at 64KB/2B tracking: %.0f units (%.2fx base;"+
		" paper: conservatively 1.5x)\n",
		cfg.TCCCachePower(2, 64), cfg.TCCFactor(2, 64))
	return out
}

// Campaign holds the paired runs behind Figures 4-6 and the summary.
// Run (see engine.go) builds one by executing the campaign's cells across
// a worker pool and merging outcomes in canonical cell order.
type Campaign struct {
	Options Options
	// Cells are the run-cells behind Outcomes, index-aligned with it.
	Cells    []Cell
	Outcomes []*core.Outcome
}

// label renders outcome i's row/bar label. Cells is always populated by
// the campaign constructors and index-aligned with Outcomes; a panic
// here means a constructor broke that invariant.
func (c *Campaign) label(i int) string {
	return c.Cells[i].Label()
}

// Fig4 renders total parallel execution time, ungated vs gated, with the
// paper's speed-up annotation on the gated bar.
func (c *Campaign) Fig4() string {
	chart := report.BarChart{
		Title: "Figure 4: Total parallel execution time (cycles)",
		Unit:  " cyc",
	}
	for i, o := range c.Outcomes {
		chart.Add(c.label(i)+" no-gate", float64(o.Comparison.N1), "")
		chart.Add(c.label(i)+" gated", float64(o.Comparison.N2),
			report.Factor(o.Comparison.SpeedUp)+" speed-up")
	}
	return chart.Render()
}

// Fig5 renders total energy consumption, ungated vs gated, annotated with
// the energy-reduction factor Eug/Eg.
func (c *Campaign) Fig5() string {
	chart := report.BarChart{
		Title: "Figure 5: Energy consumption with and without clock gating",
		Unit:  " (run-power-cycles)",
	}
	for i, o := range c.Outcomes {
		chart.Add(c.label(i)+" no-gate", o.Comparison.Eug, "")
		chart.Add(c.label(i)+" gated", o.Comparison.Eg,
			report.Factor(o.Comparison.EnergyRatio)+" reduction")
	}
	return chart.Render()
}

// Fig6 renders average power dissipation, ungated vs gated.
func (c *Campaign) Fig6() string {
	chart := report.BarChart{
		Title: "Figure 6: Average power dissipation with and without clock gating",
		Unit:  " (run-power units)",
	}
	for i, o := range c.Outcomes {
		chart.Add(c.label(i)+" no-gate", o.Comparison.Pug, "")
		chart.Add(c.label(i)+" gated", o.Comparison.Pg,
			report.Factor(o.Comparison.AvgPowerRatio)+" reduction")
	}
	return chart.Render()
}

// Summary holds the headline aggregate numbers.
type Summary struct {
	AvgSpeedUp         float64 // paper: 1.04
	AvgEnergyReduction float64 // fraction; paper: 0.19
	AvgPowerReduction  float64 // fraction; paper: 0.13
	Slowdowns          int     // configurations where gating lost time (paper: 1)
}

// Summarize aggregates the campaign the way the paper reports averages.
func (c *Campaign) Summarize() Summary {
	var s Summary
	n := float64(len(c.Outcomes))
	if n == 0 {
		return s
	}
	for _, o := range c.Outcomes {
		s.AvgSpeedUp += o.Comparison.SpeedUp
		s.AvgEnergyReduction += o.Comparison.EnergySavings
		s.AvgPowerReduction += o.Comparison.PowerSavings
		if o.Comparison.SpeedUp < 1 {
			s.Slowdowns++
		}
	}
	s.AvgSpeedUp /= n
	s.AvgEnergyReduction /= n
	s.AvgPowerReduction /= n
	return s
}

// SummaryText renders the headline comparison against the paper.
func (c *Campaign) SummaryText() string {
	s := c.Summarize()
	t := report.Table{
		Title:   "Headline summary (paper §VIII)",
		Headers: []string{"Metric", "Paper", "Measured"},
	}
	t.AddRow("Average speed-up", "+4%", report.Percent(s.AvgSpeedUp-1))
	t.AddRow("Average energy reduction", "19%", report.Percent(s.AvgEnergyReduction))
	t.AddRow("Average power reduction", "13%", report.Percent(s.AvgPowerReduction))
	t.AddRow("Slowdown cases", "1 of 9", fmt.Sprintf("%d of %d", s.Slowdowns, len(c.Outcomes)))
	return t.Render()
}

// DetailTable renders one row per configuration with every §IV metric.
func (c *Campaign) DetailTable() string {
	t := report.Table{
		Title: "Per-configuration detail",
		Headers: []string{"config", "N1", "N2", "speedup", "Eug", "Eg",
			"E-ratio", "P-ratio", "aborts-ug", "aborts-g", "gatings", "renewals"},
	}
	for i, o := range c.Outcomes {
		cmp := o.Comparison
		t.AddRow(c.label(i),
			fmt.Sprintf("%d", cmp.N1),
			fmt.Sprintf("%d", cmp.N2),
			fmt.Sprintf("%.3f", cmp.SpeedUp),
			fmt.Sprintf("%.3g", cmp.Eug),
			fmt.Sprintf("%.3g", cmp.Eg),
			fmt.Sprintf("%.3f", cmp.EnergyRatio),
			fmt.Sprintf("%.3f", cmp.AvgPowerRatio),
			fmt.Sprintf("%d", o.Ungated.Counters.Aborts),
			fmt.Sprintf("%d", o.Gated.Counters.Aborts),
			fmt.Sprintf("%d", o.Gated.Counters.Gatings),
			fmt.Sprintf("%d", o.Gated.Counters.Renewals),
		)
	}
	return t.Render()
}

// Fig7W0Values is the W0 sweep of Figure 7.
var Fig7W0Values = []sim.Time{2, 4, 8, 16, 32}

// fig7Cells enumerates the W0/Np sensitivity sweep as run-cells. Every
// cell shares the campaign seed: the workload of a (app, Np) point must
// be identical across the W0 axis, or the sweep would confound gating
// sensitivity with workload randomness. Because the session's trace cache
// keys on (app, threads, seed) and not on W0, each (app, Np) workload is
// generated once and shared across the whole W0 axis.
func fig7Cells(o Options) []Cell {
	var cells []Cell
	for _, np := range o.processors() {
		for _, w0 := range Fig7W0Values {
			for _, app := range o.apps() {
				cells = append(cells, Cell{
					Index:      len(cells),
					App:        app,
					Processors: np,
					W0:         w0,
					Contention: ContentionBase,
					Banks:      o.Banks,
					Topology:   o.Topology,
					Tech:       o.Tech,
					Seed:       o.Seed,
				})
			}
		}
	}
	return cells
}

// Fig7 runs the speed-up sensitivity analysis over W0 and the processor
// count (paper Figure 7) on a one-shot Session; see Session.Fig7.
func Fig7(o Options) (string, error) {
	s := NewSession(o)
	defer s.Close()
	return s.Fig7(context.Background())
}

// Fig7 runs the W0/Np speed-up sensitivity sweep (paper Figure 7).
// Speed-ups are averaged over the campaign's applications for each
// (W0, Np) point. The sweep's |Np|x5x|apps| paired runs execute as one
// cell set on the session's worker pool, sharing one cached trace per
// (app, Np) point across the W0 axis.
func (s *Session) Fig7(ctx context.Context) (string, error) {
	o := s.opts
	apps := o.apps()
	cells := fig7Cells(o)
	outs, err := s.RunCells(ctx, cells)
	if err != nil {
		return "", fmt.Errorf("experiments: fig7: %w", err)
	}
	set := report.SeriesSet{
		Title:   "Figure 7: Speed-up as a function of W0 and Np",
		XLabel:  "W0",
		YLabel:  "speed-up (N1/N2), averaged over applications",
		XFormat: "%.0f",
		YFormat: "%.3f",
	}
	k := 0
	for _, np := range o.processors() {
		s := report.Series{Name: fmt.Sprintf("Np=%d", np)}
		for _, w0 := range Fig7W0Values {
			sum := 0.0
			for range apps {
				sum += outs[k].Comparison.SpeedUp
				k++
			}
			s.Points = append(s.Points, report.Point{X: float64(w0), Y: sum / float64(len(apps))})
		}
		set.Series = append(set.Series, s)
	}
	return set.Render(), nil
}
