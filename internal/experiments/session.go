package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"iter"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/stamp"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// Session is the campaign execution engine behind every sweep in this
// package: a long-lived runner that owns a worker pool (Options.Workers
// goroutines, started lazily), a per-(app, threads, scale, contention,
// seed) trace cache, and an optional JSONL checkpoint sink. Create one
// with NewSession, run any number of sweeps on it — Run, RunCells,
// Stream, RunScenarios, Fig7, MultiSeed, Ablations — and Close it when
// done.
//
// Two execution shapes share one engine. Stream yields per-cell results
// in completion order, as they finish; Run and RunCells collect the same
// results and merge them in canonical cell order, so batch output is
// byte-identical for every worker count. Reordering a stream by
// CellResult.Pos reproduces the batch exactly.
type Session struct {
	opts Options

	poolOnce sync.Once
	// tasks carry the pool's work; each worker goroutine passes its own
	// long-lived core.SystemCache into the task, so a stream of same-shape
	// cells reuses one simulated machine per worker (nil when system
	// reuse is disabled or when a task runs inline after Close).
	tasks    chan func(*core.SystemCache)
	poolStop chan struct{}
	closed   sync.Once

	traceMu    sync.Mutex
	traces     map[traceKey]*traceEntry
	traceClock uint64 // logical use counter driving the LRU policy

	// store is the shared on-disk trace store (Options.TraceDir), opened
	// lazily on the first cache miss and closed with the session. nil
	// when TraceDir is empty or the store failed to open.
	storeOnce sync.Once
	store     *tracestore.Store
	storeErr  error

	ckpt *Checkpoint
}

// NewSession creates a session for the given options. The worker pool
// starts lazily on first use; Close releases it.
func NewSession(o Options) *Session {
	return &Session{
		opts:     o,
		tasks:    make(chan func(*core.SystemCache)),
		poolStop: make(chan struct{}),
		traces:   make(map[traceKey]*traceEntry),
	}
}

// Options returns the options the session was created with.
func (s *Session) Options() Options { return s.opts }

// Close stops the worker pool, closes the checkpoint sink and releases
// the on-disk trace store, if any. Close waits for no in-flight work;
// finish or cancel streams first. Store-loaded traces alias mmap'd
// regions Close unmaps, so the in-process trace cache is purged with it
// — a task that straggles in after Close regenerates inline instead of
// touching unmapped memory.
func (s *Session) Close() error {
	var err error
	s.closed.Do(func() {
		close(s.poolStop)
		if s.ckpt != nil {
			err = s.ckpt.Close()
		}
		s.traceMu.Lock()
		s.traces = make(map[traceKey]*traceEntry)
		st := s.store
		s.traceMu.Unlock()
		if st != nil {
			if cerr := st.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// SetCheckpoint attaches a JSONL checkpoint sink at path: every completed
// cell is appended as one JSON line, and cells already recorded there are
// restored without re-running. An interrupted campaign re-run with the
// same options and checkpoint path therefore restarts at the first
// incomplete cell and produces output identical to an uninterrupted run.
// The file is validated against the session's options fingerprint, so a
// checkpoint cannot silently resume a different campaign.
func (s *Session) SetCheckpoint(path string) error {
	ck, err := OpenCheckpoint(path, s.opts.Fingerprint())
	if err != nil {
		return err
	}
	s.ckpt = ck
	return nil
}

// Checkpoint returns the attached checkpoint sink, or nil.
func (s *Session) Checkpoint() *Checkpoint { return s.ckpt }

// Fingerprint identifies the result-relevant option fields (everything
// except parallelism and cache knobs, which cannot change results). The
// checkpoint sink stores it so a resume onto different options fails
// loudly instead of mixing campaigns. Zero-value sentinels are
// normalized to the defaults they select (Scale 0 -> 1.0, W0 0 -> the
// default window), so spelling an option out never invalidates a
// checkpoint written with it defaulted.
func (o Options) Fingerprint() string {
	scale := o.Scale
	if scale == 0 {
		scale = 1.0
	}
	w0 := o.W0
	if w0 == 0 {
		w0 = matrixDefaultW0
	}
	h := sha256.New()
	fmt.Fprintf(h, "seed=%d scale=%g w0=%d derive=%t shard=%d/%d apps=%v procs=%v banks=%d tech=%s topology=%s",
		o.Seed, scale, w0, o.DeriveSeeds, o.Shard.Index, o.Shard.Count,
		o.apps(), o.processors(), o.Banks, energy.CanonicalName(o.Tech),
		canonicalTopology(o.Topology))
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// startPool launches the worker goroutines. They live until Close. Each
// worker owns one SystemCache for its whole life, so consecutive cells it
// picks up reuse the same simulated machine whenever shapes match.
func (s *Session) startPool() {
	for w := 0; w < s.opts.workers(); w++ {
		go func() {
			var sc *core.SystemCache
			if !s.opts.NoSystemReuse {
				sc = &core.SystemCache{}
			}
			for {
				select {
				case f := <-s.tasks:
					f(sc)
				case <-s.poolStop:
					return
				}
			}
		}()
	}
}

// submit hands f to the pool, blocking while all workers are busy. After
// Close the task runs inline (with no System cache) so pending dispatch
// can still drain.
func (s *Session) submit(f func(*core.SystemCache)) {
	s.poolOnce.Do(s.startPool)
	select {
	case s.tasks <- f:
	case <-s.poolStop:
		f(nil)
	}
}

// CellResult is one completed cell of a streamed campaign.
type CellResult struct {
	// Pos is the cell's position in the slice passed to Stream/RunCells.
	// Sorting streamed results by Pos reproduces the batch order, and
	// with it the byte-identical batch reports and CSV.
	Pos int
	// Cell is the cell that ran.
	Cell Cell
	// Outcome is the paired-run result; nil when Err is set.
	Outcome *core.Outcome
	// Restored marks a result replayed from the checkpoint sink instead
	// of simulated in this process.
	Restored bool
	// Err is the cell's failure, if any. The iterator form of Stream
	// yields it as the second value instead.
	Err error
}

// StreamChan is the channel form of Stream: it launches the cells on the
// worker pool and returns a channel delivering each cell's result as it
// completes (completion order, not canonical order). The channel closes
// once every launched cell has been delivered or the context is canceled.
// The caller must drain the channel or cancel ctx; an abandoned,
// uncancelled stream would hold pool workers forever.
func (s *Session) StreamChan(ctx context.Context, cells []Cell) <-chan CellResult {
	out := make(chan CellResult)
	go func() {
		defer close(out)
		var wg sync.WaitGroup
		for pos, c := range cells {
			if ctx.Err() != nil {
				break
			}
			pos, c := pos, c
			wg.Add(1)
			s.submit(func(sc *core.SystemCache) {
				defer wg.Done()
				res := s.runCell(ctx, pos, c, sc)
				select {
				case out <- res:
				case <-ctx.Done():
				}
			})
		}
		wg.Wait()
	}()
	return out
}

// Stream executes the cells on the worker pool and yields each result as
// it completes, in completion order. A cell that fails yields its error
// and the stream continues; when ctx is canceled the stream stops
// promptly and yields a final (CellResult{Pos: -1}, ctx.Err()). Breaking
// out of the loop cancels the remaining cells. Collecting the results and
// sorting by Pos reproduces Run's canonical-order output exactly.
func (s *Session) Stream(ctx context.Context, cells []Cell) iter.Seq2[CellResult, error] {
	return func(yield func(CellResult, error) bool) {
		ictx, cancel := context.WithCancel(ctx)
		defer cancel()
		ch := s.StreamChan(ictx, cells)
		for res := range ch {
			if ctx.Err() != nil {
				break
			}
			if !yield(res, res.Err) {
				// Consumer stopped: cancel outstanding cells and drain
				// the channel so no pool worker stays blocked on send.
				cancel()
				for range ch {
				}
				return
			}
		}
		if err := ctx.Err(); err != nil {
			yield(CellResult{Pos: -1}, err)
		}
	}
}

// RunCells executes the cells and returns their outcomes in the given
// (canonical) order — the batch form of Stream. For the same cells every
// worker count produces identical outcomes, and on failure the error of
// the lowest-position failing cell is returned, so error reporting is
// deterministic too.
func (s *Session) RunCells(ctx context.Context, cells []Cell) ([]*core.Outcome, error) {
	outs := make([]*core.Outcome, len(cells))
	errs := make([]error, len(cells))
	for res := range s.StreamChan(ctx, cells) {
		outs[res.Pos], errs[res.Pos] = res.Outcome, res.Err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: cell %d (%s): %w", cells[i].Index, cells[i].Label(), err)
		}
	}
	return outs, nil
}

// Run executes the session's configured campaign — the options' cell
// grid, restricted to the options' shard — and returns it in canonical
// cell order.
func (s *Session) Run(ctx context.Context) (*Campaign, error) {
	cells, err := ShardCells(s.opts.Cells(), s.opts.Shard)
	if err != nil {
		return nil, err
	}
	outs, err := s.RunCells(ctx, cells)
	if err != nil {
		return nil, err
	}
	return &Campaign{Options: s.opts, Cells: cells, Outcomes: outs}, nil
}

// runCell produces one cell's result: restored from the checkpoint when
// present there, simulated (and recorded) otherwise. sc is the calling
// worker's System cache (nil selects fresh construction).
func (s *Session) runCell(ctx context.Context, pos int, c Cell, sc *core.SystemCache) CellResult {
	res := CellResult{Pos: pos, Cell: c}
	if s.ckpt != nil {
		if out, ok := s.ckpt.Lookup(c); ok {
			res.Outcome, res.Restored = out, true
			return res
		}
	}
	rs, err := s.cellSpec(c)
	if err != nil {
		res.Err = err
		return res
	}
	out, err := core.RunPairCached(ctx, rs, sc)
	if err != nil {
		res.Err = err
		return res
	}
	res.Outcome = out
	if s.ckpt != nil {
		if err := s.ckpt.Record(c, out); err != nil {
			res.Err = fmt.Errorf("checkpoint: %w", err)
		}
	}
	return res
}

// cellSpec builds the core.RunSpec for one cell: the trace from the
// session cache, the machine-config mutation from the cell's
// interconnect shape and variant, and the power model from the cell's
// technology point.
func (s *Session) cellSpec(c Cell) (core.RunSpec, error) {
	rs := core.RunSpec{App: c.App, Processors: c.Processors, Seed: c.Seed, W0: c.W0}
	tech, err := energy.Resolve(c.Tech)
	if err != nil {
		return core.RunSpec{}, err
	}
	rs.Model = tech.Model()
	configure, err := variantConfigure(c.Variant)
	if err != nil {
		return core.RunSpec{}, err
	}
	if banks := c.Banks; banks > 0 {
		variant := configure
		configure = func(cfg *config.Config) {
			cfg.Machine.Banks = banks
			if variant != nil {
				variant(cfg)
			}
		}
	}
	if topo := c.Topology; topo != "" {
		inner := configure
		configure = func(cfg *config.Config) {
			cfg.Machine.Topology = topo
			if inner != nil {
				inner(cfg)
			}
		}
	}
	rs.Configure = configure
	tr, err := s.trace(c)
	if err != nil {
		return core.RunSpec{}, err
	}
	rs.Trace = tr
	return rs, nil
}

// traceKey identifies a generated trace. W0, the interconnect shape
// (Cell.Banks, Cell.Topology) and the variant are absent on purpose:
// they change the machine, never the workload, which is what lets Fig7's
// W0 sweep, the
// ablation suite and the interconnect differential goldens share one
// trace per (app, threads, seed) point. Processor count IS in the key
// (threads): two cells at different machine widths generate different
// workloads even when every other axis matches. Pinned by
// TestTraceCacheKeyAudit.
type traceKey struct {
	app        stamp.App
	threads    int
	scale      float64
	contention Contention
	seed       uint64
}

// traceEntry is a once-guarded cache slot, so concurrent cells needing
// the same trace generate it exactly once and share the result. Traces
// are read-only during simulation (RunPair already shares one trace
// across both runs of a pair), so sharing across concurrent cells is
// safe. lastUse and useCount (guarded by traceMu) drive the
// reuse-count-aware LRU eviction policy.
type traceEntry struct {
	once sync.Once
	tr   *workload.Trace
	err  error

	lastUse  uint64
	useCount uint64
}

// maxCachedTraces bounds the session trace cache. Sweeps that profit
// from the cache (Fig7's W0 axis, ablation variants, the paired-run
// sharing inside a cell) need only a handful of workload keys live at
// once; a long multi-seed campaign would otherwise accumulate every
// seed's traces until Close. Above the bound the reuse-count-aware LRU
// policy evicts the least valuable entry — regeneration is
// deterministic, so eviction can never change results, only cost a
// re-generation.
const maxCachedTraces = 64

// evictTrace drops the least valuable cache entry: among the entries with
// the lowest reuse count, the least recently used one. Keying the victim
// choice on reuse first keeps the hot keys of a Fig7 or ablation sweep —
// one trace serving a whole W0/variant axis — resident through floods of
// single-use keys (a multi-seed campaign's per-seed workloads), which
// plain LRU would let push them out. Called with traceMu held. The choice
// is deterministic: (useCount, lastUse) pairs are unique per entry
// because lastUse is a strictly increasing logical clock.
func (s *Session) evictTrace() {
	var victim traceKey
	var best *traceEntry
	for k, e := range s.traces {
		if best == nil || e.useCount < best.useCount ||
			(e.useCount == best.useCount && e.lastUse < best.lastUse) {
			victim, best = k, e
		}
	}
	if best != nil {
		delete(s.traces, victim)
	}
}

// traceStore lazily opens the on-disk store named by Options.TraceDir.
// Opening happens at most once per session; a failure to open (an
// uncreatable directory) is sticky and fails the cells that needed it —
// loudly, because the user asked for the store by flag.
func (s *Session) traceStore() (*tracestore.Store, error) {
	s.storeOnce.Do(func() {
		st, err := tracestore.Open(s.opts.TraceDir, tracestore.Options{})
		if err != nil {
			s.storeErr = err
			return
		}
		s.traceMu.Lock()
		s.store = st
		s.traceMu.Unlock()
	})
	return s.store, s.storeErr
}

// provisionTrace materializes one cell's trace the cheapest correct way:
// from the on-disk store when Options.TraceDir names one (loading a
// published entry, or generating-and-publishing under the store's
// cross-process single-flight lock), by direct generation otherwise.
// Generation is deterministic, so every path yields identical bytes.
func (s *Session) provisionTrace(c Cell) (*workload.Trace, error) {
	if s.opts.TraceDir == "" {
		return generateCellTrace(s.opts.Scale, c)
	}
	st, err := s.traceStore()
	if err != nil {
		return nil, fmt.Errorf("experiments: trace store: %w", err)
	}
	scale := s.opts.Scale
	if scale == 0 {
		scale = 1.0
	}
	key := tracestore.Key{
		App:        string(c.App),
		Threads:    c.Processors,
		Scale:      scale,
		Contention: string(c.contentionOrBase()),
		Seed:       c.Seed,
	}
	return st.GetOrGenerate(key, func() (*workload.Trace, error) {
		return generateCellTrace(s.opts.Scale, c)
	})
}

// trace returns the cell's workload trace, generating it on first use and
// serving every later request for the same (app, threads, scale,
// contention, seed) from the cache.
func (s *Session) trace(c Cell) (*workload.Trace, error) {
	if s.opts.NoTraceCache {
		return s.provisionTrace(c)
	}
	scale := s.opts.Scale
	if scale == 0 {
		scale = 1.0
	}
	key := traceKey{
		app:        c.App,
		threads:    c.Processors,
		scale:      scale,
		contention: c.contentionOrBase(),
		seed:       c.Seed,
	}
	s.traceMu.Lock()
	e, ok := s.traces[key]
	if !ok {
		if len(s.traces) >= maxCachedTraces {
			s.evictTrace()
		}
		e = &traceEntry{}
		s.traces[key] = e
	}
	s.traceClock++
	e.lastUse = s.traceClock
	e.useCount++
	s.traceMu.Unlock()
	e.once.Do(func() {
		e.tr, e.err = s.provisionTrace(c)
	})
	return e.tr, e.err
}

// generateCellTrace builds the cell's trace exactly as an uncached run
// would: the plain preset for base contention at full scale, the
// scaled/contention-shaped spec otherwise.
func generateCellTrace(scale float64, c Cell) (*workload.Trace, error) {
	scaled := scale > 0 && scale != 1.0
	shaped := c.Contention != "" && c.Contention != ContentionBase
	if !scaled && !shaped {
		return stamp.Generate(c.App, c.Processors, c.Seed)
	}
	spec, err := ScaledSpec(c.App, c.Processors, scale)
	if err != nil {
		return nil, err
	}
	if shaped {
		spec = c.Contention.Apply(spec)
	}
	return spec.Generate(c.Processors, c.Seed)
}
