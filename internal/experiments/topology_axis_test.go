package experiments

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/stamp"
)

// TestCheckpointKeyIncludesTopology is the collision regression for the
// topology axis of the checkpoint cell key: cells that differ only in
// interconnect topology compute different timings, so a result recorded
// for one must never be replayed for another. The sentinel pair is the
// exception: "" and "bus" both name the default bus machine and must
// collide — but "mesh:1x1", whose cycle-equivalence to the bus is a
// tested engine property, stays a distinct key on purpose.
func TestCheckpointKeyIncludesTopology(t *testing.T) {
	base := Cell{App: stamp.Intruder, Processors: 8, Seed: 7}
	mesh := base
	mesh.Topology = "mesh"
	tiny := base
	tiny.Topology = "mesh:1x1"
	spelled := base
	spelled.Topology = "bus"
	if cellKey(base) == cellKey(mesh) || cellKey(base) == cellKey(tiny) {
		t.Fatalf("cells differing only in topology collide: %q / %q / %q",
			cellKey(base), cellKey(mesh), cellKey(tiny))
	}
	if cellKey(base) != cellKey(spelled) {
		t.Fatalf("topology sentinels diverge: %q vs %q (\"\" and \"bus\" must agree)",
			cellKey(base), cellKey(spelled))
	}

	ck, err := OpenCheckpoint(filepath.Join(t.TempDir(), "ck.jsonl"), "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	s := NewSession(Options{Seed: 7, Scale: 0.02})
	defer s.Close()
	outs, err := s.RunCells(context.Background(), []Cell{base})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Record(base, outs[0]); err != nil {
		t.Fatal(err)
	}
	if _, hit := ck.Lookup(mesh); hit {
		t.Fatal("mesh lookup replayed the bus record (checkpoint key collision)")
	}
	if _, hit := ck.Lookup(tiny); hit {
		t.Fatal("mesh:1x1 lookup replayed the bus record (degenerate shapes must stay distinct keys)")
	}
	if _, hit := ck.Lookup(spelled); !hit {
		t.Fatal("spelled-out \"bus\" missed the default-topology record (sentinels must agree)")
	}
}

// TestCellSpecConfiguresTopology checks the cell-to-machine plumbing: a
// cell's topology reaches the machine config, composes with a named
// variant, and the zero value leaves the topology unset (whatever Banks
// selects).
func TestCellSpecConfiguresTopology(t *testing.T) {
	s := NewSession(Options{Seed: 7, Scale: 0.02})
	defer s.Close()
	for _, tc := range []struct {
		cell     Cell
		wantTopo string
		wantPol  config.PolicyKind
	}{
		{Cell{App: stamp.Genome, Processors: 4, Seed: 7}, "", ""},
		{Cell{App: stamp.Genome, Processors: 4, Seed: 7, Topology: "mesh:2x2"}, "mesh:2x2", ""},
		{Cell{App: stamp.Genome, Processors: 4, Seed: 7, Topology: "ring",
			Variant: PolicyVariant(config.PolicyFixed)}, "ring", config.PolicyFixed},
	} {
		rs, err := s.cellSpec(tc.cell)
		if err != nil {
			t.Fatal(err)
		}
		cfg := applySpecConfig(rs, tc.cell.Processors)
		if cfg.Machine.Topology != tc.wantTopo {
			t.Errorf("%s: machine topology %q, want %q", tc.cell.Label(), cfg.Machine.Topology, tc.wantTopo)
		}
		if cfg.Gating.Policy != tc.wantPol {
			t.Errorf("%s: policy %q, want %q (variant must survive the topology mutator)",
				tc.cell.Label(), cfg.Gating.Policy, tc.wantPol)
		}
	}
}
