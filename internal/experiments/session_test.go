package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/stamp"
)

// TestStreamDeliversEveryCell checks the streaming form covers the cell
// set exactly once, with positions mapping back to the input slice.
func TestStreamDeliversEveryCell(t *testing.T) {
	o := quickOptions()
	o.Workers = 4
	s := NewSession(o)
	defer s.Close()
	cells := o.Cells()
	seen := make([]bool, len(cells))
	for res, err := range s.Stream(context.Background(), cells) {
		if err != nil {
			t.Fatal(err)
		}
		if res.Pos < 0 || res.Pos >= len(cells) {
			t.Fatalf("position %d out of range", res.Pos)
		}
		if seen[res.Pos] {
			t.Fatalf("cell %d delivered twice", res.Pos)
		}
		seen[res.Pos] = true
		if res.Cell != cells[res.Pos] {
			t.Fatalf("result %d carries the wrong cell", res.Pos)
		}
		if res.Outcome == nil {
			t.Fatalf("cell %d has no outcome", res.Pos)
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("cell %d never delivered", i)
		}
	}
}

// TestStreamCancelledContext checks a pre-cancelled context yields
// ctx.Err() immediately and runs nothing.
func TestStreamCancelledContext(t *testing.T) {
	o := quickOptions()
	s := NewSession(o)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var final error
	delivered := 0
	for res, err := range s.Stream(ctx, o.Cells()) {
		if err != nil {
			final = err
			if res.Pos != -1 {
				t.Fatalf("cancellation result carries position %d", res.Pos)
			}
			continue
		}
		delivered++
	}
	if !errors.Is(final, context.Canceled) {
		t.Fatalf("final error %v, want context.Canceled", final)
	}
	if delivered != 0 {
		t.Fatalf("%d cells delivered despite pre-cancelled context", delivered)
	}
}

// TestStreamCancelMidFlight cancels after the first delivery: the stream
// must end promptly with ctx.Err() even though a full campaign remains
// queued, because the simulators poll the context inside a run.
func TestStreamCancelMidFlight(t *testing.T) {
	o := Options{Seed: 42, Scale: 1.0, Workers: 2} // full-scale: plenty left to cancel
	s := NewSession(o)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	var final error
	delivered := 0
	for res, err := range s.Stream(ctx, o.Cells()) {
		if err != nil {
			final = err
			continue
		}
		_ = res
		if delivered++; delivered == 1 {
			cancel()
		}
	}
	if !errors.Is(final, context.Canceled) {
		t.Fatalf("final error %v, want context.Canceled", final)
	}
	// Generous bound: the point is "does not run the remaining ~9-cell
	// full-scale campaign to completion", which takes tens of seconds.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled stream took %v to return", elapsed)
	}
}

// TestRunCellsCancelledContext checks the batch form surfaces ctx.Err().
func TestRunCellsCancelledContext(t *testing.T) {
	o := quickOptions()
	s := NewSession(o)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunCells(ctx, o.Cells()); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
}

// TestStreamEarlyBreakCancelsRemainder checks that abandoning the
// iterator neither deadlocks the pool nor leaks: a later sweep on the
// same session still works.
func TestStreamEarlyBreakCancelsRemainder(t *testing.T) {
	o := quickOptions()
	o.Workers = 2
	s := NewSession(o)
	defer s.Close()
	for res, err := range s.Stream(context.Background(), o.Cells()) {
		if err != nil {
			t.Fatal(err)
		}
		_ = res
		break
	}
	// The pool must be free again: a full batch run completes.
	outs, err := s.RunCells(context.Background(), o.Cells())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(o.Cells()) {
		t.Fatalf("%d outcomes after early break", len(outs))
	}
}

// TestTraceCacheSharesGeneration checks the session generates one trace
// per (app, threads, scale, contention, seed) and shares the pointer
// across cells that differ only in W0 or variant — the Fig7/ablation
// case the ROADMAP calls out.
func TestTraceCacheSharesGeneration(t *testing.T) {
	o := Options{Seed: 42, Scale: 0.05}
	s := NewSession(o)
	defer s.Close()
	a, err := s.trace(Cell{App: "intruder", Processors: 4, W0: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.trace(Cell{App: "intruder", Processors: 4, W0: 32, Seed: 42, Variant: VariantRenewalOff})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same workload key produced distinct traces across W0/variant")
	}
	c, err := s.trace(Cell{App: "intruder", Processors: 4, W0: 2, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds shared one trace")
	}

	// And the cached trace is byte-equivalent to an uncached generation.
	o.NoTraceCache = true
	s2 := NewSession(o)
	defer s2.Close()
	fresh, err := s2.trace(Cell{App: "intruder", Processors: 4, W0: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if fresh == a {
		t.Fatal("NoTraceCache returned the cached pointer")
	}
	if fresh.TotalTxs() != a.TotalTxs() || len(fresh.Threads) != len(a.Threads) {
		t.Fatal("cached and fresh traces differ")
	}
}

// TestVariantConfigure checks the named-variant registry accepts the
// known deviations and rejects junk.
func TestVariantConfigure(t *testing.T) {
	for _, v := range []string{"", "renewal=off", "policy=gating-aware",
		"policy=exponential", "policy=linear", "policy=fixed"} {
		if _, err := variantConfigure(v); err != nil {
			t.Errorf("variant %q rejected: %v", v, err)
		}
	}
	for _, v := range []string{"policy=bogus", "nonsense", "renewal=on"} {
		if _, err := variantConfigure(v); err == nil {
			t.Errorf("variant %q accepted", v)
		}
	}
}

// checkpointCSV runs the campaign with a checkpoint attached and returns
// its CSV, cancelling after `stopAfter` streamed cells when positive.
func checkpointCSV(t *testing.T, o Options, path string, stopAfter int) (string, bool) {
	t.Helper()
	s := NewSession(o)
	defer s.Close()
	if err := s.SetCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cells, err := ShardCells(o.Cells(), o.Shard)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]*CellResult, len(cells))
	delivered := 0
	interrupted := false
	for res, err := range s.Stream(ctx, cells) {
		if err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted = true
				break
			}
			t.Fatal(err)
		}
		res := res
		outs[res.Pos] = &res
		if delivered++; stopAfter > 0 && delivered == stopAfter {
			cancel() // the "kill": completed cells are already on disk
		}
	}
	if interrupted {
		return "", true
	}
	campaign := &Campaign{Options: o, Cells: cells}
	for _, r := range outs {
		if r == nil {
			t.Fatal("stream dropped a cell")
		}
		campaign.Outcomes = append(campaign.Outcomes, r.Outcome)
	}
	var b strings.Builder
	if err := campaign.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String(), false
}

// TestCheckpointKillAndResumeGolden is the kill-and-resume golden test:
// a campaign interrupted mid-stream and resumed from its checkpoint file
// must produce byte-identical CSV to an uninterrupted run, restoring the
// already-completed cells instead of re-running them.
func TestCheckpointKillAndResumeGolden(t *testing.T) {
	o := quickOptions()
	o.Workers = 2

	// Golden: uninterrupted, no checkpoint involved.
	golden := campaignCSV(t, o)

	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.jsonl")

	// First attempt: cancel after one completed cell.
	if _, interrupted := checkpointCSV(t, o, path, 1); !interrupted {
		t.Fatal("first attempt was not interrupted")
	}

	// The file must already hold at least the completed cell.
	ck, err := OpenCheckpoint(path, o.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	onDisk := ck.Len()
	ck.Close()
	if onDisk == 0 {
		t.Fatal("no cells checkpointed before the kill")
	}

	// Resume: same options, same file — must complete and match golden.
	s := NewSession(o)
	defer s.Close()
	if err := s.SetCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	campaign, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Checkpoint().Restored(); got != onDisk {
		t.Fatalf("resume restored %d cells, checkpoint held %d", got, onDisk)
	}
	var b strings.Builder
	if err := campaign.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != golden {
		t.Fatalf("resumed campaign CSV diverged from uninterrupted run:\n--- golden ---\n%s\n--- resumed ---\n%s",
			golden, b.String())
	}
}

// TestCheckpointRefusesForeignCampaign checks the fingerprint guard.
func TestCheckpointRefusesForeignCampaign(t *testing.T) {
	o := quickOptions()
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, err := OpenCheckpoint(path, o.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
	other := o
	other.Seed++
	if _, err := OpenCheckpoint(path, other.Fingerprint()); err == nil {
		t.Fatal("checkpoint accepted a different campaign's fingerprint")
	}
	// Worker count must NOT change the fingerprint: parallelism cannot
	// change results, so it must not block a resume.
	parallel := o
	parallel.Workers = 16
	if ck, err := OpenCheckpoint(path, parallel.Fingerprint()); err != nil {
		t.Fatalf("worker count changed the fingerprint: %v", err)
	} else {
		ck.Close()
	}
}

// TestCheckpointToleratesTornTail simulates a kill mid-write: a torn
// final line is dropped and its cell re-runs, while intact records
// survive.
func TestCheckpointToleratesTornTail(t *testing.T) {
	o := quickOptions()
	o.Workers = 1
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")

	// Complete the full campaign into the checkpoint.
	if _, interrupted := checkpointCSV(t, o, path, 0); interrupted {
		t.Fatal("unexpected interruption")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != len(o.Cells())+1 { // header + one line per cell
		t.Fatalf("%d checkpoint lines for %d cells", len(lines), len(o.Cells()))
	}
	// Tear the final record in half.
	torn := strings.Join(lines[:len(lines)-1], "\n") + "\n" + lines[len(lines)-1][:10]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	ck, err := OpenCheckpoint(path, o.Fingerprint())
	if err != nil {
		t.Fatalf("torn checkpoint refused: %v", err)
	}
	defer ck.Close()
	if got, want := ck.Len(), len(o.Cells())-1; got != want {
		t.Fatalf("torn checkpoint holds %d cells, want %d", got, want)
	}
}

// TestCheckpointResumedAblationRePrices is the regression test for
// restored ledgers: the SRPG ablation re-prices its paired run's ledgers
// under different power models, so a checkpoint-restored outcome must
// carry a ledger whose whole-run residency reproduces the original
// energy figures exactly (not panic, not drift).
func TestCheckpointResumedAblationRePrices(t *testing.T) {
	o := tinyOptions()
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")

	fresh := NewSession(o)
	defer fresh.Close()
	if err := fresh.SetCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Ablations(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	resumed := NewSession(o)
	defer resumed.Close()
	if err := resumed.SetCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Ablations(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Checkpoint().Restored() == 0 {
		t.Fatal("resumed ablations re-ran every cell")
	}
	if got != want {
		t.Fatalf("resumed ablation tables diverged:\n--- fresh ---\n%s\n--- resumed ---\n%s", want, got)
	}
}

// TestCheckpointTornTailAppendsCleanly checks that after a torn-tail
// load, the next Record starts on a fresh line instead of gluing onto
// the fragment (which would silently lose that record on the following
// resume).
func TestCheckpointTornTailAppendsCleanly(t *testing.T) {
	o := quickOptions()
	o.Workers = 1
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if _, interrupted := checkpointCSV(t, o, path, 0); interrupted {
		t.Fatal("unexpected interruption")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half (no trailing newline).
	torn := raw[:len(raw)-20]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Re-running the campaign against the torn file must re-complete the
	// torn cell and leave a file every cell loads cleanly from.
	s := NewSession(o)
	defer s.Close()
	if err := s.SetCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	ck, err := OpenCheckpoint(path, o.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if got, want := ck.Len(), len(o.Cells()); got != want {
		t.Fatalf("after torn-tail re-run the checkpoint holds %d cells, want %d", got, want)
	}
}

// TestFingerprintNormalizesSentinels checks the zero-value sentinels
// (Scale 0 ~ 1.0, W0 0 ~ default window) do not invalidate a resume, and
// that the fields that do change results still change the fingerprint.
func TestFingerprintNormalizesSentinels(t *testing.T) {
	base := Options{Seed: 42}
	spelled := Options{Seed: 42, Scale: 1.0, W0: matrixDefaultW0}
	if base.Fingerprint() != spelled.Fingerprint() {
		t.Fatal("spelling out the defaults changed the fingerprint")
	}
	for name, o := range map[string]Options{
		"seed":  {Seed: 43},
		"scale": {Seed: 42, Scale: 0.5},
		"w0":    {Seed: 42, W0: 2},
		"shard": {Seed: 42, Shard: Shard{Index: 0, Count: 2}},
	} {
		if o.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s change did not alter the fingerprint", name)
		}
	}
}

// TestCellKeyNormalizesSentinels checks cells that compute the same
// paired run share a checkpoint record even when one spells the defaults
// out or carries sweep-local metadata (Index, ID).
func TestCellKeyNormalizesSentinels(t *testing.T) {
	a := Cell{Index: 0, App: "genome", Processors: 4, Seed: 42}
	b := Cell{Index: 7, ID: "M00042", App: "genome", Processors: 4,
		W0: matrixDefaultW0, Contention: ContentionBase, Seed: 42}
	if cellKey(a) != cellKey(b) {
		t.Fatalf("equivalent cells key differently:\n%s\n%s", cellKey(a), cellKey(b))
	}
	for name, c := range map[string]Cell{
		"w0":         {App: "genome", Processors: 4, W0: 2, Seed: 42},
		"contention": {App: "genome", Processors: 4, Contention: ContentionHigh, Seed: 42},
		"variant":    {App: "genome", Processors: 4, Seed: 42, Variant: VariantRenewalOff},
		"seed":       {App: "genome", Processors: 4, Seed: 43},
		"app":        {App: "yada", Processors: 4, Seed: 42},
		"processors": {App: "genome", Processors: 8, Seed: 42},
	} {
		if cellKey(c) == cellKey(a) {
			t.Errorf("%s change did not alter the cell key", name)
		}
	}
}

// TestTraceCacheBounded checks the cache evicts above its cap instead of
// growing without limit, and that an evicted key still regenerates.
func TestTraceCacheBounded(t *testing.T) {
	o := Options{Seed: 1, Scale: 0.02}
	s := NewSession(o)
	defer s.Close()
	for seed := uint64(0); seed < maxCachedTraces+16; seed++ {
		if _, err := s.trace(Cell{App: "intruder", Processors: 2, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	s.traceMu.Lock()
	n := len(s.traces)
	s.traceMu.Unlock()
	if n > maxCachedTraces {
		t.Fatalf("cache holds %d entries, cap is %d", n, maxCachedTraces)
	}
	// Any key — evicted or not — still resolves.
	if _, err := s.trace(Cell{App: "intruder", Processors: 2, Seed: 0}); err != nil {
		t.Fatal(err)
	}
}

// traceCacheKeys returns the cached trace keys (test helper).
func traceCacheKeys(s *Session) map[traceKey]bool {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	out := make(map[traceKey]bool, len(s.traces))
	for k := range s.traces {
		out[k] = true
	}
	return out
}

func traceCellForSeed(seed uint64) Cell {
	return Cell{App: stamp.Intruder, Processors: 1, Seed: seed, Contention: ContentionBase}
}

// TestTraceCacheLRUKeepsHotKeys pins the reuse-count-aware LRU policy: a
// key reused many times (a Fig7-style hot workload) must survive a flood
// of single-use keys that overflows the cache, while the flood's own
// oldest keys are the ones evicted.
func TestTraceCacheLRUKeepsHotKeys(t *testing.T) {
	s := NewSession(Options{Seed: 1, Scale: 0.01})
	defer s.Close()

	hot := traceCellForSeed(7)
	if _, err := s.trace(hot); err != nil {
		t.Fatal(err)
	}
	// Flood with 2x the cache bound in single-use keys, re-touching the
	// hot key along the way.
	for i := 0; i < 2*maxCachedTraces; i++ {
		if _, err := s.trace(traceCellForSeed(1000 + uint64(i))); err != nil {
			t.Fatal(err)
		}
		if i%8 == 0 {
			if _, err := s.trace(hot); err != nil {
				t.Fatal(err)
			}
		}
	}
	keys := traceCacheKeys(s)
	if len(keys) > maxCachedTraces {
		t.Fatalf("cache holds %d entries, bound is %d", len(keys), maxCachedTraces)
	}
	hotKey := traceKey{app: hot.App, threads: 1, scale: 0.01, contention: ContentionBase, seed: hot.Seed}
	if !keys[hotKey] {
		t.Fatal("hot (heavily reused) key was evicted by single-use flood")
	}
	// The earliest single-use flood keys must be gone (they are the
	// least-reused, least-recently-used entries).
	early := traceKey{app: hot.App, threads: 1, scale: 0.01, contention: ContentionBase, seed: 1000}
	if keys[early] {
		t.Fatal("oldest single-use key survived eviction")
	}
}

// TestTraceCacheLRUEvictsLeastRecentAmongEqualReuse: with equal reuse
// counts the policy degrades to plain LRU.
func TestTraceCacheLRUEvictsLeastRecentAmongEqualReuse(t *testing.T) {
	s := NewSession(Options{Seed: 1, Scale: 0.01})
	defer s.Close()
	// Fill exactly to the bound with single-use keys.
	for i := 0; i < maxCachedTraces; i++ {
		if _, err := s.trace(traceCellForSeed(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Refresh key 0 (recency only; reuse count now 2 — strictly more
	// than the others, but also most recent; victim must be key 1: the
	// least recent among the minimal-reuse entries).
	if _, err := s.trace(traceCellForSeed(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.trace(traceCellForSeed(9999)); err != nil {
		t.Fatal(err)
	}
	keys := traceCacheKeys(s)
	mk := func(seed uint64) traceKey {
		return traceKey{app: stamp.Intruder, threads: 1, scale: 0.01, contention: ContentionBase, seed: seed}
	}
	if keys[mk(1)] {
		t.Fatal("least-recently-used single-use key survived")
	}
	if !keys[mk(0)] || !keys[mk(2)] || !keys[mk(9999)] {
		t.Fatal("wrong victim chosen by LRU policy")
	}
}

// TestTraceCacheEvictionPreservesResults: eviction may only cost
// regeneration, never change what a cell runs.
func TestTraceCacheEvictionPreservesResults(t *testing.T) {
	s := NewSession(Options{Seed: 1, Scale: 0.01})
	defer s.Close()
	c := traceCellForSeed(5)
	before, err := s.trace(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxCachedTraces+8; i++ {
		if _, err := s.trace(traceCellForSeed(2000 + uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	after, err := s.trace(c) // regenerated after eviction
	if err != nil {
		t.Fatal(err)
	}
	if before.TotalTxs() != after.TotalTxs() || len(before.Threads) != len(after.Threads) {
		t.Fatal("regenerated trace differs from original")
	}
}
