package experiments

import (
	"strings"
	"testing"

	"repro/internal/stamp"
)

func TestCellsCanonicalOrder(t *testing.T) {
	o := quickOptions()
	cells := o.Cells()
	if len(cells) != 4 {
		t.Fatalf("%d cells for 2 apps x 2 processor counts", len(cells))
	}
	want := []struct {
		app stamp.App
		np  int
	}{
		{stamp.Intruder, 2}, {stamp.Intruder, 4},
		{stamp.Genome, 2}, {stamp.Genome, 4},
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has Index %d", i, c.Index)
		}
		if c.App != want[i].app || c.Processors != want[i].np {
			t.Errorf("cell %d is %s/%d, want %s/%d", i, c.App, c.Processors, want[i].app, want[i].np)
		}
		if c.Seed != o.Seed {
			t.Errorf("cell %d seed %d: shared-seed campaign must use the campaign seed", i, c.Seed)
		}
	}
}

func TestCellsDeriveSeeds(t *testing.T) {
	o := quickOptions()
	o.DeriveSeeds = true
	cells := o.Cells()
	seen := map[uint64]int{}
	for i, c := range cells {
		if c.Seed == o.Seed {
			t.Errorf("cell %d kept the campaign seed", i)
		}
		if c.Seed != CellSeed(o.Seed, i) {
			t.Errorf("cell %d seed %d, want CellSeed(%d, %d)=%d", i, c.Seed, o.Seed, i, CellSeed(o.Seed, i))
		}
		if j, dup := seen[c.Seed]; dup {
			t.Errorf("cells %d and %d share seed %d", j, i, c.Seed)
		}
		seen[c.Seed] = i
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the canonical SplitMix64 sequence with
	// state 0: successive outputs of nextSeed() in Vigna's C version.
	got := SplitMix64(0)
	if got != 0xe220a8397b1dcdaf {
		t.Fatalf("SplitMix64(0) = %#x", got)
	}
	if SplitMix64(1) == SplitMix64(2) {
		t.Fatal("adjacent inputs collide")
	}
}

func TestCellSeedIndependentOfPartition(t *testing.T) {
	// The seed of cell i must depend only on (campaign seed, i).
	for i := 0; i < 100; i++ {
		if CellSeed(42, i) != CellSeed(42, i) {
			t.Fatal("CellSeed not a pure function")
		}
	}
	if CellSeed(42, 0) == CellSeed(43, 0) {
		t.Fatal("campaign seed ignored")
	}
}

func TestShardCellsPartition(t *testing.T) {
	cells := make([]Cell, 10)
	for i := range cells {
		cells[i] = Cell{Index: i}
	}
	for _, count := range []int{1, 2, 3, 4, 7, 10, 11} {
		total := 0
		next := 0
		for idx := 0; idx < count; idx++ {
			part, err := ShardCells(cells, Shard{Index: idx, Count: count})
			if err != nil {
				t.Fatalf("shard %d/%d: %v", idx, count, err)
			}
			for _, c := range part {
				if c.Index != next {
					t.Fatalf("shard %d/%d: cell %d out of order (want %d)", idx, count, c.Index, next)
				}
				next++
			}
			total += len(part)
		}
		if total != len(cells) {
			t.Fatalf("count=%d covered %d of %d cells", count, total, len(cells))
		}
	}
}

func TestShardValidation(t *testing.T) {
	cells := []Cell{{}}
	for _, s := range []Shard{
		{Index: -1, Count: 2},
		{Index: 2, Count: 2},
		{Index: 0, Count: -1},
		{Index: 1, Count: 0},
	} {
		if _, err := ShardCells(cells, s); err == nil {
			t.Errorf("shard %+v accepted", s)
		}
	}
	if _, err := ShardCells(cells, Shard{}); err != nil {
		t.Errorf("zero shard rejected: %v", err)
	}
}

func TestRunCellsWorkerCountsAgree(t *testing.T) {
	o := quickOptions()
	cells := o.Cells()
	seq, err := o.RunCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 100} {
		op := o
		op.Workers = workers
		par, err := op.RunCells(cells)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if seq[i].Comparison != par[i].Comparison {
				t.Errorf("workers=%d cell %d: comparison diverged:\nseq %+v\npar %+v",
					workers, i, seq[i].Comparison, par[i].Comparison)
			}
		}
	}
}

func TestRunCellsErrorIsDeterministic(t *testing.T) {
	o := quickOptions()
	cells := o.Cells()
	// Poison two cells; the reported error must name the lowest index
	// regardless of worker count or completion order.
	cells[1].App = "no-such-app"
	cells[3].App = "also-missing"
	for _, workers := range []int{1, 4} {
		op := o
		op.Workers = workers
		_, err := op.RunCells(cells)
		if err == nil {
			t.Fatalf("workers=%d: poisoned campaign succeeded", workers)
		}
		if !strings.Contains(err.Error(), "cell 1") || !strings.Contains(err.Error(), "no-such-app") {
			t.Errorf("workers=%d: error %q does not name the lowest failing cell", workers, err)
		}
	}
}

func TestRunShardedCampaign(t *testing.T) {
	o := quickOptions()
	full, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	var got []*Campaign
	for i := 0; i < 2; i++ {
		op := o
		op.Shard = Shard{Index: i, Count: 2}
		c, err := Run(op)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, c)
	}
	if len(got[0].Outcomes)+len(got[1].Outcomes) != len(full.Outcomes) {
		t.Fatalf("shards cover %d+%d of %d cells",
			len(got[0].Outcomes), len(got[1].Outcomes), len(full.Outcomes))
	}
	k := 0
	for _, c := range got {
		for i := range c.Outcomes {
			if c.Outcomes[i].Comparison != full.Outcomes[k].Comparison {
				t.Errorf("shard outcome %d diverges from full campaign", k)
			}
			k++
		}
	}
}

func TestCellLabel(t *testing.T) {
	for _, tc := range []struct {
		cell Cell
		want string
	}{
		{Cell{App: stamp.Genome, Processors: 8}, "genome/8p"},
		{Cell{App: stamp.Genome, Processors: 8, W0: 2}, "genome/8p/W0=2"},
		{Cell{App: stamp.Intruder, Processors: 4, W0: 8, Contention: ContentionHigh},
			"intruder/4p/W0=8/high"},
		{Cell{App: stamp.Yada, Processors: 16, Contention: ContentionBase}, "yada/16p"},
	} {
		if got := tc.cell.Label(); got != tc.want {
			t.Errorf("label %q, want %q", got, tc.want)
		}
	}
}
