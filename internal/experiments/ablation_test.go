package experiments

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/stamp"
)

func tinyOptions() Options {
	return Options{Seed: 42, Scale: 0.05, Processors: []int{4}}
}

func TestAblationPolicies(t *testing.T) {
	rows, err := AblationPolicies(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d policy rows", len(rows))
	}
	if rows[0].Variant != string(config.PolicyGatingAware) {
		t.Fatalf("first variant %q", rows[0].Variant)
	}
	for _, r := range rows {
		if r.SpeedUp <= 0 || r.EnergyRatio <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
}

func TestAblationRenewal(t *testing.T) {
	rows, err := AblationRenewal(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d renewal rows", len(rows))
	}
	if rows[1].Renewals != 0 {
		t.Fatalf("renewal-off row has %d renewals", rows[1].Renewals)
	}
	if rows[0].Renewals == 0 {
		t.Fatal("renewal-on row recorded no renewals")
	}
}

func TestAblationSRPG(t *testing.T) {
	rows, err := AblationSRPG(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d SRPG rows", len(rows))
	}
	// Cheaper gated cycles must never lower the energy ratio.
	for i := 1; i < len(rows); i++ {
		if rows[i].EnergyRatio < rows[i-1].EnergyRatio-1e-9 {
			t.Fatalf("energy ratio decreased as leakage fell: %+v", rows)
		}
		if rows[i].SpeedUp != rows[0].SpeedUp {
			t.Fatal("SRPG re-pricing changed the speed-up")
		}
	}
}

func TestAblationsRender(t *testing.T) {
	out, err := Ablations(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gating-window policy", "renewal mechanism",
		"state-retention", "gating-aware", "exponential"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablations output missing %q", want)
		}
	}
}

func TestExtendedCampaign(t *testing.T) {
	o := tinyOptions()
	c, err := Extended(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Outcomes) != 5 { // 5 extension apps x 1 processor count
		t.Fatalf("%d outcomes", len(c.Outcomes))
	}
	seen := map[stamp.App]bool{}
	for _, out := range c.Outcomes {
		seen[out.Spec.App] = true
	}
	for _, app := range []stamp.App{stamp.Bayes, stamp.KMeans, stamp.Labyrinth, stamp.SSCA2, stamp.Vacation} {
		if !seen[app] {
			t.Fatalf("extension app %s missing", app)
		}
	}
}
