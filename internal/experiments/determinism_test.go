package experiments

import (
	"context"
	"strings"
	"testing"
)

// These tests pin the engine's central guarantee: for the same Options,
// sequential, parallel and sharded-then-concatenated campaigns — and a
// streamed campaign reordered into canonical order — produce
// byte-identical reports and CSV.

func campaignCSV(t *testing.T, o Options) string {
	t.Helper()
	c, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func campaignReports(t *testing.T, o Options) string {
	t.Helper()
	c, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	return c.Fig4() + c.Fig5() + c.Fig6() + c.DetailTable() + c.SummaryText()
}

func TestParallelCampaignByteIdenticalToSequential(t *testing.T) {
	o := quickOptions()
	o.Workers = 1
	seqCSV := campaignCSV(t, o)
	seqRep := campaignReports(t, o)
	for _, workers := range []int{2, 4, 16} {
		o.Workers = workers
		if got := campaignCSV(t, o); got != seqCSV {
			t.Fatalf("workers=%d: CSV diverged from sequential:\n--- seq ---\n%s\n--- par ---\n%s",
				workers, seqCSV, got)
		}
		if got := campaignReports(t, o); got != seqRep {
			t.Fatalf("workers=%d: rendered reports diverged from sequential", workers)
		}
	}
}

func TestParallelCampaignByteIdenticalWithDerivedSeeds(t *testing.T) {
	o := quickOptions()
	o.DeriveSeeds = true
	o.Workers = 1
	seq := campaignCSV(t, o)
	o.Workers = 8
	if got := campaignCSV(t, o); got != seq {
		t.Fatalf("derived-seed campaign not schedule-independent:\n--- seq ---\n%s\n--- par ---\n%s", seq, got)
	}
	// And derived seeds actually change the workloads vs the shared seed.
	o.DeriveSeeds = false
	if campaignCSV(t, o) == seq {
		t.Fatal("DeriveSeeds had no effect on the campaign")
	}
}

func TestShardedCSVConcatenatesToFullCSV(t *testing.T) {
	o := quickOptions()
	o.Workers = 4
	full := campaignCSV(t, o)
	for _, count := range []int{2, 3, 4} {
		var parts strings.Builder
		for idx := 0; idx < count; idx++ {
			op := o
			op.Shard = Shard{Index: idx, Count: count}
			c, err := Run(op)
			if err != nil {
				t.Fatalf("shard %d/%d: %v", idx, count, err)
			}
			// Shard 0 carries the header; the rest append rows only.
			if idx == 0 {
				err = c.WriteCSV(&parts)
			} else {
				err = c.AppendCSV(&parts)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if parts.String() != full {
			t.Fatalf("%d-way sharded CSV != full CSV:\n--- full ---\n%s\n--- concat ---\n%s",
				count, full, parts.String())
		}
	}
}

// TestStreamReorderedByteIdenticalToBatch pins the streaming API to the
// batch one: collecting Session.Stream's completion-order results and
// reordering them by Pos must reproduce Run's canonical-order campaign —
// and with it byte-identical reports and CSV — for any worker count.
func TestStreamReorderedByteIdenticalToBatch(t *testing.T) {
	o := quickOptions()
	o.Workers = 1
	batchCSV := campaignCSV(t, o)
	batchRep := campaignReports(t, o)

	for _, workers := range []int{1, 4, 16} {
		op := o
		op.Workers = workers
		s := NewSession(op)
		cells, err := ShardCells(op.Cells(), op.Shard)
		if err != nil {
			t.Fatal(err)
		}
		outs := make([]*CellResult, len(cells))
		for res, err := range s.Stream(context.Background(), cells) {
			if err != nil {
				t.Fatal(err)
			}
			res := res
			outs[res.Pos] = &res
		}
		campaign := &Campaign{Options: op, Cells: cells}
		for _, r := range outs {
			if r == nil {
				t.Fatal("stream dropped a cell")
			}
			campaign.Outcomes = append(campaign.Outcomes, r.Outcome)
		}
		var b strings.Builder
		if err := campaign.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if b.String() != batchCSV {
			t.Fatalf("workers=%d: reordered stream CSV diverged from batch:\n--- batch ---\n%s\n--- stream ---\n%s",
				workers, batchCSV, b.String())
		}
		rep := campaign.Fig4() + campaign.Fig5() + campaign.Fig6() + campaign.DetailTable() + campaign.SummaryText()
		if rep != batchRep {
			t.Fatalf("workers=%d: reordered stream reports diverged from batch", workers)
		}
		s.Close()
	}
}

func TestCampaignStableAcrossInvocations(t *testing.T) {
	o := quickOptions()
	o.Workers = 4
	first := campaignCSV(t, o)
	second := campaignCSV(t, o)
	if first != second {
		t.Fatalf("same options, different output:\n--- 1st ---\n%s\n--- 2nd ---\n%s", first, second)
	}
}

func TestScenarioCampaignDeterministic(t *testing.T) {
	o := Options{Seed: 42, Scale: 0.02}
	scenarios := DoneScenarios()[:6]
	render := func(workers int) string {
		op := o
		op.Workers = workers
		c, err := RunScenarios(op, scenarios)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := c.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String() + c.DetailTable()
	}
	seq := render(1)
	if par := render(8); par != seq {
		t.Fatalf("scenario campaign diverged:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}
