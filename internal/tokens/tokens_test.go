package tokens

import (
	"testing"
	"testing/quick"
)

func TestTIDsMonotonicallyIncrease(t *testing.T) {
	v := NewVendor()
	var last TID
	for i := 0; i < 100; i++ {
		tid := v.Acquire(i % 4)
		if tid <= last {
			t.Fatalf("TID %d not above previous %d", tid, last)
		}
		last = tid
	}
}

func TestFirstTIDIsNotNone(t *testing.T) {
	v := NewVendor()
	if v.Acquire(0) == TIDNone {
		t.Fatal("first TID equals TIDNone")
	}
}

func TestOutstandingAndHolder(t *testing.T) {
	v := NewVendor()
	a := v.Acquire(3)
	b := v.Acquire(5)
	if v.Outstanding() != 2 {
		t.Fatalf("outstanding %d, want 2", v.Outstanding())
	}
	if v.Holder(a) != 3 || v.Holder(b) != 5 {
		t.Fatal("holder mismatch")
	}
	v.Release(a)
	if v.Outstanding() != 1 {
		t.Fatalf("outstanding %d after release", v.Outstanding())
	}
	if v.Holder(a) != -1 {
		t.Fatal("released TID still has holder")
	}
}

func TestIssuedReleasedCounters(t *testing.T) {
	v := NewVendor()
	x := v.Acquire(0)
	y := v.Acquire(1)
	v.Release(x)
	v.Release(y)
	if v.Issued() != 2 || v.Released() != 2 {
		t.Fatalf("issued=%d released=%d", v.Issued(), v.Released())
	}
}

func TestReleaseNonOutstandingPanics(t *testing.T) {
	v := NewVendor()
	tid := v.Acquire(0)
	v.Release(tid)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	v.Release(tid)
}

func TestReleaseTIDNonePanics(t *testing.T) {
	v := NewVendor()
	defer func() {
		if recover() == nil {
			t.Error("release of TIDNone did not panic")
		}
	}()
	v.Release(TIDNone)
}

// Property: acquire/release in any order keeps the books balanced and
// never reuses a TID.
func TestQuickNoReuse(t *testing.T) {
	f := func(pattern []bool) bool {
		v := NewVendor()
		seen := map[TID]bool{}
		var live []TID
		for _, acquire := range pattern {
			if acquire || len(live) == 0 {
				tid := v.Acquire(0)
				if seen[tid] {
					return false
				}
				seen[tid] = true
				live = append(live, tid)
			} else {
				v.Release(live[len(live)-1])
				live = live[:len(live)-1]
			}
		}
		return v.Outstanding() == len(live) &&
			v.Issued()-v.Released() == uint64(len(live))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
