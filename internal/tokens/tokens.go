// Package tokens implements the centralized token vendor of Scalable TCC.
//
// When a processor reaches its commit instruction it requests a token id
// (TID) from the vendor. The TID is a global timestamp: when two committing
// transactions conflict at a directory, the one holding the lower TID
// commits first and the other waits. TIDs are never reused within a run.
package tokens

import "fmt"

// TID is a transaction commit timestamp. Lower is older. TIDNone marks a
// processor that holds no token.
type TID uint64

// TIDNone is the sentinel for "no token held".
const TIDNone = TID(0)

// Vendor hands out monotonically increasing TIDs and tracks which are
// outstanding (issued but not yet released by commit or abort).
type Vendor struct {
	next        TID
	outstanding map[TID]int // TID -> processor id
	issued      uint64
	released    uint64
}

// NewVendor returns a vendor whose first TID is 1 (0 is TIDNone).
func NewVendor() *Vendor {
	return &Vendor{next: 1, outstanding: make(map[TID]int)}
}

// Reset returns the vendor to its initial state — next TID 1, nothing
// outstanding, counters zeroed — keeping the outstanding map's storage.
// TIDs are never reused within a run; across runs of a reused system the
// sequence restarts at 1, exactly as a fresh vendor's would.
func (v *Vendor) Reset() {
	v.next = 1
	clear(v.outstanding)
	v.issued = 0
	v.released = 0
}

// Acquire issues the next TID to processor proc.
func (v *Vendor) Acquire(proc int) TID {
	t := v.next
	v.next++
	v.outstanding[t] = proc
	v.issued++
	return t
}

// Release returns a TID after the transaction commits or aborts. Releasing
// a TID that is not outstanding panics — it indicates a protocol bug.
func (v *Vendor) Release(t TID) {
	if t == TIDNone {
		panic("tokens: release of TIDNone")
	}
	if _, ok := v.outstanding[t]; !ok {
		panic(fmt.Sprintf("tokens: release of non-outstanding TID %d", t))
	}
	delete(v.outstanding, t)
	v.released++
}

// Outstanding returns the number of TIDs issued and not yet released.
func (v *Vendor) Outstanding() int { return len(v.outstanding) }

// Holder returns the processor holding TID t, or -1 if t is not
// outstanding.
func (v *Vendor) Holder(t TID) int {
	if p, ok := v.outstanding[t]; ok {
		return p
	}
	return -1
}

// Issued returns the total number of TIDs ever issued.
func (v *Vendor) Issued() uint64 { return v.issued }

// Released returns the total number of TIDs ever released.
func (v *Vendor) Released() uint64 { return v.released }
