// Package stamp provides synthetic workload presets modeled on the STAMP
// benchmark suite's published transactional characteristics (Minh et al.,
// IISWC'08). The paper evaluates genome, yada and intruder; the remaining
// five applications are provided as extension presets.
//
// The presets do not re-implement the applications' algorithms — the
// gating mechanism under study responds only to the conflict structure of
// the transaction stream: how long transactions are, how large their read
// and write sets are, how contended the shared data is, and whether the
// same static transaction repeats inside loops (which drives the gating
// protocol's renewal path). Those characteristics are what each preset
// encodes:
//
//   - intruder: short transactions, small sets, very high contention
//     (shared queues/decoder maps) — the paper's "highly conflicting"
//     case with the largest energy savings.
//   - yada: long transactions with large read/write sets and moderate
//     contention (mesh cavity re-triangulation), repeated in loops — the
//     case the paper says drives the renew counter up while the abort
//     counter stays low.
//   - genome: medium transactions, moderate-to-low contention (segment
//     hashing then list insertion), also loop-repeated.
package stamp

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// App identifies a STAMP application preset.
type App string

// The three applications evaluated in the paper.
const (
	Genome   App = "genome"
	Yada     App = "yada"
	Intruder App = "intruder"
)

// Extension presets (not in the paper's evaluation, provided for wider
// experiments).
const (
	Bayes     App = "bayes"
	KMeans    App = "kmeans"
	Labyrinth App = "labyrinth"
	SSCA2     App = "ssca2"
	Vacation  App = "vacation"
)

// MaxThreads is the widest thread count the presets generate, matching
// the simulator's 128-processor machine ceiling (config.MaxProcessors).
// Every preset divides its fixed transaction pool across threads the way
// STAMP divides work, so the 64- and 128-thread scale points are just
// wider splits of the same workload.
const MaxThreads = 128

// PaperApps returns the applications in the paper's evaluation, in the
// order its figures present them.
func PaperApps() []App { return []App{Genome, Yada, Intruder} }

// AllApps returns every preset, paper apps first.
func AllApps() []App {
	return []App{Genome, Yada, Intruder, Bayes, KMeans, Labyrinth, SSCA2, Vacation}
}

// specs maps each app to its generator parameters. TotalTxs values are
// sized for simulation runs that finish in well under a second while
// leaving thousands of commit/abort events for the statistics.
// Private regions are sized to be L1-resident (the 64 KB/64 B L1 holds
// 1024 lines): STAMP transactions run at high L1 hit rates, so processor
// time is execution-dominated, not miss-dominated — the regime the paper's
// power model assumes (Run power dominates; misses and commits are the
// exception). Contention comes from small, skewed hot sets: the shared
// queue heads, tree roots and hash buckets that cause STAMP's aborts.
var specs = map[App]workload.Spec{
	Intruder: {
		Name:         string(Intruder),
		TotalTxs:     4800,
		MeanTxOps:    10,
		TxOpsJitter:  0.5,
		WriteFrac:    0.50,
		HotLines:     8,
		HotFrac:      0.80,
		ZipfSkew:     1.2,
		PrivateLines: 256,
		ComputeMean:  4,
		InterTxMean:  15,
		TxTypes:      3,
	},
	Yada: {
		Name:         string(Yada),
		TotalTxs:     1200,
		MeanTxOps:    80,
		TxOpsJitter:  0.4,
		WriteFrac:    0.35,
		HotLines:     32,
		HotFrac:      0.50,
		ZipfSkew:     0.9,
		PrivateLines: 384,
		ComputeMean:  5,
		InterTxMean:  50,
		TxTypes:      2,
	},
	Genome: {
		Name:         string(Genome),
		TotalTxs:     2400,
		MeanTxOps:    36,
		TxOpsJitter:  0.4,
		WriteFrac:    0.30,
		HotLines:     48,
		HotFrac:      0.45,
		ZipfSkew:     1.0,
		PrivateLines: 384,
		ComputeMean:  5,
		InterTxMean:  40,
		TxTypes:      4,
	},
	Bayes: {
		Name:         string(Bayes),
		TotalTxs:     600,
		MeanTxOps:    96,
		TxOpsJitter:  0.6,
		WriteFrac:    0.40,
		HotLines:     48,
		HotFrac:      0.45,
		ZipfSkew:     0.9,
		PrivateLines: 384,
		ComputeMean:  6,
		InterTxMean:  60,
		TxTypes:      2,
	},
	KMeans: {
		Name:         string(KMeans),
		TotalTxs:     6000,
		MeanTxOps:    6,
		TxOpsJitter:  0.3,
		WriteFrac:    0.50,
		HotLines:     64,
		HotFrac:      0.20,
		ZipfSkew:     0.3,
		PrivateLines: 256,
		ComputeMean:  8,
		InterTxMean:  25,
		TxTypes:      1,
	},
	Labyrinth: {
		Name:         string(Labyrinth),
		TotalTxs:     320,
		MeanTxOps:    160,
		TxOpsJitter:  0.5,
		WriteFrac:    0.45,
		HotLines:     256,
		HotFrac:      0.55,
		ZipfSkew:     0.2,
		PrivateLines: 512,
		ComputeMean:  3,
		InterTxMean:  80,
		TxTypes:      1,
	},
	SSCA2: {
		Name:         string(SSCA2),
		TotalTxs:     8000,
		MeanTxOps:    4,
		TxOpsJitter:  0.3,
		WriteFrac:    0.55,
		HotLines:     4096,
		HotFrac:      0.80,
		ZipfSkew:     0.1,
		PrivateLines: 128,
		ComputeMean:  4,
		InterTxMean:  10,
		TxTypes:      2,
	},
	Vacation: {
		Name:         string(Vacation),
		TotalTxs:     2400,
		MeanTxOps:    40,
		TxOpsJitter:  0.4,
		WriteFrac:    0.30,
		HotLines:     512,
		HotFrac:      0.50,
		ZipfSkew:     0.9,
		PrivateLines: 384,
		ComputeMean:  4,
		InterTxMean:  35,
		TxTypes:      3,
	},
}

// Spec returns the generator parameters for app.
func Spec(app App) (workload.Spec, error) {
	s, ok := specs[app]
	if !ok {
		return workload.Spec{}, fmt.Errorf("stamp: unknown application %q (known: %v)", app, knownNames())
	}
	return s, nil
}

// MustSpec is Spec that panics on unknown apps.
func MustSpec(app App) workload.Spec {
	s, err := Spec(app)
	if err != nil {
		panic(err)
	}
	return s
}

// Generate builds the deterministic trace for app with the given thread
// count and seed. Thread counts above MaxThreads are rejected: no machine
// configuration can run the resulting trace.
func Generate(app App, threads int, seed uint64) (*workload.Trace, error) {
	s, err := Spec(app)
	if err != nil {
		return nil, err
	}
	if threads > MaxThreads {
		return nil, fmt.Errorf("stamp: %d threads exceed the %d-processor machine ceiling", threads, MaxThreads)
	}
	return s.Generate(threads, seed)
}

func knownNames() []string {
	names := make([]string, 0, len(specs))
	for a := range specs {
		names = append(names, string(a))
	}
	sort.Strings(names)
	return names
}
