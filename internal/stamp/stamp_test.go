package stamp

import (
	"testing"

	"repro/internal/mem"
)

func TestAllAppsHaveValidSpecs(t *testing.T) {
	for _, app := range AllApps() {
		s, err := Spec(app)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: invalid spec: %v", app, err)
		}
		if s.Name != string(app) {
			t.Fatalf("%s: spec name %q", app, s.Name)
		}
	}
}

func TestPaperAppsAreSubsetInOrder(t *testing.T) {
	p := PaperApps()
	if len(p) != 3 || p[0] != Genome || p[1] != Yada || p[2] != Intruder {
		t.Fatalf("PaperApps = %v", p)
	}
	all := AllApps()
	if len(all) != 8 {
		t.Fatalf("AllApps has %d entries", len(all))
	}
	for i := range p {
		if all[i] != p[i] {
			t.Fatal("AllApps does not lead with the paper apps")
		}
	}
}

func TestUnknownAppRejected(t *testing.T) {
	if _, err := Spec(App("quake")); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := Generate(App("quake"), 4, 1); err == nil {
		t.Fatal("unknown app generated")
	}
}

func TestMustSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSpec(unknown) did not panic")
		}
	}()
	MustSpec(App("quake"))
}

func TestGenerateAllAppsFitTableIIMemory(t *testing.T) {
	g := mem.MustGeometry(64, 16, 1<<30)
	for _, app := range AllApps() {
		tr, err := Generate(app, 16, 42)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if err := tr.Validate(g); err != nil {
			t.Fatalf("%s: trace invalid: %v", app, err)
		}
	}
}

func TestGenerateDeterministicPerApp(t *testing.T) {
	for _, app := range PaperApps() {
		a, _ := Generate(app, 8, 5)
		b, _ := Generate(app, 8, 5)
		if a.TotalTxs() != b.TotalTxs() {
			t.Fatalf("%s: nondeterministic generation", app)
		}
		for ti := range a.Threads {
			if len(a.Threads[ti].Txs) != len(b.Threads[ti].Txs) {
				t.Fatalf("%s: thread %d differs", app, ti)
			}
		}
	}
}

// meanOps returns the observed mean memory operations per transaction.
func meanOps(t *testing.T, app App) float64 {
	t.Helper()
	tr, err := Generate(app, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	ops, txs := 0, 0
	for ti := range tr.Threads {
		for _, tx := range tr.Threads[ti].Txs {
			txs++
			for _, op := range tx.Ops {
				if op.Kind != 2 { // not compute
					ops++
				}
			}
		}
	}
	return float64(ops) / float64(txs)
}

func TestAppCharacteristicsOrdering(t *testing.T) {
	// The paper's characterization: intruder has short transactions,
	// yada long ones, genome in between.
	intruder := meanOps(t, Intruder)
	genome := meanOps(t, Genome)
	yada := meanOps(t, Yada)
	if !(intruder < genome && genome < yada) {
		t.Fatalf("tx length ordering violated: intruder=%.1f genome=%.1f yada=%.1f",
			intruder, genome, yada)
	}
}

func TestWorkAmountIndependentOfThreads(t *testing.T) {
	// STAMP divides a fixed work pool among threads: total transactions
	// must not grow with the processor count.
	for _, app := range PaperApps() {
		t4, _ := Generate(app, 4, 42)
		t16, _ := Generate(app, 16, 42)
		if t4.TotalTxs() != t16.TotalTxs() {
			t.Fatalf("%s: total txs %d@4p vs %d@16p", app, t4.TotalTxs(), t16.TotalTxs())
		}
	}
}

func TestGenerateAtScaleAxisWidths(t *testing.T) {
	// Every preset must generate a valid trace at the 64p and 128p scale
	// points: per-thread streams stay non-empty (the generator floors at
	// one transaction per thread) and the work pool still does not grow
	// with the thread count beyond that floor.
	for _, app := range AllApps() {
		for _, threads := range []int{64, MaxThreads} {
			tr, err := Generate(app, threads, 42)
			if err != nil {
				t.Fatalf("%s at %d threads: %v", app, threads, err)
			}
			if tr.NumThreads() != threads {
				t.Fatalf("%s: %d threads generated, want %d", app, tr.NumThreads(), threads)
			}
			for i := range tr.Threads {
				if len(tr.Threads[i].Txs) == 0 {
					t.Fatalf("%s at %d threads: thread %d got no work", app, threads, i)
				}
			}
		}
	}
}

func TestGenerateRejectsOverwideMachines(t *testing.T) {
	if _, err := Generate(Genome, MaxThreads+1, 1); err == nil {
		t.Fatalf("%d threads accepted beyond the machine ceiling", MaxThreads+1)
	}
}
