package fifo

import (
	"testing"
)

// FuzzFIFO differentially tests the ring-buffer queue against a plain
// slice model. The fuzz input is an op stream: each byte's low two bits
// select push/pop/front/len, and pushes use the byte itself as the value,
// so growth, wrap-around and the empty-queue edges are all exercised by
// short inputs.
func FuzzFIFO(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3, 0, 1, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var q Queue[int]
		var model []int
		for i, op := range ops {
			switch op & 3 {
			case 0: // push
				q.Push(int(op))
				model = append(model, int(op))
			case 1: // pop
				if len(model) == 0 {
					mustPanic(t, "Pop", func() { q.Pop() })
					continue
				}
				want := model[0]
				model = model[1:]
				if got := q.Pop(); got != want {
					t.Fatalf("op %d: Pop = %d, model says %d", i, got, want)
				}
			case 2: // front
				if len(model) == 0 {
					mustPanic(t, "Front", func() { q.Front() })
					continue
				}
				if got := q.Front(); got != model[0] {
					t.Fatalf("op %d: Front = %d, model says %d", i, got, model[0])
				}
			case 3: // len
				if q.Len() != len(model) {
					t.Fatalf("op %d: Len = %d, model says %d", i, q.Len(), len(model))
				}
			}
		}
		// Drain and compare the tail: contents must match element for
		// element after any op sequence.
		if q.Len() != len(model) {
			t.Fatalf("final Len = %d, model says %d", q.Len(), len(model))
		}
		for i, want := range model {
			if got := q.Pop(); got != want {
				t.Fatalf("drain %d: Pop = %d, model says %d", i, got, want)
			}
		}
	})
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s on empty queue did not panic", name)
		}
	}()
	f()
}
