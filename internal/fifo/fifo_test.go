package fifo

import "testing"

func TestFIFOOrder(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("len %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		if got := q.Front(); got != i {
			t.Fatalf("front %d, want %d", got, i)
		}
		if got := q.Pop(); got != i {
			t.Fatalf("pop %d, want %d", got, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("len %d after drain", q.Len())
	}
}

func TestWrapAround(t *testing.T) {
	var q Queue[int]
	next, want := 0, 0
	// Sustained backlog forces the head to wrap repeatedly.
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 5; i++ {
			if got := q.Pop(); got != want {
				t.Fatalf("pop %d, want %d", got, want)
			}
			want++
		}
	}
	for q.Len() > 0 {
		if got := q.Pop(); got != want {
			t.Fatalf("drain pop %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d items, pushed %d", want, next)
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty queue did not panic")
		}
	}()
	var q Queue[int]
	q.Pop()
}

func TestSteadyStateZeroAlloc(t *testing.T) {
	var q Queue[int]
	work := func() {
		for i := 0; i < 64; i++ {
			q.Push(i)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
	work()
	if avg := testing.AllocsPerRun(100, work); avg != 0 {
		t.Fatalf("steady-state queue cycling allocates %.1f times, want 0", avg)
	}
}
