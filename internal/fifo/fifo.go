// Package fifo provides a growable ring-buffer FIFO queue. The bus and
// directory models queue requesters in arrival order between batched
// grant rounds; a ring buffer keeps that queueing allocation-free in
// steady state (a plain head-indexed slice would grow without bound under
// sustained backlog).
package fifo

// Queue is a FIFO of T backed by a power-of-two ring buffer. The zero
// value is an empty, ready-to-use queue.
type Queue[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// Push appends v at the tail.
func (q *Queue[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

// Pop removes and returns the head. It panics on an empty queue.
func (q *Queue[T]) Pop() T {
	if q.n == 0 {
		panic("fifo: pop from empty queue")
	}
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release references for GC
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// Front returns the head without removing it. It panics on an empty queue.
func (q *Queue[T]) Front() T {
	if q.n == 0 {
		panic("fifo: front of empty queue")
	}
	return q.buf[q.head]
}

// Clear empties the queue in place, keeping the ring storage for reuse.
// Dropped elements are zeroed so references they held are released.
func (q *Queue[T]) Clear() {
	clear(q.buf)
	q.head = 0
	q.n = 0
}

func (q *Queue[T]) grow() {
	size := 2 * len(q.buf)
	if size == 0 {
		size = 8
	}
	buf := make([]T, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = buf
	q.head = 0
}
