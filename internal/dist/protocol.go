// Package dist is the distributed campaign fabric: a coordinator that
// owns one campaign's canonical cell list and leases batches of cells
// over HTTP+JSON to any number of worker processes, each a thin wrapper
// around the experiments.Session engine. Returned results are merged by
// canonical cell position, so the final campaign — reports and CSV — is
// byte-identical to a single-process Session.Run of the same options,
// which the golden tests in dist_test.go pin.
//
// The protocol (specified in docs/DISTRIBUTED.md) is four work
// endpoints plus a read-only control plane:
//
//	GET  /v1/campaign   what this coordinator is running (fingerprint,
//	                    options, cell count) — the worker join handshake
//	POST /v1/lease      claim a batch of pending cells under a deadline
//	POST /v1/renew      heartbeat: extend a live lease's deadline while
//	                    its cells are still running
//	POST /v1/return     deliver completed cell records
//	GET  /v1/status     JSON snapshot: phase counts, per-worker
//	                    counters, throughput, ETA
//	GET  /metrics       the same numbers in Prometheus text format
//
// Leases carry deadlines: a live worker renews its claim while a cell
// runs (so slow cells outlive the TTL), and a worker that dies simply
// stops renewing — once the deadline passes the coordinator reclaims
// the batch's unfinished cells, lazily on the lease path and
// periodically from Serve's background sweep. Near the end of a
// campaign the coordinator may also re-lease the oldest in-flight cells
// to idle workers (straggler stealing). Results are deduplicated per
// cell (first completed return wins), so a slow worker returning after
// its lease expired — or after its cell was stolen and re-run elsewhere
// — changes nothing: cells are deterministic, and the merge keys on
// canonical position, not on who computed it.
package dist

import "repro/internal/experiments"

// ProtocolVersion guards the wire format. A worker refuses to join a
// coordinator speaking a different version.
const ProtocolVersion = 1

// CampaignInfo is the GET /v1/campaign response: what campaign this
// coordinator runs, identified the same way the checkpoint sink
// identifies it (the options fingerprint), plus the options themselves
// so a worker can build an identical Session.
type CampaignInfo struct {
	Protocol    int                 `json:"protocol"`
	Fingerprint string              `json:"fingerprint"`
	Options     experiments.Options `json:"options"`
	Cells       int                 `json:"cells"`
}

// LeaseRequest asks for up to Max cells of work. Worker is a free-form
// identity used for logs and lease accounting only — correctness never
// depends on it.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
}

// LeasedCell is one unit of leased work: the cell and its position in
// the coordinator's canonical cell list. The position is the merge key;
// the worker echoes it back with the result.
type LeasedCell struct {
	Pos  int              `json:"pos"`
	Cell experiments.Cell `json:"cell"`
}

// LeaseResponse grants a batch of cells (possibly empty). Done reports
// that every cell of the campaign is accounted for — the worker's signal
// to exit. With no grant and no Done, RetryMS suggests when to poll
// again (pending work may appear when another worker's lease expires).
type LeaseResponse struct {
	LeaseID    uint64       `json:"lease_id,omitempty"`
	Cells      []LeasedCell `json:"cells,omitempty"`
	DeadlineMS int64        `json:"deadline_ms,omitempty"` // lease TTL granted, in milliseconds
	Done       bool         `json:"done,omitempty"`
	RetryMS    int64        `json:"retry_ms,omitempty"`
	// Err reports a failed campaign (some cell errored): workers should
	// stop polling and exit with this error.
	Err string `json:"err,omitempty"`
}

// RenewRequest is the worker heartbeat: it extends the lease's deadline
// by one TTL while the lease's cells are still running, so a cell
// slower than the TTL is not reclaimed and re-run elsewhere.
type RenewRequest struct {
	LeaseID uint64 `json:"lease_id"`
	Worker  string `json:"worker"`
}

// RenewResponse answers a heartbeat. DeadlineMS carries the renewed TTL
// on success. Expired reports that the coordinator no longer tracks the
// lease (its deadline passed and it was reclaimed, or every cell was
// already returned): the worker should stop renewing but may still
// return its results — late returns are merged or deduplicated as
// usual. Done and Err mirror LeaseResponse: the campaign ended, so
// renewing (and computing) is pointless.
type RenewResponse struct {
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	Expired    bool   `json:"expired,omitempty"`
	Done       bool   `json:"done,omitempty"`
	Err        string `json:"err,omitempty"`
}

// CellReturn is one completed cell: its canonical position, and either
// the full record (the same serialization the checkpoint sink writes) or
// the cell's error.
type CellReturn struct {
	Pos    int                    `json:"pos"`
	Record experiments.CellRecord `json:"record"`
	Err    string                 `json:"err,omitempty"`
}

// ReturnRequest delivers a lease's completed cells. Partial returns are
// allowed; cells of the lease not included stay leased until the
// deadline.
type ReturnRequest struct {
	LeaseID uint64       `json:"lease_id"`
	Worker  string       `json:"worker"`
	Results []CellReturn `json:"results"`
}

// ReturnResponse acknowledges a return: how many results were merged,
// how many were discarded as duplicates (the cell was already complete —
// the dedup-on-re-lease rule), and whether the campaign is now done.
type ReturnResponse struct {
	Accepted   int  `json:"accepted"`
	Duplicates int  `json:"duplicates"`
	Done       bool `json:"done,omitempty"`
}
