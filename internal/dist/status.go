package dist

// This file is the coordinator control plane: a JSON snapshot (GET
// /v1/status) and a Prometheus-style text export (GET /metrics) of the
// same numbers, so a fleet is observable — and autoscalable — while it
// runs. Both endpoints are read-only and safe to poll; the snapshot is
// taken under the coordinator lock, so its phase counts always sum to
// the cell total.

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Status is the GET /v1/status response: one consistent snapshot of the
// campaign's lease state machine. Pending+Leased+Done always equals
// Cells.
type Status struct {
	Protocol    int    `json:"protocol"`
	Fingerprint string `json:"fingerprint"`

	// Phase counts, summing to Cells.
	Cells   int `json:"cells"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`

	// Activity counters (the Stats set).
	Restored     int `json:"restored"`
	Leases       int `json:"leases"`
	ActiveLeases int `json:"active_leases"`
	Expired      int `json:"expired"`
	Returned     int `json:"returned"`
	Duplicates   int `json:"duplicates"`
	Renewals     int `json:"renewals"`
	Steals       int `json:"steals"`

	// Throughput over the coordinator's lifetime (merged returns per
	// second; restored cells excluded) and the ETA it implies for the
	// remaining cells. ETAMS is 0 until a return has been merged.
	UptimeMS    int64   `json:"uptime_ms"`
	CellsPerSec float64 `json:"cells_per_sec"`
	ETAMS       int64   `json:"eta_ms,omitempty"`

	// Completed reports every cell accounted for; Failed (with Err)
	// reports a failed campaign.
	Completed bool   `json:"completed,omitempty"`
	Failed    bool   `json:"failed,omitempty"`
	Err       string `json:"err,omitempty"`

	// Workers lists per-worker accounting, sorted by name.
	Workers []WorkerStatus `json:"workers,omitempty"`
}

// WorkerStatus is one worker's row in Status.Workers.
type WorkerStatus struct {
	Name       string `json:"name"`
	Leases     int    `json:"leases"`
	Returned   int    `json:"returned"`
	Duplicates int    `json:"duplicates,omitempty"`
	Renewals   int    `json:"renewals,omitempty"`
	Steals     int    `json:"steals,omitempty"`
	Expired    int    `json:"expired,omitempty"`
	// LastSeenMS is how long ago the worker last contacted the
	// coordinator, in milliseconds.
	LastSeenMS int64 `json:"last_seen_ms"`
}

// Status takes one consistent control-plane snapshot.
func (c *Coordinator) Status() Status {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()

	st := Status{
		Protocol:     ProtocolVersion,
		Fingerprint:  c.fingerprint,
		Cells:        len(c.cells),
		Restored:     c.stats.Restored,
		Leases:       c.stats.Leases,
		ActiveLeases: len(c.leases),
		Expired:      c.stats.Expired,
		Returned:     c.stats.Returned,
		Duplicates:   c.stats.Duplicates,
		Renewals:     c.stats.Renewals,
		Steals:       c.stats.Steals,
		UptimeMS:     now.Sub(c.startedAt).Milliseconds(),
		Completed:    c.remaining == 0,
		Failed:       c.failed,
	}
	for _, ph := range c.phase {
		switch ph {
		case cellPending:
			st.Pending++
		case cellLeased:
			st.Leased++
		case cellDone:
			st.Done++
		}
	}
	if err := c.firstErrLocked(); err != nil {
		st.Err = err.Error()
	}
	if elapsed := now.Sub(c.startedAt).Seconds(); elapsed > 0 && c.stats.Returned > 0 {
		st.CellsPerSec = float64(c.stats.Returned) / elapsed
		if remaining := len(c.cells) - st.Done; remaining > 0 {
			st.ETAMS = int64(float64(remaining) / st.CellsPerSec * 1000)
		}
	}
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		wk := c.workers[name]
		st.Workers = append(st.Workers, WorkerStatus{
			Name:       name,
			Leases:     wk.leases,
			Returned:   wk.returned,
			Duplicates: wk.duplicates,
			Renewals:   wk.renewals,
			Steals:     wk.steals,
			Expired:    wk.expired,
			LastSeenMS: now.Sub(wk.lastSeen).Milliseconds(),
		})
	}
	return st
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Status())
}

// handleMetrics renders the status snapshot in the Prometheus text
// exposition format, one scrape per GET.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := c.Status()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge("clockgate_cells_total", "Total campaign cells.", float64(st.Cells))
	gauge("clockgate_cells_pending", "Cells waiting to be leased.", float64(st.Pending))
	gauge("clockgate_cells_leased", "Cells currently leased out.", float64(st.Leased))
	gauge("clockgate_cells_done", "Cells completed and merged.", float64(st.Done))
	gauge("clockgate_leases_active", "Leases currently outstanding.", float64(st.ActiveLeases))
	counter("clockgate_cells_restored_total", "Cells restored from the checkpoint journal at startup.", float64(st.Restored))
	counter("clockgate_leases_granted_total", "Non-empty lease grants.", float64(st.Leases))
	counter("clockgate_leases_expired_total", "Leases reclaimed after their deadline.", float64(st.Expired))
	counter("clockgate_leases_renewed_total", "Granted /v1/renew deadline extensions.", float64(st.Renewals))
	counter("clockgate_cells_stolen_total", "In-flight cells re-leased to an idle worker.", float64(st.Steals))
	counter("clockgate_returns_merged_total", "Cell results merged into the campaign.", float64(st.Returned))
	counter("clockgate_returns_duplicate_total", "Returned results discarded as duplicates.", float64(st.Duplicates))
	failed := 0.0
	if st.Failed {
		failed = 1
	}
	gauge("clockgate_campaign_failed", "1 when some cell failed and the campaign is over.", failed)
	gauge("clockgate_uptime_seconds", "Coordinator uptime.", float64(st.UptimeMS)/1000)
	gauge("clockgate_cells_per_second", "Merged returns per second of uptime.", st.CellsPerSec)
	gauge("clockgate_eta_seconds", "Estimated seconds until the remaining cells complete.", float64(st.ETAMS)/1000)
	for _, wk := range st.Workers {
		label := fmt.Sprintf("{worker=%q}", wk.Name)
		fmt.Fprintf(&b, "clockgate_worker_leases_total%s %d\n", label, wk.Leases)
		fmt.Fprintf(&b, "clockgate_worker_returned_total%s %d\n", label, wk.Returned)
		fmt.Fprintf(&b, "clockgate_worker_duplicates_total%s %d\n", label, wk.Duplicates)
		fmt.Fprintf(&b, "clockgate_worker_renewals_total%s %d\n", label, wk.Renewals)
		fmt.Fprintf(&b, "clockgate_worker_steals_total%s %d\n", label, wk.Steals)
		fmt.Fprintf(&b, "clockgate_worker_expired_total%s %d\n", label, wk.Expired)
		fmt.Fprintf(&b, "clockgate_worker_last_seen_seconds%s %g\n", label, float64(wk.LastSeenMS)/1000)
	}
	fmt.Fprint(w, b.String())
}

// FetchStatus fetches a coordinator's /v1/status snapshot. addr is
// "host:port" or a full http:// URL; a nil client uses a 10s-timeout
// default.
func FetchStatus(ctx context.Context, client *http.Client, addr string) (Status, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	var st Status
	if err := getJSON(ctx, client, normalizeBase(addr)+"/v1/status", &st); err != nil {
		return Status{}, fmt.Errorf("dist: status %s: %w", addr, err)
	}
	return st, nil
}

// Progress renders the snapshot as one log line — the shape the CLI's
// periodic progress logging prints.
func (st Status) Progress() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d done, %d leased, %d pending", st.Done, st.Cells, st.Leased, st.Pending)
	if st.CellsPerSec > 0 {
		fmt.Fprintf(&b, ", %.2f cells/s", st.CellsPerSec)
		if st.ETAMS > 0 {
			fmt.Fprintf(&b, ", ETA %s", (time.Duration(st.ETAMS) * time.Millisecond).Round(time.Second))
		}
	}
	if n := len(st.Workers); n > 0 {
		fmt.Fprintf(&b, ", %d workers", n)
	}
	if st.Failed {
		fmt.Fprintf(&b, ", FAILED: %s", st.Err)
	}
	return b.String()
}

// Summary renders the full snapshot as a human-readable block — what
// `experiments -status addr` prints.
func (st Status) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %s (protocol %d)\n", st.Fingerprint, st.Protocol)
	fmt.Fprintf(&b, "cells: %d total — %d done (%d restored), %d leased, %d pending\n",
		st.Cells, st.Done, st.Restored, st.Leased, st.Pending)
	fmt.Fprintf(&b, "leases: %d granted, %d active, %d expired, %d renewals, %d cells stolen\n",
		st.Leases, st.ActiveLeases, st.Expired, st.Renewals, st.Steals)
	fmt.Fprintf(&b, "returns: %d merged, %d duplicates discarded\n", st.Returned, st.Duplicates)
	fmt.Fprintf(&b, "uptime %s", (time.Duration(st.UptimeMS) * time.Millisecond).Round(time.Second))
	if st.CellsPerSec > 0 {
		fmt.Fprintf(&b, ", %.2f cells/s", st.CellsPerSec)
		if st.ETAMS > 0 {
			fmt.Fprintf(&b, ", ETA %s", (time.Duration(st.ETAMS) * time.Millisecond).Round(time.Second))
		}
	}
	b.WriteString("\n")
	switch {
	case st.Failed:
		fmt.Fprintf(&b, "campaign FAILED: %s\n", st.Err)
	case st.Completed:
		b.WriteString("campaign complete\n")
	}
	for _, wk := range st.Workers {
		fmt.Fprintf(&b, "  worker %-16s %3d leases, %4d returned, %2d dup, %3d renewals, %2d stolen, %2d expired, last seen %s ago\n",
			wk.Name, wk.Leases, wk.Returned, wk.Duplicates, wk.Renewals, wk.Steals, wk.Expired,
			(time.Duration(wk.LastSeenMS) * time.Millisecond).Round(100*time.Millisecond))
	}
	return b.String()
}
