// Elastic-fleet hardening tests: lease heartbeats keeping slow cells
// alive, straggler re-lease (work stealing) with first-return-wins
// dedup, workers surviving a flaky coordinator, atomic return
// validation, and the chaos smoke the CI "Fleet chaos smoke" lane runs
// race-enabled — random worker death, duplicate returns and a flaky
// transport, with byte-identity and a well-formed /v1/status asserted
// throughout.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/stamp"
)

// chaosOptions is a slightly wider campaign (6 cells) so the chaos
// smoke has enough work for expiry, stealing and duplicates to overlap.
func chaosOptions() experiments.Options {
	return experiments.Options{
		Seed:       42,
		Scale:      0.02,
		Workers:    2,
		Apps:       []stamp.App{stamp.Intruder, stamp.Genome},
		Processors: []int{2, 4, 8},
	}
}

// TestFleetRenewalOutlivesLeaseTTL pins the heartbeat contract: a
// worker renewing its lease holds a cell far past 3×LeaseTTL — with the
// background expiry sweep running the whole time — and the cell is
// neither reclaimed nor re-run elsewhere; the eventual return is merged
// as the first copy, not a duplicate.
func TestFleetRenewalOutlivesLeaseTTL(t *testing.T) {
	opts := testOptions()
	want := singleProcessCSV(t, opts)
	cells := opts.Cells()
	const ttl = 200 * time.Millisecond

	coord, err := NewCoordinator(opts, cells, Config{
		LeaseTTL:      ttl,
		LeaseBatch:    1,
		RetryDelay:    20 * time.Millisecond,
		DrainGrace:    400 * time.Millisecond,
		SweepInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveCh := startCoordinator(t, coord)
	ctx := context.Background()

	// The slow worker: leases one cell, computes it immediately, but
	// holds the return far past the TTL, renewing the whole time.
	var grant LeaseResponse
	if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/lease",
		LeaseRequest{Worker: "slow", Max: 1}, &grant); err != nil {
		t.Fatal(err)
	}
	if len(grant.Cells) != 1 {
		t.Fatalf("leased %d cells, want 1", len(grant.Cells))
	}
	session := experiments.NewSession(opts)
	defer session.Close()
	late := runLease(ctx, session, grant.Cells)

	// A healthy worker completes every other cell meanwhile, then polls
	// until the slow cell lands.
	healthyCh := make(chan serveResult, 1)
	go func() {
		st, err := Work(ctx, addr, WorkerOptions{Name: "healthy", Workers: 2})
		_ = st
		healthyCh <- serveResult{nil, err}
	}()

	// Renew every 60ms for 3.5×TTL. The sweep fires every 25ms, so one
	// missed renewal window would reclaim the lease almost instantly.
	for elapsed := time.Duration(0); elapsed < 3*ttl+ttl/2; elapsed += 60 * time.Millisecond {
		time.Sleep(60 * time.Millisecond)
		var ack RenewResponse
		if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/renew",
			RenewRequest{LeaseID: grant.LeaseID, Worker: "slow"}, &ack); err != nil {
			t.Fatal(err)
		}
		if ack.Expired {
			t.Fatalf("lease expired after %v despite continuous renewal (TTL %v)", elapsed, ttl)
		}
		if ack.DeadlineMS <= 0 {
			t.Fatalf("renewal granted no deadline: %+v", ack)
		}
	}

	var ack ReturnResponse
	if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/return",
		ReturnRequest{LeaseID: grant.LeaseID, Worker: "slow", Results: late}, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 1 || ack.Duplicates != 0 {
		t.Errorf("slow return accepted=%d duplicates=%d, want 1/0 — the renewed cell was re-run elsewhere",
			ack.Accepted, ack.Duplicates)
	}
	if res := <-healthyCh; res.err != nil {
		t.Fatalf("healthy worker: %v", res.err)
	}

	campaign := waitServe(t, serveCh)
	if got := campaignCSV(t, campaign); got != want {
		t.Errorf("CSV with renewal diverges:\nwant:\n%s\ngot:\n%s", want, got)
	}
	cs := coord.Stats()
	if cs.Expired != 0 {
		t.Errorf("a renewed lease expired: %+v", cs)
	}
	if cs.Renewals < 5 {
		t.Errorf("coordinator counted %d renewals, want at least the slow worker's 5+", cs.Renewals)
	}
}

// TestFleetStealFirstReturnWins pins the straggler re-lease rule: with
// no pending cells and a small remainder, an idle worker is granted the
// oldest in-flight cell; then the victim's late copy and the stolen
// copy race the return path in both orders — whichever lands first is
// merged, the other is a duplicate, and the output is byte-identical
// either way.
func TestFleetStealFirstReturnWins(t *testing.T) {
	for _, lateFirst := range []bool{false, true} {
		name := "stolen-copy-first"
		if lateFirst {
			name = "late-copy-first"
		}
		t.Run(name, func(t *testing.T) {
			opts := testOptions()
			want := singleProcessCSV(t, opts)
			cells := opts.Cells()

			coord, err := NewCoordinator(opts, cells, Config{
				LeaseTTL:       30 * time.Second,
				LeaseBatch:     8,
				RetryDelay:     10 * time.Millisecond,
				DrainGrace:     300 * time.Millisecond,
				StealThreshold: len(cells),
				StealMinAge:    -1, // steal immediately; production defaults to TTL/2
			})
			if err != nil {
				t.Fatal(err)
			}
			addr, serveCh := startCoordinator(t, coord)
			ctx := context.Background()

			// The victim leases one cell and computes it, but stalls
			// before returning.
			var victim LeaseResponse
			if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/lease",
				LeaseRequest{Worker: "victim", Max: 1}, &victim); err != nil {
				t.Fatal(err)
			}
			if len(victim.Cells) != 1 {
				t.Fatalf("victim leased %d cells, want 1", len(victim.Cells))
			}
			session := experiments.NewSession(opts)
			defer session.Close()
			late := runLease(ctx, session, victim.Cells)

			// The thief drains the pending pool…
			var rest LeaseResponse
			if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/lease",
				LeaseRequest{Worker: "thief", Max: 8}, &rest); err != nil {
				t.Fatal(err)
			}
			if len(rest.Cells) != len(cells)-1 {
				t.Fatalf("thief leased %d cells, want %d", len(rest.Cells), len(cells)-1)
			}
			// …and its next request steals the victim's in-flight cell.
			var stolen LeaseResponse
			if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/lease",
				LeaseRequest{Worker: "thief", Max: 8}, &stolen); err != nil {
				t.Fatal(err)
			}
			if len(stolen.Cells) != 1 || stolen.Cells[0].Pos != victim.Cells[0].Pos {
				t.Fatalf("steal granted %+v, want the victim's cell at pos %d", stolen.Cells, victim.Cells[0].Pos)
			}
			if cs := coord.Stats(); cs.Steals != 1 {
				t.Fatalf("coordinator counted %d steals, want 1 (%+v)", cs.Steals, cs)
			}
			stolenRes := runLease(ctx, session, stolen.Cells)

			// Race the two copies of the same cell in the chosen order.
			firstRes, firstLease := stolenRes, stolen.LeaseID
			secondRes, secondLease := late, victim.LeaseID
			if lateFirst {
				firstRes, firstLease, secondRes, secondLease = late, victim.LeaseID, stolenRes, stolen.LeaseID
			}
			var ack ReturnResponse
			if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/return",
				ReturnRequest{LeaseID: firstLease, Worker: "first", Results: firstRes}, &ack); err != nil {
				t.Fatal(err)
			}
			if ack.Accepted != 1 || ack.Duplicates != 0 {
				t.Errorf("first copy: accepted=%d duplicates=%d, want 1/0", ack.Accepted, ack.Duplicates)
			}
			if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/return",
				ReturnRequest{LeaseID: secondLease, Worker: "second", Results: secondRes}, &ack); err != nil {
				t.Fatal(err)
			}
			if ack.Accepted != 0 || ack.Duplicates != 1 {
				t.Errorf("second copy: accepted=%d duplicates=%d, want 0/1", ack.Accepted, ack.Duplicates)
			}

			// The thief finishes the rest; the campaign must be whole.
			restRes := runLease(ctx, session, rest.Cells)
			if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/return",
				ReturnRequest{LeaseID: rest.LeaseID, Worker: "thief", Results: restRes}, &ack); err != nil {
				t.Fatal(err)
			}
			campaign := waitServe(t, serveCh)
			if got := campaignCSV(t, campaign); got != want {
				t.Errorf("CSV after steal race diverges:\nwant:\n%s\ngot:\n%s", want, got)
			}
		})
	}
}

// TestFleetWorkerSurvivesFlakyCoordinator injects the satellite bug's
// fault: every other request to the coordinator fails with a 5xx. The
// worker must complete the whole campaign through bounded retries with
// zero worker exits, and the output must stay byte-identical.
func TestFleetWorkerSurvivesFlakyCoordinator(t *testing.T) {
	opts := testOptions()
	want := singleProcessCSV(t, opts)

	coord, err := NewCoordinator(opts, opts.Cells(), Config{
		LeaseTTL:   30 * time.Second,
		LeaseBatch: 2,
		RetryDelay: 10 * time.Millisecond,
		DrainGrace: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, serveCh := startCoordinator(t, coord)

	// The flaky front: the same coordinator, behind a handler that
	// fails every other request (50% transient failures).
	handler := coord.Handler()
	var n atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 1 {
			http.Error(w, "injected transient failure", http.StatusBadGateway)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	stats, err := Work(context.Background(), flaky.URL, WorkerOptions{
		Name:      "tough",
		Workers:   2,
		MaxBatch:  2,
		RetryBase: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("worker exited under 50%% transient failures: %v", err)
	}
	if stats.Retries == 0 {
		t.Error("worker reports zero retries behind a transport failing every other request")
	}
	if stats.Cells != len(opts.Cells()) {
		t.Errorf("worker completed %d cells, want %d", stats.Cells, len(opts.Cells()))
	}
	campaign := waitServe(t, serveCh)
	if got := campaignCSV(t, campaign); got != want {
		t.Errorf("CSV through flaky transport diverges:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestFleetReturnAtomicOnInvalidBatch pins the return-atomicity fix: a
// return carrying a valid record at index 0 and an invalid one at index
// 1 must be rejected as a whole — nothing merged, journaled or counted
// — and the identical valid return must then succeed.
func TestFleetReturnAtomicOnInvalidBatch(t *testing.T) {
	opts := testOptions()
	want := singleProcessCSV(t, opts)
	cells := opts.Cells()

	coord, err := NewCoordinator(opts, cells, Config{
		LeaseTTL:   30 * time.Second,
		LeaseBatch: 2,
		RetryDelay: 10 * time.Millisecond,
		DrainGrace: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveCh := startCoordinator(t, coord)
	ctx := context.Background()

	var grant LeaseResponse
	if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/lease",
		LeaseRequest{Worker: "clumsy", Max: 2}, &grant); err != nil {
		t.Fatal(err)
	}
	if len(grant.Cells) != 2 {
		t.Fatalf("leased %d cells, want 2", len(grant.Cells))
	}
	session := experiments.NewSession(opts)
	defer session.Close()
	results := runLease(ctx, session, grant.Cells)
	if len(results) != 2 {
		t.Fatalf("computed %d results, want 2", len(results))
	}

	post := func(results []CellReturn) *http.Response {
		t.Helper()
		body, err := json.Marshal(ReturnRequest{LeaseID: grant.LeaseID, Worker: "clumsy", Results: results})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post("http://"+addr+"/v1/return", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Out-of-range position at index 1: whole batch rejected with 400.
	bad := []CellReturn{results[0], results[1]}
	bad[1].Pos = len(cells) + 7
	resp := post(bad)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range batch got %s, want 400", resp.Status)
	}
	if cs := coord.Stats(); cs.Returned != 0 {
		t.Errorf("partial merge after rejected batch: %+v", cs)
	}

	// Foreign cell at index 1 (claims another position's slot): whole
	// batch rejected with 409, still nothing merged.
	bad = []CellReturn{results[0], results[1]}
	bad[1].Pos = (bad[1].Pos + 1) % len(cells)
	if bad[1].Pos == bad[0].Pos {
		bad[1].Pos = (bad[1].Pos + 1) % len(cells)
	}
	resp = post(bad)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("foreign-record batch got %s, want 409", resp.Status)
	}
	if cs := coord.Stats(); cs.Returned != 0 {
		t.Errorf("partial merge after rejected batch: %+v", cs)
	}

	// The identical valid return now merges both cells.
	resp = post(results)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid retry got %s, want 200", resp.Status)
	}
	if cs := coord.Stats(); cs.Returned != 2 {
		t.Errorf("valid retry merged %d cells, want 2 (%+v)", cs.Returned, cs)
	}

	if _, err := Work(ctx, addr, WorkerOptions{Name: "finisher", Workers: 2}); err != nil {
		t.Fatalf("finisher worker: %v", err)
	}
	campaign := waitServe(t, serveCh)
	if got := campaignCSV(t, campaign); got != want {
		t.Errorf("CSV after rejected batches diverges:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// chaosTransport injects transport failures on the worker side: every
// second request fails before it is sent (a refused connection), and
// every fifth /v1/return is delivered but its response dropped — the
// worker retries a return the coordinator already merged, forcing the
// duplicate-return path.
type chaosTransport struct {
	base http.RoundTripper
	n    atomic.Int64
}

func (c *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := c.n.Add(1)
	if n%5 == 0 && strings.HasSuffix(req.URL.Path, "/v1/return") {
		resp, err := c.base.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, fmt.Errorf("chaos: response dropped after delivery")
	}
	if n%2 == 0 {
		return nil, fmt.Errorf("chaos: connection refused")
	}
	return c.base.RoundTrip(req)
}

// TestFleetChaosSmoke is the CI chaos lane: a race-enabled loopback
// campaign with a worker killed mid-lease, a flaky transport dropping
// and losing requests, stealing enabled, and an injected duplicate
// return — asserting byte-identity, zero surviving-worker exits, and a
// /v1/status whose phase counts sum to the cell total on every poll.
func TestFleetChaosSmoke(t *testing.T) {
	opts := chaosOptions()
	want := singleProcessCSV(t, opts)
	cells := opts.Cells()

	coord, err := NewCoordinator(opts, cells, Config{
		LeaseTTL:       400 * time.Millisecond,
		LeaseBatch:     1,
		RetryDelay:     10 * time.Millisecond,
		DrainGrace:     800 * time.Millisecond,
		SweepInterval:  50 * time.Millisecond,
		StealThreshold: 2,
		StealMinAge:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveCh := startCoordinator(t, coord)
	ctx := context.Background()

	if st := coord.Status(); st.Pending != len(cells) || st.Done != 0 || st.Leased != 0 {
		t.Fatalf("fresh status %+v, want all %d cells pending", st, len(cells))
	}

	// The doomed worker: takes a cell, computes it, and is never heard
	// from again until after the campaign — its cell must be healed by
	// the background sweep (expiry) or by stealing, and its eventual
	// late return discarded as a duplicate.
	var doomed LeaseResponse
	if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/lease",
		LeaseRequest{Worker: "doomed", Max: 1}, &doomed); err != nil {
		t.Fatal(err)
	}
	if len(doomed.Cells) != 1 {
		t.Fatalf("doomed worker leased %d cells, want 1", len(doomed.Cells))
	}
	session := experiments.NewSession(opts)
	defer session.Close()
	doomedRes := runLease(ctx, session, doomed.Cells)

	// Status poller: every snapshot must be internally consistent no
	// matter what the chaos is doing to the lease state machine.
	stopPoll := make(chan struct{})
	pollErr := make(chan error, 1)
	var polls atomic.Int64
	go func() {
		for {
			select {
			case <-stopPoll:
				return
			case <-time.After(15 * time.Millisecond):
			}
			st, err := FetchStatus(ctx, nil, addr)
			if err != nil {
				continue // the server may be mid-drain; transport errors are not the contract
			}
			polls.Add(1)
			if st.Pending+st.Leased+st.Done != st.Cells || st.Cells != len(cells) {
				select {
				case pollErr <- fmt.Errorf("inconsistent status: pending %d + leased %d + done %d != cells %d",
					st.Pending, st.Leased, st.Done, st.Cells):
				default:
				}
				return
			}
		}
	}()

	// Two workers race for the remaining cells: one behind the chaos
	// transport, one healthy. Both must finish with zero exits.
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	chaosClient := &http.Client{
		Timeout:   10 * time.Second,
		Transport: &chaosTransport{base: http.DefaultTransport},
	}
	for i := range workerErrs {
		client := (*http.Client)(nil)
		if i == 0 {
			client = chaosClient
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, workerErrs[i] = Work(ctx, addr, WorkerOptions{
				Name:      fmt.Sprintf("chaos-%d", i),
				Workers:   2,
				MaxBatch:  1,
				Client:    client,
				RetryBase: 5 * time.Millisecond,
			})
		}()
	}
	wg.Wait()
	close(stopPoll)
	for i, err := range workerErrs {
		if err != nil {
			t.Errorf("worker %d exited: %v", i, err)
		}
	}
	select {
	case err := <-pollErr:
		t.Error(err)
	default:
	}
	if polls.Load() == 0 {
		t.Error("status poller never completed a poll")
	}

	// The doomed worker's late return lands inside the drain window:
	// its cell was re-run elsewhere, so it must be a pure duplicate.
	var ack ReturnResponse
	if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/return",
		ReturnRequest{LeaseID: doomed.LeaseID, Worker: "doomed", Results: doomedRes}, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 0 || ack.Duplicates != 1 {
		t.Errorf("doomed late return: accepted=%d duplicates=%d, want 0/1", ack.Accepted, ack.Duplicates)
	}

	// A well-formed final control-plane snapshot and metrics export.
	st := coord.Status()
	if !st.Completed || st.Done != len(cells) || st.Pending != 0 || st.Leased != 0 {
		t.Errorf("final status not settled: %+v", st)
	}
	if st.Expired+st.Steals == 0 {
		t.Errorf("doomed lease healed by neither expiry nor steal: %+v", st)
	}
	if st.Duplicates == 0 {
		t.Errorf("no duplicate was recorded: %+v", st)
	}
	if st.CellsPerSec <= 0 {
		t.Errorf("throughput not reported: %+v", st)
	}
	metrics := httptest.NewRecorder()
	coord.Handler().ServeHTTP(metrics, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := metrics.Body.String()
	for _, name := range []string{"clockgate_cells_total", "clockgate_cells_done", "clockgate_leases_renewed_total", "clockgate_returns_duplicate_total"} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s:\n%s", name, body)
		}
	}

	campaign := waitServe(t, serveCh)
	if got := campaignCSV(t, campaign); got != want {
		t.Errorf("chaos campaign CSV diverges:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestFleetBatchedReturnsByteIdentity pins the worker-side result
// batching contract: a fleet streaming results back one cell per
// /v1/return (ReturnBatch=1, maximum partial-return traffic) while
// sharing an on-disk trace store produces CSV byte-identical to a
// single in-process session — and each partial return settles its cells
// on the coordinator, so a settled count observed mid-campaign only
// grows.
func TestFleetBatchedReturnsByteIdentity(t *testing.T) {
	opts := chaosOptions()
	want := singleProcessCSV(t, opts)
	opts.TraceDir = t.TempDir() // workers inherit via /v1/campaign
	cells := opts.Cells()

	coord, err := NewCoordinator(opts, cells, Config{
		LeaseTTL:   30 * time.Second,
		LeaseBatch: 3,
		RetryDelay: 10 * time.Millisecond,
		DrainGrace: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveCh := startCoordinator(t, coord)

	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, workerErrs[i] = Work(context.Background(), addr, WorkerOptions{
				Name:        fmt.Sprintf("batcher-%d", i),
				Workers:     2,
				MaxBatch:    3,
				ReturnBatch: 1,
				RetryBase:   5 * time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	campaign := waitServe(t, serveCh)
	if got := campaignCSV(t, campaign); got != want {
		t.Errorf("CSV with batched returns diverges:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if st := coord.Stats(); st.Returned != len(cells) {
		t.Errorf("coordinator merged %d returns, want %d", st.Returned, len(cells))
	}
}
