package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

// WorkerOptions tunes one worker process.
type WorkerOptions struct {
	// Name identifies the worker in coordinator accounting and logs.
	// Default "<hostname>-<pid>".
	Name string
	// Workers is the local Session pool width — how many leased cells
	// simulate concurrently on this machine. Default GOMAXPROCS.
	Workers int
	// MaxBatch caps the cells requested per lease. Default 2×Workers,
	// so the local pool stays fed while a return round-trips.
	MaxBatch int
	// Client is the HTTP client used to reach the coordinator. Default
	// a client with a 30s request timeout.
	Client *http.Client
}

func (o WorkerOptions) name() string {
	if o.Name != "" {
		return o.Name
	}
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func (o WorkerOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o WorkerOptions) maxBatch() int {
	if o.MaxBatch > 0 {
		return o.MaxBatch
	}
	return 2 * o.workers()
}

func (o WorkerOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// WorkerStats summarizes one worker's participation in a campaign.
type WorkerStats struct {
	// Cells is how many cells this worker completed and returned.
	Cells int
	// Failed is how many of those cells ended in a simulation error
	// (reported to the coordinator, which fails the campaign).
	Failed int
	// Leases is how many non-empty leases the worker was granted.
	Leases int
}

// Work joins the coordinator at baseURL ("host:port" or a full http://
// URL) and executes leased cells until the campaign is done or ctx is
// canceled. The worker is a thin wrapper around the experiments.Session
// engine: one session (worker pool + trace cache) serves every lease,
// exactly as it serves a local campaign, so a cell computes the same
// bytes here as it would in-process.
func Work(ctx context.Context, baseURL string, o WorkerOptions) (WorkerStats, error) {
	var stats WorkerStats
	base := strings.TrimSuffix(baseURL, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := o.client()

	var info CampaignInfo
	if err := getJSON(ctx, client, base+"/v1/campaign", &info); err != nil {
		return stats, fmt.Errorf("dist: join %s: %w", base, err)
	}
	if info.Protocol != ProtocolVersion {
		return stats, fmt.Errorf("dist: coordinator speaks protocol %d, this worker %d", info.Protocol, ProtocolVersion)
	}
	if got := info.Options.Fingerprint(); got != info.Fingerprint {
		return stats, fmt.Errorf("dist: campaign fingerprint %s does not match its options (%s) — version skew?", info.Fingerprint, got)
	}

	// The session reuses the coordinator's result-relevant options
	// (seed, scale, W0, banks, …) so every cell computes the same bytes
	// it would in the coordinator's own process; parallelism is local.
	sopts := info.Options
	sopts.Workers = o.workers()
	session := experiments.NewSession(sopts)
	defer session.Close()

	name := o.name()
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		var grant LeaseResponse
		err := postJSON(ctx, client, base+"/v1/lease", LeaseRequest{Worker: name, Max: o.maxBatch()}, &grant)
		if err != nil {
			return stats, fmt.Errorf("dist: lease: %w", err)
		}
		if grant.Err != "" {
			return stats, fmt.Errorf("dist: campaign failed: %s", grant.Err)
		}
		if grant.Done {
			return stats, nil
		}
		if len(grant.Cells) == 0 {
			retry := time.Duration(grant.RetryMS) * time.Millisecond
			if retry <= 0 {
				retry = 200 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			case <-time.After(retry):
			}
			continue
		}
		stats.Leases++

		results := runLease(ctx, session, grant.Cells)
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		var cellErr string
		for _, res := range results {
			stats.Cells++
			if res.Err != "" {
				stats.Failed++
				if cellErr == "" {
					cellErr = res.Err
				}
			}
		}
		var ack ReturnResponse
		err = postJSON(ctx, client, base+"/v1/return",
			ReturnRequest{LeaseID: grant.LeaseID, Worker: name, Results: results}, &ack)
		if err != nil {
			return stats, fmt.Errorf("dist: return: %w", err)
		}
		if ack.Done {
			// Done after our own failed cell means the failure ended the
			// campaign: exit loudly, like the workers that will observe
			// it via the lease path.
			if stats.Failed > 0 {
				return stats, fmt.Errorf("dist: campaign failed: %d of this worker's cells errored (first: %s)", stats.Failed, cellErr)
			}
			return stats, nil
		}
	}
}

// runLease executes one lease's cells on the session pool and packages
// the results for the wire. Cell failures become per-cell errors, not a
// worker failure: the coordinator decides what a failed cell means for
// the campaign.
func runLease(ctx context.Context, session *experiments.Session, leased []LeasedCell) []CellReturn {
	cells := make([]experiments.Cell, len(leased))
	for i, lc := range leased {
		cells[i] = lc.Cell
	}
	results := make([]CellReturn, 0, len(leased))
	for res := range session.StreamChan(ctx, cells) {
		ret := CellReturn{Pos: leased[res.Pos].Pos}
		switch {
		case res.Err != nil:
			ret.Err = res.Err.Error()
		default:
			ret.Record = experiments.NewCellRecord(res.Cell, res.Outcome)
		}
		results = append(results, ret)
	}
	return results
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(client, req, out)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(client, req, out)
}

func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
