package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

// WorkerOptions tunes one worker process.
type WorkerOptions struct {
	// Name identifies the worker in coordinator accounting and logs.
	// Default "<hostname>-<pid>".
	Name string
	// Workers is the local Session pool width — how many leased cells
	// simulate concurrently on this machine. Default GOMAXPROCS.
	Workers int
	// MaxBatch caps the cells requested per lease. Default 2×Workers,
	// so the local pool stays fed while a return round-trips.
	MaxBatch int
	// ReturnBatch streams results back in batches: the worker posts up
	// to this many finished cells per /v1/return instead of holding the
	// whole lease until its last cell completes. Returned cells are
	// settled on the coordinator immediately — an expiring lease
	// re-leases only the cells still in flight — so smaller batches
	// waste less work when a worker dies mid-lease. 0 (the default)
	// returns the whole lease in one post.
	ReturnBatch int
	// Client is the HTTP client used to reach the coordinator. Default
	// a client with a 30s request timeout.
	Client *http.Client
	// MaxRetries bounds the transient-failure retries per request
	// (connection errors, 5xx): the worker survives a flaky network or
	// a briefly-unreachable coordinator instead of dying on the first
	// hiccup. Protocol errors (4xx, version skew, campaign failure)
	// are never retried. Default 8; negative disables retries.
	MaxRetries int
	// RetryBase is the first retry backoff delay; it doubles per
	// attempt (with jitter) up to RetryMax. Default 100ms.
	RetryBase time.Duration
	// RetryMax caps the backoff delay. Default 5s.
	RetryMax time.Duration
	// TraceDir overrides the campaign's trace-store directory
	// (experiments.Options.TraceDir) on this worker. Empty inherits the
	// coordinator's setting — which is what makes a multi-process fleet
	// on one box generate each trace once; point it elsewhere when the
	// coordinator's path does not exist on this machine.
	TraceDir string
}

func (o WorkerOptions) name() string {
	if o.Name != "" {
		return o.Name
	}
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func (o WorkerOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o WorkerOptions) maxBatch() int {
	if o.MaxBatch > 0 {
		return o.MaxBatch
	}
	return 2 * o.workers()
}

func (o WorkerOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (o WorkerOptions) maxRetries() int {
	switch {
	case o.MaxRetries > 0:
		return o.MaxRetries
	case o.MaxRetries < 0:
		return 0
	}
	return 8
}

func (o WorkerOptions) retryBase() time.Duration {
	if o.RetryBase > 0 {
		return o.RetryBase
	}
	return 100 * time.Millisecond
}

func (o WorkerOptions) retryMax() time.Duration {
	if o.RetryMax > 0 {
		return o.RetryMax
	}
	return 5 * time.Second
}

// WorkerStats summarizes one worker's participation in a campaign.
type WorkerStats struct {
	// Cells is how many cells this worker completed and returned.
	Cells int
	// Failed is how many of those cells ended in a simulation error
	// (reported to the coordinator, which fails the campaign).
	Failed int
	// Leases is how many non-empty leases the worker was granted.
	Leases int
	// Retries counts transient request failures survived by backoff.
	Retries int
	// Renewals counts granted lease heartbeats (/v1/renew).
	Renewals int
}

// normalizeBase turns "host:port" or a full URL into a scheme-qualified
// base URL without a trailing slash.
func normalizeBase(addr string) string {
	base := strings.TrimSuffix(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return base
}

// Work joins the coordinator at baseURL ("host:port" or a full http://
// URL) and executes leased cells until the campaign is done or ctx is
// canceled. The worker is a thin wrapper around the experiments.Session
// engine: one session (worker pool + trace cache) serves every lease,
// exactly as it serves a local campaign, so a cell computes the same
// bytes here as it would in-process.
//
// The worker is built to survive real networks: transient request
// failures (connection errors, 5xx) retry with bounded exponential
// backoff and jitter, and while a lease's cells are running a heartbeat
// goroutine renews the lease so cells slower than the coordinator's
// LeaseTTL are not reclaimed mid-compute. Only protocol errors — 4xx
// rejections, protocol-version or fingerprint skew, a failed campaign —
// end the worker.
func Work(ctx context.Context, baseURL string, o WorkerOptions) (WorkerStats, error) {
	var stats WorkerStats
	base := normalizeBase(baseURL)
	client := o.client()

	var info CampaignInfo
	if err := retry(ctx, o, &stats, func() error {
		return getJSON(ctx, client, base+"/v1/campaign", &info)
	}); err != nil {
		return stats, fmt.Errorf("dist: join %s: %w", base, err)
	}
	if info.Protocol != ProtocolVersion {
		return stats, fmt.Errorf("dist: coordinator speaks protocol %d, this worker %d", info.Protocol, ProtocolVersion)
	}
	if got := info.Options.Fingerprint(); got != info.Fingerprint {
		return stats, fmt.Errorf("dist: campaign fingerprint %s does not match its options (%s) — version skew?", info.Fingerprint, got)
	}

	// The session reuses the coordinator's result-relevant options
	// (seed, scale, W0, banks, …) so every cell computes the same bytes
	// it would in the coordinator's own process; parallelism is local.
	sopts := info.Options
	sopts.Workers = o.workers()
	if o.TraceDir != "" {
		sopts.TraceDir = o.TraceDir
	}
	session := experiments.NewSession(sopts)
	defer session.Close()

	name := o.name()
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		var grant LeaseResponse
		err := retry(ctx, o, &stats, func() error {
			return postJSON(ctx, client, base+"/v1/lease", LeaseRequest{Worker: name, Max: o.maxBatch()}, &grant)
		})
		if err != nil {
			return stats, fmt.Errorf("dist: lease: %w", err)
		}
		if grant.Err != "" {
			return stats, fmt.Errorf("dist: campaign failed: %s", grant.Err)
		}
		if grant.Done {
			return stats, nil
		}
		if len(grant.Cells) == 0 {
			retryIn := time.Duration(grant.RetryMS) * time.Millisecond
			if retryIn <= 0 {
				retryIn = 200 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			case <-time.After(retryIn):
			}
			continue
		}
		stats.Leases++

		// Heartbeat while the lease's cells compute: renewals keep a
		// slow cell's lease alive; a campaign failure observed by the
		// heartbeat cancels the run so the worker stops wasting work.
		runCtx, cancelRun := context.WithCancel(ctx)
		hb := startHeartbeat(runCtx, client, base, name, grant, cancelRun)

		// Results stream back in batches of ReturnBatch cells (the whole
		// lease when unset). Each batch is a partial return — the
		// coordinator settles the returned cells and keeps the rest
		// leased — so a worker lost mid-lease forfeits only the cells it
		// had not yet flushed.
		batchSize := o.ReturnBatch
		if batchSize <= 0 || batchSize > len(grant.Cells) {
			batchSize = len(grant.Cells)
		}
		cells := make([]experiments.Cell, len(grant.Cells))
		for i, lc := range grant.Cells {
			cells[i] = lc.Cell
		}
		var pending []CellReturn
		var cellErr string
		var flushErr error
		campaignDone := false
		flush := func() {
			if len(pending) == 0 || flushErr != nil || campaignDone {
				return
			}
			var ack ReturnResponse
			flushErr = retry(ctx, o, &stats, func() error {
				return postJSON(ctx, client, base+"/v1/return",
					ReturnRequest{LeaseID: grant.LeaseID, Worker: name, Results: pending}, &ack)
			})
			if flushErr == nil {
				pending = pending[:0]
				campaignDone = ack.Done
			}
		}
		ch := session.StreamChan(runCtx, cells)
		for res := range ch {
			ret := CellReturn{Pos: grant.Cells[res.Pos].Pos}
			stats.Cells++
			switch {
			case res.Err != nil:
				ret.Err = res.Err.Error()
				stats.Failed++
				if cellErr == "" {
					cellErr = ret.Err
				}
			default:
				ret.Record = experiments.NewCellRecord(res.Cell, res.Outcome)
			}
			pending = append(pending, ret)
			if len(pending) >= batchSize {
				flush()
				if flushErr != nil || campaignDone {
					// Cancel the lease's remaining cells and drain the
					// stream so no pool worker stays blocked on send.
					cancelRun()
					for range ch {
					}
					break
				}
			}
		}
		cancelRun()
		<-hb.done
		stats.Renewals += hb.renewals
		if hb.campaignErr != nil {
			return stats, hb.campaignErr
		}
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		if flushErr == nil && !campaignDone {
			flush()
		}
		if flushErr != nil {
			return stats, fmt.Errorf("dist: return: %w", flushErr)
		}
		if campaignDone {
			// Done after our own failed cell means the failure ended the
			// campaign: exit loudly, like the workers that will observe
			// it via the lease path.
			if stats.Failed > 0 {
				return stats, fmt.Errorf("dist: campaign failed: %d of this worker's cells errored (first: %s)", stats.Failed, cellErr)
			}
			return stats, nil
		}
	}
}

// heartbeat is one lease's renewal loop. campaignErr and renewals are
// written by the goroutine and must be read only after done closes.
type heartbeat struct {
	done        chan struct{}
	renewals    int
	campaignErr error
}

// startHeartbeat renews the granted lease every third of its TTL until
// ctx cancels or the coordinator reports the lease gone (Expired — the
// results will still be returned and deduplicated) or the campaign over
// (Done, or Err — in which case cancelRun stops the in-flight cells). A
// failed renewal request is not retried in place: the next tick is the
// retry, and a lease missing a beat or two still has two-thirds of a
// TTL of slack.
func startHeartbeat(ctx context.Context, client *http.Client, base, worker string, grant LeaseResponse, cancelRun context.CancelFunc) *heartbeat {
	hb := &heartbeat{done: make(chan struct{})}
	ttl := time.Duration(grant.DeadlineMS) * time.Millisecond
	if ttl <= 0 {
		ttl = 2 * time.Minute
	}
	interval := ttl / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	go func() {
		defer close(hb.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			var ack RenewResponse
			if err := postJSON(ctx, client, base+"/v1/renew", RenewRequest{LeaseID: grant.LeaseID, Worker: worker}, &ack); err != nil {
				var se *statusError
				if errors.As(err, &se) && se.code < 500 {
					// A coordinator that rejects /v1/renew outright
					// (e.g. an older protocol surface) will never
					// grant an extension: stop beating and fall back
					// to the lease-expiry failure model.
					return
				}
				continue
			}
			switch {
			case ack.Err != "":
				hb.campaignErr = fmt.Errorf("dist: campaign failed: %s", ack.Err)
				cancelRun()
				return
			case ack.Done || ack.Expired:
				return
			default:
				hb.renewals++
			}
		}
	}()
	return hb
}

// runLease executes one lease's cells on the session pool and packages
// the results for the wire. Cell failures become per-cell errors, not a
// worker failure: the coordinator decides what a failed cell means for
// the campaign.
func runLease(ctx context.Context, session *experiments.Session, leased []LeasedCell) []CellReturn {
	cells := make([]experiments.Cell, len(leased))
	for i, lc := range leased {
		cells[i] = lc.Cell
	}
	results := make([]CellReturn, 0, len(leased))
	for res := range session.StreamChan(ctx, cells) {
		ret := CellReturn{Pos: leased[res.Pos].Pos}
		switch {
		case res.Err != nil:
			ret.Err = res.Err.Error()
		default:
			ret.Record = experiments.NewCellRecord(res.Cell, res.Outcome)
		}
		results = append(results, ret)
	}
	return results
}

// statusError is a non-200 coordinator response. The status code drives
// the retry policy: 5xx is transient, 4xx is a protocol error.
type statusError struct {
	code   int
	status string
	msg    string
}

func (e *statusError) Error() string { return fmt.Sprintf("%s: %s", e.status, e.msg) }

// transientErr reports whether a request failure is worth retrying:
// transport-level errors (refused connections, resets, truncated
// bodies) and 5xx responses are; 4xx protocol rejections are not.
func transientErr(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500 || se.code == http.StatusTooManyRequests
	}
	return true
}

// retry runs call with bounded exponential backoff plus jitter on
// transient failures. Non-transient errors, context cancellation and
// retry-budget exhaustion return the last error; successful retries are
// counted in stats.Retries.
func retry(ctx context.Context, o WorkerOptions, stats *WorkerStats, call func() error) error {
	delay := o.retryBase()
	for attempt := 0; ; attempt++ {
		err := call()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || !transientErr(err) || attempt >= o.maxRetries() {
			return err
		}
		stats.Retries++
		// Equal jitter: half the window fixed, half uniform random, so
		// a fleet of workers knocked over together does not retry in
		// lockstep.
		sleep := delay/2 + rand.N(delay/2+1)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(sleep):
		}
		delay *= 2
		if delay > o.retryMax() {
			delay = o.retryMax()
		}
	}
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(client, req, out)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(client, req, out)
}

func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return &statusError{code: resp.StatusCode, status: resp.Status, msg: strings.TrimSpace(string(msg))}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
