// The distributed fabric's golden contract: a campaign run through a
// coordinator and N workers over loopback HTTP — including workers that
// die mid-lease and results returned twice — produces output
// byte-identical to a single-process Session.Run. These tests are the CI
// distributed smoke lane: they run race-enabled on every build.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/stamp"
)

// testOptions is a small two-app campaign (4 cells) at e2e scale.
func testOptions() experiments.Options {
	return experiments.Options{
		Seed:       42,
		Scale:      0.02,
		Workers:    2,
		Apps:       []stamp.App{stamp.Intruder, stamp.Genome},
		Processors: []int{4, 8},
	}
}

// singleProcessCSV is the golden: the same options run on one in-process
// session, rendered as CSV.
func singleProcessCSV(t *testing.T, opts experiments.Options) string {
	t.Helper()
	s := experiments.NewSession(opts)
	defer s.Close()
	campaign, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("single-process campaign: %v", err)
	}
	var buf strings.Builder
	if err := campaign.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func campaignCSV(t *testing.T, campaign *experiments.Campaign) string {
	t.Helper()
	var buf strings.Builder
	if err := campaign.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// startCoordinator serves the coordinator on an ephemeral loopback port
// and returns its address plus a channel carrying Serve's result.
type serveResult struct {
	campaign *experiments.Campaign
	err      error
}

func startCoordinator(t *testing.T, c *Coordinator) (string, <-chan serveResult) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan serveResult, 1)
	go func() {
		campaign, err := c.Serve(context.Background(), ln)
		ch <- serveResult{campaign, err}
	}()
	return ln.Addr().String(), ch
}

func waitServe(t *testing.T, ch <-chan serveResult) *experiments.Campaign {
	t.Helper()
	select {
	case res := <-ch:
		if res.err != nil {
			t.Fatalf("coordinator: %v", res.err)
		}
		return res.campaign
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator did not finish")
		return nil
	}
}

// TestDistributedMergeByteIdentical is the fabric's headline golden: two
// workers race for leases over loopback and the merged CSV must equal
// the single-process output byte for byte.
func TestDistributedMergeByteIdentical(t *testing.T) {
	opts := testOptions()
	want := singleProcessCSV(t, opts)

	coord, err := NewCoordinator(opts, opts.Cells(), Config{
		LeaseTTL:   30 * time.Second,
		LeaseBatch: 1, // force the workers to interleave cell by cell
		RetryDelay: 20 * time.Millisecond,
		DrainGrace: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveCh := startCoordinator(t, coord)

	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	workerStats := make([]WorkerStats, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			workerStats[i], workerErrs[i] = Work(context.Background(), addr,
				WorkerOptions{Name: "w", Workers: 2, MaxBatch: 1})
		}()
	}
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	campaign := waitServe(t, serveCh)
	if got := campaignCSV(t, campaign); got != want {
		t.Errorf("distributed CSV diverges from single-process run:\nwant:\n%s\ngot:\n%s", want, got)
	}
	total := workerStats[0].Cells + workerStats[1].Cells
	if total != len(opts.Cells()) {
		t.Errorf("workers completed %d cells, campaign has %d", total, len(opts.Cells()))
	}
}

// TestDistributedWorkerFailure injects the fault the lease deadlines
// exist for: a worker leases cells and dies without returning them. The
// cells must be re-leased after the deadline and the merged output stay
// byte-identical.
func TestDistributedWorkerFailure(t *testing.T) {
	opts := testOptions()
	want := singleProcessCSV(t, opts)

	coord, err := NewCoordinator(opts, opts.Cells(), Config{
		LeaseTTL:   250 * time.Millisecond,
		LeaseBatch: 2,
		RetryDelay: 50 * time.Millisecond,
		DrainGrace: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveCh := startCoordinator(t, coord)

	// The doomed worker: takes a two-cell lease and is never heard from
	// again.
	var grant LeaseResponse
	if err := postJSON(context.Background(), http.DefaultClient,
		"http://"+addr+"/v1/lease", LeaseRequest{Worker: "doomed", Max: 2}, &grant); err != nil {
		t.Fatal(err)
	}
	if len(grant.Cells) != 2 {
		t.Fatalf("doomed worker leased %d cells, want 2", len(grant.Cells))
	}

	// A healthy worker joins and must complete the whole campaign once
	// the doomed lease expires.
	stats, err := Work(context.Background(), addr, WorkerOptions{Name: "healthy", Workers: 2})
	if err != nil {
		t.Fatalf("healthy worker: %v", err)
	}
	campaign := waitServe(t, serveCh)
	if got := campaignCSV(t, campaign); got != want {
		t.Errorf("CSV after worker failure diverges:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if stats.Cells != len(opts.Cells()) {
		t.Errorf("healthy worker ran %d cells, want all %d (re-leased included)", stats.Cells, len(opts.Cells()))
	}
	if cs := coord.Stats(); cs.Expired == 0 {
		t.Errorf("no lease expired: %+v", cs)
	}
}

// TestDistributedLeaseDedup is the dedup regression: the same cell
// returned twice — the second time from a lease that expired and whose
// cell re-ran elsewhere — is merged exactly once and the output is
// unchanged.
func TestDistributedLeaseDedup(t *testing.T) {
	opts := testOptions()
	want := singleProcessCSV(t, opts)
	cells := opts.Cells()

	coord, err := NewCoordinator(opts, cells, Config{
		LeaseTTL:   150 * time.Millisecond,
		LeaseBatch: 1,
		RetryDelay: 25 * time.Millisecond,
		DrainGrace: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveCh := startCoordinator(t, coord)
	ctx := context.Background()

	// Slow worker: leases one cell, computes it, but holds the result
	// past the lease deadline.
	var grant LeaseResponse
	if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/lease",
		LeaseRequest{Worker: "slow", Max: 1}, &grant); err != nil {
		t.Fatal(err)
	}
	if len(grant.Cells) != 1 {
		t.Fatalf("leased %d cells, want 1", len(grant.Cells))
	}
	session := experiments.NewSession(opts)
	defer session.Close()
	late := runLease(ctx, session, grant.Cells)
	time.Sleep(300 * time.Millisecond) // lease expires; cell re-leasable

	// Healthy worker completes the campaign, re-running the expired
	// cell.
	if _, err := Work(ctx, addr, WorkerOptions{Name: "healthy", Workers: 2}); err != nil {
		t.Fatalf("healthy worker: %v", err)
	}

	// The slow worker's return lands after the fact: accepted as a
	// duplicate, merged zero times.
	var ack ReturnResponse
	if err := postJSON(ctx, http.DefaultClient, "http://"+addr+"/v1/return",
		ReturnRequest{LeaseID: grant.LeaseID, Worker: "slow", Results: late}, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Duplicates != 1 || ack.Accepted != 0 {
		t.Errorf("late return: accepted=%d duplicates=%d, want 0/1", ack.Accepted, ack.Duplicates)
	}

	campaign := waitServe(t, serveCh)
	if got := campaignCSV(t, campaign); got != want {
		t.Errorf("CSV after duplicate return diverges:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if cs := coord.Stats(); cs.Duplicates != 1 {
		t.Errorf("coordinator counted %d duplicates, want 1 (%+v)", cs.Duplicates, cs)
	}
}

// TestDistributedJournalResumeCompatible pins the coordinator journal to
// the -resume checkpoint format: a journaled distributed campaign
// restarts fully restored, and a single-process session pointed at the
// same file replays it without re-running a cell — byte-identical both
// ways.
func TestDistributedJournalResumeCompatible(t *testing.T) {
	opts := testOptions()
	want := singleProcessCSV(t, opts)
	cells := opts.Cells()
	path := filepath.Join(t.TempDir(), "journal.jsonl")

	cfg := Config{
		LeaseTTL:       30 * time.Second,
		RetryDelay:     20 * time.Millisecond,
		DrainGrace:     200 * time.Millisecond,
		CheckpointPath: path,
	}
	coord, err := NewCoordinator(opts, cells, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, serveCh := startCoordinator(t, coord)
	if _, err := Work(context.Background(), addr, WorkerOptions{Name: "w", Workers: 2}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if got := campaignCSV(t, waitServe(t, serveCh)); got != want {
		t.Errorf("journaled campaign CSV diverges:\nwant:\n%s\ngot:\n%s", want, got)
	}

	// Restarted coordinator: everything restores from the journal; the
	// campaign completes with no worker at all.
	coord2, err := NewCoordinator(opts, cells, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, serveCh2 := startCoordinator(t, coord2)
	if got := campaignCSV(t, waitServe(t, serveCh2)); got != want {
		t.Errorf("restored coordinator CSV diverges:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if cs := coord2.Stats(); cs.Restored != len(cells) {
		t.Errorf("restored %d cells, want %d", cs.Restored, len(cells))
	}

	// Single-process -resume on the same file: restores every cell.
	s := experiments.NewSession(opts)
	defer s.Close()
	if err := s.SetCheckpoint(path); err != nil {
		t.Fatalf("session refused the coordinator journal: %v", err)
	}
	campaign, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := campaignCSV(t, campaign); got != want {
		t.Errorf("-resume on the journal diverges:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if got := s.Checkpoint().Restored(); got != len(cells) {
		t.Errorf("session restored %d cells from the journal, want %d", got, len(cells))
	}
}

// TestDistributedCellFailurePropagates pins the failure path: a cell
// that errors on a worker fails the campaign promptly — Serve returns
// the cell's error even with other cells still pending (no deadlock
// waiting for leases that will never be granted), and the worker whose
// cell failed exits with an error instead of reporting success.
func TestDistributedCellFailurePropagates(t *testing.T) {
	opts := testOptions()
	cells := opts.Cells()
	cells[0].Variant = "bogus-variant" // fails in variantConfigure on any worker

	coord, err := NewCoordinator(opts, cells, Config{
		LeaseBatch: 1,
		RetryDelay: 20 * time.Millisecond,
		DrainGrace: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveCh := startCoordinator(t, coord)

	if _, err := Work(context.Background(), addr, WorkerOptions{Name: "w", Workers: 2}); err == nil {
		t.Error("worker reported success on a campaign its own cell failed")
	} else if !strings.Contains(err.Error(), "bogus-variant") && !strings.Contains(err.Error(), "campaign failed") {
		t.Errorf("worker error does not name the failure: %v", err)
	}

	select {
	case res := <-serveCh:
		if res.err == nil {
			t.Fatal("Serve returned a campaign from a failed run")
		}
		if !strings.Contains(res.err.Error(), "bogus-variant") {
			t.Errorf("Serve error does not carry the cell failure: %v", res.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after the cell failure (failure deadlock)")
	}
}

// TestDistributedRejectsForeignRecord pins the integrity check: a return
// whose record computes a different cell than the campaign's cell at
// that position is refused with 409, not merged.
func TestDistributedRejectsForeignRecord(t *testing.T) {
	opts := testOptions()
	cells := opts.Cells()
	coord, err := NewCoordinator(opts, cells, Config{DrainGrace: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srvAddr, _ := startCoordinator(t, coord)
	ctx := context.Background()

	var grant LeaseResponse
	if err := postJSON(ctx, http.DefaultClient, "http://"+srvAddr+"/v1/lease",
		LeaseRequest{Worker: "confused", Max: 1}, &grant); err != nil {
		t.Fatal(err)
	}
	// Compute the right cell but return it under the wrong position.
	session := experiments.NewSession(opts)
	defer session.Close()
	res := runLease(ctx, session, grant.Cells)
	res[0].Pos = (res[0].Pos + 1) % len(cells)

	body, _ := json.Marshal(ReturnRequest{LeaseID: grant.LeaseID, Worker: "confused", Results: res})
	resp, err := http.Post("http://"+srvAddr+"/v1/return", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("mismatched record got %s, want 409", resp.Status)
	}
	if cs := coord.Stats(); cs.Returned != 0 {
		t.Errorf("foreign record was merged: %+v", cs)
	}
}
