package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

// Config tunes a coordinator. The zero value selects production-ish
// defaults; tests shrink the timings.
type Config struct {
	// LeaseTTL is how long a worker owns a leased batch before the
	// coordinator may hand its unfinished cells to someone else. A live
	// worker extends the deadline by POSTing /v1/renew while its cells
	// are still running, so the TTL bounds crash detection latency, not
	// cell runtime. Default 2 minutes.
	LeaseTTL time.Duration
	// LeaseBatch caps the cells granted per lease. Default 8; a
	// worker's request may ask for fewer.
	LeaseBatch int
	// RetryDelay is the poll interval suggested to workers when no work
	// is pending (all cells leased or done). Default 200ms.
	RetryDelay time.Duration
	// DrainGrace is how long the coordinator keeps answering "done"
	// after the campaign completes, so polling workers observe the end
	// instead of a vanished server. Default 1s.
	DrainGrace time.Duration
	// SweepInterval is the period of the background expiry sweep Serve
	// runs: deadline-passed leases are reclaimed on this cadence even
	// when no worker is asking for work (the lease path still reclaims
	// lazily too). Default LeaseTTL/4, clamped to [25ms, 15s].
	SweepInterval time.Duration
	// StealThreshold enables straggler re-lease (work stealing): when at
	// most StealThreshold cells remain, none are pending, and an idle
	// worker asks for work, the coordinator re-leases the oldest
	// in-flight cells to it — first completed return wins, the per-cell
	// dedup discards the loser. 0 (the default) and negative values
	// disable stealing; the lease-expiry path alone then heals dead
	// workers.
	StealThreshold int
	// StealMinAge is the minimum age of a cell's current lease before
	// the cell may be stolen, damping steal ping-pong between idle
	// workers. Default LeaseTTL/2; negative means no minimum.
	StealMinAge time.Duration
	// ProgressInterval is the cadence of OnProgress callbacks from the
	// Serve background loop. 0 disables them.
	ProgressInterval time.Duration
	// OnProgress, when set (with ProgressInterval > 0), periodically
	// receives a Status snapshot while Serve runs — the hook the CLI's
	// progress logging uses.
	OnProgress func(Status)
	// CheckpointPath, when set, journals every merged cell as one JSONL
	// line — the exact checkpoint format `cmd/experiments -resume`
	// reads and writes. Restarting a coordinator (or a single-process
	// session) on the same file restores the completed cells without
	// re-running them.
	CheckpointPath string
	// OnListen, when set, is called with the bound listen address once
	// the coordinator is accepting connections — the hook loopback
	// examples and ":0" listeners use to learn the actual port.
	OnListen func(addr string)
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 2 * time.Minute
}

func (c Config) leaseBatch() int {
	if c.LeaseBatch > 0 {
		return c.LeaseBatch
	}
	return 8
}

func (c Config) retryDelay() time.Duration {
	if c.RetryDelay > 0 {
		return c.RetryDelay
	}
	return 200 * time.Millisecond
}

func (c Config) drainGrace() time.Duration {
	if c.DrainGrace > 0 {
		return c.DrainGrace
	}
	return time.Second
}

func (c Config) sweepInterval() time.Duration {
	if c.SweepInterval > 0 {
		return c.SweepInterval
	}
	iv := c.leaseTTL() / 4
	if iv < 25*time.Millisecond {
		iv = 25 * time.Millisecond
	}
	if iv > 15*time.Second {
		iv = 15 * time.Second
	}
	return iv
}

func (c Config) stealMinAge() time.Duration {
	switch {
	case c.StealMinAge > 0:
		return c.StealMinAge
	case c.StealMinAge < 0:
		return 0
	}
	return c.leaseTTL() / 2
}

// Stats counts coordinator activity.
type Stats struct {
	// Leases is the number of non-empty lease grants.
	Leases int
	// Expired counts leases reclaimed after their deadline passed with
	// cells unfinished.
	Expired int
	// Returned counts cell results merged into the campaign.
	Returned int
	// Duplicates counts returned results discarded because the cell was
	// already complete (the dedup-on-re-lease rule).
	Duplicates int
	// Restored counts cells restored from the checkpoint journal at
	// startup instead of leased out.
	Restored int
	// Renewals counts granted /v1/renew deadline extensions.
	Renewals int
	// Steals counts cells re-leased to an idle worker while still
	// in-flight on another (the straggler re-lease rule).
	Steals int
}

// cellPhase is the lease state machine of one cell:
//
//	pending --lease--> leased --return--> done
//	   ^                  |
//	   +---deadline past--+
//
// done is terminal; a done cell can never be leased again, and a second
// return of it is discarded as a duplicate. A leased cell may also be
// re-leased to a second worker (straggler steal): the phase stays
// leased, ownership moves to the newest lease, and the first completed
// return — from either owner — wins.
type cellPhase uint8

const (
	cellPending cellPhase = iota
	cellLeased
	cellDone
)

// lease is one granted batch.
type lease struct {
	id       uint64
	worker   string
	cells    []int // canonical positions granted
	granted  time.Time
	deadline time.Time
}

// workerCounters is the per-worker accounting behind Status.Workers,
// keyed by the free-form worker name.
type workerCounters struct {
	leases     int
	returned   int
	duplicates int
	renewals   int
	steals     int
	expired    int
	lastSeen   time.Time
}

// journalEntry is one merged cell queued for the checkpoint journal:
// appended under c.mu (so the queue carries the merge order), written
// outside it (so fsync-grade I/O never stalls leases and returns).
type journalEntry struct {
	pos  int
	cell experiments.Cell
	out  *core.Outcome
}

// Coordinator owns one campaign's canonical cell list and runs its lease
// state machine. Create with NewCoordinator, expose via Handler or
// Serve. Safe for concurrent use by the HTTP handlers.
type Coordinator struct {
	cfg         Config
	opts        experiments.Options
	fingerprint string
	cells       []experiments.Cell
	startedAt   time.Time

	mu        sync.Mutex
	phase     []cellPhase
	owner     []uint64 // active lease id per leased cell
	outcomes  []*core.Outcome
	errs      []error // per-cell failures, by position
	remaining int
	leases    map[uint64]*lease
	nextLease uint64
	stats     Stats
	workers   map[string]*workerCounters
	ckpt      *experiments.Checkpoint
	journalQ  []journalEntry
	done      chan struct{}
	failed    bool

	// journalMu serializes journal flushes; held without c.mu so a slow
	// disk blocks only other flushers, never the lease/return paths.
	journalMu sync.Mutex
}

// NewCoordinator builds a coordinator for the given cells — the
// campaign's canonical order, exactly the slice a single-process
// Session.Run would execute. With Config.CheckpointPath set, cells
// already journaled there are restored immediately (the journal is
// validated against the options fingerprint, like -resume).
func NewCoordinator(opts experiments.Options, cells []experiments.Cell, cfg Config) (*Coordinator, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("dist: no cells to coordinate")
	}
	c := &Coordinator{
		cfg:         cfg,
		opts:        opts,
		fingerprint: opts.Fingerprint(),
		cells:       cells,
		startedAt:   time.Now(),
		phase:       make([]cellPhase, len(cells)),
		owner:       make([]uint64, len(cells)),
		outcomes:    make([]*core.Outcome, len(cells)),
		errs:        make([]error, len(cells)),
		remaining:   len(cells),
		leases:      make(map[uint64]*lease),
		workers:     make(map[string]*workerCounters),
		done:        make(chan struct{}),
	}
	if cfg.CheckpointPath != "" {
		ck, err := experiments.OpenCheckpoint(cfg.CheckpointPath, c.fingerprint)
		if err != nil {
			return nil, err
		}
		c.ckpt = ck
		for i, cell := range cells {
			if out, ok := ck.Lookup(cell); ok {
				c.outcomes[i] = out
				c.phase[i] = cellDone
				c.remaining--
				c.stats.Restored++
			}
		}
		if c.remaining == 0 {
			close(c.done)
		}
	}
	return c, nil
}

// Stats returns a snapshot of the activity counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Handler returns the coordinator's HTTP protocol surface: the three
// work endpoints plus the read-only control plane (/v1/status JSON and
// the Prometheus-style /metrics text).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/campaign", c.handleCampaign)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/renew", c.handleRenew)
	mux.HandleFunc("POST /v1/return", c.handleReturn)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleCampaign(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, CampaignInfo{
		Protocol:    ProtocolVersion,
		Fingerprint: c.fingerprint,
		Options:     c.opts,
		Cells:       len(c.cells),
	})
}

// workerLocked returns (creating on first contact) the counters for the
// named worker and stamps its last-seen time. Called with mu held.
func (c *Coordinator) workerLocked(name string, now time.Time) *workerCounters {
	wk := c.workers[name]
	if wk == nil {
		wk = &workerCounters{}
		c.workers[name] = wk
	}
	wk.lastSeen = now
	return wk
}

// closeDoneLocked signals campaign completion exactly once. Called with
// mu held.
func (c *Coordinator) closeDoneLocked() {
	select {
	case <-c.done:
	default:
		close(c.done)
	}
}

// reclaimExpired returns every cell of every deadline-passed lease to
// the pending pool. Called with mu held — lazily from the lease path,
// and periodically from Serve's background sweep, so a fleet whose
// workers all died still reclaims (and reports) the leases without
// waiting for a live worker to ask for work. Cells whose ownership
// moved to a newer lease (a renewal keeps ownership; a steal moves it)
// are left alone: only the current owner's deadline matters.
func (c *Coordinator) reclaimExpired(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		expired := false
		for _, pos := range l.cells {
			if c.phase[pos] == cellLeased && c.owner[pos] == id {
				c.phase[pos] = cellPending
				c.owner[pos] = 0
				expired = true
			}
		}
		delete(c.leases, id)
		if expired {
			c.stats.Expired++
			if wk := c.workers[l.worker]; wk != nil {
				wk.expired++
			}
		}
	}
}

// stealLocked implements the straggler re-lease rule: with no pending
// cells, at most Config.StealThreshold cells remaining, and an idle
// worker asking, the oldest in-flight cells of *other* workers are
// granted again. Ownership moves to the new lease; whichever copy
// returns first wins (the per-cell dedup discards the other), so the
// merged bytes cannot change. Called with mu held; returns nil when
// stealing is disabled or no cell qualifies.
func (c *Coordinator) stealLocked(worker string, now time.Time, max int) ([]LeasedCell, []int) {
	if c.cfg.StealThreshold <= 0 || c.remaining > c.cfg.StealThreshold {
		return nil, nil
	}
	minAge := c.cfg.stealMinAge()
	type candidate struct {
		pos     int
		granted time.Time
	}
	var cands []candidate
	for pos := range c.cells {
		if c.phase[pos] != cellLeased {
			continue
		}
		l := c.leases[c.owner[pos]]
		if l == nil || l.worker == worker {
			continue
		}
		if now.Sub(l.granted) < minAge {
			continue
		}
		cands = append(cands, candidate{pos: pos, granted: l.granted})
	}
	// Oldest in-flight first: the longest-running lease is the likeliest
	// straggler. Position breaks ties so the order is deterministic.
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].granted.Equal(cands[j].granted) {
			return cands[i].granted.Before(cands[j].granted)
		}
		return cands[i].pos < cands[j].pos
	})
	if len(cands) > max {
		cands = cands[:max]
	}
	var granted []LeasedCell
	var positions []int
	for _, cd := range cands {
		granted = append(granted, LeasedCell{Pos: cd.pos, Cell: c.cells[cd.pos]})
		positions = append(positions, cd.pos)
	}
	return granted, positions
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad lease request: %v", err), http.StatusBadRequest)
		return
	}
	max := req.Max
	if max <= 0 || max > c.cfg.leaseBatch() {
		max = c.cfg.leaseBatch()
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		writeJSON(w, LeaseResponse{Done: true, Err: c.firstErrLocked().Error()})
		return
	}
	if c.remaining == 0 {
		writeJSON(w, LeaseResponse{Done: true})
		return
	}
	now := time.Now()
	c.reclaimExpired(now)
	wk := c.workerLocked(req.Worker, now)

	var granted []LeasedCell
	var positions []int
	for pos := range c.cells {
		if len(granted) >= max {
			break
		}
		if c.phase[pos] != cellPending {
			continue
		}
		granted = append(granted, LeasedCell{Pos: pos, Cell: c.cells[pos]})
		positions = append(positions, pos)
	}
	stolen := 0
	if len(granted) == 0 {
		granted, positions = c.stealLocked(req.Worker, now, max)
		stolen = len(positions)
	}
	if len(granted) == 0 {
		// Everything is leased out or done: poll again later (an
		// expiry or a qualifying steal may free work before the
		// campaign completes).
		writeJSON(w, LeaseResponse{RetryMS: c.cfg.retryDelay().Milliseconds()})
		return
	}
	c.nextLease++
	l := &lease{
		id:       c.nextLease,
		worker:   req.Worker,
		cells:    positions,
		granted:  now,
		deadline: now.Add(c.cfg.leaseTTL()),
	}
	c.leases[l.id] = l
	for _, pos := range positions {
		c.phase[pos] = cellLeased
		c.owner[pos] = l.id
	}
	c.stats.Leases++
	wk.leases++
	if stolen > 0 {
		c.stats.Steals += stolen
		wk.steals += stolen
	}
	writeJSON(w, LeaseResponse{
		LeaseID:    l.id,
		Cells:      granted,
		DeadlineMS: c.cfg.leaseTTL().Milliseconds(),
	})
}

// handleRenew extends a live lease's deadline by one TTL — the
// heartbeat a worker sends while a leased cell is still running, so
// slow cells outlive the TTL instead of being reclaimed mid-compute. A
// lease the coordinator no longer tracks (expired and reclaimed, or
// fully returned) answers Expired: the worker stops renewing but may
// still return its results — the per-cell dedup sorts it out.
func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad renew request: %v", err), http.StatusBadRequest)
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		writeJSON(w, RenewResponse{Err: c.firstErrLocked().Error()})
		return
	}
	if c.remaining == 0 {
		writeJSON(w, RenewResponse{Done: true})
		return
	}
	now := time.Now()
	l, ok := c.leases[req.LeaseID]
	if !ok {
		writeJSON(w, RenewResponse{Expired: true})
		return
	}
	l.deadline = now.Add(c.cfg.leaseTTL())
	c.stats.Renewals++
	c.workerLocked(req.Worker, now).renewals++
	writeJSON(w, RenewResponse{DeadlineMS: c.cfg.leaseTTL().Milliseconds()})
}

func (c *Coordinator) handleReturn(w http.ResponseWriter, r *http.Request) {
	var req ReturnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad return request: %v", err), http.StatusBadRequest)
		return
	}

	c.mu.Lock()
	// Validate the whole batch before mutating any state: a bad record
	// at index k > 0 must not leave indices < k merged, journaled and
	// counted behind a 4xx — the return is atomic, accepted or rejected
	// as a unit, so a worker can safely retry an identical request.
	for _, res := range req.Results {
		if res.Pos < 0 || res.Pos >= len(c.cells) {
			c.mu.Unlock()
			http.Error(w, fmt.Sprintf("result position %d out of range [0,%d)", res.Pos, len(c.cells)), http.StatusBadRequest)
			return
		}
		if res.Err == "" && res.Record.Cell.Key() != c.cells[res.Pos].Key() {
			// A record that does not compute the campaign's cell at
			// this position can never be merged — reject the whole
			// return so the bug is loud.
			c.mu.Unlock()
			http.Error(w, fmt.Sprintf("result for position %d is cell %q, campaign expects %q",
				res.Pos, res.Record.Cell.Key(), c.cells[res.Pos].Key()), http.StatusConflict)
			return
		}
	}

	now := time.Now()
	wk := c.workerLocked(req.Worker, now)
	var resp ReturnResponse
	for _, res := range req.Results {
		if c.phase[res.Pos] == cellDone {
			// Dedup-on-re-lease: the cell was already completed (by an
			// earlier return, possibly after this worker's lease
			// expired or its cell was stolen and re-ran elsewhere).
			// Cells are deterministic, so discarding the late copy
			// cannot change the merged output.
			resp.Duplicates++
			c.stats.Duplicates++
			wk.duplicates++
			continue
		}
		if res.Err != "" {
			c.errs[res.Pos] = fmt.Errorf("dist: cell %d (%s): %s", c.cells[res.Pos].Index, c.cells[res.Pos].Label(), res.Err)
			c.failed = true
		} else {
			out := res.Record.Outcome()
			c.outcomes[res.Pos] = out
			if c.ckpt != nil {
				// Buffer the journal record under the lock (the queue
				// carries the merge order) and write it after releasing
				// it: fsync-grade I/O must not stall every concurrent
				// lease and return on c.mu.
				c.journalQ = append(c.journalQ, journalEntry{pos: res.Pos, cell: c.cells[res.Pos], out: out})
			}
		}
		c.phase[res.Pos] = cellDone
		c.owner[res.Pos] = 0
		c.remaining--
		c.stats.Returned++
		wk.returned++
		resp.Accepted++
	}
	// A fully-returned lease has nothing left to reclaim: drop it now
	// instead of letting it linger until the TTL sweep.
	if l, ok := c.leases[req.LeaseID]; ok {
		settled := true
		for _, pos := range l.cells {
			if c.phase[pos] != cellDone {
				settled = false
				break
			}
		}
		if settled {
			delete(c.leases, req.LeaseID)
		}
	}
	c.mu.Unlock()

	c.flushJournal()

	// The campaign ends when every cell is accounted for — or as soon as
	// any cell fails: cells are deterministic, so a failed cell would
	// fail on every worker, and waiting for the rest would leave Serve
	// blocked forever once leases stop being granted. Completion is
	// signaled only after the journal flush above, so Serve never closes
	// a checkpoint file with this handler's records still queued.
	c.mu.Lock()
	if c.remaining == 0 || c.failed {
		c.closeDoneLocked()
		resp.Done = true
	}
	c.mu.Unlock()
	writeJSON(w, resp)
}

// flushJournal drains the queued checkpoint records to disk outside
// c.mu. journalMu serializes flushers; because entries are appended to
// journalQ under c.mu (in merge order) and each flusher drains the
// queue FIFO — including entries other handlers appended while this
// flush ran — the journal preserves the merge order exactly, as if the
// writes still happened under the big lock.
func (c *Coordinator) flushJournal() {
	if c.ckpt == nil {
		return
	}
	c.journalMu.Lock()
	defer c.journalMu.Unlock()
	for {
		c.mu.Lock()
		q := c.journalQ
		c.journalQ = nil
		c.mu.Unlock()
		if len(q) == 0 {
			return
		}
		for _, e := range q {
			if err := c.ckpt.Record(e.cell, e.out); err != nil {
				c.mu.Lock()
				if c.errs[e.pos] == nil {
					c.errs[e.pos] = fmt.Errorf("dist: journal: %w", err)
				}
				c.failed = true
				c.closeDoneLocked()
				c.mu.Unlock()
				return
			}
		}
	}
}

// firstErrLocked returns the lowest-position cell failure, mirroring the
// deterministic error reporting of Session.RunCells. Called with mu
// held; nil when no cell failed.
func (c *Coordinator) firstErrLocked() error {
	for _, err := range c.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Campaign assembles the merged campaign in canonical cell order. It is
// valid once every cell is accounted for (Serve returns it); calling it
// earlier returns an error.
func (c *Coordinator) Campaign() (*experiments.Campaign, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.firstErrLocked(); err != nil {
		return nil, err
	}
	if c.remaining != 0 {
		return nil, fmt.Errorf("dist: campaign incomplete: %d of %d cells outstanding", c.remaining, len(c.cells))
	}
	return &experiments.Campaign{Options: c.opts, Cells: c.cells, Outcomes: c.outcomes}, nil
}

// background runs the expiry sweep (and the optional progress callback)
// until stop closes. The sweep is what keeps the lease state machine
// honest with no live workers: a fleet that all died still has its
// leases reclaimed and reported on the sweep cadence, and /v1/status
// reflects reality instead of whatever the last lease request saw.
func (c *Coordinator) background(stop <-chan struct{}) {
	sweep := time.NewTicker(c.cfg.sweepInterval())
	defer sweep.Stop()
	var progress <-chan time.Time
	if c.cfg.ProgressInterval > 0 && c.cfg.OnProgress != nil {
		t := time.NewTicker(c.cfg.ProgressInterval)
		defer t.Stop()
		progress = t.C
	}
	for {
		select {
		case <-stop:
			return
		case now := <-sweep.C:
			c.mu.Lock()
			c.reclaimExpired(now)
			c.mu.Unlock()
		case <-progress:
			c.cfg.OnProgress(c.Status())
		}
	}
}

// Serve runs the coordinator on the listener until the campaign
// completes or ctx is canceled, then returns the merged campaign. While
// serving, a background loop sweeps expired leases every
// Config.SweepInterval and emits Config.OnProgress snapshots. After
// completion the server keeps answering "done" for Config.DrainGrace so
// polling workers observe the end instead of a vanished server. The
// listener is closed on return; the checkpoint journal, if any, is
// closed too.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) (*experiments.Campaign, error) {
	srv := &http.Server{Handler: c.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	defer srv.Close()
	if c.ckpt != nil {
		defer c.ckpt.Close()
	}
	stop := make(chan struct{})
	go c.background(stop)
	defer close(stop)
	if c.cfg.OnListen != nil {
		c.cfg.OnListen(ln.Addr().String())
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case err := <-errCh:
		return nil, fmt.Errorf("dist: coordinator server: %w", err)
	case <-c.done:
	}
	// Drain: let polling workers see Done before the server goes away.
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(c.cfg.drainGrace()):
	}
	return c.Campaign()
}
