package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

// Config tunes a coordinator. The zero value selects production-ish
// defaults; tests shrink the timings.
type Config struct {
	// LeaseTTL is how long a worker owns a leased batch before the
	// coordinator may hand its unfinished cells to someone else.
	// Default 2 minutes.
	LeaseTTL time.Duration
	// LeaseBatch caps the cells granted per lease. Default 8; a
	// worker's request may ask for fewer.
	LeaseBatch int
	// RetryDelay is the poll interval suggested to workers when no work
	// is pending (all cells leased or done). Default 200ms.
	RetryDelay time.Duration
	// DrainGrace is how long the coordinator keeps answering "done"
	// after the campaign completes, so polling workers observe the end
	// instead of a vanished server. Default 1s.
	DrainGrace time.Duration
	// CheckpointPath, when set, journals every merged cell as one JSONL
	// line — the exact checkpoint format `cmd/experiments -resume`
	// reads and writes. Restarting a coordinator (or a single-process
	// session) on the same file restores the completed cells without
	// re-running them.
	CheckpointPath string
	// OnListen, when set, is called with the bound listen address once
	// the coordinator is accepting connections — the hook loopback
	// examples and ":0" listeners use to learn the actual port.
	OnListen func(addr string)
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 2 * time.Minute
}

func (c Config) leaseBatch() int {
	if c.LeaseBatch > 0 {
		return c.LeaseBatch
	}
	return 8
}

func (c Config) retryDelay() time.Duration {
	if c.RetryDelay > 0 {
		return c.RetryDelay
	}
	return 200 * time.Millisecond
}

func (c Config) drainGrace() time.Duration {
	if c.DrainGrace > 0 {
		return c.DrainGrace
	}
	return time.Second
}

// Stats counts coordinator activity.
type Stats struct {
	// Leases is the number of non-empty lease grants.
	Leases int
	// Expired counts leases reclaimed after their deadline passed with
	// cells unfinished.
	Expired int
	// Returned counts cell results merged into the campaign.
	Returned int
	// Duplicates counts returned results discarded because the cell was
	// already complete (the dedup-on-re-lease rule).
	Duplicates int
	// Restored counts cells restored from the checkpoint journal at
	// startup instead of leased out.
	Restored int
}

// cellPhase is the lease state machine of one cell:
//
//	pending --lease--> leased --return--> done
//	   ^                  |
//	   +---deadline past--+
//
// done is terminal; a done cell can never be leased again, and a second
// return of it is discarded as a duplicate.
type cellPhase uint8

const (
	cellPending cellPhase = iota
	cellLeased
	cellDone
)

// lease is one granted batch.
type lease struct {
	id       uint64
	worker   string
	cells    []int // canonical positions granted
	deadline time.Time
}

// Coordinator owns one campaign's canonical cell list and runs its lease
// state machine. Create with NewCoordinator, expose via Handler or
// Serve. Safe for concurrent use by the HTTP handlers.
type Coordinator struct {
	cfg         Config
	opts        experiments.Options
	fingerprint string
	cells       []experiments.Cell

	mu        sync.Mutex
	phase     []cellPhase
	owner     []uint64 // active lease id per leased cell
	outcomes  []*core.Outcome
	errs      []error // per-cell failures, by position
	remaining int
	leases    map[uint64]*lease
	nextLease uint64
	stats     Stats
	ckpt      *experiments.Checkpoint
	done      chan struct{}
	failed    bool
}

// NewCoordinator builds a coordinator for the given cells — the
// campaign's canonical order, exactly the slice a single-process
// Session.Run would execute. With Config.CheckpointPath set, cells
// already journaled there are restored immediately (the journal is
// validated against the options fingerprint, like -resume).
func NewCoordinator(opts experiments.Options, cells []experiments.Cell, cfg Config) (*Coordinator, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("dist: no cells to coordinate")
	}
	c := &Coordinator{
		cfg:         cfg,
		opts:        opts,
		fingerprint: opts.Fingerprint(),
		cells:       cells,
		phase:       make([]cellPhase, len(cells)),
		owner:       make([]uint64, len(cells)),
		outcomes:    make([]*core.Outcome, len(cells)),
		errs:        make([]error, len(cells)),
		remaining:   len(cells),
		leases:      make(map[uint64]*lease),
		done:        make(chan struct{}),
	}
	if cfg.CheckpointPath != "" {
		ck, err := experiments.OpenCheckpoint(cfg.CheckpointPath, c.fingerprint)
		if err != nil {
			return nil, err
		}
		c.ckpt = ck
		for i, cell := range cells {
			if out, ok := ck.Lookup(cell); ok {
				c.outcomes[i] = out
				c.phase[i] = cellDone
				c.remaining--
				c.stats.Restored++
			}
		}
		if c.remaining == 0 {
			close(c.done)
		}
	}
	return c, nil
}

// Stats returns a snapshot of the activity counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Handler returns the coordinator's HTTP protocol surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/campaign", c.handleCampaign)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/return", c.handleReturn)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleCampaign(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, CampaignInfo{
		Protocol:    ProtocolVersion,
		Fingerprint: c.fingerprint,
		Options:     c.opts,
		Cells:       len(c.cells),
	})
}

// reclaimExpired returns every cell of every deadline-passed lease to
// the pending pool. Called with mu held, lazily from the lease path: a
// dead worker's cells become grantable the first time a live worker asks
// for work after the deadline.
func (c *Coordinator) reclaimExpired(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		expired := false
		for _, pos := range l.cells {
			if c.phase[pos] == cellLeased && c.owner[pos] == id {
				c.phase[pos] = cellPending
				c.owner[pos] = 0
				expired = true
			}
		}
		delete(c.leases, id)
		if expired {
			c.stats.Expired++
		}
	}
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad lease request: %v", err), http.StatusBadRequest)
		return
	}
	max := req.Max
	if max <= 0 || max > c.cfg.leaseBatch() {
		max = c.cfg.leaseBatch()
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		writeJSON(w, LeaseResponse{Done: true, Err: c.firstErrLocked().Error()})
		return
	}
	if c.remaining == 0 {
		writeJSON(w, LeaseResponse{Done: true})
		return
	}
	now := time.Now()
	c.reclaimExpired(now)

	var granted []LeasedCell
	var positions []int
	for pos := range c.cells {
		if len(granted) >= max {
			break
		}
		if c.phase[pos] != cellPending {
			continue
		}
		granted = append(granted, LeasedCell{Pos: pos, Cell: c.cells[pos]})
		positions = append(positions, pos)
	}
	if len(granted) == 0 {
		// Everything is leased out or done: poll again later (an
		// expiry may free work before the campaign completes).
		writeJSON(w, LeaseResponse{RetryMS: c.cfg.retryDelay().Milliseconds()})
		return
	}
	c.nextLease++
	l := &lease{
		id:       c.nextLease,
		worker:   req.Worker,
		cells:    positions,
		deadline: now.Add(c.cfg.leaseTTL()),
	}
	c.leases[l.id] = l
	for _, pos := range positions {
		c.phase[pos] = cellLeased
		c.owner[pos] = l.id
	}
	c.stats.Leases++
	writeJSON(w, LeaseResponse{
		LeaseID:    l.id,
		Cells:      granted,
		DeadlineMS: c.cfg.leaseTTL().Milliseconds(),
	})
}

func (c *Coordinator) handleReturn(w http.ResponseWriter, r *http.Request) {
	var req ReturnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad return request: %v", err), http.StatusBadRequest)
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	var resp ReturnResponse
	for _, res := range req.Results {
		if res.Pos < 0 || res.Pos >= len(c.cells) {
			http.Error(w, fmt.Sprintf("result position %d out of range [0,%d)", res.Pos, len(c.cells)), http.StatusBadRequest)
			return
		}
		if res.Err == "" && res.Record.Cell.Key() != c.cells[res.Pos].Key() {
			// A record that does not compute the campaign's cell at
			// this position can never be merged — reject the whole
			// return so the bug is loud.
			http.Error(w, fmt.Sprintf("result for position %d is cell %q, campaign expects %q",
				res.Pos, res.Record.Cell.Key(), c.cells[res.Pos].Key()), http.StatusConflict)
			return
		}
		if c.phase[res.Pos] == cellDone {
			// Dedup-on-re-lease: the cell was already completed (by an
			// earlier return, possibly after this worker's lease
			// expired and the cell re-ran elsewhere). Cells are
			// deterministic, so discarding the late copy cannot change
			// the merged output.
			resp.Duplicates++
			c.stats.Duplicates++
			continue
		}
		if res.Err != "" {
			c.errs[res.Pos] = fmt.Errorf("dist: cell %d (%s): %s", c.cells[res.Pos].Index, c.cells[res.Pos].Label(), res.Err)
			c.failed = true
		} else {
			out := res.Record.Outcome()
			c.outcomes[res.Pos] = out
			if c.ckpt != nil {
				if err := c.ckpt.Record(c.cells[res.Pos], out); err != nil {
					c.errs[res.Pos] = fmt.Errorf("dist: journal: %w", err)
					c.failed = true
				}
			}
		}
		c.phase[res.Pos] = cellDone
		c.owner[res.Pos] = 0
		c.remaining--
		c.stats.Returned++
		resp.Accepted++
	}
	// A fully-returned lease has nothing left to reclaim: drop it now
	// instead of letting it linger until the TTL sweep.
	if l, ok := c.leases[req.LeaseID]; ok {
		settled := true
		for _, pos := range l.cells {
			if c.phase[pos] != cellDone {
				settled = false
				break
			}
		}
		if settled {
			delete(c.leases, req.LeaseID)
		}
	}
	// The campaign ends when every cell is accounted for — or as soon as
	// any cell fails: cells are deterministic, so a failed cell would
	// fail on every worker, and waiting for the rest would leave Serve
	// blocked forever once leases stop being granted.
	if c.remaining == 0 || c.failed {
		select {
		case <-c.done:
		default:
			close(c.done)
		}
		resp.Done = true
	}
	writeJSON(w, resp)
}

// firstErrLocked returns the lowest-position cell failure, mirroring the
// deterministic error reporting of Session.RunCells. Called with mu
// held; nil when no cell failed.
func (c *Coordinator) firstErrLocked() error {
	for _, err := range c.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Campaign assembles the merged campaign in canonical cell order. It is
// valid once every cell is accounted for (Serve returns it); calling it
// earlier returns an error.
func (c *Coordinator) Campaign() (*experiments.Campaign, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.firstErrLocked(); err != nil {
		return nil, err
	}
	if c.remaining != 0 {
		return nil, fmt.Errorf("dist: campaign incomplete: %d of %d cells outstanding", c.remaining, len(c.cells))
	}
	return &experiments.Campaign{Options: c.opts, Cells: c.cells, Outcomes: c.outcomes}, nil
}

// Serve runs the coordinator on the listener until the campaign
// completes or ctx is canceled, then returns the merged campaign. After
// completion the server keeps answering "done" for Config.DrainGrace so
// polling workers observe the end of the campaign before the socket
// closes. The listener is closed on return; the checkpoint journal, if
// any, is closed too.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) (*experiments.Campaign, error) {
	srv := &http.Server{Handler: c.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	defer srv.Close()
	if c.ckpt != nil {
		defer c.ckpt.Close()
	}
	if c.cfg.OnListen != nil {
		c.cfg.OnListen(ln.Addr().String())
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case err := <-errCh:
		return nil, fmt.Errorf("dist: coordinator server: %w", err)
	case <-c.done:
	}
	// Drain: let polling workers see Done before the server goes away.
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(c.cfg.drainGrace()):
	}
	return c.Campaign()
}
