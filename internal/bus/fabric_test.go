package bus

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func TestParseTopology(t *testing.T) {
	for _, tc := range []struct {
		spec  string
		procs int
		want  string // canonical form, or "" for a parse error
	}{
		{"", 8, "bus"},
		{"bus", 8, "bus"},
		{"xbar", 8, "xbar:8"},
		{"xbar:4", 128, "xbar:4"},
		{"ring", 16, "ring:16"},
		{"ring:1", 8, "ring:1"},
		{"mesh", 16, "mesh:4x4"},
		{"mesh", 8, "mesh:2x4"},
		{"mesh", 7, "mesh:1x7"}, // prime: degenerates to a row
		{"mesh", 128, "mesh:8x16"},
		{"mesh:1x1", 8, "mesh:1x1"},
		{"mesh:2x3", 8, "mesh:2x3"},
		{"bus:4", 8, ""},
		{"mesh:0x4", 8, ""},
		{"mesh:4", 8, ""},
		{"ring:0", 8, ""},
		{"ring:x", 8, ""},
		{"torus", 8, ""},
	} {
		topo, err := ParseTopology(tc.spec, tc.procs)
		if tc.want == "" {
			if err == nil {
				t.Errorf("ParseTopology(%q, %d) = %+v, want error", tc.spec, tc.procs, topo)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTopology(%q, %d): %v", tc.spec, tc.procs, err)
			continue
		}
		if got := topo.String(); got != tc.want {
			t.Errorf("ParseTopology(%q, %d) = %q, want %q", tc.spec, tc.procs, got, tc.want)
		}
		// The canonical form is a fixed point: re-parsing it under any
		// processor count yields the same topology (checkpoint keys
		// depend on this stability).
		again, err := ParseTopology(topo.String(), 1)
		if err != nil || again != topo {
			t.Errorf("canonical %q did not round-trip: %+v / %v", topo.String(), again, err)
		}
	}
}

func TestValidateTopology(t *testing.T) {
	for _, tc := range []struct {
		spec        string
		banks       int
		wantInvalid bool
	}{
		{"", 0, false},
		{"", 4, false},
		{"bus", 8, false},
		{"mesh", 0, false},
		{"mesh", 4, true}, // fabrics don't compose with the Banks axis
		{"xbar", 1, true},
		{"torus", 0, true},
	} {
		err := ValidateTopology(tc.spec, tc.banks, 8)
		if (err != nil) != tc.wantInvalid {
			t.Errorf("ValidateTopology(%q, banks=%d) = %v, wantInvalid=%v", tc.spec, tc.banks, err, tc.wantInvalid)
		}
	}
}

// TestMeshRouteXY pins dimension-order routing on a 3x4 mesh: column hops
// first, then row hops, every link a real adjacency, hop count the
// Manhattan distance.
func TestMeshRouteXY(t *testing.T) {
	topo, err := ParseTopology("mesh:3x4", 12)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFabric(sim.NewEngine(), 2, topo)
	for s := 0; s < topo.Nodes; s++ {
		for d := 0; d < topo.Nodes; d++ {
			if s == d {
				continue
			}
			path := f.route(s, d, nil)
			manhattan := abs(s/topo.Cols-d/topo.Cols) + abs(s%topo.Cols-d%topo.Cols)
			if len(path) != manhattan {
				t.Fatalf("route %d->%d has %d hops, want Manhattan %d", s, d, len(path), manhattan)
			}
			at := s
			sawRowHop := false
			for _, link := range path {
				from, to := f.linkEnds(link)
				if from == to {
					t.Fatalf("route %d->%d crosses local port %d mid-route", s, d, from)
				}
				if from != at {
					t.Fatalf("route %d->%d: link %d starts at %d, cursor at %d", s, d, link, from, at)
				}
				if from/topo.Cols != to/topo.Cols { // row changed: a Y hop
					sawRowHop = true
				} else if sawRowHop {
					t.Fatalf("route %d->%d hops X after Y (not dimension-ordered)", s, d)
				}
				at = to
			}
			if at != d {
				t.Fatalf("route %d->%d ends at %d", s, d, at)
			}
		}
	}
}

// TestRingRouteShorterArc pins the ring's direction choice: the shorter
// arc wins, ties go clockwise.
func TestRingRouteShorterArc(t *testing.T) {
	topo, err := ParseTopology("ring:6", 6)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFabric(sim.NewEngine(), 2, topo)
	for s := 0; s < 6; s++ {
		for d := 0; d < 6; d++ {
			if s == d {
				continue
			}
			path := f.route(s, d, nil)
			cw := (d - s + 6) % 6
			ccw := (s - d + 6) % 6
			wantHops := cw
			if ccw < cw {
				wantHops = ccw
			}
			if len(path) != wantHops {
				t.Fatalf("route %d->%d has %d hops, want %d", s, d, len(path), wantHops)
			}
			at := s
			for _, link := range path {
				from, to := f.linkEnds(link)
				if from != at {
					t.Fatalf("route %d->%d: link starts at %d, cursor at %d", s, d, from, at)
				}
				at = to
			}
			if at != d {
				t.Fatalf("route %d->%d ends at %d", s, d, at)
			}
			if cw <= ccw { // tie or shorter: must be the clockwise arc
				if from, to := f.linkEnds(path[0]); (from+1)%6 != to {
					t.Fatalf("route %d->%d (cw %d, ccw %d) did not go clockwise", s, d, cw, ccw)
				}
			}
		}
	}
}

// TestFabricHopTiming pins the per-hop occupancy model: on an otherwise
// idle 1x4 mesh, a 3-column crossing plus the ejection port costs 4 hops
// of occupancy, and each link charges one crossing.
func TestFabricHopTiming(t *testing.T) {
	topo, err := ParseTopology("mesh:1x4", 4)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	f := NewFabric(eng, 5, topo)
	var delivered sim.Time = -1
	f.Send(0, 3, 0, func() { delivered = eng.Now() })
	eng.Run()
	if delivered != 4*5 {
		t.Fatalf("delivered at %d, want 20 (3 east hops + ejection, occupancy 5)", delivered)
	}
	st := f.Stats()
	if st.Messages != 4 || st.BusyCycles != 20 || st.WaitCycles != 0 {
		t.Fatalf("stats %+v, want 4 crossings, 20 busy, 0 wait", st)
	}
}

// TestFabricSameRouteFIFO pins the ordering contract the directory relies
// on: two messages between the same endpoints follow the same route and
// must deliver in send order, with per-hop queueing accruing wait cycles.
func TestFabricSameRouteFIFO(t *testing.T) {
	for _, spec := range []string{"mesh:2x4", "ring:8"} {
		topo, err := ParseTopology(spec, 8)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		f := NewFabric(eng, 3, topo)
		var order []int
		for i := 0; i < 5; i++ {
			i := i
			f.Send(1, 6, 0, func() { order = append(order, i) })
		}
		eng.Run()
		if fmt.Sprint(order) != "[0 1 2 3 4]" {
			t.Fatalf("%s: same-route delivery order %v, want FIFO", spec, order)
		}
		if st := f.Stats(); st.WaitCycles == 0 {
			t.Fatalf("%s: five same-route messages accrued no wait", spec)
		}
	}
}

// TestFabricVendorSideband pins the token-ordering prerequisite: all
// vendor traffic, from any tile, crosses exactly tile 0's local port —
// one FIFO — so replies issued in acquisition order deliver in that
// order on every geometry.
func TestFabricVendorSideband(t *testing.T) {
	topo, err := ParseTopology("mesh:2x4", 8)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	f := NewFabric(eng, 2, topo)
	var order []int
	f.Send(7, VendorNode, 0, func() { order = append(order, 7) })
	f.Send(VendorNode, 3, 0, func() { order = append(order, 3) })
	f.Send(0, VendorNode, 0, func() { order = append(order, 0) })
	eng.Run()
	if fmt.Sprint(order) != "[7 3 0]" {
		t.Fatalf("vendor traffic order %v, want FIFO through one port", order)
	}
	bs := f.BankStats()
	if bs[0].Messages != 3 {
		t.Fatalf("tile 0 local port carried %d messages, want all 3", bs[0].Messages)
	}
	for i, s := range bs[1:] {
		if s.Messages != 0 {
			t.Fatalf("link %d carried vendor traffic (%d messages)", i+1, s.Messages)
		}
	}
}

// TestSingleTileFabricMatchesSingleBus is the bus-level form of the
// degenerate-topology golden: a 1x1 mesh and a 1-node ring have exactly
// one link, and a randomized schedule of sends (local and vendor) must
// deliver at exactly the cycles the single Bus delivers them, message for
// message, with identical stats.
func TestSingleTileFabricMatchesSingleBus(t *testing.T) {
	for _, spec := range []string{"mesh:1x1", "ring:1"} {
		topo, err := ParseTopology(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 5; seed++ {
			single := sim.NewEngine()
			fabric := sim.NewEngine()
			var a Interconnect = New(single, 3)
			var b Interconnect = NewFabric(fabric, 3, topo)
			var got, want []string
			schedule := func(eng *sim.Engine, ic Interconnect, out *[]string) {
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 200; i++ {
					i := i
					at := sim.Time(rng.Intn(300))
					src, dst := 0, 0
					switch rng.Intn(3) {
					case 1:
						src = VendorNode
					case 2:
						dst = VendorNode
					}
					eng.Schedule(at, func() {
						ic.Send(src, dst, 0, func() {
							*out = append(*out, fmt.Sprintf("msg%d@%d", i, eng.Now()))
						})
					})
				}
			}
			schedule(single, a, &want)
			schedule(fabric, b, &got)
			single.Run()
			fabric.Run()
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s seed %d: diverged from single bus:\nsingle: %v\nfabric: %v", spec, seed, want, got)
			}
			if a.Stats() != b.Stats() {
				t.Fatalf("%s seed %d: stats diverged: single %+v fabric %+v", spec, seed, a.Stats(), b.Stats())
			}
			if len(b.BankStats()) != 1 {
				t.Fatalf("%s: %d links, want 1", spec, len(b.BankStats()))
			}
		}
	}
}

// TestXbarPairContention pins the crossbar's contention model: messages
// on the same src->dst pair serialize in FIFO slots; messages on any
// other pair — even sharing a port — cross in parallel.
func TestXbarPairContention(t *testing.T) {
	eng := sim.NewEngine()
	x := NewXbar(eng, 4, 4)
	times := map[string]sim.Time{}
	x.Send(0, 1, 0, func() { times["a"] = eng.Now() })
	x.Send(0, 1, 0, func() { times["b"] = eng.Now() }) // same pair: queues
	x.Send(0, 2, 0, func() { times["c"] = eng.Now() }) // same src, other dst: parallel
	x.Send(3, 1, 0, func() { times["d"] = eng.Now() }) // other src, same dst: parallel
	eng.Run()
	if times["a"] != 4 || times["c"] != 4 || times["d"] != 4 {
		t.Fatalf("uncontended crossings at a=%d c=%d d=%d, want all 4", times["a"], times["c"], times["d"])
	}
	if times["b"] != 8 {
		t.Fatalf("same-pair crossing at %d, want 8 (slot after the first)", times["b"])
	}
	st := x.Stats()
	if st.Messages != 4 || st.WaitCycles != 4 || st.BusyCycles != 16 {
		t.Fatalf("stats %+v, want 4 messages, 4 wait, 16 busy", st)
	}
	bs := x.BankStats()
	if bs[0].Messages != 3 || bs[3].Messages != 1 {
		t.Fatalf("per-port stats %+v, want 3 on port 0 and 1 on port 3", bs)
	}
}

// TestXbarVendorSerializes pins the crossbar's vendor sideband: all
// vendor traffic reserves the (0,0) pair, one FIFO, any source port.
func TestXbarVendorSerializes(t *testing.T) {
	eng := sim.NewEngine()
	x := NewXbar(eng, 4, 4)
	var order []int
	x.Send(3, VendorNode, 0, func() { order = append(order, 3) })
	x.Send(VendorNode, 2, 0, func() { order = append(order, 2) })
	x.Send(1, VendorNode, 0, func() { order = append(order, 1) })
	eng.Run()
	if fmt.Sprint(order) != "[3 2 1]" {
		t.Fatalf("vendor traffic order %v, want FIFO through the (0,0) pair", order)
	}
	if st := x.Stats(); st.WaitCycles != 4+8 {
		t.Fatalf("vendor traffic wait %d, want 12 (slots at 0, 4, 8)", st.WaitCycles)
	}
}

// TestFabricXbarReset pins the Reset contract for the new models: after a
// run and a Reset (with the engine reset alongside), queues are empty,
// counters zeroed, and a rerun of the same schedule delivers at the same
// cycles.
func TestFabricXbarReset(t *testing.T) {
	topo, err := ParseTopology("mesh:2x2", 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, build := range map[string]func(*sim.Engine) Interconnect{
		"mesh": func(e *sim.Engine) Interconnect { return NewFabric(e, 3, topo) },
		"xbar": func(e *sim.Engine) Interconnect { return NewXbar(e, 3, 4) },
	} {
		eng := sim.NewEngine()
		ic := build(eng)
		run := func() (last sim.Time, st Stats) {
			for i := 0; i < 8; i++ {
				ic.Send(i%4, (i+1)%4, 0, func() { last = eng.Now() })
			}
			eng.Run()
			return last, ic.Stats()
		}
		last1, st1 := run()
		eng.Reset()
		ic.Reset()
		if ic.Queued() != 0 {
			t.Fatalf("%s: queued %d after reset", name, ic.Queued())
		}
		if st := ic.Stats(); st != (Stats{}) {
			t.Fatalf("%s: stats %+v after reset, want zero", name, st)
		}
		last2, st2 := run()
		if last1 != last2 || st1 != st2 {
			t.Fatalf("%s: rerun after reset diverged: %d/%+v vs %d/%+v", name, last1, st1, last2, st2)
		}
	}
}

// FuzzMeshRoute fuzzes the XY router over arbitrary geometries and
// endpoint pairs: the route must follow real adjacencies from src to dst,
// X strictly before Y, with hop count exactly the Manhattan distance.
func FuzzMeshRoute(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint16(0), uint16(15))
	f.Add(uint8(1), uint8(1), uint16(0), uint16(0))
	f.Add(uint8(8), uint8(16), uint16(127), uint16(3))
	f.Add(uint8(3), uint8(5), uint16(14), uint16(14))
	f.Fuzz(func(t *testing.T, rowsRaw, colsRaw uint8, srcRaw, dstRaw uint16) {
		rows := int(rowsRaw)%16 + 1
		cols := int(colsRaw)%16 + 1
		n := rows * cols
		src := int(srcRaw) % n
		dst := int(dstRaw) % n
		fb := NewFabric(sim.NewEngine(), 1, Topology{Kind: TopoMesh, Nodes: n, Rows: rows, Cols: cols})
		if src == dst {
			return
		}
		path := fb.route(src, dst, nil)
		manhattan := abs(src/cols-dst/cols) + abs(src%cols-dst%cols)
		if len(path) != manhattan {
			t.Fatalf("mesh %dx%d route %d->%d: %d hops, want Manhattan %d", rows, cols, src, dst, len(path), manhattan)
		}
		at := src
		sawRowHop := false
		for _, link := range path {
			if link < n || link >= len(fb.links) {
				t.Fatalf("mesh %dx%d route %d->%d uses link %d outside the directional range [%d,%d)",
					rows, cols, src, dst, link, n, len(fb.links))
			}
			from, to := fb.linkEnds(link)
			if from != at {
				t.Fatalf("mesh %dx%d route %d->%d: link %d starts at %d, cursor at %d", rows, cols, src, dst, link, from, at)
			}
			dr := abs(from/cols - to/cols)
			dc := abs(from%cols - to%cols)
			if dr+dc != 1 {
				t.Fatalf("mesh %dx%d route %d->%d: link %d is not an adjacency (%d->%d)", rows, cols, src, dst, link, from, to)
			}
			if dr == 1 {
				sawRowHop = true
			} else if sawRowHop {
				t.Fatalf("mesh %dx%d route %d->%d hops X after Y", rows, cols, src, dst)
			}
			at = to
		}
		if at != dst {
			t.Fatalf("mesh %dx%d route %d->%d ends at %d", rows, cols, src, dst, at)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
