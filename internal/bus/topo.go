package bus

import (
	"fmt"
	"strconv"
	"strings"
)

// Topology kinds, the values config.Machine.Topology accepts (optionally
// with an explicit size suffix — see ParseTopology).
const (
	TopoBus  = "bus"
	TopoXbar = "xbar"
	TopoMesh = "mesh"
	TopoRing = "ring"
)

// Topology is a parsed interconnect topology: the model kind plus its
// node geometry. The zero value is not valid; build one with
// ParseTopology.
type Topology struct {
	Kind  string
	Nodes int // tile count (Rows*Cols for the mesh)
	Rows  int // mesh only
	Cols  int // mesh only
}

// String returns the canonical spelling: the kind with its explicit size
// ("bus", "xbar:16", "ring:8", "mesh:4x4"). Parsing the canonical form
// with any processor count reproduces the same Topology, so it is the
// stable identity used in checkpoint keys and fingerprints.
func (t Topology) String() string {
	switch t.Kind {
	case TopoMesh:
		return fmt.Sprintf("mesh:%dx%d", t.Rows, t.Cols)
	case TopoXbar, TopoRing:
		return fmt.Sprintf("%s:%d", t.Kind, t.Nodes)
	default:
		return TopoBus
	}
}

// ParseTopology parses a topology spec against a machine of procs
// processors. Accepted forms:
//
//	""            the default: whatever the Banks axis selects (single
//	              or banked bus)
//	"bus"         same as ""
//	"xbar"        full crossbar, one port per processor
//	"xbar:N"      full crossbar with N ports
//	"ring"        bidirectional ring, one tile per processor
//	"ring:N"      bidirectional ring with N tiles
//	"mesh"        2D mesh, processors factored near-square (rows is the
//	              largest divisor of procs at most sqrt(procs); a prime
//	              count degenerates to 1xP)
//	"mesh:RxC"    2D mesh with explicit geometry
//
// Node ids outside [0, tiles) are folded modulo the tile count, so an
// explicit size smaller than the processor count shares tiles. Sizes
// must be at least 1.
func ParseTopology(spec string, procs int) (Topology, error) {
	if procs < 1 {
		return Topology{}, fmt.Errorf("bus: topology for %d processors", procs)
	}
	kind, size := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		kind, size = spec[:i], spec[i+1:]
	}
	switch kind {
	case "", TopoBus:
		if size != "" {
			return Topology{}, fmt.Errorf("bus: topology %q: the bus takes no size (banks are the Banks axis)", spec)
		}
		return Topology{Kind: TopoBus}, nil
	case TopoXbar, TopoRing:
		n := procs
		if size != "" {
			var err error
			if n, err = strconv.Atoi(size); err != nil || n < 1 {
				return Topology{}, fmt.Errorf("bus: topology %q: size must be a positive integer", spec)
			}
		}
		return Topology{Kind: kind, Nodes: n}, nil
	case TopoMesh:
		if size == "" {
			r, c := meshFactor(procs)
			return Topology{Kind: TopoMesh, Nodes: r * c, Rows: r, Cols: c}, nil
		}
		rs, cs, ok := strings.Cut(size, "x")
		if !ok {
			return Topology{}, fmt.Errorf("bus: topology %q: mesh size must be RxC", spec)
		}
		r, err1 := strconv.Atoi(rs)
		c, err2 := strconv.Atoi(cs)
		if err1 != nil || err2 != nil || r < 1 || c < 1 {
			return Topology{}, fmt.Errorf("bus: topology %q: mesh size must be RxC with positive dimensions", spec)
		}
		return Topology{Kind: TopoMesh, Nodes: r * c, Rows: r, Cols: c}, nil
	default:
		return Topology{}, fmt.Errorf("bus: unknown topology %q (want bus, xbar, mesh or ring)", spec)
	}
}

// meshFactor factors n near-square: rows is the largest divisor of n at
// most sqrt(n), so rows <= cols and the aspect ratio is as close to
// square as n's divisors allow. A prime n degenerates to 1xN.
func meshFactor(n int) (rows, cols int) {
	rows = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			rows = d
		}
	}
	return rows, n / rows
}

// ValidateTopology is the single config-level enforcement point for the
// topology axis: the spec must parse for the processor count, and the
// point-to-point fabrics do not compose with the Banks axis (they route
// by endpoint, not by address interleave), so any non-bus topology
// requires Banks to be unset.
func ValidateTopology(spec string, banks, procs int) error {
	topo, err := ParseTopology(spec, procs)
	if err != nil {
		return err
	}
	if topo.Kind != TopoBus && banks != 0 {
		return fmt.Errorf("bus: topology %q does not compose with banks=%d (the Banks axis is bus-only)", spec, banks)
	}
	return nil
}
