// Package bus models the interconnect of the baseline system: a common
// split-transaction bus (paper Table II). A split-transaction bus separates
// the request from the reply, so the bus is held only for the cycles a
// message occupies the wires, not for the whole memory round-trip.
//
// The model is a single shared resource with FIFO arbitration: each message
// reserves the earliest free slot of `occupancy` cycles at or after its
// issue time, and the deliver callback fires when the slot ends. Latency
// therefore grows under contention exactly the way a real shared bus
// serializes traffic.
package bus

import (
	"fmt"

	"repro/internal/sim"
)

// Stats counts bus activity.
type Stats struct {
	Messages   uint64
	BusyCycles uint64
	// WaitCycles accumulates queueing delay (time between issue and the
	// start of the reserved slot) across all messages.
	WaitCycles uint64
}

// Bus is a split-transaction bus. All methods must be called from engine
// event context (the simulator is single-goroutine by design).
type Bus struct {
	eng       *sim.Engine
	occupancy sim.Time // cycles one message holds the bus
	nextFree  sim.Time // first cycle the bus is free
	stats     Stats
}

// New builds a bus on the engine. occupancy is the per-message bus-hold
// time in cycles and must be positive.
func New(eng *sim.Engine, occupancy sim.Time) *Bus {
	if occupancy <= 0 {
		panic(fmt.Sprintf("bus: occupancy %d must be positive", occupancy))
	}
	return &Bus{eng: eng, occupancy: occupancy}
}

// Occupancy returns the per-message hold time.
func (b *Bus) Occupancy() sim.Time { return b.occupancy }

// Stats returns a copy of the activity counters.
func (b *Bus) Stats() Stats { return b.stats }

// Send transmits a message: deliver runs when the message has crossed the
// bus. Returns the delivery time.
func (b *Bus) Send(deliver func()) sim.Time {
	now := b.eng.Now()
	start := now
	if b.nextFree > start {
		start = b.nextFree
	}
	b.stats.Messages++
	b.stats.WaitCycles += uint64(start - now)
	b.stats.BusyCycles += uint64(b.occupancy)
	end := start + b.occupancy
	b.nextFree = end
	b.eng.Schedule(end, deliver)
	return end
}

// Utilization returns busy-cycles / elapsed-cycles at the current time.
// Returns 0 before any time has elapsed.
func (b *Bus) Utilization() float64 {
	now := b.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(b.stats.BusyCycles) / float64(now)
}
