// Package bus models the interconnect of the simulated machine. Five
// implementations of one Interconnect interface exist:
//
//   - Bus, the common split-transaction bus of the paper's Table II: a
//     single shared resource with batched FIFO arbitration. A
//     split-transaction bus separates the request from the reply, so the
//     bus is held only for the cycles a message occupies the wires, not
//     for the whole memory round-trip.
//   - BankedBus (banked.go), an address-interleaved N-banked bus that
//     opens the 64/128-processor scale axis: each bank is an independent
//     split bus arbitrating its own FIFO, and same-cycle deliveries across
//     banks are serviced in a deterministic round-robin.
//   - Xbar (xbar.go), a full crossbar: one reservation ledger per
//     src→dst port pair, so the only contention is two messages between
//     the same pair of nodes.
//   - Mesh and Ring (fabric.go), point-to-point fabrics built from Bus
//     links: a 2D mesh with XY dimension-order routing, and a
//     bidirectional ring routing the shorter arc. Messages occupy every
//     link on their route for the occupancy, hop by hop.
//
// In both models senders do not schedule per-request events: they enqueue
// on an arbitration queue, and one grant-round event — scheduled for the
// cycle the (bank's) wires next free up — drains every queued requester in
// arrival order, assigning each the next `occupancy`-cycle slot. Granted
// messages then deliver through a single chained delivery event walking
// the slot ends. The slot arithmetic is identical to a per-request
// reservation model (each message occupies the earliest free slot at or
// after its issue time), so latency grows under contention exactly the way
// a real shared bus serializes traffic — but arbitration costs one event
// per round, not per message, and the queues recycle their storage.
package bus

import (
	"fmt"

	"repro/internal/fifo"
	"repro/internal/sim"
)

// VendorNode is the node id of the token vendor, which sits beside tile 0
// rather than on its own port: on every topology, traffic to or from the
// vendor crosses exactly one resource — tile 0's local port (the single
// bus on "bus"). Serializing all token traffic through one FIFO is what
// keeps TID replies delivering in acquisition order on every shape (the
// commit-ordering invariant the processors rely on).
const VendorNode = -1

// Interconnect is the system's view of the interconnect. Send transmits a
// message from node src to node dst on the given bank; deliver runs when
// the message has crossed the wires. Bus-class implementations route by
// bank and ignore src/dst; point-to-point fabrics route by src/dst and
// ignore bank. All methods must be called from engine event context (the
// simulator is single-goroutine by design).
type Interconnect interface {
	// Send enqueues a message from src to dst; deliver runs when the
	// message has crossed. Bus-class implementations use only bank (their
	// arbitration queue index; banked implementations panic on a bank
	// outside [0, Banks())); fabrics use only src and dst (node ids,
	// taken modulo their tile count, or VendorNode).
	Send(src, dst, bank int, deliver func())
	// Banks returns the number of independent banks (1 for the single bus).
	Banks() int
	// Occupancy returns the per-message hold time of one bank's wires.
	Occupancy() sim.Time
	// Stats returns the activity counters, aggregated over banks.
	Stats() Stats
	// BankStats returns a copy of each independent resource's private
	// counters — banks for the bus models, links for the fabrics, output
	// ports for the crossbar. For the single bus this is one entry equal
	// to Stats().
	BankStats() []Stats
	// Queued returns the number of messages awaiting arbitration or
	// delivery across all banks.
	Queued() int
	// Utilization returns busy-cycles over elapsed wire-capacity cycles
	// (elapsed time times bank count) at the current time.
	Utilization() float64
	// Reset returns the interconnect to its initial state — empty
	// queues, free wires, zeroed counters — keeping allocated storage.
	// The owning engine must be reset first (or alongside): pending
	// grant/delivery events are assumed already discarded.
	Reset()
}

// BankOf maps an interleave key onto a bank. Lines interleave by line
// address; control messages with no address (token round trips, gating
// commands) interleave by the sending component's id. banks must be a
// power of two — the bank is the key's low lg(banks) bits — and with one
// bank every key maps to bank 0. A non-power-of-two count panics: the
// mask would silently skip banks (banks=3 masks with 2, so every key
// lands on bank 0 or 2 and bank 1 never carries traffic). Config
// validation is the single enforcement point; this panic is the backstop
// for callers that bypass it.
func BankOf(key uint64, banks int) int {
	if banks <= 1 {
		return 0
	}
	if banks&(banks-1) != 0 {
		panic(fmt.Sprintf("bus: BankOf banks %d must be a power of two", banks))
	}
	return int(key & uint64(banks-1))
}

// Stats counts bus activity.
type Stats struct {
	Messages   uint64
	BusyCycles uint64
	// WaitCycles accumulates queueing delay (time between issue and the
	// start of the granted slot) across all messages.
	WaitCycles uint64
	// Rounds counts batched grant rounds: one arbitration event may
	// grant many queued messages. Messages/Rounds is the batching factor.
	Rounds uint64
}

// request is one queued send awaiting a grant round.
type request struct {
	deliver func()
	issued  sim.Time
}

// delivery is one granted message awaiting its slot end.
type delivery struct {
	at      sim.Time
	deliver func()
}

// Bus is a split-transaction bus. All methods must be called from engine
// event context (the simulator is single-goroutine by design).
type Bus struct {
	eng       *sim.Engine
	occupancy sim.Time // cycles one message holds the bus
	nextFree  sim.Time // first cycle the bus is free
	stats     Stats

	reqs         fifo.Queue[request]  // awaiting arbitration
	dels         fifo.Queue[delivery] // granted, awaiting delivery
	roundPending bool
	delPending   bool
	roundFn      func() // pre-bound grant round (no per-schedule closure)
	deliverFn    func() // pre-bound delivery chain step
}

// New builds a bus on the engine. occupancy is the per-message bus-hold
// time in cycles and must be positive.
func New(eng *sim.Engine, occupancy sim.Time) *Bus {
	if occupancy <= 0 {
		panic(fmt.Sprintf("bus: occupancy %d must be positive", occupancy))
	}
	b := &Bus{eng: eng, occupancy: occupancy}
	b.roundFn = b.grantRound
	b.deliverFn = b.deliverHead
	return b
}

// Reset implements Interconnect: empty queues, free wires, zero stats.
// The ring buffers behind the request and delivery queues are retained,
// so a reset bus arbitrates without re-growing them.
func (b *Bus) Reset() {
	b.nextFree = 0
	b.stats = Stats{}
	b.reqs.Clear()
	b.dels.Clear()
	b.roundPending = false
	b.delPending = false
}

// Occupancy returns the per-message hold time.
func (b *Bus) Occupancy() sim.Time { return b.occupancy }

// Banks implements Interconnect: the single bus is one bank.
func (b *Bus) Banks() int { return 1 }

// Stats returns a copy of the activity counters.
func (b *Bus) Stats() Stats { return b.stats }

// BankStats implements Interconnect: the single bus is one bank, so the
// per-bank breakdown is the aggregate.
func (b *Bus) BankStats() []Stats { return []Stats{b.stats} }

// Queued returns the number of messages awaiting arbitration or delivery.
func (b *Bus) Queued() int { return b.reqs.Len() + b.dels.Len() }

// Send transmits a message: deliver runs when the message has crossed the
// bus. The message joins the arbitration queue and is granted a slot by
// the next grant round, in FIFO order. src, dst and bank are ignored:
// every message shares the one set of wires.
func (b *Bus) Send(_, _, _ int, deliver func()) {
	b.send(deliver)
}

// send is the link-level entry point the fabrics use directly: enqueue
// and arm a grant round at the cycle the wires next free up.
func (b *Bus) send(deliver func()) {
	if deliver == nil {
		panic("bus: nil deliver callback")
	}
	b.stats.Messages++
	b.reqs.Push(request{deliver: deliver, issued: b.eng.Now()})
	if !b.roundPending {
		b.roundPending = true
		at := b.eng.Now()
		if b.nextFree > at {
			at = b.nextFree
		}
		b.eng.Schedule(at, b.roundFn)
	}
}

// grantRound is the batched arbitration: it fires when the bus frees up
// and drains the whole request queue in arrival order, assigning each
// message the next occupancy-cycle slot.
func (b *Bus) grantRound() {
	b.roundPending = false
	b.stats.Rounds++
	start := b.eng.Now()
	if b.nextFree > start {
		start = b.nextFree
	}
	for b.reqs.Len() > 0 {
		r := b.reqs.Pop()
		b.stats.WaitCycles += uint64(start - r.issued)
		b.stats.BusyCycles += uint64(b.occupancy)
		end := start + b.occupancy
		b.dels.Push(delivery{at: end, deliver: r.deliver})
		start = end
	}
	b.nextFree = start
	b.scheduleDelivery()
}

// scheduleDelivery arms the delivery chain for the head message, if idle.
// Slot ends are strictly increasing, so one in-flight event suffices.
func (b *Bus) scheduleDelivery() {
	if b.delPending || b.dels.Len() == 0 {
		return
	}
	b.delPending = true
	b.eng.Schedule(b.dels.Front().at, b.deliverFn)
}

// deliverHead completes the head message's bus crossing and re-arms the
// chain for the next one. The chain is re-armed before the callback runs,
// so a callback that sends new traffic observes a consistent queue.
func (b *Bus) deliverHead() {
	b.delPending = false
	d := b.dels.Pop()
	b.scheduleDelivery()
	d.deliver()
}

// Utilization returns busy-cycles / elapsed-cycles at the current time,
// clamped to [0, 1]. Returns 0 before any time has elapsed — a zero-cycle
// run must not leak NaN into downstream ratio columns. The clamp covers
// the mid-slot case: BusyCycles charges a granted slot in full at grant
// time, so a reading taken while the last slot is still crossing can see
// busy > elapsed.
func (b *Bus) Utilization() float64 {
	return clampUtil(float64(b.stats.BusyCycles), float64(b.eng.Now()))
}

// clampUtil is the shared utilization arithmetic: busy over capacity
// clamped to [0, 1], with zero (not NaN/Inf) for zero elapsed capacity.
func clampUtil(busy, capacity float64) float64 {
	if capacity <= 0 {
		return 0
	}
	u := busy / capacity
	if u > 1 {
		return 1
	}
	return u
}
