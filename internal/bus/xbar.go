package bus

import (
	"fmt"

	"repro/internal/sim"
)

// Xbar is a full crossbar: every src->dst port pair has its own wires, so
// the only contention is between messages on the same pair. Timing per
// pair is the single bus's slot arithmetic in per-message reservation
// form — a message occupies the earliest free occupancy-cycle slot at or
// after its issue time, WaitCycles accrues the queueing delay, and slot
// ends on one pair are strictly increasing, so same-pair messages deliver
// in FIFO order (the ordering the directory's reply/invalidation traffic
// needs). There is no batched grant round: with no cross-sender
// arbitration each send reserves directly, and Rounds counts one round
// per message.
//
// Node ids fold onto ports modulo the port count. The token vendor
// (VendorNode) sits beside port 0: all vendor traffic — requests and
// replies — reserves the (0,0) pair, keeping token round trips in one
// FIFO so TID replies deliver in acquisition order on this topology too.
type Xbar struct {
	eng       *sim.Engine
	occupancy sim.Time
	nodes     int
	nextFree  []sim.Time // nodes*nodes pair reservation ledgers
	ports     []Stats    // per source port, indexed by folded src
	queued    int
	free      []*xbarOp // recycled delivery operations
}

// xbarOp is one in-flight crossbar message awaiting its slot end.
type xbarOp struct {
	x       *Xbar
	deliver func()
	fn      func() // pre-bound completion (no per-send closure)
}

// NewXbar builds an n-port full crossbar on the engine. occupancy is the
// per-message hold time of one pair's wires.
func NewXbar(eng *sim.Engine, occupancy sim.Time, nodes int) *Xbar {
	if occupancy <= 0 {
		panic(fmt.Sprintf("bus: occupancy %d must be positive", occupancy))
	}
	if nodes < 1 {
		panic(fmt.Sprintf("bus: crossbar ports %d must be positive", nodes))
	}
	return &Xbar{
		eng:       eng,
		occupancy: occupancy,
		nodes:     nodes,
		nextFree:  make([]sim.Time, nodes*nodes),
		ports:     make([]Stats, nodes),
	}
}

// Send implements Interconnect: the message reserves the next free slot
// on the (src,dst) pair's wires and delivers when the slot ends. The bank
// is ignored — the crossbar routes by endpoint.
func (x *Xbar) Send(src, dst, _ int, deliver func()) {
	if deliver == nil {
		panic("bus: nil deliver callback")
	}
	var s, d int
	if src == VendorNode || dst == VendorNode {
		s, d = 0, 0
	} else {
		s, d = x.node(src), x.node(dst)
	}
	pair := s*x.nodes + d
	now := x.eng.Now()
	slot := now
	if x.nextFree[pair] > slot {
		slot = x.nextFree[pair]
	}
	x.nextFree[pair] = slot + x.occupancy
	ps := &x.ports[s]
	ps.Messages++
	ps.Rounds++
	ps.WaitCycles += uint64(slot - now)
	ps.BusyCycles += uint64(x.occupancy)
	op := x.getOp()
	op.deliver = deliver
	x.queued++
	x.eng.Schedule(slot+x.occupancy, op.fn)
}

// complete finishes one crossing: recycle the operation, then deliver.
func (op *xbarOp) complete() {
	op.x.queued--
	d := op.deliver
	op.deliver = nil
	op.x.free = append(op.x.free, op)
	d()
}

func (x *Xbar) getOp() *xbarOp {
	if n := len(x.free); n > 0 {
		op := x.free[n-1]
		x.free = x.free[:n-1]
		return op
	}
	op := &xbarOp{x: x}
	op.fn = op.complete
	return op
}

// node folds an endpoint id onto a port.
func (x *Xbar) node(id int) int {
	if id < 0 {
		panic(fmt.Sprintf("bus: crossbar node %d (only VendorNode may be negative)", id))
	}
	return id % x.nodes
}

// Banks implements Interconnect: the crossbar has no address interleave,
// so every interleave key maps to bank 0 and the bank argument is inert.
func (x *Xbar) Banks() int { return 1 }

// Occupancy returns the per-message hold time of one pair's wires.
func (x *Xbar) Occupancy() sim.Time { return x.occupancy }

// Ports returns the port count.
func (x *Xbar) Ports() int { return x.nodes }

// Stats returns the activity counters aggregated over source ports.
func (x *Xbar) Stats() Stats {
	var s Stats
	for i := range x.ports {
		p := &x.ports[i]
		s.Messages += p.Messages
		s.BusyCycles += p.BusyCycles
		s.WaitCycles += p.WaitCycles
		s.Rounds += p.Rounds
	}
	return s
}

// BankStats returns a copy of each source port's private counters.
func (x *Xbar) BankStats() []Stats {
	out := make([]Stats, len(x.ports))
	copy(out, x.ports)
	return out
}

// Queued returns the number of messages in flight (reserved, awaiting
// their slot end).
func (x *Xbar) Queued() int { return x.queued }

// Utilization returns busy-cycles over elapsed port-capacity cycles
// (elapsed time times port count — each port can inject one message per
// occupancy), clamped to [0, 1].
func (x *Xbar) Utilization() float64 {
	return clampUtil(float64(x.Stats().BusyCycles),
		float64(x.eng.Now())*float64(x.nodes))
}

// Reset implements Interconnect: all pair ledgers free, counters zeroed,
// storage retained. In-flight operations are abandoned with the engine's
// events.
func (x *Xbar) Reset() {
	for i := range x.nextFree {
		x.nextFree[i] = 0
	}
	for i := range x.ports {
		x.ports[i] = Stats{}
	}
	x.queued = 0
}
