package bus

import (
	"fmt"
	"math/bits"

	"repro/internal/fifo"
	"repro/internal/sim"
)

// BankedBus is an address-interleaved N-banked split-transaction bus: N
// independent sets of wires, each with its own batched FIFO arbitration,
// shared-nothing between banks except the delivery pump that pins a
// deterministic cross-bank order on same-cycle completions.
//
// Timing model per bank is exactly the single Bus: a message enqueues on
// its bank's arbitration FIFO, a per-bank grant round drains the queue in
// arrival order when the bank's wires free up, and granted messages
// occupy consecutive occupancy-cycle slots. Messages on different banks
// cross in parallel — the contention relief that opens the 64/128-
// processor scale axis, where a single bus saturates.
//
// Determinism contract (see docs/ENGINE.md): within a bank, strict FIFO;
// across banks, deliveries due in the same cycle are served by one pump
// firing that visits banks round-robin, starting from a bank index that
// rotates by one every firing — so no bank holds a permanent same-cycle
// priority and the order is a pure function of simulation history. With
// one bank the pump degenerates to the single Bus's chained delivery
// event: BankedBus(1) schedules the same events at the same times in the
// same order as Bus, which the differential goldens pin.
type BankedBus struct {
	eng       *sim.Engine
	occupancy sim.Time
	banks     []bank

	// Delivery pump: one in-flight event serving the earliest due slot end
	// across all banks.
	delPending bool
	pumpAt     sim.Time
	pumpRef    sim.EventRef
	pumpFn     func()
	rr         int // rotating start bank for same-cycle service
	dueScratch []delivery
}

// bank is one set of wires: private arbitration queue, slot ledger and
// delivery queue.
type bank struct {
	nextFree     sim.Time
	reqs         fifo.Queue[request]
	dels         fifo.Queue[delivery]
	roundPending bool
	roundFn      func()
	stats        Stats
}

// NewBanked builds an address-interleaved banked bus. occupancy is the
// per-message hold time of one bank's wires; banks must be a positive
// power of two (the interleave function BankOf masks low bits).
func NewBanked(eng *sim.Engine, occupancy sim.Time, banks int) *BankedBus {
	if occupancy <= 0 {
		panic(fmt.Sprintf("bus: occupancy %d must be positive", occupancy))
	}
	if banks <= 0 || bits.OnesCount(uint(banks)) != 1 {
		panic(fmt.Sprintf("bus: banks %d must be a positive power of two", banks))
	}
	b := &BankedBus{eng: eng, occupancy: occupancy, banks: make([]bank, banks)}
	for i := range b.banks {
		bk := &b.banks[i]
		bk.roundFn = func() { b.grantRound(bk) }
	}
	b.pumpFn = b.pump
	return b
}

// NewInterconnect selects the interconnect model for a machine of nodes
// processors. An empty or "bus" topology selects by banks: banks <= 0 is
// the paper's single split-transaction bus; banks >= 1 is the banked
// model with that many banks (Banks=1 is the banked model degenerated to
// one bank — cycle-identical to the single bus, and kept distinct so the
// differential goldens can compare the two implementations). The
// point-to-point topologies — "xbar", "mesh", "ring", with optional
// explicit sizes (see ParseTopology) — ignore banks; validation rejects
// the combination upstream. An unparseable topology panics: config
// validation is the enforcement point and this is the backstop.
func NewInterconnect(eng *sim.Engine, occupancy sim.Time, banks, nodes int, topology string) Interconnect {
	topo, err := ParseTopology(topology, nodes)
	if err != nil {
		panic(err.Error())
	}
	switch topo.Kind {
	case TopoXbar:
		return NewXbar(eng, occupancy, topo.Nodes)
	case TopoMesh, TopoRing:
		return NewFabric(eng, occupancy, topo)
	}
	if banks <= 0 {
		return New(eng, occupancy)
	}
	return NewBanked(eng, occupancy, banks)
}

// Reset implements Interconnect: every bank's queues empty, wires free,
// stats zeroed, and the delivery pump disarmed with its round-robin
// cursor rewound. Ring storage and the pre-bound round callbacks are
// retained. The owning engine must be reset alongside.
func (b *BankedBus) Reset() {
	for i := range b.banks {
		bk := &b.banks[i]
		bk.nextFree = 0
		bk.stats = Stats{}
		bk.reqs.Clear()
		bk.dels.Clear()
		bk.roundPending = false
	}
	b.delPending = false
	b.pumpAt = 0
	b.pumpRef = sim.EventRef{}
	b.rr = 0
	b.dueScratch = b.dueScratch[:0]
}

// Occupancy returns the per-message hold time of one bank.
func (b *BankedBus) Occupancy() sim.Time { return b.occupancy }

// Banks returns the bank count.
func (b *BankedBus) Banks() int { return len(b.banks) }

// Stats returns the activity counters aggregated over banks.
func (b *BankedBus) Stats() Stats {
	var s Stats
	for i := range b.banks {
		bs := &b.banks[i].stats
		s.Messages += bs.Messages
		s.BusyCycles += bs.BusyCycles
		s.WaitCycles += bs.WaitCycles
		s.Rounds += bs.Rounds
	}
	return s
}

// BankStats returns a copy of each bank's private counters.
func (b *BankedBus) BankStats() []Stats {
	out := make([]Stats, len(b.banks))
	for i := range b.banks {
		out[i] = b.banks[i].stats
	}
	return out
}

// Queued returns messages awaiting arbitration or delivery, all banks.
func (b *BankedBus) Queued() int {
	n := 0
	for i := range b.banks {
		n += b.banks[i].reqs.Len() + b.banks[i].dels.Len()
	}
	return n
}

// Utilization returns busy-cycles over elapsed wire-capacity cycles
// (elapsed time times bank count), clamped to [0, 1]: 1.0 means every
// bank was busy every cycle. Zero elapsed time reads as 0, never NaN.
func (b *BankedBus) Utilization() float64 {
	return clampUtil(float64(b.Stats().BusyCycles),
		float64(b.eng.Now())*float64(len(b.banks)))
}

// Send implements Interconnect: the message joins bank's arbitration
// queue and is granted a slot on that bank's wires by its next grant
// round, in FIFO order. src and dst are ignored: banks are selected by
// address interleave, not by endpoint.
func (b *BankedBus) Send(_, _, bankIdx int, deliver func()) {
	if deliver == nil {
		panic("bus: nil deliver callback")
	}
	if bankIdx < 0 || bankIdx >= len(b.banks) {
		panic(fmt.Sprintf("bus: bank %d out of range [0,%d)", bankIdx, len(b.banks)))
	}
	bk := &b.banks[bankIdx]
	bk.stats.Messages++
	bk.reqs.Push(request{deliver: deliver, issued: b.eng.Now()})
	if !bk.roundPending {
		bk.roundPending = true
		at := b.eng.Now()
		if bk.nextFree > at {
			at = bk.nextFree
		}
		b.eng.Schedule(at, bk.roundFn)
	}
}

// grantRound is one bank's batched arbitration: it fires when the bank's
// wires free up and drains the whole request queue in arrival order,
// assigning each message the next occupancy-cycle slot on this bank.
func (b *BankedBus) grantRound(bk *bank) {
	bk.roundPending = false
	bk.stats.Rounds++
	start := b.eng.Now()
	if bk.nextFree > start {
		start = bk.nextFree
	}
	for bk.reqs.Len() > 0 {
		r := bk.reqs.Pop()
		bk.stats.WaitCycles += uint64(start - r.issued)
		bk.stats.BusyCycles += uint64(b.occupancy)
		end := start + b.occupancy
		bk.dels.Push(delivery{at: end, deliver: r.deliver})
		start = end
	}
	bk.nextFree = start
	b.schedulePump()
}

// schedulePump (re-)arms the delivery pump for the earliest due slot end
// across all banks. Within a bank slot ends are strictly increasing, but a
// grant round on an idle bank can create a delivery earlier than the
// pump's current target, so an armed pump is pulled forward when needed.
func (b *BankedBus) schedulePump() {
	earliest := sim.MaxTime
	found := false
	for i := range b.banks {
		if b.banks[i].dels.Len() == 0 {
			continue
		}
		if at := b.banks[i].dels.Front().at; !found || at < earliest {
			earliest, found = at, true
		}
	}
	if !found {
		return
	}
	if b.delPending {
		if earliest >= b.pumpAt {
			return
		}
		b.pumpRef.Cancel()
	}
	b.delPending = true
	b.pumpAt = earliest
	b.pumpRef = b.eng.Schedule(earliest, b.pumpFn)
}

// pump completes every bus crossing due this cycle, visiting banks in
// round-robin order starting from a bank that rotates by one per firing,
// then re-arms for the next due slot end. The pump re-arms before any
// callback runs (the single-bus convention), so a callback that sends new
// traffic observes consistent queues; new sends can never create a
// same-cycle delivery, because a slot granted now ends at least one
// occupancy later.
func (b *BankedBus) pump() {
	b.delPending = false
	now := b.eng.Now()
	due := b.dueScratch[:0]
	n := len(b.banks)
	start := b.rr
	b.rr = (b.rr + 1) & (n - 1)
	for i := 0; i < n; i++ {
		bk := &b.banks[(start+i)&(n-1)]
		for bk.dels.Len() > 0 && bk.dels.Front().at == now {
			due = append(due, bk.dels.Pop())
		}
	}
	b.schedulePump()
	for i := range due {
		due[i].deliver()
		due[i].deliver = nil // release the closure for GC
	}
	b.dueScratch = due[:0]
}
