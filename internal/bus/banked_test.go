package bus

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func TestBankedMessagesCrossInParallel(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBanked(eng, 4, 4)
	times := map[int]sim.Time{}
	// One message per bank, all issued in the same cycle: no queueing
	// anywhere, every crossing completes at t=4.
	for bank := 0; bank < 4; bank++ {
		bank := bank
		b.Send(0, 0, bank, func() { times[bank] = eng.Now() })
	}
	eng.Run()
	for bank, at := range times {
		if at != 4 {
			t.Errorf("bank %d delivered at %d, want 4 (banks must not serialize)", bank, at)
		}
	}
	if st := b.Stats(); st.Messages != 4 || st.WaitCycles != 0 {
		t.Errorf("stats %+v, want 4 messages with zero wait", st)
	}
}

func TestBankedPerBankFIFOAndSerialization(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBanked(eng, 10, 2)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		b.Send(0, 0, 0, func() { order = append(order, i) })
	}
	eng.Run()
	if fmt.Sprint(order) != "[0 1 2]" {
		t.Fatalf("bank 0 delivery order %v, want FIFO", order)
	}
	// Three messages on one bank serialize exactly like the single bus:
	// queueing delays 0 + 10 + 20.
	if st := b.Stats(); st.WaitCycles != 30 || st.BusyCycles != 30 {
		t.Fatalf("stats %+v, want 30 wait / 30 busy", st)
	}
	// The other bank stayed idle.
	if bs := b.BankStats(); bs[1].Messages != 0 {
		t.Fatalf("idle bank counted %d messages", bs[1].Messages)
	}
}

func TestBankedSameCycleCrossBankOrderRotates(t *testing.T) {
	// Two rounds of same-cycle deliveries on banks 0 and 1. The pump's
	// rotating round-robin must serve round one starting at bank 0 and
	// round two starting at bank 1 — cross-bank order is deterministic
	// but no bank owns a permanent priority.
	eng := sim.NewEngine()
	b := NewBanked(eng, 4, 2)
	var order []string
	send := func(tag string, bank int) {
		b.Send(0, 0, bank, func() { order = append(order, fmt.Sprintf("%s@%d", tag, eng.Now())) })
	}
	send("a0", 0)
	send("a1", 1)
	eng.Schedule(100, func() {
		send("b0", 0)
		send("b1", 1)
	})
	eng.Run()
	want := "[a0@4 a1@4 b1@104 b0@104]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("cross-bank service order %v, want %s", order, want)
	}
}

func TestBankedPumpPullsForwardForEarlierBank(t *testing.T) {
	// Arm the pump far in the future via a long backlog on bank 0, then
	// send on idle bank 1: its delivery is due earlier than the armed
	// pump and must not wait for it.
	eng := sim.NewEngine()
	b := NewBanked(eng, 10, 2)
	for i := 0; i < 4; i++ {
		b.Send(0, 0, 0, func() {})
	}
	var second sim.Time
	eng.Schedule(1, func() {
		b.Send(0, 0, 1, func() { second = eng.Now() })
	})
	eng.Run()
	if second != 11 {
		t.Fatalf("idle-bank delivery at %d, want 11 (pump must be pulled forward)", second)
	}
}

func TestBankedBankOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range bank did not panic")
		}
	}()
	NewBanked(sim.NewEngine(), 2, 4).Send(0, 0, 4, func() {})
}

func TestNewBankedRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("banks=3 did not panic")
		}
	}()
	NewBanked(sim.NewEngine(), 2, 3)
}

func TestNewInterconnectSelectsModel(t *testing.T) {
	eng := sim.NewEngine()
	if _, ok := NewInterconnect(eng, 2, 0, 8, "").(*Bus); !ok {
		t.Error("banks=0 did not select the single bus")
	}
	if _, ok := NewInterconnect(eng, 2, 0, 8, "bus").(*Bus); !ok {
		t.Error(`topology "bus" did not select the single bus`)
	}
	ic := NewInterconnect(eng, 2, 4, 8, "")
	if _, ok := ic.(*BankedBus); !ok || ic.Banks() != 4 {
		t.Errorf("banks=4 selected %T with %d banks", ic, ic.Banks())
	}
	if x, ok := NewInterconnect(eng, 2, 0, 8, "xbar").(*Xbar); !ok || x.Ports() != 8 {
		t.Errorf(`topology "xbar" selected %T`, x)
	}
	if f, ok := NewInterconnect(eng, 2, 0, 8, "mesh").(*Fabric); !ok ||
		f.Topology().Rows != 2 || f.Topology().Cols != 4 {
		t.Errorf(`topology "mesh" at 8 processors selected %T %+v, want a 2x4 Fabric`, f, f.Topology())
	}
	if f, ok := NewInterconnect(eng, 2, 0, 8, "ring:4").(*Fabric); !ok || f.Topology().Nodes != 4 {
		t.Errorf(`topology "ring:4" selected %T`, f)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown topology did not panic")
			}
		}()
		NewInterconnect(eng, 2, 0, 8, "torus")
	}()
}

func TestBankOf(t *testing.T) {
	for _, tc := range []struct{ key, banks, want int }{
		{5, 1, 0}, {5, 0, 0}, {5, -3, 0}, {5, 4, 1}, {6, 4, 2}, {8, 4, 0}, {13, 8, 5},
	} {
		if got := BankOf(uint64(tc.key), tc.banks); got != tc.want {
			t.Errorf("BankOf(%d, %d) = %d, want %d", tc.key, tc.banks, got, tc.want)
		}
	}
}

// TestBankOfRejectsNonPowerOfTwo pins the backstop for the interleave
// invariant: the &(banks-1) mask is only a modulus for powers of two, and
// a non-power-of-two count would silently skip banks (banks=3 masks with
// 2: bank 1 never carries traffic). Config validation rejects such
// machines; BankOf panics so a caller bypassing validation cannot run a
// silently lopsided interconnect.
func TestBankOfRejectsNonPowerOfTwo(t *testing.T) {
	for _, banks := range []int{3, 5, 6, 7, 12, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BankOf with banks=%d did not panic", banks)
				}
			}()
			BankOf(1, banks)
		}()
	}
}

// TestUtilizationEdgeCases is the regression for the CSV bus_util NaN
// leak: utilization read before any time has elapsed must be 0 (not 0/0),
// and a reading taken while a granted slot is still crossing must clamp
// to 1.0 (BusyCycles charges slots in full at grant time, so busy can
// exceed elapsed mid-slot).
func TestUtilizationEdgeCases(t *testing.T) {
	eng := sim.NewEngine()
	ics := map[string]Interconnect{
		"bus":    New(eng, 4),
		"banked": NewBanked(eng, 4, 2),
		"xbar":   NewXbar(eng, 4, 2),
		"mesh":   NewFabric(eng, 4, Topology{Kind: TopoMesh, Nodes: 1, Rows: 1, Cols: 1}),
	}
	for name, ic := range ics {
		if got := ic.Utilization(); got != 0 {
			t.Errorf("%s: utilization %f at t=0, want 0 (NaN/Inf would leak into the CSV)", name, got)
		}
	}
	// A full grant round charges 2*occupancy busy cycles at t=0; stepping
	// the engine to t=1 (mid-slot) makes busy > elapsed.
	eng2 := sim.NewEngine()
	b := New(eng2, 4)
	b.Send(0, 0, 0, func() {})
	b.Send(0, 0, 0, func() {})
	eng2.Schedule(1, func() {
		if got := b.Utilization(); got != 1 {
			t.Errorf("mid-slot utilization %f, want clamped to 1", got)
		}
	})
	eng2.Run()
}

// TestBankedOneBankMatchesSingleBus is the bus-level differential: the
// banked model with one bank must deliver a randomized send schedule at
// exactly the cycles the single Bus does, message for message. The
// system-level golden (root interconnect_test.go) pins the same property
// through the whole machine; this one localizes a divergence to the bus.
func TestBankedOneBankMatchesSingleBus(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		single := sim.NewEngine()
		banked := sim.NewEngine()
		var a Interconnect = New(single, 3)
		var b Interconnect = NewBanked(banked, 3, 1)
		var got, want []string
		schedule := func(eng *sim.Engine, ic Interconnect, out *[]string) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				i := i
				at := sim.Time(rng.Intn(300))
				eng.Schedule(at, func() {
					ic.Send(0, 0, 0, func() {
						*out = append(*out, fmt.Sprintf("msg%d@%d", i, eng.Now()))
					})
				})
			}
		}
		schedule(single, a, &want)
		schedule(banked, b, &got)
		single.Run()
		banked.Run()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("seed %d: banked(1) diverged from single bus:\nsingle: %v\nbanked: %v", seed, want, got)
		}
		if a.Stats() != b.Stats() {
			t.Fatalf("seed %d: stats diverged: single %+v banked %+v", seed, a.Stats(), b.Stats())
		}
	}
}

// FuzzBankedSlots drives the banked bus with an arbitrary send schedule
// and checks the arbitration invariants: no bank ever grants two senders
// overlapping occupancy slots (each bank's wires carry one message at a
// time), per-bank delivery order is FIFO, and every message is delivered
// exactly once. The fuzz input is a byte stream of (bank, delay) pairs.
func FuzzBankedSlots(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 3, 3, 3, 0, 1}, uint8(4))
	f.Add([]byte{0, 0, 0, 0, 0, 0}, uint8(1))
	f.Add([]byte{1, 200, 2, 200, 1, 0, 7, 9}, uint8(8))
	f.Add([]byte{0, 0, 1, 1}, uint8(3)) // non-power-of-two: construction must panic
	f.Add([]byte{5, 5}, uint8(6))
	f.Fuzz(func(t *testing.T, data []byte, banksRaw uint8) {
		banks := int(banksRaw%8) + 1 // 1..8 banks, power of two or not
		const occupancy = sim.Time(5)
		eng := sim.NewEngine()
		if banks&(banks-1) != 0 {
			// The mask interleave is wrong off powers of two; the model
			// must refuse to build rather than run lopsided, and BankOf
			// must refuse to map.
			defer func() {
				if recover() == nil {
					t.Fatalf("NewBanked(banks=%d) did not panic", banks)
				}
				func() {
					defer func() {
						if recover() == nil {
							t.Fatalf("BankOf(_, %d) did not panic", banks)
						}
					}()
					BankOf(uint64(len(data)), banks)
				}()
			}()
			NewBanked(eng, occupancy, banks)
			return
		}
		b := NewBanked(eng, occupancy, banks)
		type crossing struct {
			bank int
			seq  int
			end  sim.Time
		}
		var crossings []crossing
		sent := 0
		at := sim.Time(0)
		for i := 0; i+1 < len(data); i += 2 {
			bank := int(data[i]) % banks
			at += sim.Time(data[i+1])
			seq := sent
			sent++
			eng.Schedule(at, func() {
				b.Send(0, 0, bank, func() {
					crossings = append(crossings, crossing{bank: bank, seq: seq, end: eng.Now()})
				})
			})
		}
		eng.Run()
		if len(crossings) != sent {
			t.Fatalf("%d of %d messages delivered", len(crossings), sent)
		}
		// Per bank: slot ends strictly increase by at least one occupancy
		// (no two senders share a slot) and per-bank arrival order holds.
		lastEnd := map[int]sim.Time{}
		lastSeq := map[int]int{}
		for _, c := range crossings {
			if prev, ok := lastEnd[c.bank]; ok {
				if c.end < prev+occupancy {
					t.Fatalf("bank %d granted two senders overlapping slots: ends %d then %d (occupancy %d)",
						c.bank, prev, c.end, occupancy)
				}
				if got := lastSeq[c.bank]; c.seq < got {
					t.Fatalf("bank %d reordered senders: seq %d after %d", c.bank, c.seq, got)
				}
			}
			lastEnd[c.bank] = c.end
			lastSeq[c.bank] = c.seq
		}
		if st := b.Stats(); st.Messages != uint64(sent) || st.BusyCycles != uint64(sent)*uint64(occupancy) {
			t.Fatalf("stats %+v inconsistent with %d messages", st, sent)
		}
	})
}
