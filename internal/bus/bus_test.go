package bus

import (
	"testing"

	"repro/internal/sim"
)

func TestSingleMessageLatency(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 4)
	var delivered sim.Time = -1
	b.Send(func() { delivered = eng.Now() })
	eng.Run()
	if delivered != 4 {
		t.Fatalf("delivered at %d, want 4", delivered)
	}
}

func TestBackToBackMessagesSerialize(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 4)
	var times []sim.Time
	for i := 0; i < 3; i++ {
		b.Send(func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	want := []sim.Time{4, 8, 12}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("deliveries %v, want %v", times, want)
		}
	}
}

func TestBusFreesUpOverTime(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 4)
	var second sim.Time
	b.Send(func() {})
	// Issue the second message long after the first finished: no queueing.
	eng.Schedule(100, func() {
		b.Send(func() { second = eng.Now() })
	})
	eng.Run()
	if second != 104 {
		t.Fatalf("second delivered at %d, want 104", second)
	}
	if b.Stats().WaitCycles != 0 {
		t.Fatalf("unexpected wait cycles %d", b.Stats().WaitCycles)
	}
}

func TestWaitCyclesAccumulateUnderContention(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 10)
	for i := 0; i < 4; i++ {
		b.Send(func() {})
	}
	eng.Run()
	st := b.Stats()
	if st.Messages != 4 {
		t.Fatalf("messages %d", st.Messages)
	}
	// Queueing delays: 0 + 10 + 20 + 30.
	if st.WaitCycles != 60 {
		t.Fatalf("wait cycles %d, want 60", st.WaitCycles)
	}
	if st.BusyCycles != 40 {
		t.Fatalf("busy cycles %d, want 40", st.BusyCycles)
	}
}

func TestSendReturnsDeliveryTime(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 5)
	if got := b.Send(func() {}); got != 5 {
		t.Fatalf("first Send returned %d, want 5", got)
	}
	if got := b.Send(func() {}); got != 10 {
		t.Fatalf("second Send returned %d, want 10", got)
	}
}

func TestUtilization(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 4)
	if b.Utilization() != 0 {
		t.Fatal("utilization non-zero at t=0")
	}
	b.Send(func() {})
	eng.Schedule(8, func() {})
	eng.Run()
	// 4 busy cycles over 8 elapsed.
	if got := b.Utilization(); got != 0.5 {
		t.Fatalf("utilization %f, want 0.5", got)
	}
}

func TestZeroOccupancyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with occupancy 0 did not panic")
		}
	}()
	New(sim.NewEngine(), 0)
}

func TestInterleavedSendsKeepFIFO(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 3)
	var order []int
	// Sender A at t=0, sender B at t=1: A's message must deliver first.
	b.Send(func() { order = append(order, 0) })
	eng.Schedule(1, func() {
		b.Send(func() { order = append(order, 1) })
	})
	eng.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order %v", order)
	}
}
