package bus

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func TestSingleMessageLatency(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 4)
	var delivered sim.Time = -1
	b.Send(0, 0, 0, func() { delivered = eng.Now() })
	eng.Run()
	if delivered != 4 {
		t.Fatalf("delivered at %d, want 4", delivered)
	}
}

func TestBackToBackMessagesSerialize(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 4)
	var times []sim.Time
	for i := 0; i < 3; i++ {
		b.Send(0, 0, 0, func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	want := []sim.Time{4, 8, 12}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("deliveries %v, want %v", times, want)
		}
	}
}

func TestBusFreesUpOverTime(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 4)
	var second sim.Time
	b.Send(0, 0, 0, func() {})
	// Issue the second message long after the first finished: no queueing.
	eng.Schedule(100, func() {
		b.Send(0, 0, 0, func() { second = eng.Now() })
	})
	eng.Run()
	if second != 104 {
		t.Fatalf("second delivered at %d, want 104", second)
	}
	if b.Stats().WaitCycles != 0 {
		t.Fatalf("unexpected wait cycles %d", b.Stats().WaitCycles)
	}
}

func TestWaitCyclesAccumulateUnderContention(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 10)
	for i := 0; i < 4; i++ {
		b.Send(0, 0, 0, func() {})
	}
	eng.Run()
	st := b.Stats()
	if st.Messages != 4 {
		t.Fatalf("messages %d", st.Messages)
	}
	// Queueing delays: 0 + 10 + 20 + 30.
	if st.WaitCycles != 60 {
		t.Fatalf("wait cycles %d, want 60", st.WaitCycles)
	}
	if st.BusyCycles != 40 {
		t.Fatalf("busy cycles %d, want 40", st.BusyCycles)
	}
}

func TestGrantRoundsBatchQueuedSenders(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 5)
	delivered := 0
	// Eight messages issued in one cycle: one grant round must drain all
	// of them (batched arbitration), with consecutive slots.
	for i := 0; i < 8; i++ {
		b.Send(0, 0, 0, func() { delivered++ })
	}
	eng.Run()
	if delivered != 8 {
		t.Fatalf("delivered %d, want 8", delivered)
	}
	st := b.Stats()
	if st.Rounds != 1 {
		t.Fatalf("grant rounds %d, want 1 (arbitration not batched)", st.Rounds)
	}
	if eng.Now() != 8*5 {
		t.Fatalf("last delivery at %d, want 40", eng.Now())
	}
}

func TestQueuedCountsBothStages(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 4)
	b.Send(0, 0, 0, func() {})
	b.Send(0, 0, 0, func() {})
	if got := b.Queued(); got != 2 {
		t.Fatalf("queued %d before arbitration, want 2", got)
	}
	eng.Run()
	if got := b.Queued(); got != 0 {
		t.Fatalf("queued %d after drain, want 0", got)
	}
}

func TestSteadyStateSendZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 2)
	deliver := func() {}
	work := func() {
		for i := 0; i < 32; i++ {
			b.Send(0, 0, 0, deliver)
		}
		eng.Run()
	}
	for i := 0; i < 256; i++ {
		work() // warm queues, engine free list, and every ring bucket
	}
	if avg := testing.AllocsPerRun(50, work); avg != 0 {
		t.Fatalf("steady-state bus traffic allocates %.1f times per burst, want 0", avg)
	}
}

func TestUtilization(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 4)
	if b.Utilization() != 0 {
		t.Fatal("utilization non-zero at t=0")
	}
	b.Send(0, 0, 0, func() {})
	eng.Schedule(8, func() {})
	eng.Run()
	// 4 busy cycles over 8 elapsed.
	if got := b.Utilization(); got != 0.5 {
		t.Fatalf("utilization %f, want 0.5", got)
	}
}

func TestZeroOccupancyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with occupancy 0 did not panic")
		}
	}()
	New(sim.NewEngine(), 0)
}

func TestInterleavedSendsKeepFIFO(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 3)
	var order []int
	// Sender A at t=0, sender B at t=1: A's message must deliver first.
	b.Send(0, 0, 0, func() { order = append(order, 0) })
	eng.Schedule(1, func() {
		b.Send(0, 0, 0, func() { order = append(order, 1) })
	})
	eng.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order %v", order)
	}
}

// BenchmarkBusBatched measures arbitration throughput under heavy fan-in:
// many senders pile onto the queue each round, the shape a wide machine's
// commit invalidation storms produce. messages/round reports the batching
// factor actually achieved.
func BenchmarkBusBatched(b *testing.B) {
	for _, senders := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("senders%d", senders), func(b *testing.B) {
			b.ReportAllocs()
			eng := sim.NewEngine()
			bus := New(eng, 2)
			var deliver func()
			left := 0
			deliver = func() {
				// Each delivery fans a fresh message back in while the
				// burst lasts, sustaining a queue.
				if left > 0 {
					left--
					bus.Send(0, 0, 0, deliver)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				left = senders * 4
				for s := 0; s < senders; s++ {
					bus.Send(0, 0, 0, deliver)
				}
				eng.Run()
			}
			st := bus.Stats()
			b.ReportMetric(float64(st.Messages)/float64(st.Rounds), "msgs/round")
			b.ReportMetric(float64(st.Messages)/b.Elapsed().Seconds(), "msgs/s")
		})
	}
}
