package bus

import (
	"fmt"

	"repro/internal/sim"
)

// Fabric is a point-to-point interconnect — a 2D mesh or a bidirectional
// ring — built from Bus links: every link (a tile's local port, or a
// directional channel between adjacent tiles) is a full split-transaction
// Bus with its own batched FIFO arbitration, so per-link timing is
// exactly the single bus the goldens pin. A message occupies each link on
// its route for the occupancy, hop by hop: hop k's delivery enqueues hop
// k+1, so per-hop queueing delay accrues into WaitCycles the same way bus
// arbitration does.
//
// Routing is deterministic: the mesh routes XY (all column hops, then all
// row hops — dimension-order routing is deadlock-free and makes the hop
// count the Manhattan distance), the ring routes the shorter arc with
// ties broken clockwise. Every route ends with the destination tile's
// local port (the ejection hop), so all traffic converging on a tile
// serializes in one FIFO — which also means two messages between the same
// endpoints can never reorder: same endpoints, same route, FIFO per link.
//
// Node ids fold onto tiles modulo the tile count (processor p is node p;
// directory j is node j mod processors, placed by the caller). The token
// vendor (VendorNode) sits beside tile 0: vendor traffic crosses exactly
// tile 0's local port, on any geometry, keeping all token round trips in
// one FIFO — the acquisition-order delivery the commit queue relies on.
//
// The degenerate single-tile fabric ("mesh:1x1", "ring:1") has exactly
// one link — local port 0 — and every message (local or vendor) crosses
// just it, so it is the single Bus by construction; the topology golden
// pins the byte-identity over the whole done-set.
type Fabric struct {
	eng       *sim.Engine
	topo      Topology
	occupancy sim.Time
	// links[0:n] are the tiles' local (ejection) ports; directional
	// links follow (see eastLink/westLink/southLink/northLink for the
	// mesh layout, cwLink/ccwLink for the ring).
	links []*Bus
	free  []*hopOp // recycled multi-hop operations
}

// hopOp carries one multi-hop message across its route: a pooled
// operation whose pre-bound step callback is the delivery function of
// each intermediate hop.
type hopOp struct {
	f       *Fabric
	path    []int // link indices, reused storage
	idx     int
	deliver func()
	fn      func() // pre-bound step (no per-hop closure)
}

// NewFabric builds a mesh or ring fabric on the engine. occupancy is the
// per-link hold time of one message; topo must be a parsed mesh or ring
// topology.
func NewFabric(eng *sim.Engine, occupancy sim.Time, topo Topology) *Fabric {
	var nlinks int
	switch topo.Kind {
	case TopoMesh:
		// Local ports, then east/west channels per row, then
		// south/north channels per column.
		nlinks = topo.Nodes + 2*topo.Rows*(topo.Cols-1) + 2*topo.Cols*(topo.Rows-1)
	case TopoRing:
		// Local ports, then clockwise and counter-clockwise channels.
		nlinks = topo.Nodes
		if topo.Nodes > 1 {
			nlinks = 3 * topo.Nodes
		}
	default:
		panic(fmt.Sprintf("bus: fabric topology %q (want mesh or ring)", topo.Kind))
	}
	f := &Fabric{eng: eng, topo: topo, occupancy: occupancy}
	f.links = make([]*Bus, nlinks)
	for i := range f.links {
		f.links[i] = New(eng, occupancy)
	}
	return f
}

// Mesh directional-link indexing: each movement between adjacent tiles
// has its own channel, compactly numbered after the local ports.
func (f *Fabric) eastLink(r, c int) int { // (r,c) -> (r,c+1)
	return f.topo.Nodes + r*(f.topo.Cols-1) + c
}
func (f *Fabric) westLink(r, c int) int { // (r,c) -> (r,c-1)
	return f.topo.Nodes + f.topo.Rows*(f.topo.Cols-1) + r*(f.topo.Cols-1) + (c - 1)
}
func (f *Fabric) southLink(r, c int) int { // (r,c) -> (r+1,c)
	return f.topo.Nodes + 2*f.topo.Rows*(f.topo.Cols-1) + c*(f.topo.Rows-1) + r
}
func (f *Fabric) northLink(r, c int) int { // (r,c) -> (r-1,c)
	return f.topo.Nodes + 2*f.topo.Rows*(f.topo.Cols-1) + f.topo.Cols*(f.topo.Rows-1) +
		c*(f.topo.Rows-1) + (r - 1)
}

// Ring directional-link indexing.
func (f *Fabric) cwLink(i int) int  { return f.topo.Nodes + i }   // i -> i+1
func (f *Fabric) ccwLink(i int) int { return 2*f.topo.Nodes + i } // i -> i-1

// linkEnds decodes a link index back to its (from, to) tiles; a local
// port decodes to (tile, tile). The router tests use it as an
// independent check that routes follow real adjacencies.
func (f *Fabric) linkEnds(idx int) (from, to int) {
	n := f.topo.Nodes
	if idx < n {
		return idx, idx
	}
	if f.topo.Kind == TopoRing {
		if idx < 2*n {
			i := idx - n
			return i, (i + 1) % n
		}
		i := idx - 2*n
		return i, (i - 1 + n) % n
	}
	rows, cols := f.topo.Rows, f.topo.Cols
	idx -= n
	if idx < rows*(cols-1) { // east
		r, c := idx/(cols-1), idx%(cols-1)
		return r*cols + c, r*cols + c + 1
	}
	idx -= rows * (cols - 1)
	if idx < rows*(cols-1) { // west
		r, c := idx/(cols-1), idx%(cols-1)
		return r*cols + c + 1, r*cols + c
	}
	idx -= rows * (cols - 1)
	if idx < cols*(rows-1) { // south
		c, r := idx/(rows-1), idx%(rows-1)
		return r*cols + c, (r+1)*cols + c
	}
	idx -= cols * (rows - 1)
	c, r := idx/(rows-1), idx%(rows-1) // north
	return (r+1)*cols + c, r*cols + c
}

// route appends the directional links of the deterministic route from
// tile s to tile d (s != d) onto path: XY dimension-order on the mesh
// (hop count is the Manhattan distance), shorter arc on the ring (ties
// clockwise). The ejection hop is appended by the caller.
func (f *Fabric) route(s, d int, path []int) []int {
	if f.topo.Kind == TopoRing {
		n := f.topo.Nodes
		cw := (d - s + n) % n
		ccw := (s - d + n) % n
		if cw <= ccw {
			for i := s; i != d; i = (i + 1) % n {
				path = append(path, f.cwLink(i))
			}
		} else {
			for i := s; i != d; i = (i - 1 + n) % n {
				path = append(path, f.ccwLink(i))
			}
		}
		return path
	}
	cols := f.topo.Cols
	r, c := s/cols, s%cols
	dr, dc := d/cols, d%cols
	for c < dc {
		path = append(path, f.eastLink(r, c))
		c++
	}
	for c > dc {
		path = append(path, f.westLink(r, c))
		c--
	}
	for r < dr {
		path = append(path, f.southLink(r, c))
		r++
	}
	for r > dr {
		path = append(path, f.northLink(r, c))
		r--
	}
	return path
}

// node folds an endpoint id onto a tile.
func (f *Fabric) node(id int) int {
	if id < 0 {
		panic(fmt.Sprintf("bus: fabric node %d (only VendorNode may be negative)", id))
	}
	return id % f.topo.Nodes
}

// Send implements Interconnect: the message crosses every link of the
// deterministic src->dst route, hop by hop, then delivers. The bank is
// ignored — fabrics route by endpoint. Vendor traffic (either end is
// VendorNode) crosses exactly tile 0's local port; same-tile traffic
// crosses just the tile's local port.
func (f *Fabric) Send(src, dst, _ int, deliver func()) {
	if deliver == nil {
		panic("bus: nil deliver callback")
	}
	if src == VendorNode || dst == VendorNode {
		f.links[0].send(deliver)
		return
	}
	s, d := f.node(src), f.node(dst)
	if s == d {
		f.links[d].send(deliver)
		return
	}
	op := f.getHop()
	op.path = f.route(s, d, op.path[:0])
	op.path = append(op.path, d) // ejection: dst's local port
	op.idx = 0
	op.deliver = deliver
	f.links[op.path[0]].send(op.fn)
}

// step advances a multi-hop message: each hop's delivery enqueues the
// next link, and the final (ejection) hop runs the caller's deliver and
// recycles the operation.
func (op *hopOp) step() {
	op.idx++
	if op.idx < len(op.path) {
		op.f.links[op.path[op.idx]].send(op.fn)
		return
	}
	d := op.deliver
	op.deliver = nil
	op.f.free = append(op.f.free, op)
	d()
}

func (f *Fabric) getHop() *hopOp {
	if n := len(f.free); n > 0 {
		op := f.free[n-1]
		f.free = f.free[:n-1]
		return op
	}
	op := &hopOp{f: f}
	op.fn = op.step
	return op
}

// Banks implements Interconnect: fabrics have no address interleave, so
// every interleave key maps to bank 0 and the bank argument is inert.
func (f *Fabric) Banks() int { return 1 }

// Occupancy returns the per-link hold time of one message.
func (f *Fabric) Occupancy() sim.Time { return f.occupancy }

// Topology returns the fabric's parsed geometry.
func (f *Fabric) Topology() Topology { return f.topo }

// Stats returns the activity counters aggregated over links. Messages
// counts link crossings: a message on an h-hop route counts h times,
// once per link it occupies.
func (f *Fabric) Stats() Stats {
	var s Stats
	for _, l := range f.links {
		ls := l.Stats()
		s.Messages += ls.Messages
		s.BusyCycles += ls.BusyCycles
		s.WaitCycles += ls.WaitCycles
		s.Rounds += ls.Rounds
	}
	return s
}

// BankStats returns a copy of each link's private counters: local ports
// first (one per tile), then the directional channels.
func (f *Fabric) BankStats() []Stats {
	out := make([]Stats, len(f.links))
	for i, l := range f.links {
		out[i] = l.Stats()
	}
	return out
}

// Queued returns messages awaiting arbitration or delivery on any link.
// A multi-hop message in flight is always queued on exactly one link.
func (f *Fabric) Queued() int {
	n := 0
	for _, l := range f.links {
		n += l.Queued()
	}
	return n
}

// Utilization returns busy-cycles over elapsed wire-capacity cycles
// (elapsed time times link count), clamped to [0, 1].
func (f *Fabric) Utilization() float64 {
	var busy uint64
	for _, l := range f.links {
		busy += l.Stats().BusyCycles
	}
	return clampUtil(float64(busy), float64(f.eng.Now())*float64(len(f.links)))
}

// Reset implements Interconnect: every link resets (empty queues, free
// wires, zero stats, storage retained) and the hop-operation free list is
// kept. In-flight hop operations are abandoned with the engine's events.
func (f *Fabric) Reset() {
	for _, l := range f.links {
		l.Reset()
	}
}
