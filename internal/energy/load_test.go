package energy

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTechFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadFile pins the user-defined tech file format: a single object
// or an array, validated and registered exactly like built-in points.
func TestLoadFile(t *testing.T) {
	one := writeTechFile(t, "one.json", `{
		"name": "load-one", "note": "test point",
		"leakage": 0.25, "miss_activity": 0.5, "keep": 0.8,
		"cache_factor": 1.5, "resolution_bytes": 2, "cache_kb": 64
	}`)
	ts, err := LoadFile(one)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Name != "load-one" || ts[0].Keep != 0.8 {
		t.Fatalf("loaded %+v", ts)
	}
	got, err := Resolve("load-one")
	if err != nil || got != ts[0] {
		t.Fatalf("loaded point does not resolve: %+v, %v", got, err)
	}
	found := false
	for _, name := range Names() {
		found = found || name == "load-one"
	}
	if !found {
		t.Fatal("loaded point missing from Names()")
	}
	// Fingerprints hash parameters, not provenance: a loaded copy of a
	// registry point's parameters shares its fingerprint.
	ref, _ := ByName(DefaultName)
	dup := ref
	dup.Name = "load-one-defaultparams"
	if dup.Fingerprint() != ref.Fingerprint() {
		t.Fatal("fingerprint depends on more than Params()")
	}

	arr := writeTechFile(t, "arr.json", `[
		{"name": "load-a", "leakage": 0.1, "miss_activity": 0.4, "keep": 1,
		 "resolution_bytes": 2, "cache_kb": 64},
		{"name": "load-b", "leakage": 0.3, "miss_activity": 0.6, "keep": 0.5,
		 "resolution_bytes": 1, "cache_kb": 128}
	]`)
	if ts, err = LoadFile(arr); err != nil || len(ts) != 2 {
		t.Fatalf("array load: %v, %d points", err, len(ts))
	}

	// Re-registering the same name must fail, as must shadowing a
	// built-in, an invalid parameter set, and malformed JSON.
	if _, err := LoadFile(one); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate load: %v", err)
	}
	shadow := writeTechFile(t, "shadow.json",
		`{"name": "t65", "leakage": 0.2, "miss_activity": 0.5, "keep": 1, "resolution_bytes": 2, "cache_kb": 64}`)
	if _, err := LoadFile(shadow); err == nil {
		t.Fatal("shadowing a built-in point must fail")
	}
	bad := writeTechFile(t, "bad.json",
		`{"name": "load-bad", "leakage": 1.5, "miss_activity": 0.5, "keep": 1, "resolution_bytes": 2, "cache_kb": 64}`)
	if _, err := LoadFile(bad); err == nil || !strings.Contains(err.Error(), "leakage") {
		t.Fatalf("invalid point: %v", err)
	}
	if _, err := LoadFile(writeTechFile(t, "junk.json", `{not json`)); err == nil {
		t.Fatal("malformed JSON must fail")
	}
	if _, err := LoadFile(writeTechFile(t, "empty.json", `[]`)); err == nil {
		t.Fatal("empty array must fail")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must fail")
	}
}
