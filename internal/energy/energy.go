// Package energy makes the power model a first-class campaign axis: a
// named technology point (Tech) bundles every knob the §IV/§VII energy
// derivation consumes — leakage share, TCC data-cache overhead (either
// pinned or priced from the RW-bit tracking resolution via the cacti
// model), miss-mode cache activity, and the state-retention power-gating
// (SRPG) retained-leakage fraction — behind a canonical name that cells,
// scenarios, CSVs and checkpoints can carry.
//
// Because the simulator's timing never depends on the power model, a
// technology point changes only how a run's residency ledger is priced.
// That is what makes journal re-pricing sound: any checkpoint or fleet
// journal carries the per-state residency totals, and re-evaluating them
// under another Tech reproduces a fresh simulated run under that Tech
// byte-for-byte without re-simulating (see experiments.Reprice).
package energy

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"strings"

	"repro/internal/cacti"
	"repro/internal/power"
)

// DefaultName is the registry's default technology point: the paper's
// Alpha 21264 @ 65 nm Table I model. The empty tech name everywhere in
// the campaign surface (cells, scenarios, options) resolves to it, so
// pre-energy-axis checkpoints and CSVs keep their meaning.
const DefaultName = "t65"

// Tech is one named technology point of the energy axis. The JSON field
// names are the file format LoadFile accepts for user-defined points.
type Tech struct {
	// Name is the point's canonical name: lowercase letters, digits and
	// dashes, as carried by cells, CSV rows and checkpoint keys.
	Name string `json:"name"`
	// Note is a one-line description for listings.
	Note string `json:"note,omitempty"`
	// Leakage is the leakage share of total active power in [0, 1).
	Leakage float64 `json:"leakage"`
	// MissActivity is the cache dynamic activity during a miss relative
	// to a hit, in [0, 1].
	MissActivity float64 `json:"miss_activity"`
	// Keep is the SRPG retained-leakage fraction in [0, 1]: the gated
	// power factor is Leakage·Keep. 1 is the paper's plain clock gating
	// (all leakage retained), smaller values model state-retention power
	// gating of §IV.
	Keep float64 `json:"keep"`
	// CacheFactor pins the TCC data-cache power multiplier directly
	// (the paper's conservative 1.5). When zero, the multiplier is
	// priced from ResolutionBytes/CacheKB by the cacti model instead.
	CacheFactor float64 `json:"cache_factor,omitempty"`
	// ResolutionBytes is the speculative RW-bit tracking resolution the
	// cacti pricing uses (2 = word tracking, the paper's design point).
	ResolutionBytes int `json:"resolution_bytes"`
	// CacheKB is the L1 data-cache capacity the cacti pricing uses.
	CacheKB int `json:"cache_kb"`
}

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Validate checks every parameter range. A Tech that validates derives a
// finite, positive power model.
func (t Tech) Validate() error {
	if !nameRE.MatchString(t.Name) {
		return fmt.Errorf("energy: tech name %q must be lowercase [a-z0-9-], starting alphanumeric", t.Name)
	}
	if !(t.Leakage >= 0 && t.Leakage < 1) {
		return fmt.Errorf("energy: tech %s: leakage %v out of [0, 1)", t.Name, t.Leakage)
	}
	if !(t.MissActivity >= 0 && t.MissActivity <= 1) {
		return fmt.Errorf("energy: tech %s: miss activity %v out of [0, 1]", t.Name, t.MissActivity)
	}
	if !(t.Keep >= 0 && t.Keep <= 1) {
		return fmt.Errorf("energy: tech %s: SRPG keep fraction %v out of [0, 1]", t.Name, t.Keep)
	}
	if t.CacheFactor != 0 && !(t.CacheFactor >= 1 && t.CacheFactor < 16) {
		return fmt.Errorf("energy: tech %s: TCC cache factor %v out of [1, 16)", t.Name, t.CacheFactor)
	}
	cfg := cacti.DefaultConfig()
	if !cfg.ValidResolution(t.ResolutionBytes) {
		return fmt.Errorf("energy: tech %s: RW-bit resolution %d bytes out of (0, %d]",
			t.Name, t.ResolutionBytes, cfg.LineBytes)
	}
	if t.CacheKB <= 0 || t.CacheKB > 1024 {
		return fmt.Errorf("energy: tech %s: cache size %d KB out of (0, 1024]", t.Name, t.CacheKB)
	}
	return nil
}

// TCCCacheFactor returns the TCC data-cache power multiplier the model
// derivation uses: the pinned CacheFactor when set, the cacti-priced
// multiplier at (ResolutionBytes, CacheKB) otherwise.
func (t Tech) TCCCacheFactor() float64 {
	if t.CacheFactor != 0 {
		return t.CacheFactor
	}
	return cacti.DefaultConfig().TCCFactor(t.ResolutionBytes, t.CacheKB)
}

// Breakdown returns the power.Breakdown this technology point derives its
// model from: the paper's component shares with the tech's leakage, miss
// activity and TCC cache factor substituted in.
func (t Tech) Breakdown() power.Breakdown {
	b := power.DefaultBreakdown()
	b.Leakage = t.Leakage
	b.MissActivity = t.MissActivity
	b.TCCCacheFactor = t.TCCCacheFactor()
	return b
}

// Model derives the per-state power factors of this technology point:
// the Table I derivation over the tech's breakdown, with the SRPG keep
// fraction applied to the gated state. The default point reproduces
// power.Default() exactly.
func (t Tech) Model() power.Model {
	return power.Derive(t.Breakdown()).WithSRPG(t.Keep)
}

// Params renders the technology point's full parameter set in canonical
// order — the string Fingerprint hashes and listings show.
func (t Tech) Params() string {
	priced := "pinned"
	if t.CacheFactor == 0 {
		priced = "cacti"
	}
	return fmt.Sprintf("leak=%g miss=%g keep=%g tcc=%.6g(%s) rw=%dB cache=%dKB",
		t.Leakage, t.MissActivity, t.Keep, t.TCCCacheFactor(), priced, t.ResolutionBytes, t.CacheKB)
}

// Fingerprint identifies the technology point's parameters (not its
// name): two points that price identically share a fingerprint. It is
// the energy-axis analogue of Options.Fingerprint.
func (t Tech) Fingerprint() string {
	h := sha256.Sum256([]byte(t.Params()))
	return hex.EncodeToString(h[:])[:12]
}

// Describe renders the point's derivation for CLI output: name, params,
// fingerprint and the derived per-state factors.
func (t Tech) Describe() string {
	m := t.Model()
	var b strings.Builder
	fmt.Fprintf(&b, "tech %s (%s)\n", t.Name, t.Note)
	fmt.Fprintf(&b, "  params:      %s\n", t.Params())
	fmt.Fprintf(&b, "  fingerprint: %s\n", t.Fingerprint())
	fmt.Fprintf(&b, "  model:       Run=%.3f Miss=%.3f Commit=%.3f Gated=%.3f\n",
		m.Run, m.Miss, m.Commit, m.Gated)
	return b.String()
}

// registry lists the built-in technology points in canonical order. The
// set is closed and append-only for the same reason matrix case IDs are:
// a name in a checkpoint or CSV must keep pricing the same way forever.
var registry = []Tech{
	{
		Name:    DefaultName,
		Note:    "Alpha 21264 @ 65 nm, paper Table I (TCC factor pinned at the conservative 1.5)",
		Leakage: 0.20, MissActivity: 0.5, Keep: 1.0,
		CacheFactor: 1.5, ResolutionBytes: 2, CacheKB: 64,
	},
	{
		Name:    "t45",
		Note:    "scaled 45 nm point: higher leakage share, cacti-priced word-tracking cache",
		Leakage: 0.28, MissActivity: 0.5, Keep: 1.0,
		ResolutionBytes: 2, CacheKB: 64,
	},
	{
		Name:    "t32",
		Note:    "scaled 32 nm point: leakage-dominated, doubled L1, cacti-priced",
		Leakage: 0.36, MissActivity: 0.5, Keep: 1.0,
		ResolutionBytes: 2, CacheKB: 128,
	},
	{
		Name:    "t65-srpg50",
		Note:    "65 nm with state-retention power gating retaining 50% leakage",
		Leakage: 0.20, MissActivity: 0.5, Keep: 0.5,
		CacheFactor: 1.5, ResolutionBytes: 2, CacheKB: 64,
	},
	{
		Name:    "t65-srpg10",
		Note:    "65 nm with aggressive SRPG retaining 10% leakage",
		Leakage: 0.20, MissActivity: 0.5, Keep: 0.1,
		CacheFactor: 1.5, ResolutionBytes: 2, CacheKB: 64,
	},
	{
		Name:    "t65-byte",
		Note:    "65 nm with byte-granularity RW tracking, cacti-priced",
		Leakage: 0.20, MissActivity: 0.5, Keep: 1.0,
		ResolutionBytes: 1, CacheKB: 64,
	},
}

var byName = func() map[string]Tech {
	m := make(map[string]Tech, len(registry))
	for _, t := range registry {
		if err := t.Validate(); err != nil {
			panic(err)
		}
		if _, dup := m[t.Name]; dup {
			panic("energy: duplicate tech name " + t.Name)
		}
		m[t.Name] = t
	}
	return m
}()

// Register adds a user-defined technology point to the resolution
// registry, after the same validation the built-in points pass at init.
// Names must be unique across built-in and loaded points: a tech name in
// a CSV or checkpoint must price one way only. Registered points appear
// in Techs/Names listings after the built-ins and fingerprint exactly
// like them (Fingerprint hashes parameters, not provenance).
func Register(t Tech) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, dup := byName[t.Name]; dup {
		return fmt.Errorf("energy: tech point %q is already registered", t.Name)
	}
	registry = append(registry, t)
	byName[t.Name] = t
	return nil
}

// LoadFile reads user-defined technology points from a JSON file — one
// Tech object or an array of them, using the struct's json field names —
// and registers each. The loaded points resolve, list and fingerprint
// exactly like built-in registry points for the rest of the process; a
// journal priced under a loaded point can only be re-priced by a process
// that loads the same file again. Returns the points in file order.
func LoadFile(path string) ([]Tech, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("energy: %w", err)
	}
	var ts []Tech
	if err := json.Unmarshal(data, &ts); err != nil {
		var one Tech
		if err1 := json.Unmarshal(data, &one); err1 != nil {
			return nil, fmt.Errorf("energy: %s: want one tech object or an array: %w", path, err)
		}
		ts = []Tech{one}
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("energy: %s: no tech points", path)
	}
	for _, t := range ts {
		if err := Register(t); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return ts, nil
}

// Default returns the default technology point (the paper's Table I).
func Default() Tech { return byName[DefaultName] }

// ByName resolves a named technology point. The empty name does not
// resolve here; use Resolve for the campaign surface's "" sentinel.
func ByName(name string) (Tech, bool) {
	t, ok := byName[name]
	return t, ok
}

// Resolve resolves a campaign-surface tech name, mapping the empty
// string to the default point.
func Resolve(name string) (Tech, error) {
	if name == "" {
		return Default(), nil
	}
	t, ok := byName[name]
	if !ok {
		return Tech{}, fmt.Errorf("energy: unknown tech point %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	return t, nil
}

// CanonicalName normalizes a campaign-surface tech name: the empty
// string becomes DefaultName, anything else is returned as given. It
// does not check existence; Resolve does.
func CanonicalName(name string) string {
	if name == "" {
		return DefaultName
	}
	return name
}

// Techs returns every registered technology point in canonical order.
func Techs() []Tech {
	out := make([]Tech, len(registry))
	copy(out, registry)
	return out
}

// Names returns the registered tech names in canonical order.
func Names() []string {
	out := make([]string, len(registry))
	for i, t := range registry {
		out[i] = t.Name
	}
	return out
}

// EDP returns the energy-delay product E·N and ED2P the energy-delay-
// squared product E·N², in run-power-cycle units — the standard
// figure-of-merit pair the CSV's edp/ed2p columns carry. Both are pure
// functions of an (energy, cycles) pair, so fresh, restored and
// re-priced results render identically.
func EDP(e float64, cycles int64) float64 { return e * float64(cycles) }

// ED2P returns the energy-delay-squared product E·N².
func ED2P(e float64, cycles int64) float64 {
	n := float64(cycles)
	return e * n * n
}

// FiniteModel reports whether every factor of m is finite — the guard
// property tests assert over the whole valid parameter space.
func FiniteModel(m power.Model) bool {
	for _, v := range []float64{m.Run, m.Miss, m.Commit, m.Gated} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
