package energy

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cacti"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestDefaultTechReproducesPaperModel pins the backward-compatibility
// anchor of the whole axis: the default technology point derives exactly
// power.Default() — bit-identical factors, because every pre-energy-axis
// CSV byte depends on it. The default pins CacheFactor at the paper's
// 1.5 rather than pricing via cacti (which gives ~1.45 at the same
// design point); this test is what notices if someone "simplifies" that.
func TestDefaultTechReproducesPaperModel(t *testing.T) {
	got, want := Default().Model(), power.Default()
	if got != want {
		t.Fatalf("default tech model %+v != power.Default() %+v", got, want)
	}
	if r, err := Resolve(""); err != nil || r.Name != DefaultName {
		t.Fatalf("empty name resolved to %+v, %v", r, err)
	}
	if CanonicalName("") != DefaultName || CanonicalName("t45") != "t45" {
		t.Fatal("CanonicalName normalization broken")
	}
}

func TestRegistryValidatesAndResolves(t *testing.T) {
	names := Names()
	if len(names) == 0 || names[0] != DefaultName {
		t.Fatalf("registry order broken: %v", names)
	}
	seen := map[string]bool{}
	for _, tech := range Techs() {
		if err := tech.Validate(); err != nil {
			t.Errorf("registered tech invalid: %v", err)
		}
		if seen[tech.Name] {
			t.Errorf("duplicate tech %s", tech.Name)
		}
		seen[tech.Name] = true
		got, ok := ByName(tech.Name)
		if !ok || got != tech {
			t.Errorf("ByName(%s) = %+v, %v", tech.Name, got, ok)
		}
		if !FiniteModel(tech.Model()) {
			t.Errorf("tech %s derives a non-finite model", tech.Name)
		}
		if d := tech.Describe(); !strings.Contains(d, tech.Name) || !strings.Contains(d, tech.Fingerprint()) {
			t.Errorf("Describe for %s lacks name or fingerprint:\n%s", tech.Name, d)
		}
	}
	if _, err := Resolve("no-such-tech"); err == nil {
		t.Fatal("unknown tech resolved")
	}
	if _, ok := ByName(""); ok {
		t.Fatal("ByName resolved the empty sentinel; only Resolve may")
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	valid := Default()
	for name, mutate := range map[string]func(*Tech){
		"bad name":            func(x *Tech) { x.Name = "Bad Name!" },
		"empty name":          func(x *Tech) { x.Name = "" },
		"leakage negative":    func(x *Tech) { x.Leakage = -0.1 },
		"leakage one":         func(x *Tech) { x.Leakage = 1.0 },
		"leakage NaN":         func(x *Tech) { x.Leakage = math.NaN() },
		"miss above one":      func(x *Tech) { x.MissActivity = 1.5 },
		"miss NaN":            func(x *Tech) { x.MissActivity = math.NaN() },
		"keep negative":       func(x *Tech) { x.Keep = -0.01 },
		"keep above one":      func(x *Tech) { x.Keep = 1.01 },
		"keep NaN":            func(x *Tech) { x.Keep = math.NaN() },
		"cache factor tiny":   func(x *Tech) { x.CacheFactor = 0.5 },
		"cache factor NaN":    func(x *Tech) { x.CacheFactor = math.NaN() },
		"resolution zero":     func(x *Tech) { x.ResolutionBytes = 0 },
		"resolution too big":  func(x *Tech) { x.ResolutionBytes = 65 },
		"cache size zero":     func(x *Tech) { x.CacheKB = 0 },
		"cache size negative": func(x *Tech) { x.CacheKB = -64 },
	} {
		x := valid
		mutate(&x)
		if err := x.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, x)
		}
	}
}

// TestGatedMonotoneInLeakageKeep is the derivation's key monotonicity
// property: the gated power factor is exactly leakage·keep, so it is
// monotone (non-decreasing) in both, and SRPG can only reduce it.
func TestGatedMonotoneInLeakageKeep(t *testing.T) {
	prev := -1.0
	for _, leak := range []float64{0, 0.1, 0.2, 0.36, 0.5, 0.8, 0.99} {
		for _, keep := range []float64{0, 0.1, 0.5, 1.0} {
			x := Default()
			x.Leakage, x.Keep = leak, keep
			if err := x.Validate(); err != nil {
				t.Fatalf("grid point invalid: %v", err)
			}
			m := x.Model()
			if m.Gated != leak*keep {
				t.Fatalf("Gated = %v, want leakage*keep = %v", m.Gated, leak*keep)
			}
			if m.Run != 1.0 {
				t.Fatalf("Run = %v, normalization broken", m.Run)
			}
		}
		// Monotone along the leakage axis at full keep.
		x := Default()
		x.Leakage = leak
		if g := x.Model().Gated; g < prev {
			t.Fatalf("Gated not monotone in leakage: %v after %v", g, prev)
		} else {
			prev = g
		}
	}
}

// TestEnergyLinearInResidency pins the property the reprice engine's
// byte-identity contract rests on: energy is a linear function of the
// integer per-state residency totals. A power-of-two scale factor
// commutes exactly with float64 rounding, so the check is bit-exact —
// no tolerance that drift could hide inside.
func TestEnergyLinearInResidency(t *testing.T) {
	base := [][stats.NumStates]sim.Time{
		{1000, 200, 50, 300},
		{800, 100, 75, 0},
	}
	scaled := make([][stats.NumStates]sim.Time, len(base))
	for p := range base {
		for s := range base[p] {
			scaled[p][s] = 4 * base[p][s]
		}
	}
	for _, tech := range Techs() {
		m := tech.Model()
		l1 := stats.RestoreLedger(base, 2000)
		l4 := stats.RestoreLedger(scaled, 8000)
		e1 := m.Energy(l1, 0, 2000)
		e4 := m.Energy(l4, 0, 8000)
		if e4 != 4*e1 {
			t.Errorf("tech %s: energy not linear in residency: E(4r)=%v, 4E(r)=%v", tech.Name, e4, e1*4)
		}
		bs := m.EnergyByState(l1, 0, 2000)
		sum := bs[0] + bs[1] + bs[2] + bs[3]
		if sum != e1 {
			t.Errorf("tech %s: per-state breakdown sums to %v, Energy is %v", tech.Name, sum, e1)
		}
	}
}

func TestEDPAndED2P(t *testing.T) {
	if EDP(2.5, 100) != 250 {
		t.Fatal("EDP broken")
	}
	if ED2P(2.5, 100) != 25000 {
		t.Fatal("ED2P broken")
	}
	if !math.IsNaN(EDP(math.NaN(), 10)) {
		t.Fatal("EDP must propagate NaN for the CSV's NA rendering")
	}
}

func TestFingerprintTracksParamsNotName(t *testing.T) {
	a := Default()
	b := a
	b.Name = "renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on the name; it must identify parameters only")
	}
	c := a
	c.Leakage = 0.21
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprint misses a leakage change")
	}
	d := a
	d.CacheFactor = 0 // switch to cacti pricing: different multiplier
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("fingerprint misses the pinned-vs-priced cache factor")
	}
}

// TestCactiPricedFactorMatchesConfig pins the cacti hook: an unpinned
// tech prices its cache factor at exactly the default cacti config's
// TCCFactor, and the byte-tracking point is costlier than word tracking.
func TestCactiPricedFactorMatchesConfig(t *testing.T) {
	cfg := cacti.DefaultConfig()
	word, _ := ByName("t45")
	if got, want := word.TCCCacheFactor(), cfg.TCCFactor(2, 64); got != want {
		t.Fatalf("t45 cache factor %v, cacti says %v", got, want)
	}
	byteT, _ := ByName("t65-byte")
	if byteT.TCCCacheFactor() <= word.TCCCacheFactor() {
		t.Fatal("byte-granularity tracking should cost more than word-granularity at the same cacti config")
	}
}

// FuzzTechDerivation fuzzes the whole parameter space: any Tech that
// validates must derive a finite model with the invariants the Table I
// derivation promises (Run normalized to 1, Gated = leakage·keep,
// Miss between Gated and Commit for miss activity in [0,1]).
func FuzzTechDerivation(f *testing.F) {
	f.Add(0.2, 0.5, 1.0, 1.5, 2, 64)
	f.Add(0.36, 0.5, 0.1, 0.0, 1, 128)
	f.Add(0.0, 0.0, 0.0, 1.0, 64, 16)
	f.Add(0.99, 1.0, 1.0, 15.9, 32, 1024)
	f.Fuzz(func(t *testing.T, leak, miss, keep, cf float64, res, kb int) {
		x := Tech{
			Name: "fuzz", Leakage: leak, MissActivity: miss, Keep: keep,
			CacheFactor: cf, ResolutionBytes: res, CacheKB: kb,
		}
		if err := x.Validate(); err != nil {
			t.Skip()
		}
		m := x.Model()
		if !FiniteModel(m) {
			t.Fatalf("valid tech %+v derived non-finite model %+v", x, m)
		}
		if m.Run != 1.0 {
			t.Fatalf("Run %v != 1", m.Run)
		}
		if m.Gated != leak*keep {
			t.Fatalf("Gated %v != leakage*keep %v", m.Gated, leak*keep)
		}
		if m.Gated < 0 || m.Commit < leak || m.Miss < leak {
			t.Fatalf("factor below leakage floor: %+v (leak %v)", m, leak)
		}
		if m.Miss > m.Commit {
			t.Fatalf("Miss %v above Commit %v with miss activity %v in [0,1]", m.Miss, m.Commit, miss)
		}
	})
}
