package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: EvCommit})
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder retained something")
	}
	if len(r.CountByKind()) != 0 || r.OfProc(0) != nil {
		t.Fatal("nil recorder queries not empty")
	}
	if err := r.Dump(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordAndQuery(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{At: 1, Kind: EvTxBegin, Proc: 0, TxPC: 0x40})
	r.Record(Event{At: 5, Kind: EvAbort, Proc: 0, Other: 1, Dir: 2, Line: 7})
	r.Record(Event{At: 9, Kind: EvCommit, Proc: 1, TxPC: 0x41})
	if r.Len() != 3 {
		t.Fatalf("len %d", r.Len())
	}
	counts := r.CountByKind()
	if counts[EvTxBegin] != 1 || counts[EvAbort] != 1 || counts[EvCommit] != 1 {
		t.Fatalf("counts %v", counts)
	}
	p0 := r.OfProc(0)
	if len(p0) != 2 {
		t.Fatalf("proc 0 events %v", p0)
	}
}

func TestFilter(t *testing.T) {
	r := NewRecorder().Filter(EvGate, EvUngate)
	r.Record(Event{Kind: EvCommit})
	r.Record(Event{Kind: EvGate})
	r.Record(Event{Kind: EvUngate})
	if r.Len() != 2 {
		t.Fatalf("filter kept %d events", r.Len())
	}
}

func TestLimit(t *testing.T) {
	r := NewRecorder().Limit(2)
	for i := 0; i < 5; i++ {
		r.Record(Event{At: sim.Time(i), Kind: EvCommit})
	}
	if r.Len() != 2 {
		t.Fatalf("limit kept %d", r.Len())
	}
	if r.Events()[0].At != 0 || r.Events()[1].At != 1 {
		t.Fatal("limit did not keep the oldest")
	}
}

func TestEventStrings(t *testing.T) {
	events := []Event{
		{At: 1, Kind: EvTxBegin, Proc: 2, TxPC: 0x40},
		{At: 2, Kind: EvCommit, Proc: 2, TxPC: 0x40},
		{At: 3, Kind: EvAbort, Proc: 2, Other: 1, Dir: 0, Line: 9},
		{At: 4, Kind: EvValidationAbort, Proc: 2, TxPC: 0x40},
		{At: 5, Kind: EvGate, Proc: 2, Dir: 0, Other: 1},
		{At: 6, Kind: EvRenew, Proc: 2, Dir: 0, Other: 1},
		{At: 7, Kind: EvUngate, Proc: 2, Dir: 0, Other: 1},
		{At: 8, Kind: EvSelfAbort, Proc: 2, TxPC: 0x40},
		{At: 9, Kind: EvInvalidate, Proc: 2, Other: 1, Dir: 0, Line: 9},
	}
	for _, e := range events {
		s := e.String()
		if !strings.Contains(s, e.Kind.String()) {
			t.Errorf("event string %q missing kind %q", s, e.Kind)
		}
		if !strings.Contains(s, "proc=2") {
			t.Errorf("event string %q missing proc", s)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{EvTxBegin, EvCommit, EvAbort, EvValidationAbort,
		EvGate, EvRenew, EvUngate, EvSelfAbort, EvInvalidate}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has bad/duplicate string %q", k, s)
		}
		seen[s] = true
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestDump(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{At: 1, Kind: EvCommit, Proc: 0})
	r.Record(Event{At: 2, Kind: EvGate, Proc: 1})
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump produced %d lines", len(lines))
	}
}
