// Package trace records structured protocol events from a simulation run:
// every commit, abort, gating, renewal and wake-up with its cycle stamp
// and participants. The recorder is optional — runs pay nothing unless one
// is attached — and exists for protocol debugging, for the event-log
// output of cmd/tccsim, and for tests that assert on event ordering.
package trace

import (
	"fmt"
	"io"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Kind discriminates protocol events.
type Kind uint8

// The protocol event kinds.
const (
	// EvTxBegin: a processor starts (or restarts) a transaction attempt.
	EvTxBegin Kind = iota
	// EvCommit: a transaction retired.
	EvCommit
	// EvAbort: an invalidation killed a running transaction.
	EvAbort
	// EvValidationAbort: the commit-time validation phase failed.
	EvValidationAbort
	// EvGate: a processor's clocks stopped.
	EvGate
	// EvRenew: a directory extended a gating period.
	EvRenew
	// EvUngate: a directory sent the On command.
	EvUngate
	// EvSelfAbort: a woken processor discarded its frozen transaction.
	EvSelfAbort
	// EvInvalidate: a directory invalidated a sharer's line.
	EvInvalidate
)

func (k Kind) String() string {
	switch k {
	case EvTxBegin:
		return "tx-begin"
	case EvCommit:
		return "commit"
	case EvAbort:
		return "abort"
	case EvValidationAbort:
		return "validation-abort"
	case EvGate:
		return "gate"
	case EvRenew:
		return "renew"
	case EvUngate:
		return "ungate"
	case EvSelfAbort:
		return "self-abort"
	case EvInvalidate:
		return "invalidate"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded protocol event. Fields not meaningful for a kind
// are zero: Other is the peer processor (aborter / committer), Dir the
// directory involved, Line the cache line, TxPC the static transaction.
type Event struct {
	At    sim.Time
	Kind  Kind
	Proc  int
	Other int
	Dir   int
	Line  mem.LineAddr
	TxPC  uint64
}

// String renders one event as a log line.
func (e Event) String() string {
	switch e.Kind {
	case EvTxBegin, EvCommit, EvSelfAbort:
		return fmt.Sprintf("%10d %-16s proc=%d pc=0x%x", e.At, e.Kind, e.Proc, e.TxPC)
	case EvAbort:
		return fmt.Sprintf("%10d %-16s proc=%d by=%d dir=%d line=%d", e.At, e.Kind, e.Proc, e.Other, e.Dir, e.Line)
	case EvValidationAbort:
		return fmt.Sprintf("%10d %-16s proc=%d pc=0x%x", e.At, e.Kind, e.Proc, e.TxPC)
	case EvGate, EvUngate, EvRenew:
		return fmt.Sprintf("%10d %-16s proc=%d dir=%d aborter=%d", e.At, e.Kind, e.Proc, e.Dir, e.Other)
	case EvInvalidate:
		return fmt.Sprintf("%10d %-16s proc=%d by=%d dir=%d line=%d", e.At, e.Kind, e.Proc, e.Other, e.Dir, e.Line)
	default:
		return fmt.Sprintf("%10d %-16s proc=%d", e.At, e.Kind, e.Proc)
	}
}

// Recorder accumulates events in order. The zero value records
// everything; use Filter to restrict kinds. A nil *Recorder is valid and
// records nothing, so call sites need no guards.
type Recorder struct {
	events []Event
	filter map[Kind]bool // nil = record all
	limit  int           // 0 = unlimited
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Filter restricts recording to the given kinds.
func (r *Recorder) Filter(kinds ...Kind) *Recorder {
	r.filter = make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		r.filter[k] = true
	}
	return r
}

// Limit caps the number of retained events (oldest kept).
func (r *Recorder) Limit(n int) *Recorder {
	r.limit = n
	return r
}

// Record appends an event, honoring filter and limit. Nil-safe.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if r.filter != nil && !r.filter[e.Kind] {
		return
	}
	if r.limit > 0 && len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events in order. The slice is owned by the
// recorder.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// CountByKind tallies events per kind.
func (r *Recorder) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	if r == nil {
		return out
	}
	for _, e := range r.events {
		out[e.Kind]++
	}
	return out
}

// OfProc returns the events involving processor p (as subject).
func (r *Recorder) OfProc(p int) []Event {
	var out []Event
	if r == nil {
		return out
	}
	for _, e := range r.events {
		if e.Proc == p {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes one line per event.
func (r *Recorder) Dump(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, e := range r.events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}
