package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Binary trace format:
//
//	magic   [8]byte  "CGTRACE1"
//	nameLen uint32, name bytes
//	threads uint32
//	per thread:
//	  txs uint32
//	  per tx: interTx int32, pc uint64, ops uint32,
//	          per op: kind uint8, then line uint64 (read/write)
//	                  or cycles int32 (compute)
//
// All integers are little-endian. The format exists so generated
// workloads can be archived and replayed bit-identically across machines.

var traceMagic = [8]byte{'C', 'G', 'T', 'R', 'A', 'C', 'E', '1'}

// Encode writes the trace to w in the binary trace format.
func Encode(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU32 := func(v uint32) error {
		var buf [4]byte
		le.PutUint32(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	writeU64 := func(v uint64) error {
		var buf [8]byte
		le.PutUint64(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	if err := writeU32(uint32(len(tr.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(tr.Name); err != nil {
		return err
	}
	if err := writeU32(uint32(len(tr.Threads))); err != nil {
		return err
	}
	for ti := range tr.Threads {
		th := &tr.Threads[ti]
		if len(th.InterTx) != len(th.Txs) {
			return fmt.Errorf("workload: encode: thread %d inconsistent InterTx", ti)
		}
		if err := writeU32(uint32(len(th.Txs))); err != nil {
			return err
		}
		for xi := range th.Txs {
			tx := &th.Txs[xi]
			if err := writeU32(uint32(th.InterTx[xi])); err != nil {
				return err
			}
			if err := writeU64(tx.PC); err != nil {
				return err
			}
			if err := writeU32(uint32(len(tx.Ops))); err != nil {
				return err
			}
			for _, op := range tx.Ops {
				if err := bw.WriteByte(byte(op.Kind)); err != nil {
					return err
				}
				switch op.Kind {
				case OpRead, OpWrite:
					if err := writeU64(uint64(op.Line)); err != nil {
						return err
					}
				case OpCompute:
					if err := writeU32(uint32(op.Cycles)); err != nil {
						return err
					}
				default:
					return fmt.Errorf("workload: encode: bad op kind %d", op.Kind)
				}
			}
		}
	}
	return bw.Flush()
}

// Decode reads a trace in the binary trace format.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("workload: decode magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %q", magic)
	}
	le := binary.LittleEndian
	readU32 := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return le.Uint32(buf[:]), nil
	}
	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return le.Uint64(buf[:]), nil
	}
	nameLen, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("workload: decode name length: %w", err)
	}
	const maxName = 1 << 16
	if nameLen > maxName {
		return nil, fmt.Errorf("workload: name length %d exceeds limit", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("workload: decode name: %w", err)
	}
	nThreads, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("workload: decode thread count: %w", err)
	}
	const maxThreads = 1 << 16
	if nThreads == 0 || nThreads > maxThreads {
		return nil, fmt.Errorf("workload: thread count %d out of range", nThreads)
	}
	tr := &Trace{Name: string(nameBuf), Threads: make([]Thread, nThreads)}
	for ti := range tr.Threads {
		nTxs, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("workload: decode thread %d: %w", ti, err)
		}
		th := &tr.Threads[ti]
		th.Txs = make([]Transaction, nTxs)
		th.InterTx = make([]int32, nTxs)
		for xi := range th.Txs {
			inter, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("workload: decode tx header: %w", err)
			}
			th.InterTx[xi] = int32(inter)
			pc, err := readU64()
			if err != nil {
				return nil, fmt.Errorf("workload: decode tx pc: %w", err)
			}
			nOps, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("workload: decode op count: %w", err)
			}
			tx := &th.Txs[xi]
			tx.PC = pc
			tx.Ops = make([]Op, nOps)
			for oi := range tx.Ops {
				kind, err := br.ReadByte()
				if err != nil {
					return nil, fmt.Errorf("workload: decode op kind: %w", err)
				}
				op := &tx.Ops[oi]
				op.Kind = OpKind(kind)
				switch op.Kind {
				case OpRead, OpWrite:
					line, err := readU64()
					if err != nil {
						return nil, fmt.Errorf("workload: decode op line: %w", err)
					}
					op.Line = mem.LineAddr(line)
				case OpCompute:
					cy, err := readU32()
					if err != nil {
						return nil, fmt.Errorf("workload: decode op cycles: %w", err)
					}
					op.Cycles = int32(cy)
				default:
					return nil, fmt.Errorf("workload: decode: bad op kind %d", kind)
				}
			}
		}
	}
	return tr, nil
}
