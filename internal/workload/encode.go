package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/mem"
)

// ErrCorrupt is the sentinel wrapped by every trace-decode failure —
// truncation, bad magic, checksum mismatches, length prefixes that
// disagree with the input. Decoders consume bytes another process may
// have half-written or a disk may have mangled (the trace store loads
// them concurrently with writers), so callers branch on
// errors.Is(err, ErrCorrupt) to quarantine and regenerate instead of
// failing the run.
var ErrCorrupt = errors.New("workload: corrupt trace")

// corruptf wraps ErrCorrupt with context, analogous to fmt.Errorf.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("workload: "+format+": %w", append(args, ErrCorrupt)...)
}

// Binary trace format:
//
//	magic   [8]byte  "CGTRACE1"
//	nameLen uint32, name bytes
//	threads uint32
//	per thread:
//	  txs uint32
//	  per tx: interTx int32, pc uint64, ops uint32,
//	          per op: kind uint8, then line uint64 (read/write)
//	                  or cycles int32 (compute)
//
// All integers are little-endian. The format exists so generated
// workloads can be archived and replayed bit-identically across machines.

var traceMagic = [8]byte{'C', 'G', 'T', 'R', 'A', 'C', 'E', '1'}

// Encode writes the trace to w in the binary trace format.
func Encode(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU32 := func(v uint32) error {
		var buf [4]byte
		le.PutUint32(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	writeU64 := func(v uint64) error {
		var buf [8]byte
		le.PutUint64(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	if err := writeU32(uint32(len(tr.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(tr.Name); err != nil {
		return err
	}
	if err := writeU32(uint32(len(tr.Threads))); err != nil {
		return err
	}
	for ti := range tr.Threads {
		th := &tr.Threads[ti]
		if len(th.InterTx) != len(th.Txs) {
			return fmt.Errorf("workload: encode: thread %d inconsistent InterTx", ti)
		}
		if err := writeU32(uint32(len(th.Txs))); err != nil {
			return err
		}
		for xi := range th.Txs {
			tx := &th.Txs[xi]
			if err := writeU32(uint32(th.InterTx[xi])); err != nil {
				return err
			}
			if err := writeU64(tx.PC); err != nil {
				return err
			}
			if err := writeU32(uint32(len(tx.Ops))); err != nil {
				return err
			}
			for _, op := range tx.Ops {
				if err := bw.WriteByte(byte(op.Kind)); err != nil {
					return err
				}
				switch op.Kind {
				case OpRead, OpWrite:
					if err := writeU64(uint64(op.Line)); err != nil {
						return err
					}
				case OpCompute:
					if err := writeU32(uint32(op.Cycles)); err != nil {
						return err
					}
				default:
					return fmt.Errorf("workload: encode: bad op kind %d", op.Kind)
				}
			}
		}
	}
	return bw.Flush()
}

// decodeChunk caps the capacity any single length prefix can size ahead
// of the bytes that back it. A prefix claiming a billion transactions in
// a 100-byte file must fail on the next read, not allocate gigabytes
// first: slices grow by append as elements are actually decoded, so the
// allocation never runs ahead of the input by more than one chunk.
const decodeChunk = 4096

// Decode reads a trace in the binary trace format. The input is treated
// as untrusted — the trace store hands Decode files another process may
// have half-written or a disk may have mangled — so every length prefix
// is bounded by the bytes that actually follow it, and every failure
// wraps ErrCorrupt.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, corruptf("decode magic: %v", err)
	}
	if magic != traceMagic {
		return nil, corruptf("bad trace magic %q", magic)
	}
	le := binary.LittleEndian
	readU32 := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return le.Uint32(buf[:]), nil
	}
	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return le.Uint64(buf[:]), nil
	}
	nameLen, err := readU32()
	if err != nil {
		return nil, corruptf("decode name length: %v", err)
	}
	const maxName = 1 << 16
	if nameLen > maxName {
		return nil, corruptf("name length %d exceeds limit", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, corruptf("decode name: %v", err)
	}
	nThreads, err := readU32()
	if err != nil {
		return nil, corruptf("decode thread count: %v", err)
	}
	const maxThreads = 1 << 16
	if nThreads == 0 || nThreads > maxThreads {
		return nil, corruptf("thread count %d out of range", nThreads)
	}
	tr := &Trace{Name: string(nameBuf), Threads: make([]Thread, nThreads)}
	for ti := range tr.Threads {
		nTxs, err := readU32()
		if err != nil {
			return nil, corruptf("decode thread %d: %v", ti, err)
		}
		th := &tr.Threads[ti]
		th.Txs = make([]Transaction, 0, min(int(nTxs), decodeChunk))
		th.InterTx = make([]int32, 0, min(int(nTxs), decodeChunk))
		for xi := 0; xi < int(nTxs); xi++ {
			inter, err := readU32()
			if err != nil {
				return nil, corruptf("decode tx header: %v", err)
			}
			pc, err := readU64()
			if err != nil {
				return nil, corruptf("decode tx pc: %v", err)
			}
			nOps, err := readU32()
			if err != nil {
				return nil, corruptf("decode op count: %v", err)
			}
			tx := Transaction{PC: pc, Ops: make([]Op, 0, min(int(nOps), decodeChunk))}
			for oi := 0; oi < int(nOps); oi++ {
				kind, err := br.ReadByte()
				if err != nil {
					return nil, corruptf("decode op kind: %v", err)
				}
				op := Op{Kind: OpKind(kind)}
				switch op.Kind {
				case OpRead, OpWrite:
					line, err := readU64()
					if err != nil {
						return nil, corruptf("decode op line: %v", err)
					}
					op.Line = mem.LineAddr(line)
				case OpCompute:
					cy, err := readU32()
					if err != nil {
						return nil, corruptf("decode op cycles: %v", err)
					}
					op.Cycles = int32(cy)
				default:
					return nil, corruptf("decode: bad op kind %d", kind)
				}
				tx.Ops = append(tx.Ops, op)
			}
			th.Txs = append(th.Txs, tx)
			th.InterTx = append(th.InterTx, int32(inter))
		}
	}
	return tr, nil
}
