package workload

import (
	"reflect"
	"testing"

	"repro/internal/mem"
)

func validSpec() Spec {
	return Spec{
		Name:         "test",
		TotalTxs:     64,
		MeanTxOps:    10,
		TxOpsJitter:  0.5,
		WriteFrac:    0.4,
		HotLines:     16,
		HotFrac:      0.5,
		ZipfSkew:     0.8,
		PrivateLines: 32,
		ComputeMean:  3,
		InterTxMean:  10,
		TxTypes:      3,
	}
}

func TestSpecValidate(t *testing.T) {
	vs := validSpec()
	if err := vs.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	edits := []struct {
		name string
		edit func(*Spec)
	}{
		{"zero txs", func(s *Spec) { s.TotalTxs = 0 }},
		{"zero ops", func(s *Spec) { s.MeanTxOps = 0 }},
		{"jitter 1", func(s *Spec) { s.TxOpsJitter = 1 }},
		{"negative jitter", func(s *Spec) { s.TxOpsJitter = -0.1 }},
		{"write frac > 1", func(s *Spec) { s.WriteFrac = 1.1 }},
		{"zero hot", func(s *Spec) { s.HotLines = 0 }},
		{"hot frac > 1", func(s *Spec) { s.HotFrac = 2 }},
		{"negative skew", func(s *Spec) { s.ZipfSkew = -1 }},
		{"zero private", func(s *Spec) { s.PrivateLines = 0 }},
		{"negative compute", func(s *Spec) { s.ComputeMean = -1 }},
		{"negative intertx", func(s *Spec) { s.InterTxMean = -1 }},
		{"zero tx types", func(s *Spec) { s.TxTypes = 0 }},
	}
	for _, e := range edits {
		t.Run(e.name, func(t *testing.T) {
			s := validSpec()
			e.edit(&s)
			if err := s.Validate(); err == nil {
				t.Fatalf("%s passed validation", e.name)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := validSpec()
	a, err := s.Generate(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Generate(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Threads, b.Threads) {
		t.Fatal("same (spec, threads, seed) produced different traces")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	s := validSpec()
	a, _ := s.Generate(4, 1)
	b, _ := s.Generate(4, 2)
	if reflect.DeepEqual(a.Threads, b.Threads) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateDividesWork(t *testing.T) {
	s := validSpec()
	for _, threads := range []int{1, 2, 4, 8} {
		tr, err := s.Generate(threads, 7)
		if err != nil {
			t.Fatal(err)
		}
		if tr.NumThreads() != threads {
			t.Fatalf("threads %d, want %d", tr.NumThreads(), threads)
		}
		per := s.TotalTxs / threads
		for ti := range tr.Threads {
			if got := len(tr.Threads[ti].Txs); got != per {
				t.Fatalf("thread %d has %d txs, want %d", ti, got, per)
			}
		}
	}
}

func TestGenerateValidatesAgainstGeometry(t *testing.T) {
	s := validSpec()
	tr, err := s.Generate(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	g := mem.MustGeometry(64, 4, 1<<30)
	if err := tr.Validate(g); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
}

func TestGenerateRespectsAddressLayout(t *testing.T) {
	s := validSpec()
	tr, _ := s.Generate(4, 42)
	maxLine := s.MaxLine(4)
	for ti := range tr.Threads {
		for _, tx := range tr.Threads[ti].Txs {
			for _, op := range tx.Ops {
				if op.Kind == OpCompute {
					continue
				}
				if op.Line > maxLine {
					t.Fatalf("line %d beyond layout max %d", op.Line, maxLine)
				}
				// Non-hot lines must be in this thread's private region.
				if int(op.Line) >= s.HotLines {
					lo := mem.LineAddr(s.HotLines + ti*s.PrivateLines)
					hi := lo + mem.LineAddr(s.PrivateLines)
					if op.Line < lo || op.Line >= hi {
						t.Fatalf("thread %d touched foreign private line %d", ti, op.Line)
					}
				}
			}
		}
	}
}

func TestGeneratePCsWithinTypeCount(t *testing.T) {
	s := validSpec()
	tr, _ := s.Generate(2, 9)
	pcs := map[uint64]bool{}
	for ti := range tr.Threads {
		for _, tx := range tr.Threads[ti].Txs {
			pcs[tx.PC] = true
		}
	}
	if len(pcs) > s.TxTypes {
		t.Fatalf("%d distinct PCs, spec allows %d", len(pcs), s.TxTypes)
	}
}

func TestTransactionDistinctLines(t *testing.T) {
	tx := Transaction{Ops: []Op{
		{Kind: OpRead, Line: 5},
		{Kind: OpWrite, Line: 7},
		{Kind: OpRead, Line: 5},
		{Kind: OpCompute, Cycles: 3},
		{Kind: OpWrite, Line: 7},
		{Kind: OpWrite, Line: 9},
	}}
	r := tx.ReadLines()
	w := tx.WriteLines()
	if len(r) != 1 || r[0] != 5 {
		t.Fatalf("ReadLines %v", r)
	}
	if len(w) != 2 || w[0] != 7 || w[1] != 9 {
		t.Fatalf("WriteLines %v", w)
	}
}

func TestTraceValidateCatchesCorruption(t *testing.T) {
	g := mem.MustGeometry(64, 4, 4096) // only 64 lines
	mk := func(edit func(*Trace)) *Trace {
		tr := &Trace{
			Name: "x",
			Threads: []Thread{{
				Txs:     []Transaction{{PC: 1, Ops: []Op{{Kind: OpRead, Line: 3}}}},
				InterTx: []int32{1},
			}},
		}
		edit(tr)
		return tr
	}
	if err := mk(func(*Trace) {}).Validate(g); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	cases := []struct {
		name string
		edit func(*Trace)
	}{
		{"no threads", func(tr *Trace) { tr.Threads = nil }},
		{"intertx mismatch", func(tr *Trace) { tr.Threads[0].InterTx = nil }},
		{"empty tx", func(tr *Trace) { tr.Threads[0].Txs[0].Ops = nil }},
		{"line out of memory", func(tr *Trace) { tr.Threads[0].Txs[0].Ops[0].Line = 1 << 40 }},
		{"bad op kind", func(tr *Trace) { tr.Threads[0].Txs[0].Ops[0].Kind = 42 }},
		{"non-positive compute", func(tr *Trace) {
			tr.Threads[0].Txs[0].Ops[0] = Op{Kind: OpCompute, Cycles: 0}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := mk(c.edit).Validate(g); err == nil {
				t.Fatalf("%s passed validation", c.name)
			}
		})
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpCompute.String() != "compute" {
		t.Fatal("OpKind strings wrong")
	}
	if OpKind(9).String() == "" {
		t.Fatal("unknown kind has empty string")
	}
}

func TestTotalsAndCounts(t *testing.T) {
	s := validSpec()
	tr, _ := s.Generate(4, 11)
	if tr.TotalTxs() != 64 {
		t.Fatalf("TotalTxs %d, want 64", tr.TotalTxs())
	}
	if tr.Threads[0].TotalOps() <= 0 {
		t.Fatal("thread 0 has no ops")
	}
}
