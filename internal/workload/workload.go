// Package workload defines transactional workload traces and their
// generator. A trace is the unit of reproducibility: the same trace is run
// under the ungated and gated configurations so the two runs differ only
// in the mechanism under study, exactly as the paper compares the same
// STAMP binary with and without clock gating.
//
// A trace is a set of per-thread transaction streams. Each transaction is
// a sequence of operations — line reads, line writes and compute bursts —
// plus the "PC" that identifies the static transaction (the paper
// identifies a transaction by the program-counter value of its first
// instruction; the renewal check of the gating protocol compares these).
package workload

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// OpKind discriminates trace operations.
type OpKind uint8

const (
	// OpRead is a transactional load of one cache line.
	OpRead OpKind = iota
	// OpWrite is a transactional store to one cache line.
	OpWrite
	// OpCompute is a burst of core-local computation.
	OpCompute
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCompute:
		return "compute"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one trace operation. Line is meaningful for reads and writes,
// Cycles for compute bursts.
type Op struct {
	Kind   OpKind
	Line   mem.LineAddr
	Cycles int32
}

// Transaction is one dynamic transaction instance.
type Transaction struct {
	// PC identifies the static transaction that this instance executes.
	// Instances of the same loop body share a PC; the gating protocol's
	// renewal check compares PCs.
	PC uint64
	// Ops is the body.
	Ops []Op
}

// ReadLines returns the distinct lines the transaction reads.
func (t *Transaction) ReadLines() []mem.LineAddr {
	return t.distinct(OpRead)
}

// WriteLines returns the distinct lines the transaction writes.
func (t *Transaction) WriteLines() []mem.LineAddr {
	return t.distinct(OpWrite)
}

func (t *Transaction) distinct(kind OpKind) []mem.LineAddr {
	seen := make(map[mem.LineAddr]struct{})
	var out []mem.LineAddr
	for _, op := range t.Ops {
		if op.Kind != kind {
			continue
		}
		if _, ok := seen[op.Line]; ok {
			continue
		}
		seen[op.Line] = struct{}{}
		out = append(out, op.Line)
	}
	return out
}

// Thread is one processor's stream of transactions. InterTx holds the
// non-transactional compute cycles executed before each transaction
// (len(InterTx) == len(Txs)); it models the code between atomic regions.
type Thread struct {
	Txs     []Transaction
	InterTx []int32
}

// TotalOps returns the number of operations across all transactions.
func (th *Thread) TotalOps() int {
	n := 0
	for i := range th.Txs {
		n += len(th.Txs[i].Ops)
	}
	return n
}

// Trace is a complete workload for one run. A Trace is immutable once
// built: the simulator reads thread state by index and never writes any
// of it back (processors keep their own txIdx/opIdx cursors), which is
// what lets the session trace cache hand one *Trace to many concurrent
// runs — including the two runs of a pair and the reused Systems of
// different pool workers — without copying. tcc's
// TestRunLeavesTraceUntouched asserts the no-mutation half of the
// contract.
type Trace struct {
	// Name labels the workload (e.g. "intruder").
	Name string
	// Threads holds one stream per processor.
	Threads []Thread
	// Spec records the generator parameters that produced the trace,
	// for provenance. Nil for hand-built traces.
	Spec *Spec
}

// NumThreads returns the processor count the trace was built for.
func (tr *Trace) NumThreads() int { return len(tr.Threads) }

// TotalTxs returns the number of transactions across all threads.
func (tr *Trace) TotalTxs() int {
	n := 0
	for i := range tr.Threads {
		n += len(tr.Threads[i].Txs)
	}
	return n
}

// Validate checks the trace is well formed for the given geometry: every
// referenced line is inside physical memory and per-thread streams are
// consistent.
func (tr *Trace) Validate(geom *mem.Geometry) error {
	if len(tr.Threads) == 0 {
		return fmt.Errorf("workload: trace %q has no threads", tr.Name)
	}
	for ti := range tr.Threads {
		th := &tr.Threads[ti]
		if len(th.InterTx) != len(th.Txs) {
			return fmt.Errorf("workload: thread %d InterTx length %d != Txs length %d",
				ti, len(th.InterTx), len(th.Txs))
		}
		for xi := range th.Txs {
			tx := &th.Txs[xi]
			if len(tx.Ops) == 0 {
				return fmt.Errorf("workload: thread %d tx %d is empty", ti, xi)
			}
			for oi, op := range tx.Ops {
				switch op.Kind {
				case OpRead, OpWrite:
					if uint64(geom.AddrOf(op.Line)) >= geom.MemBytes() {
						return fmt.Errorf("workload: thread %d tx %d op %d line %d outside memory",
							ti, xi, oi, op.Line)
					}
				case OpCompute:
					if op.Cycles <= 0 {
						return fmt.Errorf("workload: thread %d tx %d op %d compute %d must be positive",
							ti, xi, oi, op.Cycles)
					}
				default:
					return fmt.Errorf("workload: thread %d tx %d op %d has invalid kind %d",
						ti, xi, oi, op.Kind)
				}
			}
		}
	}
	return nil
}

// Spec parameterizes the synthetic workload generator. The fields map to
// the workload characteristics that drive HTM abort behaviour: transaction
// length, read/write-set sizes, and the size and skew of the shared
// hot region that produces conflicts.
type Spec struct {
	// Name labels the workload.
	Name string
	// TotalTxs is the total transaction count, divided evenly among
	// threads (STAMP divides a fixed work pool among threads, so more
	// processors mean fewer transactions each).
	TotalTxs int
	// MeanTxOps is the mean number of memory operations per transaction.
	MeanTxOps int
	// TxOpsJitter is the +/- fractional spread of transaction length
	// (0.5 means lengths vary uniformly within ±50% of the mean).
	TxOpsJitter float64
	// WriteFrac is the fraction of memory operations that are writes.
	WriteFrac float64
	// HotLines is the size (in cache lines) of the shared conflict-prone
	// region.
	HotLines int
	// HotFrac is the fraction of memory operations that touch the hot
	// region (the rest touch thread-private lines).
	HotFrac float64
	// ZipfSkew is the access skew within the hot region; 0 is uniform.
	ZipfSkew float64
	// PrivateLines is the size of each thread's private region.
	PrivateLines int
	// ComputeMean is the mean compute-burst length inserted between
	// memory operations, in cycles.
	ComputeMean float64
	// InterTxMean is the mean non-transactional gap before each
	// transaction, in cycles.
	InterTxMean float64
	// TxTypes is the number of distinct static transactions (PCs); the
	// gating renewal check keys on these. STAMP kernels have a handful
	// of atomic blocks executed inside loops.
	TxTypes int
}

// Validate checks generator parameters.
func (s *Spec) Validate() error {
	switch {
	case s.TotalTxs <= 0:
		return fmt.Errorf("workload: TotalTxs %d must be positive", s.TotalTxs)
	case s.MeanTxOps <= 0:
		return fmt.Errorf("workload: MeanTxOps %d must be positive", s.MeanTxOps)
	case s.TxOpsJitter < 0 || s.TxOpsJitter >= 1:
		return fmt.Errorf("workload: TxOpsJitter %f out of [0,1)", s.TxOpsJitter)
	case s.WriteFrac < 0 || s.WriteFrac > 1:
		return fmt.Errorf("workload: WriteFrac %f out of [0,1]", s.WriteFrac)
	case s.HotLines <= 0:
		return fmt.Errorf("workload: HotLines %d must be positive", s.HotLines)
	case s.HotFrac < 0 || s.HotFrac > 1:
		return fmt.Errorf("workload: HotFrac %f out of [0,1]", s.HotFrac)
	case s.ZipfSkew < 0:
		return fmt.Errorf("workload: ZipfSkew %f must be non-negative", s.ZipfSkew)
	case s.PrivateLines <= 0:
		return fmt.Errorf("workload: PrivateLines %d must be positive", s.PrivateLines)
	case s.ComputeMean < 0:
		return fmt.Errorf("workload: ComputeMean %f must be non-negative", s.ComputeMean)
	case s.InterTxMean < 0:
		return fmt.Errorf("workload: InterTxMean %f must be non-negative", s.InterTxMean)
	case s.TxTypes <= 0:
		return fmt.Errorf("workload: TxTypes %d must be positive", s.TxTypes)
	}
	return nil
}

// Layout of the synthetic address space, in lines:
//
//	[0, HotLines)                          shared hot region
//	[hotEnd + t*PrivateLines, ...)         thread t's private region
//
// The hot region is where conflicts happen; private lines provide the
// cache-miss background traffic.
func (s *Spec) hotLine(idx int) mem.LineAddr {
	return mem.LineAddr(idx)
}

func (s *Spec) privateLine(thread, idx int) mem.LineAddr {
	return mem.LineAddr(s.HotLines + thread*s.PrivateLines + idx)
}

// MaxLine returns the highest line address the generated trace can touch,
// for geometry validation.
func (s *Spec) MaxLine(threads int) mem.LineAddr {
	return mem.LineAddr(s.HotLines + threads*s.PrivateLines - 1)
}

// Generate builds a deterministic trace for the given thread count and
// seed. The same (spec, threads, seed) triple always yields an identical
// trace.
func (s *Spec) Generate(threads int, seed uint64) (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if threads <= 0 {
		return nil, fmt.Errorf("workload: threads %d must be positive", threads)
	}
	tr := &Trace{Name: s.Name, Threads: make([]Thread, threads), Spec: s}
	perThread := s.TotalTxs / threads
	if perThread == 0 {
		perThread = 1
	}
	for t := 0; t < threads; t++ {
		rng := sim.NewRNG(seed, uint64(t)+0x1000)
		zipf := sim.NewZipf(rng.Derive(7), s.HotLines, s.ZipfSkew)
		th := &tr.Threads[t]
		th.Txs = make([]Transaction, perThread)
		th.InterTx = make([]int32, perThread)
		for x := 0; x < perThread; x++ {
			th.InterTx[x] = int32(rng.Geometric(maxf(s.InterTxMean, 1)))
			th.Txs[x] = s.genTx(t, rng, zipf)
		}
	}
	return tr, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func (s *Spec) genTx(thread int, rng *sim.RNG, zipf *sim.Zipf) Transaction {
	nops := s.MeanTxOps
	if s.TxOpsJitter > 0 {
		spread := int(float64(s.MeanTxOps) * s.TxOpsJitter)
		if spread > 0 {
			nops += rng.Intn(2*spread+1) - spread
		}
	}
	if nops < 1 {
		nops = 1
	}
	tx := Transaction{
		// PCs are synthetic but stable: type k of workload w gets PC
		// 0x4000_0000 + k. Distinct workloads reuse PCs harmlessly —
		// PCs only ever compare within one run.
		PC:  0x40000000 + uint64(rng.Intn(s.TxTypes)),
		Ops: make([]Op, 0, 2*nops),
	}
	for i := 0; i < nops; i++ {
		if s.ComputeMean > 0 {
			tx.Ops = append(tx.Ops, Op{Kind: OpCompute, Cycles: int32(rng.Geometric(s.ComputeMean))})
		}
		var line mem.LineAddr
		if rng.Bool(s.HotFrac) {
			line = s.hotLine(zipf.Draw())
		} else {
			line = s.privateLine(thread, rng.Intn(s.PrivateLines))
		}
		kind := OpRead
		if rng.Bool(s.WriteFrac) {
			kind = OpWrite
		}
		tx.Ops = append(tx.Ops, Op{Kind: kind, Line: line})
	}
	return tx
}
