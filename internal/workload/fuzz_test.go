package workload

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzTraceDecode throws arbitrary bytes at both trace decoders. The
// store loads files another process may have half-written or a disk may
// have mangled, so the decoders' contract under garbage is total: either
// a valid trace or an error wrapping ErrCorrupt — never a panic, and
// never an allocation sized by an unbacked length prefix. Accepted
// inputs must survive a re-encode round trip.
func FuzzTraceDecode(f *testing.F) {
	s := validSpec()
	tr, err := s.Generate(2, 9)
	if err != nil {
		f.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := Encode(&v1, tr); err != nil {
		f.Fatal(err)
	}
	v2, err := MarshalV2(tr)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2)
	f.Add(v1.Bytes()[:v1.Len()/2])
	f.Add(v2[:len(v2)/2])
	f.Add([]byte("CGTRACE1"))
	f.Add([]byte("CGTRACE2"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if tr, err := Decode(bytes.NewReader(data)); err == nil {
			if err := Encode(bytes.NewBuffer(nil), tr); err != nil {
				t.Fatalf("decoded v1 trace does not re-encode: %v", err)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("v1 decode error does not wrap ErrCorrupt: %v", err)
		}
		if tr, err := DecodeV2Bytes(data); err == nil {
			redo, err := MarshalV2(tr)
			if err != nil {
				t.Fatalf("decoded v2 trace does not re-encode: %v", err)
			}
			if !bytes.Equal(redo, data) {
				t.Fatal("v2 re-encode of an accepted input changed the bytes")
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("v2 decode error does not wrap ErrCorrupt: %v", err)
		}
	})
}
