package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"unsafe"

	"repro/internal/mem"
)

// CGTRACE2 is the flat columnar trace format behind the shared on-disk
// trace store (internal/tracestore). Where CGTRACE1 interleaves per-op
// records for streaming, CGTRACE2 lays every column out as one
// contiguous, 8-aligned array so a decoder handed the whole file — in
// particular an mmap'd region — can materialize a read-only *Trace whose
// op arrays are slices aliasing the file bytes, with zero per-load
// copies of the op payload. Aliasing is safe because a Trace is
// immutable once built (see the Trace doc and tcc's
// TestRunLeavesTraceUntouched): the simulator only ever reads it.
//
// Layout (all integers little-endian, every section padded to 8 bytes):
//
//	off  0  magic     [8]byte "CGTRACE2"
//	off  8  checksum  uint64   FNV-1a 64 of every byte after this field
//	off 16  nameLen   uint32
//	off 20  threads   uint32
//	off 24  totalTxs  uint64
//	off 32  totalOps  uint64
//	off 40  name      [nameLen]byte, zero-padded to 8
//	        txCounts  [threads]uint32, zero-padded to 8   txs per thread
//	        interTx   [totalTxs]int32, zero-padded to 8   thread-major
//	        pcs       [totalTxs]uint64                    thread-major
//	        opCounts  [totalTxs]uint32, zero-padded to 8  thread-major
//	        ops       [totalOps]opRec                     thread/tx-major
//
// opRec is 24 bytes, the in-memory layout of Op frozen into the format:
// kind at offset 0, line (uint64 LE) at offset 8, cycles (int32 LE) at
// offset 16; all other bytes zero. The encoder always writes records
// field by field (so padding is deterministically zero and the same
// trace always produces the same bytes); the decoder aliases the record
// array as []Op directly when the host's Op layout and endianness match
// the format — the common case on amd64/arm64 — and falls back to a
// copying decode otherwise.

var traceMagic2 = [8]byte{'C', 'G', 'T', 'R', 'A', 'C', 'E', '2'}

const (
	v2HeaderSize = 40
	v2OpRecSize  = 24
	v2MaxName    = 1 << 16
	v2MaxThreads = 1 << 16
	v2MaxTxs     = 1 << 40
	v2MaxOps     = 1 << 40
)

// opsAliasable reports whether the host's in-memory Op layout coincides
// with the on-disk opRec layout, which is what permits the zero-copy
// aliasing decode. True on every little-endian platform where Op is
// {kind@0, line@8, cycles@16, size 24} — i.e. everywhere Go currently
// runs this code in practice; the copying fallback keeps exotic hosts
// correct.
var opsAliasable = func() bool {
	if unsafe.Sizeof(Op{}) != v2OpRecSize {
		return false
	}
	if unsafe.Offsetof(Op{}.Kind) != 0 ||
		unsafe.Offsetof(Op{}.Line) != 8 ||
		unsafe.Offsetof(Op{}.Cycles) != 16 {
		return false
	}
	probe := uint16(1)
	return *(*byte)(unsafe.Pointer(&probe)) == 1 // little-endian host
}()

// AliasingSupported reports whether DecodeV2Bytes runs the zero-copy
// aliasing decode on this host. Alloc-bounded tests of the mmap path
// skip when it is false.
func AliasingSupported() bool { return opsAliasable }

func pad8(n int) int { return (8 - n%8) % 8 }

// MarshalV2 serializes the trace in the CGTRACE2 columnar format and
// returns the complete file image. The same trace always marshals to the
// same bytes.
func MarshalV2(tr *Trace) ([]byte, error) {
	if len(tr.Name) > v2MaxName {
		return nil, fmt.Errorf("workload: encode2: name length %d exceeds limit", len(tr.Name))
	}
	if len(tr.Threads) == 0 || len(tr.Threads) > v2MaxThreads {
		return nil, fmt.Errorf("workload: encode2: thread count %d out of range", len(tr.Threads))
	}
	totalTxs, totalOps := 0, 0
	for ti := range tr.Threads {
		th := &tr.Threads[ti]
		if len(th.InterTx) != len(th.Txs) {
			return nil, fmt.Errorf("workload: encode2: thread %d inconsistent InterTx", ti)
		}
		totalTxs += len(th.Txs)
		for xi := range th.Txs {
			totalOps += len(th.Txs[xi].Ops)
		}
	}

	size := v2HeaderSize +
		len(tr.Name) + pad8(len(tr.Name)) +
		4*len(tr.Threads) + pad8(4*len(tr.Threads)) +
		4*totalTxs + pad8(4*totalTxs) + // interTx
		8*totalTxs + // pcs
		4*totalTxs + pad8(4*totalTxs) + // opCounts
		v2OpRecSize*totalOps
	buf := make([]byte, size)
	le := binary.LittleEndian

	copy(buf[0:8], traceMagic2[:])
	le.PutUint32(buf[16:], uint32(len(tr.Name)))
	le.PutUint32(buf[20:], uint32(len(tr.Threads)))
	le.PutUint64(buf[24:], uint64(totalTxs))
	le.PutUint64(buf[32:], uint64(totalOps))
	off := v2HeaderSize
	off += copy(buf[off:], tr.Name)
	off += pad8(len(tr.Name))

	for ti := range tr.Threads {
		le.PutUint32(buf[off+4*ti:], uint32(len(tr.Threads[ti].Txs)))
	}
	off += 4*len(tr.Threads) + pad8(4*len(tr.Threads))

	interOff := off
	pcOff := interOff + 4*totalTxs + pad8(4*totalTxs)
	cntOff := pcOff + 8*totalTxs
	opOff := cntOff + 4*totalTxs + pad8(4*totalTxs)
	tx := 0
	for ti := range tr.Threads {
		th := &tr.Threads[ti]
		for xi := range th.Txs {
			le.PutUint32(buf[interOff+4*tx:], uint32(th.InterTx[xi]))
			le.PutUint64(buf[pcOff+8*tx:], th.Txs[xi].PC)
			le.PutUint32(buf[cntOff+4*tx:], uint32(len(th.Txs[xi].Ops)))
			tx++
			for _, op := range th.Txs[xi].Ops {
				switch op.Kind {
				case OpRead, OpWrite, OpCompute:
				default:
					return nil, fmt.Errorf("workload: encode2: bad op kind %d", op.Kind)
				}
				rec := buf[opOff : opOff+v2OpRecSize]
				rec[0] = byte(op.Kind)
				le.PutUint64(rec[8:], uint64(op.Line))
				le.PutUint32(rec[16:], uint32(op.Cycles))
				opOff += v2OpRecSize
			}
		}
	}

	h := fnv.New64a()
	h.Write(buf[16:])
	le.PutUint64(buf[8:], h.Sum64())
	return buf, nil
}

// EncodeV2 writes the trace to w in the CGTRACE2 columnar format.
func EncodeV2(w io.Writer, tr *Trace) error {
	buf, err := MarshalV2(tr)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// DecodeV2Bytes decodes a complete CGTRACE2 file image. When the host's
// Op layout matches the on-disk record layout and data is 8-aligned, the
// returned trace's Ops and InterTx slices alias data directly — zero
// copies of the op payload — so the caller must keep data valid (and
// unmodified) for the trace's whole lifetime; an mmap'd region stays
// valid until munmap. Every structural defect — truncation, bad magic,
// a checksum mismatch, counts that disagree with the file size — is
// reported as an error wrapping ErrCorrupt.
func DecodeV2Bytes(data []byte) (*Trace, error) {
	if len(data) < v2HeaderSize {
		return nil, corruptf("decode2: %d-byte input shorter than the %d-byte header", len(data), v2HeaderSize)
	}
	if [8]byte(data[0:8]) != traceMagic2 {
		return nil, corruptf("bad trace magic %q", data[0:8])
	}
	le := binary.LittleEndian
	h := fnv.New64a()
	h.Write(data[16:])
	if sum := h.Sum64(); sum != le.Uint64(data[8:]) {
		return nil, corruptf("decode2: checksum mismatch (file %#x, computed %#x)", le.Uint64(data[8:]), sum)
	}
	nameLen := int(le.Uint32(data[16:]))
	nThreads := int(le.Uint32(data[20:]))
	totalTxs := le.Uint64(data[24:])
	totalOps := le.Uint64(data[32:])
	switch {
	case nameLen > v2MaxName:
		return nil, corruptf("decode2: name length %d exceeds limit", nameLen)
	case nThreads == 0 || nThreads > v2MaxThreads:
		return nil, corruptf("decode2: thread count %d out of range", nThreads)
	case totalTxs > v2MaxTxs:
		return nil, corruptf("decode2: transaction count %d out of range", totalTxs)
	case totalOps > v2MaxOps:
		return nil, corruptf("decode2: op count %d out of range", totalOps)
	}
	nTxs, nOps := int(totalTxs), int(totalOps)
	// Section offsets, validated as a whole against the input length
	// before any array is touched: a lying count can never index past
	// the buffer or size an allocation from unread bytes.
	nameOff := v2HeaderSize
	txCntOff := nameOff + nameLen + pad8(nameLen)
	interOff := txCntOff + 4*nThreads + pad8(4*nThreads)
	pcOff := interOff + 4*nTxs + pad8(4*nTxs)
	cntOff := pcOff + 8*nTxs
	opOff := cntOff + 4*nTxs + pad8(4*nTxs)
	end := opOff + v2OpRecSize*nOps
	if end != len(data) {
		return nil, corruptf("decode2: counts require %d bytes, input has %d", end, len(data))
	}

	txCounts := data[txCntOff:interOff]
	var sumTxs uint64
	for t := 0; t < nThreads; t++ {
		sumTxs += uint64(le.Uint32(txCounts[4*t:]))
	}
	if sumTxs != totalTxs {
		return nil, corruptf("decode2: per-thread tx counts sum to %d, header says %d", sumTxs, totalTxs)
	}
	opCounts := data[cntOff : cntOff+4*nTxs]
	var sumOps uint64
	for x := 0; x < nTxs; x++ {
		sumOps += uint64(le.Uint32(opCounts[4*x:]))
	}
	if sumOps != totalOps {
		return nil, corruptf("decode2: per-tx op counts sum to %d, header says %d", sumOps, totalOps)
	}
	// The format is canonical — every padding byte is zero — so that one
	// trace has exactly one file image (the content address depends on
	// it, and an accepted input always re-encodes byte-identically).
	for _, span := range [][2]int{
		{nameOff + nameLen, txCntOff},
		{txCntOff + 4*nThreads, interOff},
		{interOff + 4*nTxs, pcOff},
		{cntOff + 4*nTxs, opOff},
	} {
		for i := span[0]; i < span[1]; i++ {
			if data[i] != 0 {
				return nil, corruptf("decode2: nonzero padding at offset %d", i)
			}
		}
	}
	opBytes := data[opOff:end]
	for o := 0; o < nOps; o++ {
		rec := opBytes[o*v2OpRecSize : (o+1)*v2OpRecSize]
		if k := OpKind(rec[0]); k != OpRead && k != OpWrite && k != OpCompute {
			return nil, corruptf("decode2: bad op kind %d at op %d", k, o)
		}
		if le.Uint64(rec[0:8])>>8 != 0 || le.Uint32(rec[20:24]) != 0 {
			return nil, corruptf("decode2: nonzero padding in op %d", o)
		}
	}

	alias := opsAliasable && (len(data) == 0 || uintptr(unsafe.Pointer(&data[0]))%8 == 0)
	var ops []Op
	var inter []int32
	if alias {
		if nOps > 0 {
			ops = unsafe.Slice((*Op)(unsafe.Pointer(&opBytes[0])), nOps)
		}
		if nTxs > 0 {
			inter = unsafe.Slice((*int32)(unsafe.Pointer(&data[interOff])), nTxs)
		}
	} else {
		ops = make([]Op, nOps)
		for o := range ops {
			rec := opBytes[o*v2OpRecSize:]
			ops[o] = Op{
				Kind:   OpKind(rec[0]),
				Line:   mem.LineAddr(le.Uint64(rec[8:])),
				Cycles: int32(le.Uint32(rec[16:])),
			}
		}
		inter = make([]int32, nTxs)
		for x := range inter {
			inter[x] = int32(le.Uint32(data[interOff+4*x:]))
		}
	}

	tr := &Trace{
		Name:    string(data[nameOff : nameOff+nameLen]),
		Threads: make([]Thread, nThreads),
	}
	// One transaction-header arena for the whole trace: the per-thread
	// Txs slices subslice it, so decoding allocates O(1) slices however
	// many threads and transactions the trace has.
	txs := make([]Transaction, nTxs)
	tx, op := 0, 0
	for t := 0; t < nThreads; t++ {
		n := int(le.Uint32(txCounts[4*t:]))
		th := &tr.Threads[t]
		th.Txs = txs[tx : tx+n : tx+n]
		th.InterTx = inter[tx : tx+n : tx+n]
		for x := 0; x < n; x++ {
			k := int(le.Uint32(opCounts[4*(tx+x):]))
			txs[tx+x].PC = le.Uint64(data[pcOff+8*(tx+x):])
			txs[tx+x].Ops = ops[op : op+k : op+k]
			op += k
		}
		tx += n
	}
	return tr, nil
}
