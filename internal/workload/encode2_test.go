package workload

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"reflect"
	"testing"
)

func TestV2RoundTrip(t *testing.T) {
	s := validSpec()
	tr, err := s.Generate(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := MarshalV2(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeV2Bytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name {
		t.Fatalf("name %q, want %q", got.Name, tr.Name)
	}
	if !reflect.DeepEqual(got.Threads, tr.Threads) {
		t.Fatal("threads not preserved by round trip")
	}
}

// The format is the content address: the same trace must always marshal
// to the same bytes, and re-encoding a decoded trace must reproduce the
// original file image exactly.
func TestV2Deterministic(t *testing.T) {
	s := validSpec()
	tr, err := s.Generate(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := MarshalV2(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalV2(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two marshals of one trace differ")
	}
	got, err := DecodeV2Bytes(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := MarshalV2(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("re-encoding a decoded trace changed the bytes")
	}
}

// fixV2Checksum recomputes the header checksum after a test mutated the
// file image, so corruption tests exercise the validation they target
// instead of tripping the checksum first.
func fixV2Checksum(buf []byte) {
	h := fnv.New64a()
	h.Write(buf[16:])
	binary.LittleEndian.PutUint64(buf[8:], h.Sum64())
}

func TestV2RejectsCorruption(t *testing.T) {
	s := validSpec()
	tr, err := s.Generate(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := MarshalV2(tr)
	if err != nil {
		t.Fatal(err)
	}

	// Every strict prefix must fail cleanly, never panic.
	for _, cut := range []int{0, 7, 8, 16, 39, 40, len(full) / 2, len(full) - 1} {
		if _, err := DecodeV2Bytes(full[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}

	// A bit flip anywhere in the body trips the checksum.
	for _, pos := range []int{16, 41, len(full) / 2, len(full) - 1} {
		mut := bytes.Clone(full)
		mut[pos] ^= 0x40
		if _, err := DecodeV2Bytes(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: err = %v, want ErrCorrupt", pos, err)
		}
	}

	// Bad magic.
	mut := bytes.Clone(full)
	copy(mut, "NOTTRACE")
	if _, err := DecodeV2Bytes(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}

	// A lying op count with a valid checksum must be rejected by the
	// size arithmetic, not trusted into an allocation or an index.
	mut = bytes.Clone(full)
	binary.LittleEndian.PutUint64(mut[32:], 1<<30)
	fixV2Checksum(mut)
	if _, err := DecodeV2Bytes(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lying op count: err = %v, want ErrCorrupt", err)
	}

	// An op kind outside the enum, checksum fixed up.
	_, err = DecodeV2Bytes(full) // locate the op section via a clean decode
	if err != nil {
		t.Fatal(err)
	}
	mut = bytes.Clone(full)
	mut[len(mut)-v2OpRecSize] = 99
	fixV2Checksum(mut)
	if _, err := DecodeV2Bytes(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad op kind: err = %v, want ErrCorrupt", err)
	}
}

// TestV2DecodeAllocBounded pins the zero-copy contract of the aliasing
// decode: however many operations the trace holds, decoding allocates
// only the fixed trace skeleton (trace, thread table, transaction
// arena, name) — never a per-transaction or per-op copy of the payload.
func TestV2DecodeAllocBounded(t *testing.T) {
	if !opsAliasable {
		t.Skip("host Op layout does not permit the aliasing decode")
	}
	s := validSpec()
	s.TotalTxs = 4096
	tr, err := s.Generate(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := MarshalV2(tr)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(16, func() {
		if _, err := DecodeV2Bytes(buf); err != nil {
			t.Fatal(err)
		}
	})
	// 4 threads x 1024 txs: a copying decode pays thousands of
	// allocations; the aliasing decode pays a handful.
	if allocs > 16 {
		t.Fatalf("aliasing decode allocated %v times per load, want <= 16", allocs)
	}
}

func TestDecodeWrapsErrCorrupt(t *testing.T) {
	// CGTRACE1: truncation, bad magic and lying counts all wrap the
	// sentinel, so the store can branch on errors.Is to quarantine.
	if _, err := Decode(bytes.NewReader([]byte("NOTATRACE-------"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}
	s := validSpec()
	tr, err := s.Generate(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Decode(bytes.NewReader(full[:len(full)/2])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncation: err = %v, want ErrCorrupt", err)
	}
}

// TestDecodeLyingCountsNoOOM feeds headers whose length prefixes claim
// astronomically more elements than the input holds. The decoder must
// fail on the missing bytes without sizing allocations from the lie.
func TestDecodeLyingCountsNoOOM(t *testing.T) {
	le := binary.LittleEndian
	var buf bytes.Buffer
	buf.WriteString("CGTRACE1")
	var u32 [4]byte
	le.PutUint32(u32[:], 0) // empty name
	buf.Write(u32[:])
	le.PutUint32(u32[:], 1) // one thread
	buf.Write(u32[:])
	le.PutUint32(u32[:], 0xffff_ffff) // claiming 4B transactions
	buf.Write(u32[:])
	if _, err := Decode(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lying tx count: err = %v, want ErrCorrupt", err)
	}

	// Same lie one level down: a single tx claiming 4B ops.
	buf.Reset()
	buf.WriteString("CGTRACE1")
	le.PutUint32(u32[:], 0)
	buf.Write(u32[:])
	le.PutUint32(u32[:], 1)
	buf.Write(u32[:])
	le.PutUint32(u32[:], 1) // one tx
	buf.Write(u32[:])
	le.PutUint32(u32[:], 5) // interTx
	buf.Write(u32[:])
	var u64 [8]byte
	buf.Write(u64[:]) // pc
	le.PutUint32(u32[:], 0xffff_ffff)
	buf.Write(u32[:])
	if _, err := Decode(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lying op count: err = %v, want ErrCorrupt", err)
	}
}
