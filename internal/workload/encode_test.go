package workload

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := validSpec()
	tr, err := s.Generate(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name {
		t.Fatalf("name %q, want %q", got.Name, tr.Name)
	}
	if !reflect.DeepEqual(got.Threads, tr.Threads) {
		t.Fatal("threads not preserved by round trip")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	_, err := Decode(strings.NewReader("NOTATRACE-------"))
	if err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	s := validSpec()
	tr, _ := s.Generate(2, 1)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly, never panic.
	for _, cut := range []int{0, 4, 8, 12, 20, len(full) / 2, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsAbsurdCounts(t *testing.T) {
	// magic + huge name length
	var buf bytes.Buffer
	buf.WriteString("CGTRACE1")
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := Decode(&buf); err == nil {
		t.Fatal("absurd name length accepted")
	}
}

func TestEncodeRejectsInconsistentThread(t *testing.T) {
	tr := &Trace{Name: "bad", Threads: []Thread{{
		Txs:     []Transaction{{PC: 1, Ops: []Op{{Kind: OpRead, Line: 1}}}},
		InterTx: nil, // length mismatch
	}}}
	if err := Encode(io.Discard, tr); err == nil {
		t.Fatal("inconsistent thread encoded")
	}
}

func TestEncodeRejectsBadOpKind(t *testing.T) {
	tr := &Trace{Name: "bad", Threads: []Thread{{
		Txs:     []Transaction{{PC: 1, Ops: []Op{{Kind: 77}}}},
		InterTx: []int32{1},
	}}}
	if err := Encode(io.Discard, tr); err == nil {
		t.Fatal("bad op kind encoded")
	}
}

// Property: random hand-built traces survive the round trip bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, nThreads, nTxs uint8) bool {
		rng := sim.NewRNG(seed, 3)
		threads := int(nThreads%4) + 1
		txs := int(nTxs%8) + 1
		tr := &Trace{Name: "q"}
		for i := 0; i < threads; i++ {
			th := Thread{}
			for x := 0; x < txs; x++ {
				tx := Transaction{PC: rng.Uint64()}
				for o := 0; o < rng.Intn(6)+1; o++ {
					switch rng.Intn(3) {
					case 0:
						tx.Ops = append(tx.Ops, Op{Kind: OpRead, Line: mem.LineAddr(rng.Intn(1 << 20))})
					case 1:
						tx.Ops = append(tx.Ops, Op{Kind: OpWrite, Line: mem.LineAddr(rng.Intn(1 << 20))})
					default:
						tx.Ops = append(tx.Ops, Op{Kind: OpCompute, Cycles: int32(rng.Intn(100) + 1)})
					}
				}
				th.Txs = append(th.Txs, tx)
				th.InterTx = append(th.InterTx, int32(rng.Intn(50)))
			}
			tr.Threads = append(tr.Threads, th)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Threads, tr.Threads) && got.Name == tr.Name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
