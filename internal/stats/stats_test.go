package stats

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLedgerBasicResidency(t *testing.T) {
	l := NewLedger(2)
	l.Transition(0, StateMiss, 10)
	l.Transition(0, StateRun, 30)
	l.Transition(1, StateGated, 50)
	l.Close(100)

	res := l.Residency(0, 100)
	// Proc 0: run [0,10), miss [10,30), run [30,100).
	if res[0][StateRun] != 80 || res[0][StateMiss] != 20 {
		t.Fatalf("proc 0 residency %+v", res[0])
	}
	// Proc 1: run [0,50), gated [50,100).
	if res[1][StateRun] != 50 || res[1][StateGated] != 50 {
		t.Fatalf("proc 1 residency %+v", res[1])
	}
}

func TestLedgerWindowedResidency(t *testing.T) {
	l := NewLedger(1)
	l.Transition(0, StateCommit, 10)
	l.Transition(0, StateRun, 20)
	l.Close(40)
	res := l.Residency(15, 25)
	if res[0][StateCommit] != 5 || res[0][StateRun] != 5 {
		t.Fatalf("windowed residency %+v", res[0])
	}
}

func TestLedgerSameStateTransitionIsNoop(t *testing.T) {
	l := NewLedger(1)
	l.Transition(0, StateRun, 5)
	l.Transition(0, StateRun, 9)
	l.Close(10)
	if n := len(l.Segments(0)); n != 1 {
		t.Fatalf("%d segments, want 1 merged run segment", n)
	}
}

func TestLedgerZeroLengthSegmentDropped(t *testing.T) {
	l := NewLedger(1)
	l.Transition(0, StateMiss, 5)
	l.Transition(0, StateRun, 5) // zero-length miss
	l.Close(10)
	for _, seg := range l.Segments(0) {
		if seg.From == seg.To {
			t.Fatalf("zero-length segment survived: %+v", seg)
		}
	}
	res := l.Residency(0, 10)
	if res[0][StateMiss] != 0 || res[0][StateRun] != 10 {
		t.Fatalf("residency %+v", res[0])
	}
}

func TestLedgerBackwardsTransitionPanics(t *testing.T) {
	l := NewLedger(1)
	l.Transition(0, StateMiss, 10)
	defer func() {
		if recover() == nil {
			t.Error("backwards transition did not panic")
		}
	}()
	l.Transition(0, StateRun, 5)
}

func TestLedgerTransitionAfterClosePanics(t *testing.T) {
	l := NewLedger(1)
	l.Close(10)
	defer func() {
		if recover() == nil {
			t.Error("transition after close did not panic")
		}
	}()
	l.Transition(0, StateMiss, 20)
}

func TestLedgerSegmentsBeforeClosePanics(t *testing.T) {
	l := NewLedger(1)
	defer func() {
		if recover() == nil {
			t.Error("Segments before Close did not panic")
		}
	}()
	l.Segments(0)
}

func TestLedgerDoubleCloseIdempotent(t *testing.T) {
	l := NewLedger(1)
	l.Close(10)
	l.Close(20) // must not extend or panic
	if l.End() != 10 {
		t.Fatalf("End %d, want 10", l.End())
	}
}

func TestCurrentState(t *testing.T) {
	l := NewLedger(1)
	if l.CurrentState(0) != StateRun {
		t.Fatal("initial state not run")
	}
	l.Transition(0, StateGated, 3)
	if l.CurrentState(0) != StateGated {
		t.Fatal("current state not tracked")
	}
}

func TestTotalResidencySums(t *testing.T) {
	l := NewLedger(3)
	l.Transition(1, StateMiss, 10)
	l.Transition(2, StateCommit, 20)
	l.Close(50)
	tot := l.TotalResidency(0, 50)
	if tot[StateRun]+tot[StateMiss]+tot[StateCommit]+tot[StateGated] != 150 {
		t.Fatalf("total residency %+v does not cover 3 procs x 50 cycles", tot)
	}
	if tot[StateMiss] != 40 || tot[StateCommit] != 30 {
		t.Fatalf("total residency %+v", tot)
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateRun: "run", StateMiss: "miss", StateCommit: "commit", StateGated: "gated",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state empty string")
	}
}

func TestCountersAbortRate(t *testing.T) {
	c := Counters{Aborts: 30, Commits: 10}
	if c.AbortRate() != 3 {
		t.Fatalf("abort rate %f", c.AbortRate())
	}
	if (&Counters{}).AbortRate() != 0 {
		t.Fatal("zero-commit abort rate not 0")
	}
}

// Property: residencies always partition procs x window, regardless of
// the transition pattern.
func TestQuickResidencyPartition(t *testing.T) {
	f := func(seed uint64, nProcsRaw, nTransRaw uint8) bool {
		procs := int(nProcsRaw%4) + 1
		trans := int(nTransRaw % 50)
		rng := sim.NewRNG(seed, 9)
		l := NewLedger(procs)
		now := sim.Time(0)
		for i := 0; i < trans; i++ {
			now += sim.Time(rng.Intn(20))
			l.Transition(rng.Intn(procs), State(rng.Intn(int(NumStates))), now)
		}
		end := now + sim.Time(rng.Intn(10)+1)
		l.Close(end)
		tot := l.TotalResidency(0, end)
		var sum sim.Time
		for s := 0; s < NumStates; s++ {
			sum += tot[s]
		}
		return sum == sim.Time(procs)*end
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
