// Package stats records per-processor state residency over simulated time
// and aggregates protocol event counters. The residency ledger is the raw
// material of the paper's energy model (§IV): every equation there is a
// function of how long each processor spent running, stalled on a miss,
// committing, or clock-gated.
package stats

import (
	"fmt"

	"repro/internal/sim"
)

// State is a processor power state. The set mirrors the paper's power
// model (Table I): Run covers normal execution and all spinning (the paper
// assumes spin-locks burn full run power), Miss covers L1 miss service,
// Commit covers write-set commit, and Gated covers the clock-gated state.
type State uint8

const (
	// StateRun is normal execution, commit-spin, and barrier-spin.
	StateRun State = iota
	// StateMiss is stalled on an L1 miss.
	StateMiss
	// StateCommit is actively committing the write-set.
	StateCommit
	// StateGated is clock-gated after an abort.
	StateGated
	// NumStates is the number of power states.
	NumStates = 4
)

func (s State) String() string {
	switch s {
	case StateRun:
		return "run"
	case StateMiss:
		return "miss"
	case StateCommit:
		return "commit"
	case StateGated:
		return "gated"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Segment is one residency interval of one processor.
type Segment struct {
	State    State
	From, To sim.Time
}

// Ledger records the full state timeline of every processor in a run.
type Ledger struct {
	procs    int
	current  []State
	since    []sim.Time
	segments [][]Segment
	closed   bool
	endTime  sim.Time
}

// NewLedger creates a ledger for procs processors, all beginning in
// StateRun at time 0.
func NewLedger(procs int) *Ledger {
	l := &Ledger{
		procs:    procs,
		current:  make([]State, procs),
		since:    make([]sim.Time, procs),
		segments: make([][]Segment, procs),
	}
	return l
}

// NewLedgerHinted is NewLedger with per-processor segment-capacity hints,
// typically the SegmentCounts of a previous run on the same cell shape:
// pre-sizing the timelines moves the append-growth allocations off the
// recording hot path. Hint entries beyond len(segCap) — or a nil segCap —
// fall back to zero capacity. Hints affect only capacity, never contents.
func NewLedgerHinted(procs int, segCap []int) *Ledger {
	l := NewLedger(procs)
	for p := 0; p < procs && p < len(segCap); p++ {
		if segCap[p] > 0 {
			l.segments[p] = make([]Segment, 0, segCap[p])
		}
	}
	return l
}

// SegmentCounts returns the number of recorded segments per processor —
// capacity hints for NewLedgerHinted when running another cell of similar
// shape.
func (l *Ledger) SegmentCounts() []int {
	out := make([]int, l.procs)
	for p := range out {
		out[p] = len(l.segments[p])
	}
	return out
}

// Procs returns the processor count.
func (l *Ledger) Procs() int { return l.procs }

// Transition moves processor p into state s at time now. Zero-length
// segments are dropped. Transitioning a closed ledger panics.
func (l *Ledger) Transition(p int, s State, now sim.Time) {
	if l.closed {
		panic("stats: transition on closed ledger")
	}
	if now < l.since[p] {
		panic(fmt.Sprintf("stats: transition backwards in time for proc %d: %d < %d", p, now, l.since[p]))
	}
	if s == l.current[p] {
		return
	}
	if now > l.since[p] {
		l.segments[p] = append(l.segments[p], Segment{State: l.current[p], From: l.since[p], To: now})
	}
	l.current[p] = s
	l.since[p] = now
}

// CurrentState returns processor p's current state.
func (l *Ledger) CurrentState(p int) State { return l.current[p] }

// Close finalizes the ledger at time end, flushing the open segment of
// every processor. After Close the ledger is immutable.
func (l *Ledger) Close(end sim.Time) {
	if l.closed {
		return
	}
	for p := 0; p < l.procs; p++ {
		if end > l.since[p] {
			l.segments[p] = append(l.segments[p], Segment{State: l.current[p], From: l.since[p], To: end})
		}
	}
	l.closed = true
	l.endTime = end
}

// Closed reports whether Close has been called.
func (l *Ledger) Closed() bool { return l.closed }

// End returns the close time.
func (l *Ledger) End() sim.Time { return l.endTime }

// Segments returns processor p's timeline. Only valid after Close. The
// returned slice must not be modified.
func (l *Ledger) Segments(p int) []Segment {
	if !l.closed {
		panic("stats: Segments before Close")
	}
	return l.segments[p]
}

// Residency returns, for each processor, the cycles spent in each state
// within the window [from, to). Only valid after Close.
func (l *Ledger) Residency(from, to sim.Time) [][NumStates]sim.Time {
	if !l.closed {
		panic("stats: Residency before Close")
	}
	out := make([][NumStates]sim.Time, l.procs)
	for p := 0; p < l.procs; p++ {
		for _, seg := range l.segments[p] {
			lo, hi := seg.From, seg.To
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			if hi > lo {
				out[p][seg.State] += hi - lo
			}
		}
	}
	return out
}

// TotalResidency sums Residency over processors.
func (l *Ledger) TotalResidency(from, to sim.Time) [NumStates]sim.Time {
	var tot [NumStates]sim.Time
	for _, r := range l.Residency(from, to) {
		for s := 0; s < NumStates; s++ {
			tot[s] += r[s]
		}
	}
	return tot
}

// ResidencyTotals returns each processor's per-state residency over the
// full closed timeline [0, End()) — the aggregate every whole-run energy
// computation reduces the ledger to. Only valid after Close.
func (l *Ledger) ResidencyTotals() [][NumStates]sim.Time {
	return l.Residency(0, l.endTime)
}

// RestoreLedger rebuilds a closed ledger from per-processor residency
// totals and the close time, for replaying persisted results. The
// synthetic timeline lays each state's total out as one contiguous
// segment per processor, so whole-run aggregates (Residency and
// TotalResidency over [0, End()), and with them every energy figure) are
// reproduced exactly; the original interleaving is not, so windowed
// queries over a restored ledger are meaningless.
func RestoreLedger(perProc [][NumStates]sim.Time, end sim.Time) *Ledger {
	l := NewLedger(len(perProc))
	for p, totals := range perProc {
		at := sim.Time(0)
		for s := 0; s < NumStates; s++ {
			if totals[s] == 0 {
				continue
			}
			l.segments[p] = append(l.segments[p], Segment{State: State(s), From: at, To: at + totals[s]})
			at += totals[s]
		}
	}
	l.closed = true
	l.endTime = end
	return l
}

// Counters aggregates protocol events for one run.
type Counters struct {
	Commits          uint64 // transactions committed
	Aborts           uint64 // directory-initiated aborts (invalidation hits read-set)
	ValidationAborts uint64 // aborts taken at the commit validation phase
	SelfAborts       uint64 // self-aborts after wake-up from gating
	Gatings          uint64 // StopClock deliveries that actually gated a running processor
	Renewals         uint64 // gating-period renewals
	Ungates          uint64 // On commands delivered
	TxInfoRequests   uint64 // TxInfoReq messages
	TokenRequests    uint64 // TID acquisitions
	Invalidations    uint64 // invalidation messages sent by directories
	Overflows        uint64 // speculative-overflow serializations
}

// AbortRate returns aborts per committed transaction.
func (c *Counters) AbortRate() float64 {
	if c.Commits == 0 {
		return 0
	}
	return float64(c.Aborts) / float64(c.Commits)
}
