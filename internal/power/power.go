// Package power implements the paper's Alpha 21264 @ 65 nm power model
// (§VII, Table I) and the analytical energy model of §IV (equations 1–7).
//
// The model is relative: Run-mode power is 1.0 and everything else is a
// fraction of it. The paper derives the fractions from the published Alpha
// 21264 power breakdown (caches 15 %, clock 32 %, I/O 5 %), a 20 % leakage
// share at 65 nm, and a 1.5× power multiplier for the TCC-augmented data
// cache:
//
//	Commit = leak + (1-leak)·(TCC D-cache + I/O + their clocks)
//	       = 0.2 + 0.8·(0.15 + 0.05 + 0.10)          = 0.44
//	Miss   = 0.2 + 0.8·0.5·(0.15 + 0.05 + 0.10)      = 0.32
//	Gated  = leak                                     = 0.20
package power

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Breakdown holds the component fractions of total processor power that
// the Table I derivation starts from.
type Breakdown struct {
	// Leakage is the leakage share of total power in active mode
	// (0.20 at 65 nm with high-Vt/stacking mitigations, per §VII).
	Leakage float64
	// DataCache is the share of a normal (non-TCC) data cache (0.10:
	// the paper attributes 15 % to caches, of which the D-cache is 10 %).
	DataCache float64
	// TCCCacheFactor multiplies DataCache to account for RW bits, the
	// store-address FIFO and the commit controller (1.5).
	TCCCacheFactor float64
	// IO is the I/O interface share (0.05).
	IO float64
	// CacheIOClock is the share of the clock tree feeding the data
	// cache and I/O interfaces (0.10).
	CacheIOClock float64
	// MissActivity is the cache dynamic activity during a miss relative
	// to a hit (0.5, from the cited measurement).
	MissActivity float64
}

// DefaultBreakdown returns the paper's component fractions.
func DefaultBreakdown() Breakdown {
	return Breakdown{
		Leakage:        0.20,
		DataCache:      0.10,
		TCCCacheFactor: 1.5,
		IO:             0.05,
		CacheIOClock:   0.10,
		MissActivity:   0.5,
	}
}

// Model holds the per-state power factors of Table I.
type Model struct {
	// Run is the full run-mode power (normal code, transactions and
	// spin-locks). Always 1.0 in the paper's normalization.
	Run float64
	// Miss is the power while serving an L1 miss.
	Miss float64
	// Commit is the power while committing the write-set.
	Commit float64
	// Gated is the power while clock-gated (leakage plus the
	// negligible PLL).
	Gated float64
}

// Derive computes the Table I factors from a component breakdown.
func Derive(b Breakdown) Model {
	dyn := 1 - b.Leakage
	tccCache := b.DataCache * b.TCCCacheFactor
	active := tccCache + b.IO + b.CacheIOClock
	return Model{
		Run:    1.0,
		Commit: b.Leakage + dyn*active,
		Miss:   b.Leakage + dyn*b.MissActivity*active,
		Gated:  b.Leakage,
	}
}

// Default returns the paper's Table I model.
func Default() Model { return Derive(DefaultBreakdown()) }

// Factor returns the power factor for a residency state.
func (m Model) Factor(s stats.State) float64 {
	switch s {
	case stats.StateRun:
		return m.Run
	case stats.StateMiss:
		return m.Miss
	case stats.StateCommit:
		return m.Commit
	case stats.StateGated:
		return m.Gated
	default:
		panic(fmt.Sprintf("power: unknown state %v", s))
	}
}

// WithSRPG returns a copy of the model with state-retention power gating
// applied to the gated state: the retained-leakage fraction keep (0..1)
// scales the gated factor. keep = 1 reproduces the paper's plain clock
// gating; the paper's §IV notes fine-grained power gating could cut
// leakage too.
func (m Model) WithSRPG(keep float64) Model {
	if keep < 0 || keep > 1 {
		panic(fmt.Sprintf("power: SRPG keep fraction %f out of [0,1]", keep))
	}
	m.Gated *= keep
	return m
}

// Energy integrates a closed residency ledger over [from, to) and returns
// total energy in run-power-cycle units.
func (m Model) Energy(l *stats.Ledger, from, to sim.Time) float64 {
	tot := l.TotalResidency(from, to)
	e := 0.0
	for s := 0; s < stats.NumStates; s++ {
		e += float64(tot[s]) * m.Factor(stats.State(s))
	}
	return e
}

// EnergyByState returns the per-state energy contributions over [from, to)
// in run-power-cycle units — the breakdown the CSV's per-state energy
// columns carry. Each entry is tot[s]·Factor(s), so the slice sums to
// Energy over the same window.
func (m Model) EnergyByState(l *stats.Ledger, from, to sim.Time) [stats.NumStates]float64 {
	tot := l.TotalResidency(from, to)
	var out [stats.NumStates]float64
	for s := 0; s < stats.NumStates; s++ {
		out[s] = float64(tot[s]) * m.Factor(stats.State(s))
	}
	return out
}

// PerProcEnergy returns each processor's energy over [from, to).
func (m Model) PerProcEnergy(l *stats.Ledger, from, to sim.Time) []float64 {
	res := l.Residency(from, to)
	out := make([]float64, len(res))
	for p, r := range res {
		for s := 0; s < stats.NumStates; s++ {
			out[p] += float64(r[s]) * m.Factor(stats.State(s))
		}
	}
	return out
}

// AveragePower returns energy divided by wall-clock cycles of the window.
func (m Model) AveragePower(l *stats.Ledger, from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	return m.Energy(l, from, to) / float64(to-from)
}

// Comparison holds the paper's summary metrics between an ungated and a
// gated run of the same trace (§IV, equations 6 and 7).
type Comparison struct {
	N1, N2        sim.Time // parallel execution time: ungated, gated
	Eug, Eg       float64  // total energy: ungated, gated
	Pug, Pg       float64  // average power: ungated, gated
	EnergyRatio   float64  // Eug/Eg — the paper's "EnergyReduction" factor (>1 is a win)
	AvgPowerRatio float64  // (Eug/Eg)·(N2/N1) — average-power reduction factor
	SpeedUp       float64  // N1/N2 (>1 is a win)
	EnergySavings float64  // 1 - Eg/Eug, as a fraction
	PowerSavings  float64  // 1 - Pg/Pug, as a fraction
	TimeReduction float64  // 1 - N2/N1, as a fraction
}

// Compare computes the §IV summary metrics from two closed ledgers covering
// the parallel sections [0, N1) and [0, N2).
func Compare(m Model, ungated, gated *stats.Ledger) Comparison {
	n1, n2 := ungated.End(), gated.End()
	eug := m.Energy(ungated, 0, n1)
	eg := m.Energy(gated, 0, n2)
	c := Comparison{
		N1: n1, N2: n2,
		Eug: eug, Eg: eg,
		Pug: safeDiv(eug, float64(n1)),
		Pg:  safeDiv(eg, float64(n2)),
	}
	c.EnergyRatio = safeDiv(eug, eg)
	c.SpeedUp = safeDiv(float64(n1), float64(n2))
	c.AvgPowerRatio = c.EnergyRatio * safeDiv(float64(n2), float64(n1))
	c.EnergySavings = 1 - safeDiv(eg, eug)
	c.PowerSavings = 1 - safeDiv(c.Pg, c.Pug)
	c.TimeReduction = 1 - safeDiv(float64(n2), float64(n1))
	return c
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
