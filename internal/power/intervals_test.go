package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestIntervalsSimpleDecomposition(t *testing.T) {
	// proc 0 gated [10,30), proc 1 miss [20,40): overlap [20,30) has
	// exactly 2 low-power processors.
	l := stats.NewLedger(2)
	l.Transition(0, stats.StateGated, 10)
	l.Transition(0, stats.StateRun, 30)
	l.Transition(1, stats.StateMiss, 20)
	l.Transition(1, stats.StateRun, 40)
	l.Close(50)

	im := Intervals(l)
	if im.N != 50 || im.P != 2 {
		t.Fatalf("N=%d P=%d", im.N, im.P)
	}
	// X1: [10,20) + [30,40) = 20; X2: [20,30) = 10; X0: rest = 20.
	if im.X[0] != 20 || im.X[1] != 20 || im.X[2] != 10 {
		t.Fatalf("X = %v", im.X)
	}
	// In X2, one of two procs is miss-stalled: alpha = 1/2.
	if !almost(im.Alpha[2], 0.5, 1e-12) {
		t.Fatalf("Alpha[2] = %f", im.Alpha[2])
	}
	if im.Beta[2] != 0 {
		t.Fatalf("Beta[2] = %f", im.Beta[2])
	}
	// In X1 intervals, half the time it's the gated proc (alpha 0) and
	// half the miss proc (alpha 1): weighted alpha = 0.5.
	if !almost(im.Alpha[1], 0.5, 1e-12) {
		t.Fatalf("Alpha[1] = %f", im.Alpha[1])
	}
}

func TestGatedEnergyMatchesDirectIntegration(t *testing.T) {
	l := ledgerFixture()
	m := Default()
	im := Intervals(l)
	direct := m.Energy(l, 0, l.End())
	viaIntervals := im.GatedEnergy(m)
	if !almost(direct, viaIntervals, 1e-6) {
		t.Fatalf("direct %f vs eq(1) %f", direct, viaIntervals)
	}
}

func TestUngatedEnergyMatchesDirectIntegration(t *testing.T) {
	// Ledger with no gated time: eq (5) must equal direct integration.
	l := stats.NewLedger(3)
	l.Transition(0, stats.StateMiss, 10)
	l.Transition(0, stats.StateRun, 25)
	l.Transition(1, stats.StateCommit, 30)
	l.Transition(1, stats.StateRun, 45)
	l.Transition(2, stats.StateMiss, 5)
	l.Transition(2, stats.StateCommit, 20)
	l.Transition(2, stats.StateRun, 35)
	l.Close(60)
	m := Default()
	direct := m.Energy(l, 0, l.End())
	via := Intervals(l).UngatedEnergy(m)
	if !almost(direct, via, 1e-6) {
		t.Fatalf("direct %f vs eq(5) %f", direct, via)
	}
}

// Property (the paper's own cross-check): for ANY ledger, equation (1)
// evaluated over the Xi/alpha/beta decomposition equals the direct
// per-processor energy integration.
func TestQuickEquation1EqualsDirect(t *testing.T) {
	m := Default()
	f := func(seed uint64, nProcsRaw, nTransRaw uint8) bool {
		procs := int(nProcsRaw%6) + 1
		trans := int(nTransRaw % 60)
		rng := sim.NewRNG(seed, 21)
		l := stats.NewLedger(procs)
		now := sim.Time(0)
		for i := 0; i < trans; i++ {
			now += sim.Time(rng.Intn(15))
			l.Transition(rng.Intn(procs), stats.State(rng.Intn(int(stats.NumStates))), now)
		}
		l.Close(now + sim.Time(rng.Intn(20)+1))
		direct := m.Energy(l, 0, l.End())
		via := Intervals(l).GatedEnergy(m)
		return math.Abs(direct-via) < 1e-6*(1+math.Abs(direct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Xi sums with X0 to the full parallel time.
func TestQuickIntervalsPartitionTime(t *testing.T) {
	f := func(seed uint64, nTransRaw uint8) bool {
		rng := sim.NewRNG(seed, 22)
		l := stats.NewLedger(4)
		now := sim.Time(0)
		for i := 0; i < int(nTransRaw%40); i++ {
			now += sim.Time(rng.Intn(11))
			l.Transition(rng.Intn(4), stats.State(rng.Intn(int(stats.NumStates))), now)
		}
		l.Close(now + 5)
		im := Intervals(l)
		var sum sim.Time
		for _, x := range im.X {
			sum += x
		}
		return sum == im.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
