package power

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestTableIFactors(t *testing.T) {
	// The paper's Table I: Run 1.0, Cache Miss 0.32, Transaction Commit
	// 0.44, Clock Gated 0.20 — derived, not hard-coded.
	m := Default()
	if m.Run != 1.0 {
		t.Errorf("Run = %f", m.Run)
	}
	if !almost(m.Miss, 0.32, 1e-12) {
		t.Errorf("Miss = %f, want 0.32", m.Miss)
	}
	if !almost(m.Commit, 0.44, 1e-12) {
		t.Errorf("Commit = %f, want 0.44", m.Commit)
	}
	if !almost(m.Gated, 0.20, 1e-12) {
		t.Errorf("Gated = %f, want 0.20", m.Gated)
	}
}

func TestDeriveFollowsPaperArithmetic(t *testing.T) {
	b := DefaultBreakdown()
	m := Derive(b)
	// Commit = 0.2 + 0.8*(0.15+0.05+0.1)
	wantCommit := b.Leakage + (1-b.Leakage)*(b.DataCache*b.TCCCacheFactor+b.IO+b.CacheIOClock)
	if m.Commit != wantCommit {
		t.Errorf("Commit %f, want %f", m.Commit, wantCommit)
	}
	// Miss = 0.2 + 0.8*0.5*(0.15+0.05+0.1)
	wantMiss := b.Leakage + (1-b.Leakage)*b.MissActivity*(b.DataCache*b.TCCCacheFactor+b.IO+b.CacheIOClock)
	if m.Miss != wantMiss {
		t.Errorf("Miss %f, want %f", m.Miss, wantMiss)
	}
}

func TestDeriveRespondsToLeakage(t *testing.T) {
	b := DefaultBreakdown()
	b.Leakage = 0.30
	m := Derive(b)
	if m.Gated != 0.30 {
		t.Errorf("Gated %f, want leakage 0.30", m.Gated)
	}
	if m.Miss <= Default().Miss {
		t.Error("higher leakage should raise miss power")
	}
}

func TestFactorMapsStates(t *testing.T) {
	m := Default()
	if m.Factor(stats.StateRun) != m.Run ||
		m.Factor(stats.StateMiss) != m.Miss ||
		m.Factor(stats.StateCommit) != m.Commit ||
		m.Factor(stats.StateGated) != m.Gated {
		t.Fatal("Factor does not map states to factors")
	}
}

func TestFactorPanicsOnUnknownState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown state did not panic")
		}
	}()
	Default().Factor(stats.State(9))
}

func TestWithSRPG(t *testing.T) {
	m := Default().WithSRPG(0.25)
	if !almost(m.Gated, 0.05, 1e-12) {
		t.Errorf("SRPG gated %f, want 0.05", m.Gated)
	}
	if m.Run != 1.0 || !almost(m.Miss, 0.32, 1e-12) {
		t.Error("SRPG changed non-gated factors")
	}
}

func TestWithSRPGPanicsOutOfRange(t *testing.T) {
	for _, keep := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WithSRPG(%f) did not panic", keep)
				}
			}()
			Default().WithSRPG(keep)
		}()
	}
}

// ledgerFixture builds a 2-processor ledger:
//
//	proc 0: run [0,40), miss [40,60), commit [60,70), run [70,100)
//	proc 1: run [0,20), gated [20,80), run [80,100)
func ledgerFixture() *stats.Ledger {
	l := stats.NewLedger(2)
	l.Transition(0, stats.StateMiss, 40)
	l.Transition(0, stats.StateCommit, 60)
	l.Transition(0, stats.StateRun, 70)
	l.Transition(1, stats.StateGated, 20)
	l.Transition(1, stats.StateRun, 80)
	l.Close(100)
	return l
}

func TestEnergyIntegration(t *testing.T) {
	l := ledgerFixture()
	m := Default()
	want := (40+30)*1.0 + 20*0.32 + 10*0.44 + // proc 0
		(20+20)*1.0 + 60*0.20 // proc 1
	if got := m.Energy(l, 0, 100); !almost(got, want, 1e-9) {
		t.Fatalf("Energy = %f, want %f", got, want)
	}
}

func TestPerProcEnergySumsToTotal(t *testing.T) {
	l := ledgerFixture()
	m := Default()
	per := m.PerProcEnergy(l, 0, 100)
	if len(per) != 2 {
		t.Fatalf("per-proc length %d", len(per))
	}
	if !almost(per[0]+per[1], m.Energy(l, 0, 100), 1e-9) {
		t.Fatal("per-proc energies do not sum to total")
	}
}

func TestAveragePower(t *testing.T) {
	l := ledgerFixture()
	m := Default()
	if got := m.AveragePower(l, 0, 100); !almost(got, m.Energy(l, 0, 100)/100, 1e-12) {
		t.Fatalf("average power %f", got)
	}
	if m.AveragePower(l, 50, 50) != 0 {
		t.Fatal("empty window average power not 0")
	}
}

func TestCompareMetrics(t *testing.T) {
	// Ungated: 2 procs, all run, 100 cycles -> Eug = 200, Pug = 2.
	ug := stats.NewLedger(2)
	ug.Close(100)
	// Gated: 2 procs, 80 cycles; proc 1 gated for 40 of them.
	g := stats.NewLedger(2)
	g.Transition(1, stats.StateGated, 20)
	g.Transition(1, stats.StateRun, 60)
	g.Close(80)

	m := Default()
	c := Compare(m, ug, g)
	if c.N1 != 100 || c.N2 != 80 {
		t.Fatalf("N1=%d N2=%d", c.N1, c.N2)
	}
	wantEg := 80.0 + 40 + 40*0.2 // proc0 run 80, proc1 run 40 + gated 40
	if !almost(c.Eg, wantEg, 1e-9) {
		t.Fatalf("Eg %f, want %f", c.Eg, wantEg)
	}
	if !almost(c.SpeedUp, 100.0/80, 1e-12) {
		t.Fatalf("speedup %f", c.SpeedUp)
	}
	if !almost(c.EnergyRatio, 200/wantEg, 1e-9) {
		t.Fatalf("energy ratio %f", c.EnergyRatio)
	}
	if !almost(c.AvgPowerRatio, c.EnergyRatio*80/100, 1e-9) {
		t.Fatalf("power ratio %f", c.AvgPowerRatio)
	}
	if !almost(c.EnergySavings, 1-wantEg/200, 1e-9) {
		t.Fatalf("savings %f", c.EnergySavings)
	}
}

func TestCompareEquation7Identity(t *testing.T) {
	// AveragePowerReduction = (Eug/Eg) * (N2/N1) must equal Pug/Pg.
	ug := ledgerFixture()
	g := stats.NewLedger(2)
	g.Transition(0, stats.StateGated, 10)
	g.Transition(0, stats.StateRun, 50)
	g.Close(90)
	c := Compare(Default(), ug, g)
	if !almost(c.AvgPowerRatio, c.Pug/c.Pg, 1e-9) {
		t.Fatalf("eq7 identity violated: %f vs %f", c.AvgPowerRatio, c.Pug/c.Pg)
	}
}
