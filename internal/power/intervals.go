package power

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// IntervalModel is the paper's §IV formulation of run energy: the
// decomposition over intervals during which exactly i processors were in a
// low-power condition ("gated or waiting for a cache miss or performing
// commit"). Equation (1) computes gated-run energy Eg from the interval
// totals Xi and the weighted proportions αi (miss) and βi (commit);
// equation (5) is the ungated special case (Yi, δi, no gated term).
//
// The simulator tracks energy directly by integrating per-processor
// residencies; this type exists to reproduce the paper's arithmetic and to
// cross-check the two formulations against each other (they must agree
// exactly, and a property test asserts that they do).
type IntervalModel struct {
	// P is the processor count.
	P int
	// N is the parallel execution time (N2 for gated runs, N1 ungated).
	N sim.Time
	// X[i] is the total time exactly i processors were low-power
	// (index 0..P; X[0] is tracked but unused by the equation).
	X []sim.Time
	// Alpha[i] is the weighted proportion of miss-stalled processors
	// within X[i] (the paper's αi / δi).
	Alpha []float64
	// Beta[i] is the weighted proportion of committing processors
	// within X[i] (the paper's βi; zero for ungated runs only if no
	// commits overlapped, not by construction).
	Beta []float64
}

// Intervals decomposes a closed ledger into the paper's Xi/αi/βi interval
// statistics over [0, l.End()).
func Intervals(l *stats.Ledger) IntervalModel {
	p := l.Procs()
	end := l.End()
	im := IntervalModel{
		P:     p,
		N:     end,
		X:     make([]sim.Time, p+1),
		Alpha: make([]float64, p+1),
		Beta:  make([]float64, p+1),
	}
	// Gather every state-change instant of every processor.
	cuts := make([]sim.Time, 0, 64)
	cuts = append(cuts, 0, end)
	for proc := 0; proc < p; proc++ {
		for _, seg := range l.Segments(proc) {
			cuts = append(cuts, seg.From, seg.To)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	cuts = dedupTimes(cuts)

	// Per-processor segment cursors: segments are already time-ordered.
	cursor := make([]int, p)
	missW := make([]float64, p+1)   // Σ n_miss · Δ, by i
	commitW := make([]float64, p+1) // Σ n_commit · Δ, by i

	for c := 0; c+1 < len(cuts); c++ {
		t0, t1 := cuts[c], cuts[c+1]
		if t1 <= t0 || t0 >= end {
			continue
		}
		if t1 > end {
			t1 = end
		}
		dt := t1 - t0
		var nMiss, nCommit, nGated int
		for proc := 0; proc < p; proc++ {
			segs := l.Segments(proc)
			for cursor[proc] < len(segs) && segs[cursor[proc]].To <= t0 {
				cursor[proc]++
			}
			if cursor[proc] >= len(segs) {
				continue // past this processor's timeline: counts as run
			}
			seg := segs[cursor[proc]]
			if seg.From > t0 {
				continue // gap (shouldn't happen in a closed ledger)
			}
			switch seg.State {
			case stats.StateMiss:
				nMiss++
			case stats.StateCommit:
				nCommit++
			case stats.StateGated:
				nGated++
			}
		}
		i := nMiss + nCommit + nGated
		im.X[i] += dt
		missW[i] += float64(nMiss) * float64(dt)
		commitW[i] += float64(nCommit) * float64(dt)
	}

	for i := 1; i <= p; i++ {
		if im.X[i] == 0 {
			continue
		}
		denom := float64(i) * float64(im.X[i])
		im.Alpha[i] = missW[i] / denom
		im.Beta[i] = commitW[i] / denom
	}
	return im
}

func dedupTimes(ts []sim.Time) []sim.Time {
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// GatedEnergy evaluates equation (1): total energy of a gated run.
func (im IntervalModel) GatedEnergy(m Model) float64 {
	runTerm := float64(im.N) * float64(im.P)
	var missE, commitE, gateE float64
	for i := 1; i <= im.P; i++ {
		xi := float64(im.X[i]) * float64(i)
		runTerm -= xi
		missE += xi * im.Alpha[i] * m.Miss
		commitE += xi * im.Beta[i] * m.Commit
		gateE += xi * (1 - im.Alpha[i] - im.Beta[i]) * m.Gated
	}
	return runTerm*m.Run + missE + commitE + gateE
}

// UngatedEnergy evaluates equation (5): total energy of an ungated run,
// where a low-power processor is either miss-stalled (δi) or committing
// (1-δi).
func (im IntervalModel) UngatedEnergy(m Model) float64 {
	runTerm := float64(im.N) * float64(im.P)
	var missE, commitE float64
	for i := 1; i <= im.P; i++ {
		yi := float64(im.X[i]) * float64(i)
		runTerm -= yi
		missE += yi * im.Alpha[i] * m.Miss
		commitE += yi * (1 - im.Alpha[i]) * m.Commit
	}
	return runTerm*m.Run + missE + commitE
}
