// Package tracestore is a content-addressed on-disk store of generated
// STAMP traces, shared by every process on a machine. The in-process
// trace cache in internal/experiments stops at the process boundary: a
// 16-worker fleet on one box generates each trace 16 times. This store
// makes trace provisioning a machine-wide resource — the first process
// to need a trace generates and publishes it; everyone else maps the
// published file and aliases its op arrays with zero per-load copies.
//
// Entries are keyed by the same fields as the in-process trace cache
// (app, threads, scale, contention, seed — the key audit in
// experiments.TestTraceCacheKeyAudit pins that set): two cells that
// would share an in-process cache slot share one file here. Each entry
// is a CGTRACE2 file named by the SHA-256 fingerprint of its key,
// published atomically (temp file + rename), self-checked by its
// embedded checksum, and guarded by a per-key flock(2) so N processes
// racing on a cold key perform exactly one generation.
package tracestore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/workload"
)

// Key identifies a stored trace. The field set deliberately matches the
// in-process trace-cache key: only inputs that change generated trace
// bytes belong here. Banks, topology, technology, W0 and scheduling
// variant shape simulation, not generation, and must stay out — adding
// one would silently split the cache.
type Key struct {
	App        string
	Threads    int
	Scale      float64
	Contention string
	Seed       uint64
}

// Fingerprint returns the hex SHA-256 content address of the key. It is
// the entry's file name, so it must be stable across processes,
// machines and releases of this package.
func (k Key) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "app=%s\nthreads=%d\nscale=%s\ncontention=%s\nseed=%d\n",
		k.App, k.Threads, strconv.FormatFloat(k.Scale, 'g', -1, 64), k.Contention, k.Seed)
	return hex.EncodeToString(h.Sum(nil))
}

// Options configures a Store.
type Options struct {
	// MaxBytes bounds the total size of published entries. When a
	// publication pushes the store past the bound, least-recently-used
	// entries (by modification time, which Load refreshes) are evicted
	// until it fits. 0 means DefaultMaxBytes; negative means unbounded.
	MaxBytes int64
}

// DefaultMaxBytes is the eviction bound when Options.MaxBytes is zero.
// Full-scale STAMP traces run tens of megabytes; 2 GiB holds a few
// dozen distinct keys, far more than one campaign touches.
const DefaultMaxBytes = 2 << 30

// Store is a handle on one on-disk trace store directory. It is safe
// for concurrent use by multiple goroutines, and the directory is safe
// for concurrent use by multiple processes.
type Store struct {
	dir      string
	maxBytes int64

	mu       sync.Mutex
	closed   bool
	mappings []mapping // mmap'd regions live traces alias; unmapped on Close
	// loaded caches the decoded trace per fingerprint: entries are
	// content-addressed, so a fingerprint can only ever name one trace,
	// and re-loading it must reuse the existing mapping instead of
	// stacking a new mmap per call.
	loaded map[string]*workload.Trace
	stats  Stats
}

// Stats counts store traffic on one handle.
type Stats struct {
	Hits        int64 // Load found a valid entry
	Misses      int64 // Load found nothing
	Generations int64 // GetOrGenerate ran the generator
	Quarantines int64 // corrupt entries moved aside
	Evictions   int64 // entries removed by the size bound
}

// Open returns a handle on the store rooted at dir, creating the
// directory if needed.
func Open(dir string, o Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("tracestore: open: %w", err)
	}
	max := o.MaxBytes
	if max == 0 {
		max = DefaultMaxBytes
	}
	return &Store{dir: dir, maxBytes: max, loaded: map[string]*workload.Trace{}}, nil
}

func (s *Store) entryPath(fp string) string { return filepath.Join(s.dir, fp+".cgt2") }
func (s *Store) lockPath(fp string) string  { return filepath.Join(s.dir, fp+".lock") }

// Load returns the stored trace for key, or ok=false on a miss. A
// corrupt entry (truncated, bit-flipped, half-written by a crashed
// writer) is quarantined — renamed aside with a .bad suffix — and
// reported as a miss, never returned. On a hit the entry's modification
// time is refreshed so eviction sees it as recently used, and the
// returned trace aliases an mmap'd region that stays valid until Close.
func (s *Store) Load(key Key) (*workload.Trace, bool, error) {
	fp := key.Fingerprint()
	tr, ok, err := s.load(fp)
	s.mu.Lock()
	if ok {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	s.mu.Unlock()
	return tr, ok, err
}

func (s *Store) load(fp string) (*workload.Trace, bool, error) {
	path := s.entryPath(fp)
	s.mu.Lock()
	if tr, ok := s.loaded[fp]; ok && !s.closed {
		s.mu.Unlock()
		now := time.Now()
		_ = os.Chtimes(path, now, now) // LRU touch; best-effort
		return tr, true, nil
	}
	s.mu.Unlock()
	m, err := mapFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("tracestore: load: %w", err)
	}
	tr, derr := workload.DecodeV2Bytes(m.data)
	if derr != nil {
		m.close()
		if errors.Is(derr, workload.ErrCorrupt) {
			s.quarantine(path, derr)
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("tracestore: load: %w", derr)
	}
	s.mu.Lock()
	if s.closed {
		// Raced with Close: don't leak the mapping, and don't hand out a
		// trace whose backing bytes are about to be unmapped.
		s.mu.Unlock()
		m.close()
		return nil, false, nil
	}
	s.mappings = append(s.mappings, m)
	s.loaded[fp] = tr
	s.mu.Unlock()
	now := time.Now()
	_ = os.Chtimes(path, now, now) // LRU touch; best-effort
	return tr, true, nil
}

// quarantine moves a corrupt entry aside so the next generation can
// publish a clean one, keeping the bytes around for a post-mortem.
func (s *Store) quarantine(path string, cause error) {
	s.mu.Lock()
	s.stats.Quarantines++
	s.mu.Unlock()
	if err := os.Rename(path, path+".bad"); err != nil && !errors.Is(err, os.ErrNotExist) {
		// Rename failed (another process may have won the same race);
		// removing is an acceptable fallback — the entry must not be
		// loadable again.
		_ = os.Remove(path)
	}
	_ = cause
}

// GetOrGenerate returns the stored trace for key, generating and
// publishing it on a miss. A per-key file lock makes generation
// single-flight across processes: of N processes racing on a cold key,
// exactly one runs gen; the rest block on the lock and then load the
// published entry. If the store directory has become unusable (or the
// handle is closed), the trace is generated directly so callers degrade
// to PR-2 behavior instead of failing.
func (s *Store) GetOrGenerate(key Key, gen func() (*workload.Trace, error)) (*workload.Trace, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return gen()
	}

	// Fast path: published entry, no lock traffic.
	if tr, ok, err := s.Load(key); err != nil {
		return nil, err
	} else if ok {
		return tr, nil
	}

	fp := key.Fingerprint()
	lock, err := acquireLock(s.lockPath(fp))
	if err != nil {
		// Can't lock (exotic filesystem, read-only dir): generate
		// without publishing rather than fail the run.
		return gen()
	}
	defer lock.release()

	// Someone may have published while this process waited on the lock.
	if tr, ok, err := s.load(fp); err != nil {
		return nil, err
	} else if ok {
		s.mu.Lock()
		s.stats.Hits++
		s.mu.Unlock()
		return tr, nil
	}

	tr, err := gen()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.stats.Generations++
	s.mu.Unlock()
	if err := s.publish(fp, tr); err != nil {
		// Publication is an optimization; the generated trace is good.
		return tr, nil
	}
	s.evict()
	return tr, nil
}

// publish writes the trace to a temp file in the store directory and
// renames it into place, so concurrent readers only ever observe
// absent or complete entries — a crash mid-write leaves a temp file,
// never a half-written entry under the content address.
func (s *Store) publish(fp string, tr *workload.Trace) error {
	buf, err := workload.MarshalV2(tr)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(s.dir, "tmp-"+fp[:16]+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.entryPath(fp)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// evict removes least-recently-used entries until the store fits
// MaxBytes. Modification time is the recency signal (Load refreshes it;
// atime is unreliable on noatime mounts). Unlinking a file other
// processes have mapped is safe on Unix: their mappings stay valid
// until they unmap.
func (s *Store) evict() {
	if s.maxBytes < 0 {
		return
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	var total int64
	for _, de := range ents {
		if filepath.Ext(de.Name()) != ".cgt2" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		entries = append(entries, entry{filepath.Join(s.dir, de.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= s.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	for _, e := range entries {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			s.mu.Lock()
			s.stats.Evictions++
			s.mu.Unlock()
		}
	}
}

// Stats returns a snapshot of this handle's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close unmaps every region this handle's loaded traces alias. Traces
// returned by Load/GetOrGenerate must not be used after Close. After
// Close, GetOrGenerate falls back to direct generation and Load always
// misses, so a handle shared with late stragglers stays safe.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	maps := s.mappings
	s.mappings = nil
	s.loaded = nil
	s.mu.Unlock()
	var first error
	for _, m := range maps {
		if err := m.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
