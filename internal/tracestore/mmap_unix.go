//go:build unix

package tracestore

import (
	"os"
	"syscall"
)

// mapping is a read-only view of a published entry's bytes. On Unix it
// is an mmap'd region: traces returned by the store alias it directly,
// so it stays mapped until Store.Close. The file descriptor is closed
// right after mmap — the mapping keeps the pages alive, and unlinking
// the file (eviction by another process) does not invalidate them.
type mapping struct {
	data []byte
	mmap bool
}

func mapFile(path string) (mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return mapping{}, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return mapping{}, err
	}
	size := info.Size()
	if size == 0 {
		// mmap rejects zero-length maps; an empty file is simply a
		// corrupt entry and the decoder will say so.
		return mapping{data: []byte{}}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return mapping{}, err
	}
	return mapping{data: data, mmap: true}, nil
}

func (m mapping) close() error {
	if !m.mmap {
		return nil
	}
	return syscall.Munmap(m.data)
}
