package tracestore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stamp"
	"repro/internal/workload"
)

// testTrace generates a small deterministic trace the way the session
// engine does, scaled far down so tests stay fast.
func testTrace(t *testing.T, threads int, seed uint64) *workload.Trace {
	t.Helper()
	spec, err := stamp.Spec(stamp.Genome)
	if err != nil {
		t.Fatal(err)
	}
	spec.TotalTxs = 64 * threads
	tr, err := spec.Generate(threads, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testKey(seed uint64) Key {
	return Key{App: "genome", Threads: 4, Scale: 0.01, Contention: "base", Seed: seed}
}

// The fingerprint is the on-disk content address: it must never change
// across releases, or every existing store silently goes cold.
func TestFingerprintPinned(t *testing.T) {
	got := testKey(9).Fingerprint()
	const want = "12be559f826c197c9a3efaa478293adb5d9830f66d6a6fc246ad19f7b7cd587e"
	if got != want {
		t.Fatalf("fingerprint drifted: got %s, want %s", got, want)
	}
	if testKey(9) == testKey(10) || testKey(9).Fingerprint() == testKey(10).Fingerprint() {
		t.Fatal("distinct keys collide")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	want := testTrace(t, 4, 9)
	gens := 0
	got, err := st.GetOrGenerate(testKey(9), func() (*workload.Trace, error) {
		gens++
		return testTrace(t, 4, 9), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gens != 1 {
		t.Fatalf("cold key ran generator %d times, want 1", gens)
	}
	if !reflect.DeepEqual(got.Threads, want.Threads) || got.Name != want.Name {
		t.Fatal("generated trace does not match direct generation")
	}

	// A second handle — as another process would open — must hit.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	loaded, ok, err := st2.Load(testKey(9))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("published entry not found by a second handle")
	}
	if !reflect.DeepEqual(loaded.Threads, want.Threads) || loaded.Name != want.Name {
		t.Fatal("loaded trace does not match the generated one")
	}
	if s := st2.Stats(); s.Hits != 1 {
		t.Fatalf("stats = %+v, want one hit", s)
	}
}

// TestSingleFlight pins the cross-process protocol: flock(2) contends
// between file descriptions, so two Store handles in one process race
// exactly like two worker processes sharing a cold store — and exactly
// one of them may run the generator. Every racer must end with
// byte-identical trace content.
func TestSingleFlight(t *testing.T) {
	dir := t.TempDir()
	const racers = 8
	var gens atomic.Int64
	gate := make(chan struct{})

	traces := make([]*workload.Trace, racers)
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		wg.Add(1)
		go func(i int, st *Store) {
			defer wg.Done()
			<-gate
			traces[i], errs[i] = st.GetOrGenerate(testKey(7), func() (*workload.Trace, error) {
				gens.Add(1)
				return testTrace(t, 4, 7), nil
			})
		}(i, st)
	}
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("racer %d: %v", i, err)
		}
	}
	if n := gens.Load(); n != 1 {
		t.Fatalf("%d racers on a cold key ran %d generations, want exactly 1", racers, n)
	}
	first, err := workload.MarshalV2(traces[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < racers; i++ {
		b, err := workload.MarshalV2(traces[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, b) {
			t.Fatalf("racer %d loaded a trace with different bytes", i)
		}
	}
}

// A corrupt entry — truncated by a crash, bit-flipped by a disk — must
// never be returned: Load quarantines it and reports a miss, and the
// next GetOrGenerate regenerates and republishes a clean entry.
func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	key := testKey(3)
	if _, err := st.GetOrGenerate(key, func() (*workload.Trace, error) {
		return testTrace(t, 2, 3), nil
	}); err != nil {
		t.Fatal(err)
	}
	path := st.entryPath(key.Fingerprint())

	corruptions := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bitflip":   func(b []byte) []byte { b[len(b)/3] ^= 0x10; return b },
	}
	for name, mutate := range corruptions {
		t.Run(name, func(t *testing.T) {
			clean, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mutate(bytes.Clone(clean)), 0o666); err != nil {
				t.Fatal(err)
			}

			if _, ok, err := st.Load(key); err != nil || ok {
				t.Fatalf("corrupt entry: Load = (ok=%v, err=%v), want clean miss", ok, err)
			}
			if _, err := os.Stat(path + ".bad"); err != nil {
				t.Fatalf("corrupt entry not quarantined: %v", err)
			}
			os.Remove(path + ".bad")

			gens := 0
			tr, err := st.GetOrGenerate(key, func() (*workload.Trace, error) {
				gens++
				return testTrace(t, 2, 3), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if gens != 1 {
				t.Fatalf("regeneration after quarantine ran %d generations, want 1", gens)
			}
			republished, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("clean entry not republished: %v", err)
			}
			if !bytes.Equal(republished, clean) {
				t.Fatal("republished entry differs from the original bytes")
			}
			if tr == nil || len(tr.Threads) == 0 {
				t.Fatal("regenerated trace is empty")
			}
		})
	}
	if q := st.Stats().Quarantines; q != 2 {
		t.Fatalf("stats count %d quarantines, want 2", q)
	}
}

func TestEvictionBySize(t *testing.T) {
	dir := t.TempDir()
	// Publish one entry to learn the per-entry size, then bound the
	// store to roughly two entries.
	probe, err := Open(dir, Options{MaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.GetOrGenerate(testKey(0), func() (*workload.Trace, error) {
		return testTrace(t, 2, 0), nil
	}); err != nil {
		t.Fatal(err)
	}
	probe.Close()
	info, err := os.Stat(probe.entryPath(testKey(0).Fingerprint()))
	if err != nil {
		t.Fatal(err)
	}
	entrySize := info.Size()

	st, err := Open(dir, Options{MaxBytes: 2*entrySize + entrySize/2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for seed := uint64(1); seed <= 4; seed++ {
		if _, err := st.GetOrGenerate(testKey(seed), func() (*workload.Trace, error) {
			return testTrace(t, 2, seed), nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	var total int64
	var kept int
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if filepath.Ext(de.Name()) != ".cgt2" {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
		kept++
	}
	if total > 2*entrySize+entrySize/2 {
		t.Fatalf("store holds %d bytes after eviction, bound is %d", total, 2*entrySize+entrySize/2)
	}
	if kept == 0 {
		t.Fatal("eviction removed every entry")
	}
	// The newest entry must have survived (eviction is LRU by mtime).
	if _, err := os.Stat(st.entryPath(testKey(4).Fingerprint())); err != nil {
		t.Fatalf("most recent entry evicted: %v", err)
	}
	if st.Stats().Evictions == 0 {
		t.Fatal("stats recorded no evictions")
	}
}

// TestLoadAllocBounded pins the zero-copy contract of a store hit: the
// mmap'd file backs the trace's op arrays directly, so however many ops
// the trace holds, Load allocates only the fixed trace skeleton.
func TestLoadAllocBounded(t *testing.T) {
	if !workload.AliasingSupported() {
		t.Skip("host Op layout does not permit the aliasing decode")
	}
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	key := testKey(11)
	big := func(t *testing.T) *workload.Trace {
		spec, err := stamp.Spec(stamp.Genome)
		if err != nil {
			t.Fatal(err)
		}
		spec.TotalTxs = 4096
		tr, err := spec.Generate(4, 11)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	if _, err := st.GetOrGenerate(key, func() (*workload.Trace, error) { return big(t), nil }); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(8, func() {
		if _, ok, err := st.Load(key); err != nil || !ok {
			t.Fatalf("Load = (ok=%v, err=%v)", ok, err)
		}
	})
	// 4096 transactions: a copying load pays thousands of allocations;
	// the mmap-aliasing load pays a fixed handful for the skeleton.
	if allocs > 32 {
		t.Fatalf("store hit allocated %v times, want <= 32", allocs)
	}
}

// After Close, the handle degrades safely: loads miss, generation runs
// inline, and no mapping is leaked.
func TestClosedStoreFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(5)
	if _, err := st.GetOrGenerate(key, func() (*workload.Trace, error) {
		return testTrace(t, 2, 5), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Load(key); err != nil || ok {
		t.Fatalf("Load after Close = (ok=%v, err=%v), want miss", ok, err)
	}
	gens := 0
	tr, err := st.GetOrGenerate(key, func() (*workload.Trace, error) {
		gens++
		return testTrace(t, 2, 5), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gens != 1 || tr == nil {
		t.Fatalf("GetOrGenerate after Close: gens=%d tr=%v, want inline generation", gens, tr != nil)
	}
}
