//go:build !unix

package tracestore

import "os"

// mapping on non-Unix hosts is a plain in-memory copy of the file. The
// aliasing decode still applies (the slice is ordinarily 8-aligned), but
// the zero-copy property is per-load rather than shared page cache.
type mapping struct {
	data []byte
}

func mapFile(path string) (mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return mapping{}, err
	}
	return mapping{data: data}, nil
}

func (m mapping) close() error { return nil }
