//go:build !unix

package tracestore

import "sync"

// Without flock, single-flight degrades to per-process: a global mutex
// map serializes generations for a key inside this process, and racing
// processes may each generate once. Publication stays atomic (temp +
// rename), so the store is still correct — just less economical.
var (
	lockMu sync.Mutex
	locks  = map[string]*sync.Mutex{}
)

type fileLock struct {
	mu *sync.Mutex
}

func acquireLock(path string) (fileLock, error) {
	lockMu.Lock()
	mu, ok := locks[path]
	if !ok {
		mu = &sync.Mutex{}
		locks[path] = mu
	}
	lockMu.Unlock()
	mu.Lock()
	return fileLock{mu: mu}, nil
}

func (l fileLock) release() { l.mu.Unlock() }
