//go:build unix

package tracestore

import (
	"os"
	"syscall"
)

// fileLock is an exclusive flock(2) on a per-key lock file. flock
// contends between file descriptions, not processes, so two Store
// handles in one process race exactly like two processes do — which is
// what lets tests exercise the cross-process protocol in-process. The
// lock file itself is never removed: unlink+flock races can hand two
// lockers different inodes, and an empty leftover file per key is
// cheaper than that bug.
type fileLock struct {
	f *os.File
}

func acquireLock(path string) (fileLock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return fileLock{}, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return fileLock{}, err
	}
	return fileLock{f: f}, nil
}

func (l fileLock) release() {
	syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	l.f.Close()
}
