// Package clockgate is a simulator-backed reproduction of "Clock Gate on
// Abort: Towards Energy-Efficient Hardware Transactional Memory" (Sanyal,
// Roy, Cristal, Unsal, Valero — IPDPS 2009).
//
// The paper proposes clock-gating a processor whenever its transaction is
// aborted in a Scalable-TCC hardware transactional memory, with a
// directory-resident table deciding when to un-gate or renew the gating
// period, and a gating-aware contention-management policy
//
//	Wt = W0 * (2^ceil(lg Na) + 2^ceil(lg Nr))
//
// sizing the window from the per-directory abort (Na) and renew (Nr)
// counters. This package is the stable public API over the full machine
// model in internal/: discrete-event engine, L1 caches with speculative
// RW bits, split-transaction bus, TID vendor, directories with the gating
// table, the Alpha-21264-in-65nm power model, and synthetic STAMP
// workload generators.
//
// The one-call entry point mirrors the paper's methodology — the same
// workload trace is executed with and without the mechanism and compared
// with the §IV energy model:
//
//	out, err := clockgate.Run(clockgate.Experiment{
//		App:        clockgate.Intruder,
//		Processors: 16,
//		Seed:       42,
//	})
//	fmt.Println(out.SpeedUp(), out.EnergyReductionFactor())
//
// # Sessions
//
// Every sweep above a single experiment runs on a Session: a long-lived
// campaign engine that owns a worker pool, a workload-trace cache and an
// optional JSONL checkpoint sink. A campaign is split into independent
// run-cells (paired gated/ungated simulations); the session executes
// them across its pool and either streams results as they complete or
// merges them in canonical cell order:
//
//	opts := clockgate.DefaultCampaignOptions()
//	opts.Workers = runtime.GOMAXPROCS(0)
//	session := clockgate.NewSession(opts)
//	defer session.Close()
//
//	// Streaming: per-cell results in completion order, cancellable.
//	for res, err := range session.Stream(ctx, opts.Cells()) {
//		if err != nil { ... }
//		fmt.Println(res.Cell.Label(), res.Outcome.Comparison.SpeedUp)
//	}
//
//	// Batch: canonical order, byte-identical for every worker count —
//	// and byte-identical to the stream reordered by CellResult.Pos.
//	campaign, err := session.Run(ctx)
//	fmt.Println(campaign.SummaryText())
//
// Session.SetCheckpoint persists each completed cell as one JSON line;
// re-running an interrupted campaign with the same options and
// checkpoint file restarts at the first incomplete cell and produces
// byte-identical output (the CLI exposes this as `-resume`). Contexts
// cancel promptly: the simulator polls the context inside a run, not
// just between cells.
//
// The scenario matrix, the W0 sensitivity sweep (Figure 7), the
// multi-seed error bars and the ablation suite are all cell providers on
// the same engine — Session.RunScenarios, Session.Fig7,
// Session.MultiSeed, Session.Ablations — so they share the pool, the
// trace cache and the checkpoint machinery.
//
// # Distributed campaigns
//
// Serve and Work scale a session past one machine: a coordinator owns
// the campaign's canonical cell list and leases batches of cells over
// HTTP+JSON to any number of workers, each running the cells on a local
// Session. Results merge by canonical cell position, so the final
// campaign is byte-identical to a single-process Session.Run — with
// worker crashes healed by lease deadlines and duplicate returns
// discarded per cell (first result wins):
//
//	// coordinator (one process)
//	campaign, err := clockgate.Serve(ctx, ":7400", opts, clockgate.ServeConfig{})
//
//	// workers (any number of processes, any machines)
//	stats, err := clockgate.Work(ctx, "coordinator:7400", clockgate.WorkerConfig{})
//
// The fleet is elastic: live workers heartbeat their leases so a cell
// slower than the TTL is never re-run, dead workers are reclaimed by a
// background expiry sweep, stragglers near the end of a campaign can be
// re-leased to idle workers (ServeConfig.StealThreshold), and workers
// ride out transient coordinator outages with bounded retries. A
// running coordinator is observable via FetchFleetStatus (GET
// /v1/status) and a Prometheus-style GET /metrics.
//
// The coordinator journals completed cells in the -resume checkpoint
// format (ServeConfig.CheckpointPath), so an interrupted fleet job
// restarts at the first incomplete cell — or finishes locally with
// `cmd/experiments -resume`. The CLI exposes the roles as
// `experiments -serve addr` (with -selfwork for an in-process worker),
// `experiments -worker addr` and `experiments -status addr`;
// docs/DISTRIBUTED.md specifies the protocol (lease state machine,
// renewal and stealing rules, dedup-on-re-lease, merge ordering).
//
// # Legacy entry points
//
// The original one-shot helpers remain as thin adapters, each running a
// throwaway session to completion. Prefer a Session for anything beyond
// a single call; the mapping is:
//
//	RunCampaign(opts)            -> NewSession(opts).Run(ctx)
//	RunScenarios(opts, cases)    -> NewSession(opts).RunScenarios(ctx, cases)
//	experiments -fig7            -> NewSession(opts).Fig7(ctx)
//	experiments -seeds N         -> NewSession(opts).MultiSeed(ctx, seeds)
//	experiments -ablations       -> NewSession(opts).Ablations(ctx)
//
// Beyond the paper's grid, the scenario matrix names every runnable case
// — each STAMP preset at 1–128 processors, several gating windows,
// contention levels and interconnect shapes — as addressable case IDs
// (see docs/E2E.md). Case IDs are append-only: the original 1–32
// processor grid keeps M00001–M00432, the 48/64/96/128-processor scale
// block is appended as M00433–M00720, the banked-interconnect block as
// M00721–M00752, and the energy/EDP technology block as M00753–M00800:
//
//	sc, _ := clockgate.ScenarioByID("M00042")
//	campaign, err := clockgate.RunScenarios(opts, []clockgate.Scenario{sc})
//
// # Energy technology axis and journal re-pricing
//
// The power model is a campaign axis, not a constant: a named
// energy.Tech technology point (leakage share, TCC cache factor — pinned
// or priced from the RW-bit tracking resolution by the cacti model —
// miss activity, SRPG keep fraction) prices every cell's residency
// ledgers. CampaignOptions.Tech and Cell.Tech select the point (""
// means the paper's Table I model, DefaultTechName), TechByName /
// TechNames list the registry, and the CSV carries per-state energy,
// EDP and ED²P columns plus the tech name per row. Because a technology
// point changes pricing but never timing, any checkpoint or fleet
// journal can be re-emitted under other tech points without
// re-simulating — pure checkpoint arithmetic, byte-identical to a fresh
// simulated run under that tech (golden-pinned):
//
//	campaign, err := clockgate.Reprice("fleet.jsonl", "t45", "t65-srpg50")
//	campaign.WriteCSV(os.Stdout)
//
// The CLI form is `experiments -reprice fleet.jsonl -tech t45,t65-srpg50`;
// the energy/EDP matrix block (M00753–M00800) sweeps the same axis as
// addressable cases, and docs/ENERGY.md specifies the model and the
// re-pricing contract.
//
// # Interconnect models
//
// The machine's interconnect is either the paper's single
// split-transaction bus (the default) or an address-interleaved banked
// bus opening the 64/128-processor scale axis: Config.Machine.Banks
// selects the shape (0 = single bus, a power of two = that many banks),
// DefaultBankedConfig64/128 are the wide presets, CampaignOptions.Banks
// and Cell.Banks thread it through campaigns, and `cmd/experiments
// -banks N` through the CLI. Banks=1 is cycle-identical to the single
// bus — a differential golden over the whole E2E done-set pins that —
// and docs/ENGINE.md specifies the interleave function and cross-bank
// dispatch order.
//
// Beyond the bus models, Config.Machine.Topology selects a point-to-point
// fabric: "xbar" (a full crossbar with per source→destination pair
// reservation), "mesh[:RxC]" (a 2D mesh with XY dimension-order routing)
// or "ring[:N]" (a bidirectional ring, shorter arc first). Topology
// specs parse with ParseTopology, CampaignOptions.Topology and
// Cell.Topology thread the axis through campaigns (the topology matrix
// block, case IDs M00801–M00848, sweeps it), and `cmd/experiments
// -topology spec` through the CLI. The fabrics replace banking rather
// than composing with it (non-bus topologies require Banks=0), and their
// degenerate shapes — a 1×1 mesh or a 1-node ring — are byte-identical
// to the single bus over the whole E2E done-set, pinned by the topology
// golden. docs/ENGINE.md specifies the routing functions and the
// per-link dispatch order.
package clockgate

import (
	"context"
	"fmt"
	"net"

	"repro/internal/bus"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/tcc"
	"repro/internal/trace"
	"repro/internal/workload"
)

// App names a built-in synthetic workload preset.
type App = stamp.App

// The workload presets evaluated in the paper.
const (
	Genome   = stamp.Genome
	Yada     = stamp.Yada
	Intruder = stamp.Intruder
)

// Extension presets beyond the paper's evaluation.
const (
	Bayes     = stamp.Bayes
	KMeans    = stamp.KMeans
	Labyrinth = stamp.Labyrinth
	SSCA2     = stamp.SSCA2
	Vacation  = stamp.Vacation
)

// PaperApps returns the presets used in the paper's evaluation.
func PaperApps() []App { return stamp.PaperApps() }

// AllApps returns every built-in preset.
func AllApps() []App { return stamp.AllApps() }

// WorkloadSpec re-exports the synthetic workload generator parameters, for
// callers that want custom workloads instead of the presets.
type WorkloadSpec = workload.Spec

// Trace re-exports the workload trace type.
type Trace = workload.Trace

// Config re-exports the full machine + gating configuration.
type Config = config.Config

// MaxProcessors is the widest machine the simulator models: the
// directories keep full-bit-vector sharer sets in two 64-bit words, so
// the scale axis tops out at 128 cores.
const MaxProcessors = config.MaxProcessors

// DefaultConfig returns the paper's Table II machine for the given core
// count, gating disabled. Core counts up to MaxProcessors validate; the
// 64- and 128-processor scale points are also available as
// config presets (config.Default64 / config.Default128).
func DefaultConfig(processors int) Config { return config.Default(processors) }

// MaxBanks is the banked interconnect's bank-count ceiling (banks must
// be a power of two).
const MaxBanks = config.MaxBanks

// DefaultBankedConfig64 returns the 64-processor machine on a 4-banked
// interconnect — the first wide design point where the single split bus
// starts to saturate.
func DefaultBankedConfig64() Config { return config.DefaultBanked64() }

// DefaultBankedConfig128 returns the widest machine (MaxProcessors) on
// an 8-banked interconnect.
func DefaultBankedConfig128() Config { return config.DefaultBanked128() }

// Topology is a parsed point-to-point interconnect shape: the kind
// ("bus", "xbar", "mesh", "ring") plus its dimensions.
type Topology = bus.Topology

// ParseTopology parses an interconnect topology spec — "bus", "xbar[:N]",
// "mesh[:RxC]", "ring[:N]" — against the given processor count. Unsized
// specs take their natural dimensions from the machine (the mesh folds
// the core count into a near-square grid). The empty spec is the bus.
func ParseTopology(spec string, processors int) (Topology, error) {
	return bus.ParseTopology(spec, processors)
}

// PowerModel re-exports the Table I power model.
type PowerModel = power.Model

// DefaultPowerModel returns the paper's Table I factors (Run 1.0,
// Miss 0.32, Commit 0.44, Gated 0.20).
func DefaultPowerModel() PowerModel { return power.Default() }

// Tech is a named energy technology point: the bundle of power-model
// parameters (leakage, TCC cache factor or cacti-priced RW-bit
// resolution, miss activity, SRPG keep fraction) that prices a cell's
// residency ledgers. See internal/energy and docs/ENERGY.md.
type Tech = energy.Tech

// DefaultTechName is the default technology point's name — the paper's
// Table I model — which the empty Tech sentinel resolves to everywhere.
const DefaultTechName = energy.DefaultName

// TechByName resolves a registered technology point by name.
func TechByName(name string) (Tech, bool) { return energy.ByName(name) }

// TechNames returns every registered technology point name in canonical
// order.
func TechNames() []string { return energy.Names() }

// Reprice streams a checkpoint or fleet journal and re-prices every
// recorded cell under the given technology points — tech-major, records
// in canonical order within each block — without re-simulating
// anything: energy is a pure function of the journal's integer residency
// totals and the tech's power model, so the result is byte-identical to
// a fresh simulated run under each tech (pinned by the reprice golden).
// With no techs given, records re-price under their own recorded tech
// points, regenerating the journal's campaign output as-is. The CLI form
// is `experiments -reprice journal.jsonl -tech name[,name...]`.
func Reprice(journalPath string, techs ...string) (*Campaign, error) {
	return experiments.RepriceFile(journalPath, techs)
}

// Experiment describes one paired (ungated vs gated) run.
type Experiment struct {
	// App selects a built-in preset. Ignored when Trace is set.
	App App
	// Trace supplies a custom workload; it must have Processors threads.
	Trace *Trace
	// Processors is the core count (the paper sweeps 4, 8, 16).
	Processors int
	// W0 is the contention-management window constant; 0 means the
	// paper's default of 8.
	W0 int64
	// Seed drives deterministic workload generation.
	Seed uint64
	// Configure optionally edits the machine configuration of both runs.
	Configure func(*Config)
}

// Result is the outcome of a paired experiment.
type Result struct {
	// Ungated and Gated are the raw per-run results.
	Ungated, Gated *RunResult
	cmp            power.Comparison
}

// RunResult re-exports the single-run result type.
type RunResult = tcc.Result

// SpeedUp returns N1/N2: above 1 means gating made the run faster.
func (r *Result) SpeedUp() float64 { return r.cmp.SpeedUp }

// EnergyReductionFactor returns Eug/Eg, the paper's equation (6): above 1
// means gating saved energy.
func (r *Result) EnergyReductionFactor() float64 { return r.cmp.EnergyRatio }

// EnergySavings returns 1 - Eg/Eug as a fraction.
func (r *Result) EnergySavings() float64 { return r.cmp.EnergySavings }

// PowerReductionFactor returns (Eug/Eg)*(N2/N1), equation (7).
func (r *Result) PowerReductionFactor() float64 { return r.cmp.AvgPowerRatio }

// Cycles returns the parallel execution times (N1 ungated, N2 gated).
func (r *Result) Cycles() (n1, n2 int64) { return int64(r.cmp.N1), int64(r.cmp.N2) }

// Energy returns total energy (Eug ungated, Eg gated) in
// run-power-cycle units.
func (r *Result) Energy() (eug, eg float64) { return r.cmp.Eug, r.cmp.Eg }

// Comparison returns the full §IV metric set.
func (r *Result) Comparison() power.Comparison { return r.cmp }

// Run executes the experiment: the identical trace simulated without and
// with the clock-gating protocol, compared under the Table I power model.
func Run(e Experiment) (*Result, error) {
	if e.Processors <= 0 {
		return nil, fmt.Errorf("clockgate: processors %d must be positive", e.Processors)
	}
	out, err := core.RunPair(core.RunSpec{
		App:        e.App,
		Trace:      e.Trace,
		Processors: e.Processors,
		W0:         sim.Time(e.W0),
		Seed:       e.Seed,
		Configure:  e.Configure,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Ungated: out.Ungated, Gated: out.Gated, cmp: out.Comparison}, nil
}

// RunSingle executes one configuration only (gated selects the protocol).
// Most callers want Run; RunSingle exists for studies that only need one
// side, such as baseline characterization.
func RunSingle(e Experiment, gated bool) (*RunResult, error) {
	if e.Processors <= 0 {
		return nil, fmt.Errorf("clockgate: processors %d must be positive", e.Processors)
	}
	return core.RunOne(core.RunSpec{
		App:        e.App,
		Trace:      e.Trace,
		Processors: e.Processors,
		W0:         sim.Time(e.W0),
		Seed:       e.Seed,
		Configure:  e.Configure,
	}, gated)
}

// GenerateTrace builds the deterministic workload trace a preset would use
// at the given thread count and seed, for inspection or mutation.
func GenerateTrace(app App, threads int, seed uint64) (*Trace, error) {
	return stamp.Generate(app, threads, seed)
}

// GenerateTraceScaled is GenerateTrace with the preset's transaction
// count multiplied by scale (floored at threads) — the same sizing rule
// campaign Options.Scale applies, so single experiments can reproduce a
// campaign cell's workload exactly.
func GenerateTraceScaled(app App, threads int, seed uint64, scale float64) (*Trace, error) {
	spec, err := experiments.ScaledSpec(app, threads, scale)
	if err != nil {
		return nil, err
	}
	return spec.Generate(threads, seed)
}

// EventRecorder captures structured protocol events (commits, aborts,
// gatings, renewals, wake-ups) from a run.
type EventRecorder = trace.Recorder

// Event is one recorded protocol event.
type Event = trace.Event

// Protocol event kinds, re-exported for filtering.
const (
	EvTxBegin         = trace.EvTxBegin
	EvCommit          = trace.EvCommit
	EvAbort           = trace.EvAbort
	EvValidationAbort = trace.EvValidationAbort
	EvGate            = trace.EvGate
	EvRenew           = trace.EvRenew
	EvUngate          = trace.EvUngate
	EvSelfAbort       = trace.EvSelfAbort
	EvInvalidate      = trace.EvInvalidate
)

// NewEventRecorder returns an empty recorder for RunSingleWithEvents.
func NewEventRecorder() *EventRecorder { return trace.NewRecorder() }

// CampaignOptions configures a campaign: the workload seed and scale,
// the app/processor grid, the worker-pool width (Workers), per-cell seed
// derivation (DeriveSeeds), and multi-machine sharding (Shard).
type CampaignOptions = experiments.Options

// Campaign holds the outcomes of a paired-run campaign and renders the
// paper's figures, tables, summary and CSV from them.
type Campaign = experiments.Campaign

// CampaignSummary is the campaign's headline aggregate (average speed-up,
// energy and power reductions, slowdown count).
type CampaignSummary = experiments.Summary

// Shard selects one contiguous 1/Count slice of a campaign's cells for
// multi-machine splits; shard CSV outputs concatenate into the unsharded
// output.
type Shard = experiments.Shard

// Cell is one independently runnable unit of a campaign.
type Cell = experiments.Cell

// Outcome is the paired-run result of one campaign cell, as held in
// Campaign.Outcomes and CellResult.Outcome.
type Outcome = core.Outcome

// DefaultCampaignOptions returns the paper's campaign: genome/yada/
// intruder on 4/8/16 processors with W0 = 8 and seed 42, run
// sequentially.
func DefaultCampaignOptions() CampaignOptions { return experiments.DefaultOptions() }

// Session is the campaign engine every sweep runs on: it owns a worker
// pool, a workload-trace cache, and an optional JSONL checkpoint sink.
// Create one with NewSession, run any number of sweeps on it (Run,
// Stream, RunScenarios, Fig7, MultiSeed, Ablations), and Close it when
// done. See the package documentation for the streaming and resume
// semantics.
type Session = experiments.Session

// CellResult is one completed cell of a streamed campaign: the cell, its
// paired-run outcome, and its position in the submitted cell slice
// (sorting a collected stream by Pos reproduces the batch output
// byte-for-byte).
type CellResult = experiments.CellResult

// NewSession creates a campaign session for the given options. The
// worker pool starts lazily; Close releases it.
func NewSession(o CampaignOptions) *Session { return experiments.NewSession(o) }

// RunCampaign executes the campaign's run-cells across
// CampaignOptions.Workers goroutines and merges outcomes in canonical
// cell order. For the same options, every worker count — and any
// sharding — produces identical results. It is a thin adapter running a
// one-shot Session to completion; use NewSession directly for streaming,
// cancellation, or checkpoint/resume.
func RunCampaign(o CampaignOptions) (*Campaign, error) { return experiments.Run(o) }

// Scenario is one named, addressable case of the scenario matrix.
type Scenario = experiments.Scenario

// Contention is a workload conflict-intensity level of the scenario
// matrix.
type Contention = experiments.Contention

// The scenario matrix's contention levels.
const (
	ContentionLow  = experiments.ContentionLow
	ContentionBase = experiments.ContentionBase
	ContentionHigh = experiments.ContentionHigh
)

// ScenarioMatrix returns every scenario the engine can run, in canonical
// order; docs/E2E.md is generated from this list.
func ScenarioMatrix() []Scenario { return experiments.Matrix() }

// MatrixProcessors returns the scenario matrix's legacy processor axis
// (1–32 cores, case IDs M00001–M00432).
func MatrixProcessors() []int {
	return append([]int(nil), experiments.MatrixProcessors...)
}

// MatrixExtensionProcessors returns the appended scale axis (48–128
// cores, case IDs M00433–M00720).
func MatrixExtensionProcessors() []int {
	return append([]int(nil), experiments.MatrixExtensionProcessors...)
}

// MatrixBankedBanks returns the banked-interconnect block's bank axis
// (case IDs M00721–M00752 pair it with the 64/128-processor machines).
func MatrixBankedBanks() []int {
	return append([]int(nil), experiments.MatrixBankedBanks...)
}

// MatrixTopologies returns the point-to-point topology block's
// interconnect axis (case IDs M00801–M00848 pair it with the
// 64/128-processor machines).
func MatrixTopologies() []string {
	return append([]string(nil), experiments.MatrixTopologies...)
}

// ScenarioByID resolves a case id such as "M00042".
func ScenarioByID(id string) (Scenario, bool) { return experiments.ScenarioByID(id) }

// ScenarioByName resolves a scenario address such as "genome/8p/W0=8/base".
func ScenarioByName(name string) (Scenario, bool) { return experiments.ScenarioByName(name) }

// RunScenarios executes the given scenario-matrix cases as one campaign
// on the worker pool. Each scenario's workload seed derives from the
// campaign seed and the scenario's matrix ordinal, so a case reproduces
// identically whether run alone, in a subset, or in a shard.
func RunScenarios(o CampaignOptions, scenarios []Scenario) (*Campaign, error) {
	return experiments.RunScenarios(o, scenarios)
}

// ServeConfig tunes a distributed campaign coordinator: lease TTL and
// batch size, worker poll interval, the post-completion drain grace, an
// optional JSONL journal path (the -resume checkpoint format), the
// background expiry-sweep interval, the straggler-stealing threshold,
// progress reporting, and an OnListen hook reporting the bound address.
type ServeConfig = dist.Config

// WorkerConfig tunes a distributed campaign worker: its name, the local
// session pool width, the lease batch size, the HTTP client, and the
// transient-failure retry policy.
type WorkerConfig = dist.WorkerOptions

// WorkerStats summarizes one worker's participation in a distributed
// campaign.
type WorkerStats = dist.WorkerStats

// FleetStatus is one consistent control-plane snapshot of a running
// coordinator: phase counts (always summing to the cell total),
// per-worker lease/return/renewal counters, throughput and ETA — the
// GET /v1/status response.
type FleetStatus = dist.Status

// FetchFleetStatus fetches the /v1/status snapshot of the coordinator
// at addr ("host:port" or an http:// URL) — what `experiments -status`
// prints.
func FetchFleetStatus(ctx context.Context, addr string) (FleetStatus, error) {
	return dist.FetchStatus(ctx, nil, addr)
}

// Serve turns the campaign into a fleet job: it listens on addr, owns
// the campaign's canonical cell list (the options' grid, restricted to
// the options' shard), leases batches of cells to any number of Work
// processes, and merges returned results into canonical order. It
// blocks until every cell is accounted for (or ctx is canceled) and
// returns the merged campaign — byte-identical to NewSession(opts).Run,
// including when workers die mid-lease (their cells are re-leased after
// ServeConfig.LeaseTTL) or return a cell twice (first result wins).
// With ServeConfig.CheckpointPath set, every merged cell is journaled in
// the -resume checkpoint format, so an interrupted coordinator restarts
// where it left off. docs/DISTRIBUTED.md specifies the protocol.
func Serve(ctx context.Context, addr string, opts CampaignOptions, cfg ServeConfig) (*Campaign, error) {
	cells, err := experiments.ShardCells(opts.Cells(), opts.Shard)
	if err != nil {
		return nil, err
	}
	c, err := dist.NewCoordinator(opts, cells, cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("clockgate: serve: %w", err)
	}
	return c.Serve(ctx, ln)
}

// Work joins the coordinator at addr ("host:port" or an http:// URL)
// and executes leased cells on a local session until the campaign is
// done or ctx is canceled. The cells compute on the same engine a local
// campaign uses — worker pool, trace cache, identical bytes.
func Work(ctx context.Context, addr string, o WorkerConfig) (WorkerStats, error) {
	return dist.Work(ctx, addr, o)
}

// RunSingleWithEvents executes one configuration with a protocol event
// recorder attached.
func RunSingleWithEvents(e Experiment, gated bool, rec *EventRecorder) (*RunResult, error) {
	if e.Processors <= 0 {
		return nil, fmt.Errorf("clockgate: processors %d must be positive", e.Processors)
	}
	return core.RunOneRecorded(core.RunSpec{
		App:        e.App,
		Trace:      e.Trace,
		Processors: e.Processors,
		W0:         sim.Time(e.W0),
		Seed:       e.Seed,
		Configure:  e.Configure,
	}, gated, rec)
}
