package clockgate

import (
	"testing"

	"repro/internal/config"
)

// quickTrace builds a small high-conflict custom workload so API tests
// stay fast.
func quickTrace(t testing.TB, procs int) *Trace {
	t.Helper()
	spec := WorkloadSpec{
		Name: "api-test", TotalTxs: 16 * procs, MeanTxOps: 8, TxOpsJitter: 0.4,
		WriteFrac: 0.5, HotLines: 8, HotFrac: 0.7, ZipfSkew: 1.0,
		PrivateLines: 64, ComputeMean: 3, InterTxMean: 6, TxTypes: 2,
	}
	tr, err := spec.Generate(procs, 31)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunPairedExperiment(t *testing.T) {
	out, err := Run(Experiment{Trace: quickTrace(t, 4), Processors: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	n1, n2 := out.Cycles()
	if n1 <= 0 || n2 <= 0 {
		t.Fatalf("cycles %d/%d", n1, n2)
	}
	eug, eg := out.Energy()
	if eug <= 0 || eg <= 0 {
		t.Fatalf("energy %f/%f", eug, eg)
	}
	if out.SpeedUp() <= 0 || out.EnergyReductionFactor() <= 0 {
		t.Fatal("ratios not positive")
	}
	if s := out.EnergySavings(); s <= -1 || s >= 1 {
		t.Fatalf("savings %f out of range", s)
	}
	c := out.Comparison()
	if int64(c.N1) != n1 || int64(c.N2) != n2 {
		t.Fatal("Comparison disagrees with Cycles")
	}
}

func TestRunValidatesProcessors(t *testing.T) {
	if _, err := Run(Experiment{App: Intruder, Processors: 0}); err == nil {
		t.Fatal("zero processors accepted")
	}
	if _, err := RunSingle(Experiment{App: Intruder, Processors: -1}, false); err == nil {
		t.Fatal("negative processors accepted")
	}
}

func TestRunSingle(t *testing.T) {
	tr := quickTrace(t, 2)
	ug, err := RunSingle(Experiment{Trace: tr, Processors: 2, Seed: 31}, false)
	if err != nil {
		t.Fatal(err)
	}
	g, err := RunSingle(Experiment{Trace: tr, Processors: 2, Seed: 31}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ug.Gated || !g.Gated {
		t.Fatal("gated flags wrong")
	}
}

func TestGenerateTraceMatchesPresets(t *testing.T) {
	tr, err := GenerateTrace(Yada, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != string(Yada) || tr.NumThreads() != 4 {
		t.Fatalf("trace %q with %d threads", tr.Name, tr.NumThreads())
	}
}

func TestAppListings(t *testing.T) {
	if len(PaperApps()) != 3 {
		t.Fatalf("paper apps %v", PaperApps())
	}
	if len(AllApps()) != 8 {
		t.Fatalf("all apps %v", AllApps())
	}
}

func TestDefaultPowerModelIsTableI(t *testing.T) {
	m := DefaultPowerModel()
	if m.Run != 1.0 || m.Gated != 0.20 {
		t.Fatalf("power model %+v", m)
	}
}

func TestDefaultConfigIsTableII(t *testing.T) {
	c := DefaultConfig(8)
	if c.Machine.Processors != 8 || c.Machine.L1SizeBytes != 64<<10 {
		t.Fatalf("config %+v", c.Machine)
	}
}

func TestConfigureHook(t *testing.T) {
	tr := quickTrace(t, 2)
	called := 0
	_, err := Run(Experiment{
		Trace: tr, Processors: 2, Seed: 31,
		Configure: func(c *Config) {
			called++
			c.Gating.Policy = config.PolicyExponential
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if called != 2 {
		t.Fatalf("Configure called %d times", called)
	}
}

func TestW0ZeroMeansDefault(t *testing.T) {
	tr := quickTrace(t, 2)
	if _, err := Run(Experiment{Trace: tr, Processors: 2, W0: 0, Seed: 31}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleWithEvents(t *testing.T) {
	rec := NewEventRecorder()
	res, err := RunSingleWithEvents(Experiment{
		Trace: quickTrace(t, 4), Processors: 4, Seed: 31,
	}, true, rec)
	if err != nil {
		t.Fatal(err)
	}
	counts := rec.CountByKind()
	if uint64(counts[EvCommit]) != res.Counters.Commits {
		t.Fatalf("recorded %d commits, counters say %d", counts[EvCommit], res.Counters.Commits)
	}
	if uint64(counts[EvGate]) != res.Counters.Gatings {
		t.Fatalf("recorded %d gatings, counters say %d", counts[EvGate], res.Counters.Gatings)
	}
	if counts[EvTxBegin] == 0 {
		t.Fatal("no tx-begin events recorded")
	}
	if _, err := RunSingleWithEvents(Experiment{App: Intruder}, true, rec); err == nil {
		t.Fatal("zero processors accepted")
	}
}

func TestCampaignAPI(t *testing.T) {
	opts := DefaultCampaignOptions()
	opts.Scale = 0.02
	opts.Processors = []int{2, 4}
	opts.Workers = 4
	c, err := RunCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Outcomes) != 6 { // 3 paper apps x 2 processor counts
		t.Fatalf("%d outcomes", len(c.Outcomes))
	}
	s := c.Summarize()
	if s.AvgSpeedUp <= 0 {
		t.Fatalf("summary %+v", s)
	}

	// Sharding through the public API: both halves together cover the
	// campaign.
	var n int
	for i := 0; i < 2; i++ {
		opts.Shard = Shard{Index: i, Count: 2}
		half, err := RunCampaign(opts)
		if err != nil {
			t.Fatal(err)
		}
		n += len(half.Outcomes)
	}
	if n != len(c.Outcomes) {
		t.Fatalf("shards cover %d of %d cells", n, len(c.Outcomes))
	}
}

func TestScenarioMatrixAPI(t *testing.T) {
	m := ScenarioMatrix()
	if len(m) == 0 {
		t.Fatal("empty scenario matrix")
	}
	s, ok := ScenarioByID(m[0].ID)
	if !ok || s != m[0] {
		t.Fatalf("ScenarioByID(%q) = %+v, %v", m[0].ID, s, ok)
	}
	if _, ok := ScenarioByName(m[0].Name()); !ok {
		t.Fatalf("ScenarioByName(%q) failed", m[0].Name())
	}
}

func TestEventRecorderFilterViaPublicAPI(t *testing.T) {
	rec := NewEventRecorder().Filter(EvGate)
	_, err := RunSingleWithEvents(Experiment{
		Trace: quickTrace(t, 4), Processors: 4, Seed: 31,
	}, true, rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rec.Events() {
		if e.Kind != EvGate {
			t.Fatalf("filter leaked %v", e.Kind)
		}
	}
}
