// Command tccsim runs a single workload on the simulated Scalable-TCC
// machine, with or without the clock-gating protocol, and prints the
// execution, protocol and energy statistics of the run.
//
// Usage:
//
//	tccsim -app intruder -procs 16 -gated -w0 8 -seed 42
//	tccsim -app yada -procs 8 -pair        # paired ungated/gated comparison
//	tccsim -trace workload.bin -procs 4    # replay an archived trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/stats"
	"repro/internal/tcc"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		app       = flag.String("app", "intruder", "workload preset (genome, yada, intruder, ...)")
		tracePath = flag.String("trace", "", "replay a binary trace file instead of a preset")
		procs     = flag.Int("procs", 8, "processor count")
		gated     = flag.Bool("gated", false, "enable the clock-gating protocol")
		pair      = flag.Bool("pair", false, "run both configurations and compare")
		w0        = flag.Int64("w0", 0, "gating window constant W0 (0 = default 8)")
		seed      = flag.Uint64("seed", 42, "workload generation seed")
		verbose   = flag.Bool("v", false, "print per-processor statistics")
		events    = flag.Int("events", 0, "dump the first N protocol events of the run")
		timeline  = flag.Bool("timeline", false, "print an ASCII per-processor state timeline")
		intervals = flag.Bool("energy", false, "print the paper's interval energy decomposition (eqs. 1-5)")
	)
	flag.Parse()

	rs := core.RunSpec{
		App:        stamp.App(*app),
		Processors: *procs,
		W0:         sim.Time(*w0),
		Seed:       *seed,
	}
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		tr, err := workload.Decode(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		rs.Trace = tr
	}

	if *pair {
		out, err := core.RunPair(rs)
		if err != nil {
			fatal(err)
		}
		c := out.Comparison
		fmt.Printf("workload        %s on %d processors (seed %d)\n", out.Ungated.TraceName, *procs, *seed)
		fmt.Printf("N1 (ungated)    %d cycles\n", c.N1)
		fmt.Printf("N2 (gated)      %d cycles\n", c.N2)
		fmt.Printf("speed-up        %.3fx\n", c.SpeedUp)
		fmt.Printf("Eug             %.4g\n", c.Eug)
		fmt.Printf("Eg              %.4g\n", c.Eg)
		fmt.Printf("energy ratio    %.3fx (savings %.1f%%)\n", c.EnergyRatio, c.EnergySavings*100)
		fmt.Printf("power ratio     %.3fx (savings %.1f%%)\n", c.AvgPowerRatio, c.PowerSavings*100)
		fmt.Printf("aborts          %d ungated -> %d gated\n",
			out.Ungated.Counters.Aborts, out.Gated.Counters.Aborts)
		fmt.Printf("gatings         %d (renewals %d, self-aborts %d)\n",
			out.Gated.Counters.Gatings, out.Gated.Counters.Renewals, out.Gated.Counters.SelfAborts)
		return
	}

	var rec *trace.Recorder
	if *events > 0 {
		rec = trace.NewRecorder().Limit(*events)
	}
	res, err := core.RunOneRecorded(rs, *gated, rec)
	if err != nil {
		fatal(err)
	}
	m := power.Default()
	energy := m.Energy(res.Ledger, 0, res.Cycles)
	mode := "ungated"
	if *gated {
		mode = "gated"
	}
	fmt.Printf("workload     %s on %d processors, %s (seed %d)\n", res.TraceName, *procs, mode, *seed)
	fmt.Printf("cycles       %d\n", res.Cycles)
	fmt.Printf("energy       %.4g run-power-cycles\n", energy)
	fmt.Printf("avg power    %.4g run-power units\n", energy/float64(res.Cycles))
	fmt.Printf("commits      %d\n", res.Counters.Commits)
	fmt.Printf("aborts       %d (%.2f per commit)\n", res.Counters.Aborts, res.Counters.AbortRate())
	fmt.Printf("invals       %d\n", res.Counters.Invalidations)
	if *gated {
		fmt.Printf("gatings      %d\n", res.Counters.Gatings)
		fmt.Printf("renewals     %d\n", res.Counters.Renewals)
		fmt.Printf("self-aborts  %d\n", res.Counters.SelfAborts)
	}
	tot := res.Ledger.TotalResidency(0, res.Cycles)
	all := float64(tot[0] + tot[1] + tot[2] + tot[3])
	fmt.Printf("residency    run %.1f%%  miss %.1f%%  commit %.1f%%  gated %.1f%%\n",
		100*float64(tot[stats.StateRun])/all,
		100*float64(tot[stats.StateMiss])/all,
		100*float64(tot[stats.StateCommit])/all,
		100*float64(tot[stats.StateGated])/all)
	fmt.Printf("bus          %d messages, %.1f%% utilized\n",
		res.BusStats.Messages, 100*float64(res.BusStats.BusyCycles)/float64(res.Cycles))

	if *verbose {
		fmt.Println()
		for i, ps := range res.PerProc {
			fmt.Printf("proc %2d: commits %5d aborts %4d gatings %4d self-aborts %4d max-attempts %d\n",
				i, ps.Commits, ps.Aborts, ps.Gatings, ps.SelfAborts, ps.MaxAttempts)
		}
	}
	if *timeline {
		fmt.Println()
		fmt.Print(report.Timeline{Ledger: res.Ledger, Width: 100}.Render())
	}
	if *intervals {
		printIntervalDecomposition(res, m, *gated)
	}
	if rec != nil {
		fmt.Println()
		if err := rec.Dump(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// printIntervalDecomposition evaluates the paper's §IV interval
// formulation on the run and prints Xi, alpha_i, beta_i and the resulting
// energy, cross-checked against the direct per-state integration.
func printIntervalDecomposition(res *tcc.Result, m power.Model, gated bool) {
	im := power.Intervals(res.Ledger)
	fmt.Println()
	fmt.Printf("interval decomposition (paper §IV): N=%d p=%d\n", im.N, im.P)
	fmt.Printf("%3s %12s %8s %8s\n", "i", "Xi (cycles)", "alpha_i", "beta_i")
	for i := 0; i <= im.P; i++ {
		if im.X[i] == 0 {
			continue
		}
		fmt.Printf("%3d %12d %8.3f %8.3f\n", i, im.X[i], im.Alpha[i], im.Beta[i])
	}
	var viaEq float64
	if gated {
		viaEq = im.GatedEnergy(m)
		fmt.Printf("Eg  via equation (1): %.6g\n", viaEq)
	} else {
		viaEq = im.UngatedEnergy(m)
		fmt.Printf("Eug via equation (5): %.6g\n", viaEq)
	}
	direct := m.Energy(res.Ledger, 0, res.Cycles)
	fmt.Printf("    direct integral:  %.6g (delta %.2g)\n", direct, direct-viaEq)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tccsim:", err)
	os.Exit(1)
}
