// Command tracegen generates, archives and inspects workload traces.
//
// Usage:
//
//	tracegen -app yada -threads 8 -seed 42 -o yada8.trace   # generate
//	tracegen -inspect yada8.trace                           # summarize
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stamp"
	"repro/internal/workload"
)

func main() {
	var (
		app     = flag.String("app", "intruder", "workload preset")
		threads = flag.Int("threads", 8, "thread count")
		seed    = flag.Uint64("seed", 42, "generation seed")
		out     = flag.String("o", "", "output trace file (default <app><threads>.trace)")
		inspect = flag.String("inspect", "", "summarize an existing trace file")
	)
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := workload.Decode(f)
		if err != nil {
			fatal(err)
		}
		summarize(tr)
		return
	}

	tr, err := stamp.Generate(stamp.App(*app), *threads, *seed)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s%d.trace", *app, *threads)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := workload.Encode(f, tr); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
	summarize(tr)
}

func summarize(tr *workload.Trace) {
	fmt.Printf("trace    %s\n", tr.Name)
	fmt.Printf("threads  %d\n", tr.NumThreads())
	fmt.Printf("txs      %d total\n", tr.TotalTxs())
	reads, writes, computes := 0, 0, 0
	distinctPCs := make(map[uint64]struct{})
	maxLine := int64(-1)
	for ti := range tr.Threads {
		th := &tr.Threads[ti]
		for xi := range th.Txs {
			tx := &th.Txs[xi]
			distinctPCs[tx.PC] = struct{}{}
			for _, op := range tx.Ops {
				switch op.Kind {
				case workload.OpRead:
					reads++
				case workload.OpWrite:
					writes++
				case workload.OpCompute:
					computes++
				}
				if op.Kind != workload.OpCompute && int64(op.Line) > maxLine {
					maxLine = int64(op.Line)
				}
			}
		}
	}
	fmt.Printf("ops      %d reads, %d writes, %d compute bursts\n", reads, writes, computes)
	fmt.Printf("tx types %d distinct PCs\n", len(distinctPCs))
	fmt.Printf("footprint lines 0..%d\n", maxLine)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
