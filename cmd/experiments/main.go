// Command experiments regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	experiments -all               # everything (Tables I-II, Figures 3-7, summary)
//	experiments -table1 -fig5      # selected artifacts
//	experiments -all -scale 0.25   # quick quarter-size campaign
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		all      = flag.Bool("all", false, "regenerate everything")
		table1   = flag.Bool("table1", false, "Table I: power model")
		table2   = flag.Bool("table2", false, "Table II: simulation parameters")
		fig3     = flag.Bool("fig3", false, "Figure 3: TCC data cache power")
		fig4     = flag.Bool("fig4", false, "Figure 4: parallel execution time")
		fig5     = flag.Bool("fig5", false, "Figure 5: energy consumption")
		fig6     = flag.Bool("fig6", false, "Figure 6: average power dissipation")
		fig7     = flag.Bool("fig7", false, "Figure 7: speed-up vs W0 and Np")
		summary  = flag.Bool("summary", false, "headline summary vs the paper")
		detail   = flag.Bool("detail", false, "per-configuration detail table")
		ablation = flag.Bool("ablations", false, "policy / renewal / SRPG ablation tables")
		extended = flag.Bool("extended", false, "run the five extension presets too")
		seeds    = flag.Int("seeds", 0, "re-run the campaign across N seeds and report spread")
		csvPath  = flag.String("csv", "", "also write per-configuration results to this CSV file")
		seed     = flag.Uint64("seed", 42, "workload generation seed")
		scale    = flag.Float64("scale", 1.0, "workload size multiplier")
	)
	flag.Parse()

	if *all {
		*table1, *table2, *fig3, *fig4, *fig5, *fig6, *fig7 = true, true, true, true, true, true, true
		*summary, *detail = true, true
	}
	if !(*table1 || *table2 || *fig3 || *fig4 || *fig5 || *fig6 || *fig7 ||
		*summary || *detail || *ablation || *extended || *seeds > 0 || *csvPath != "") {
		flag.Usage()
		os.Exit(2)
	}

	opts := experiments.DefaultOptions()
	opts.Seed = *seed
	opts.Scale = *scale

	if *table1 {
		fmt.Println(experiments.TableI())
	}
	if *table2 {
		fmt.Println(experiments.TableII())
	}
	if *fig3 {
		fmt.Println(experiments.Fig3())
	}

	needsCampaign := *fig4 || *fig5 || *fig6 || *summary || *detail || *csvPath != ""
	if needsCampaign {
		campaign, err := experiments.Run(opts)
		if err != nil {
			fatal(err)
		}
		if *fig4 {
			fmt.Println(campaign.Fig4())
		}
		if *fig5 {
			fmt.Println(campaign.Fig5())
		}
		if *fig6 {
			fmt.Println(campaign.Fig6())
		}
		if *detail {
			fmt.Println(campaign.DetailTable())
		}
		if *summary {
			fmt.Println(campaign.SummaryText())
		}
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				fatal(err)
			}
			if err := campaign.WriteCSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *csvPath)
		}
	}

	if *fig7 {
		out, err := experiments.Fig7(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}

	if *ablation {
		out, err := experiments.Ablations(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}

	if *extended {
		campaign, err := experiments.Extended(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Extension presets (beyond the paper's evaluation):")
		fmt.Println(campaign.DetailTable())
		fmt.Println(campaign.SummaryText())
	}

	if *seeds > 0 {
		list := make([]uint64, *seeds)
		for i := range list {
			list[i] = *seed + uint64(i)
		}
		ms, err := experiments.MultiSeed(opts, list)
		if err != nil {
			fatal(err)
		}
		fmt.Println(ms.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
