// Command experiments regenerates every table and figure of the paper's
// evaluation section, and runs scenario-matrix campaigns beyond it.
//
// Usage:
//
//	experiments -all                    # everything (Tables I-II, Figures 3-7, summary)
//	experiments -table1 -fig5           # selected artifacts
//	experiments -all -scale 0.25        # quick quarter-size campaign
//	experiments -all -workers 8         # same output, 8 cells in flight
//	experiments -summary -shard 0/3 -csv part0.csv   # 1/3 of the campaign;
//	    # concatenating part0..part2 reproduces the unsharded CSV exactly
//	experiments -matrix-list            # list every scenario-matrix case
//	experiments -matrix M00042,M00049 -detail        # run cases by id
//	experiments -matrix done -detail    # run every case the E2E table executes
//	experiments -e2e-doc > docs/E2E.md  # regenerate the E2E case table
//	experiments -summary -resume ckpt.jsonl          # checkpoint every cell;
//	    # Ctrl-C, then re-run the same command: it restarts at the first
//	    # incomplete cell and the final output is byte-identical
//	experiments -serve :7400 -summary -csv out.csv   # distributed: lease the
//	    # campaign's cells to workers, merge byte-identically
//	experiments -worker host:7400                    # join a coordinator and
//	    # run leased cells on a local session
//	experiments -serve :7400 -matrix done -resume j.jsonl  # distribute the
//	    # done-set; the journal doubles as a -resume checkpoint
//	experiments -serve :7400 -selfwork -summary      # coordinator that also
//	    # works its own leases, so a fleet of one still makes progress
//	experiments -status host:7400                    # one-shot fleet status
//	    # snapshot (phase counts, per-worker counters, throughput, ETA)
//	experiments -summary -tech t45      # price the campaign under another
//	    # energy technology point (see -tech-list); timing is unchanged
//	experiments -reprice j.jsonl -tech t45,t65-srpg50 -csv out.csv  # re-price
//	    # a checkpoint/fleet journal under other tech points WITHOUT
//	    # re-simulating: byte-identical to fresh runs under each tech
//	experiments -summary -tech @my.json # price under a user-defined tech
//	    # point loaded from JSON (one object or an array; see energy.Tech)
//	experiments -tech-list              # list the technology points
//
// Every sweep runs on one clockgate session (worker pool + trace cache +
// optional checkpoint sink); SIGINT/SIGTERM cancel the session's context,
// which stops the simulators mid-run. In -serve mode the cells execute on
// remote workers instead (docs/DISTRIBUTED.md specifies the protocol);
// output is byte-identical either way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/bus"
	"repro/internal/config"
	"repro/internal/dist"
	"repro/internal/energy"
	"repro/internal/experiments"
)

func main() {
	var (
		all        = flag.Bool("all", false, "regenerate everything")
		table1     = flag.Bool("table1", false, "Table I: power model")
		table2     = flag.Bool("table2", false, "Table II: simulation parameters")
		fig3       = flag.Bool("fig3", false, "Figure 3: TCC data cache power")
		fig4       = flag.Bool("fig4", false, "Figure 4: parallel execution time")
		fig5       = flag.Bool("fig5", false, "Figure 5: energy consumption")
		fig6       = flag.Bool("fig6", false, "Figure 6: average power dissipation")
		fig7       = flag.Bool("fig7", false, "Figure 7: speed-up vs W0 and Np")
		summary    = flag.Bool("summary", false, "headline summary vs the paper")
		detail     = flag.Bool("detail", false, "per-configuration detail table")
		ablation   = flag.Bool("ablations", false, "policy / renewal / SRPG ablation tables")
		extended   = flag.Bool("extended", false, "run the five extension presets too")
		seeds      = flag.Int("seeds", 0, "re-run the campaign across N seeds and report spread")
		csvPath    = flag.String("csv", "", "also write per-configuration results to this CSV file")
		seed       = flag.Uint64("seed", 42, "workload generation seed")
		scale      = flag.Float64("scale", 1.0, "workload size multiplier")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "campaign worker goroutines (1 = sequential; output is identical either way)")
		procs      = flag.String("procs", "", "comma-separated processor counts overriding the paper's 4,8,16 sweep (up to 128, e.g. \"32,64,128\")")
		banks      = flag.Int("banks", 0, "interconnect banks: 0 = the single split bus, a power of two = the address-interleaved banked bus (cells that pin their own shape, like matrix cases M00721+, keep it)")
		topology   = flag.String("topology", "", "interconnect topology: \"bus\" (default), \"xbar[:N]\", \"mesh[:RxC]\" or \"ring[:N]\"; non-bus fabrics require -banks 0 (cells that pin their own shape, like matrix cases M00801+, keep it)")
		shardSpec  = flag.String("shard", "", "run only shard i of n campaign cells, as \"i/n\"; shard CSVs concatenate cleanly (only shard 0 writes the header)")
		matrix     = flag.String("matrix", "", "run scenario-matrix cases: comma-separated ids/names, \"done\", or \"all\"")
		matrixList = flag.Bool("matrix-list", false, "list every scenario-matrix case")
		e2eDoc     = flag.Bool("e2e-doc", false, "print the generated docs/E2E.md")
		resume     = flag.String("resume", "", "JSONL checkpoint file: completed cells are appended as they finish and an interrupted run restarts at the first incomplete cell")
		serve      = flag.String("serve", "", "coordinate a distributed campaign on this listen address (e.g. \":7400\"): cells are leased to -worker processes and merged byte-identically to a local run; with -resume the file doubles as the coordinator journal")
		worker     = flag.String("worker", "", "join the coordinator at this address (host:port) and execute leased cells on a local session with -workers goroutines")
		status     = flag.String("status", "", "print the /v1/status snapshot of the coordinator at this address (host:port) and exit")
		selfWork   = flag.Bool("selfwork", false, "with -serve: also run an in-process worker, so a fleet of one makes progress without a separate -worker process")
		steal      = flag.Int("steal", 8, "with -serve: once at most N unfinished cells remain and none are pending, re-lease the oldest in-flight cells to idle workers (straggler stealing; 0 disables)")
		progress   = flag.Duration("progress", 30*time.Second, "with -serve: log a fleet progress line to stderr at this interval (0 disables)")
		tech       = flag.String("tech", "", "energy technology point pricing the campaign's cells (see -tech-list; default: the paper's Table I point); with -reprice, a comma-separated list re-prices the journal under each point; \"@file.json\" elements load user-defined points from a JSON file")
		techList   = flag.Bool("tech-list", false, "list the registered energy technology points and their model derivations")
		reprice    = flag.String("reprice", "", "re-price the cells of this checkpoint/fleet journal under -tech WITHOUT re-simulating (pure checkpoint arithmetic; combines with -detail/-summary/-csv)")
		traceDir   = flag.String("trace-dir", "", "content-addressed on-disk trace store directory, shared across processes: traces are generated once machine-wide and mmap-loaded everywhere else (composable with -serve/-worker/-matrix; results are byte-identical either way)")
		retBatch   = flag.Int("return-batch", 0, "with -worker: stream up to N finished cells back per return instead of holding the whole lease (0 = whole lease)")
	)
	flag.Parse()

	if *all {
		*table1, *table2, *fig3, *fig4, *fig5, *fig6, *fig7 = true, true, true, true, true, true, true
		*summary, *detail = true, true
	}
	if !(*table1 || *table2 || *fig3 || *fig4 || *fig5 || *fig6 || *fig7 ||
		*summary || *detail || *ablation || *extended || *seeds > 0 || *csvPath != "" ||
		*matrix != "" || *matrixList || *e2eDoc || *serve != "" || *worker != "" || *status != "" ||
		*techList || *reprice != "") {
		flag.Usage()
		os.Exit(2)
	}

	if *e2eDoc {
		fmt.Print(experiments.E2EDoc())
		return
	}
	if *matrixList {
		fmt.Println(experiments.MatrixTable())
		return
	}
	if *techList {
		for _, t := range energy.Techs() {
			fmt.Print(t.Describe())
		}
		return
	}

	if *status != "" {
		// Status mode: one read-only control-plane snapshot, no session.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		st, err := dist.FetchStatus(ctx, nil, *status)
		if err != nil {
			fatal(err)
		}
		fmt.Print(st.Summary())
		return
	}

	if *worker != "" {
		// Worker mode: no local campaign at all — join the coordinator
		// and execute leased cells until it reports the campaign done.
		if *serve != "" {
			fatal(fmt.Errorf("-worker and -serve are mutually exclusive (one process, one role)"))
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		st, err := dist.Work(ctx, *worker, dist.WorkerOptions{
			Workers:     *workers,
			ReturnBatch: *retBatch,
			TraceDir:    *traceDir,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("worker done: %d cells over %d leases (%d transient-error retries, %d lease renewals)\n",
			st.Cells, st.Leases, st.Retries, st.Renewals)
		return
	}

	opts := experiments.DefaultOptions()
	opts.Seed = *seed
	opts.Scale = *scale
	opts.Workers = *workers
	opts.TraceDir = *traceDir
	if *procs != "" {
		list, err := parseProcs(*procs)
		if err != nil {
			fatal(err)
		}
		opts.Processors = list
	}
	if err := config.ValidateBanks(*banks); err != nil {
		fatal(fmt.Errorf("-banks %d must be 0 (single bus) or a power of two up to %d", *banks, config.MaxBanks))
	}
	opts.Banks = *banks
	// Validate the topology spec (and its exclusion with banking) up
	// front against the widest machine the run may build, so a typo fails
	// here with a parse error instead of mid-campaign.
	if err := bus.ValidateTopology(*topology, *banks, config.MaxProcessors); err != nil {
		fatal(err)
	}
	opts.Topology = *topology

	shard, err := parseShard(*shardSpec)
	if err != nil {
		fatal(err)
	}
	opts.Shard = shard

	techs, err := parseTechs(*tech)
	if err != nil {
		fatal(err)
	}
	for _, name := range techs {
		if _, err := energy.Resolve(name); err != nil {
			fatal(err)
		}
	}
	if *reprice == "" {
		// Campaigns price every cell under one technology point; only the
		// reprice mode fans a journal out across several.
		if len(techs) > 1 {
			fatal(fmt.Errorf("-tech with a list combines only with -reprice; a campaign prices under one technology point"))
		}
		if len(techs) == 1 {
			opts.Tech = techs[0]
		}
	}

	// One session runs every requested sweep: worker pool, trace cache
	// and checkpoint sink are shared across them. SIGINT/SIGTERM cancel
	// the context, which stops the simulators mid-run; with -resume the
	// completed cells are already on disk and the next run picks up at
	// the first incomplete cell.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	session := experiments.NewSession(opts)
	defer session.Close()
	if *resume != "" && *serve == "" {
		// In -serve mode the coordinator owns the journal instead; two
		// writers on one checkpoint file would corrupt it.
		if err := session.SetCheckpoint(*resume); err != nil {
			fatal(err)
		}
		if n := session.Checkpoint().Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: resuming from %s (%d cells on record)\n", *resume, n)
		}
	}

	writeCSV := func(c *experiments.Campaign) {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		// Only shard 0 (or an unsharded run) writes the header, so
		// concatenated shard files parse as one CSV.
		if shard.Index == 0 {
			err = c.WriteCSV(f)
		} else {
			err = c.AppendCSV(f)
		}
		if err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}

	if *reprice != "" {
		// Reprice mode: no simulation at all — the journal's residency
		// totals are re-priced under each requested technology point, and
		// the output is byte-identical to fresh simulated runs under them.
		if *table1 || *table2 || *fig3 || *fig4 || *fig5 || *fig6 || *fig7 ||
			*ablation || *extended || *seeds > 0 || *matrix != "" || *serve != "" {
			fatal(fmt.Errorf("-reprice combines only with -tech/-detail/-summary/-csv"))
		}
		campaign, err := experiments.RepriceFile(*reprice, techs)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Re-priced %s: %d rows", *reprice, len(campaign.Outcomes))
		if len(techs) > 0 {
			fmt.Printf(" (%d cells x %d tech points)", len(campaign.Outcomes)/len(techs), len(techs))
		}
		fmt.Println(", zero cells simulated")
		if *detail {
			fmt.Println(campaign.DetailTable())
		}
		if *summary {
			fmt.Println(campaign.SummaryText())
		}
		if *csvPath != "" {
			writeCSV(campaign)
		}
		return
	}

	if *serve != "" {
		// Coordinator mode: the campaign's cells execute on -worker
		// processes instead of the local session; the merged output is
		// byte-identical to a local run of the same flags.
		if *table1 || *table2 || *fig3 || *fig7 || *ablation || *extended || *seeds > 0 {
			fatal(fmt.Errorf("-serve combines only with -matrix/-detail/-summary/-csv/-shard/-seed/-scale/-procs/-banks/-topology/-resume; run figures and tables locally"))
		}
		var cells []experiments.Cell
		if *matrix != "" {
			scenarios, err := selectScenarios(*matrix)
			if err != nil {
				fatal(err)
			}
			cells = opts.ScenarioCells(scenarios)
		} else {
			cells = opts.Cells()
		}
		cells, err := experiments.ShardCells(cells, shard)
		if err != nil {
			fatal(err)
		}
		var selfWG sync.WaitGroup
		coord, err := dist.NewCoordinator(opts, cells, dist.Config{
			CheckpointPath:   *resume,
			StealThreshold:   *steal,
			ProgressInterval: *progress,
			OnProgress: func(st dist.Status) {
				fmt.Fprintln(os.Stderr, "experiments: fleet: "+st.Progress())
			},
			OnListen: func(a string) {
				fmt.Fprintf(os.Stderr, "experiments: coordinating %d cells on %s (point workers at it with -worker, inspect with -status)\n", len(cells), a)
				if *selfWork {
					selfWG.Add(1)
					go func() {
						defer selfWG.Done()
						if _, err := dist.Work(ctx, a, dist.WorkerOptions{Name: "self", Workers: *workers}); err != nil {
							fmt.Fprintf(os.Stderr, "experiments: in-process worker: %v\n", err)
						}
					}()
				}
			},
		})
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fatal(err)
		}
		campaign, err := coord.Serve(ctx, ln)
		if err != nil {
			fatalRun(err, *resume)
		}
		selfWG.Wait()
		st := coord.Stats()
		fmt.Fprintf(os.Stderr, "experiments: distributed campaign complete: %d cells (%d restored from journal, %d leases, %d expired, %d renewals, %d stolen, %d duplicate returns)\n",
			len(cells), st.Restored, st.Leases, st.Expired, st.Renewals, st.Steals, st.Duplicates)
		if *detail {
			fmt.Println(campaign.DetailTable())
		}
		if *summary {
			fmt.Println(campaign.SummaryText())
		}
		if *csvPath != "" {
			writeCSV(campaign)
		}
		return
	}

	if *matrix != "" {
		// A matrix run replaces the paper campaign; combining it with
		// figure/table artifacts would silently drop them, so refuse.
		if *table1 || *table2 || *fig3 || *fig4 || *fig5 || *fig6 || *fig7 ||
			*ablation || *extended || *seeds > 0 {
			fatal(fmt.Errorf("-matrix combines only with -detail/-summary/-csv/-workers/-shard/-seed/-scale; run figures and tables separately"))
		}
		scenarios, err := selectScenarios(*matrix)
		if err != nil {
			fatal(err)
		}
		campaign, err := session.RunScenarios(ctx, scenarios)
		if err != nil {
			fatalRun(err, *resume)
		}
		fmt.Printf("Scenario matrix campaign (%d of %d selected cases):\n",
			len(campaign.Outcomes), len(scenarios))
		fmt.Println(campaign.DetailTable())
		if *summary {
			fmt.Println(campaign.SummaryText())
		}
		if *csvPath != "" {
			writeCSV(campaign)
		}
		return
	}

	if *table1 {
		fmt.Println(experiments.TableI())
	}
	if *table2 {
		fmt.Println(experiments.TableII())
	}
	if *fig3 {
		fmt.Println(experiments.Fig3())
	}

	needsCampaign := *fig4 || *fig5 || *fig6 || *summary || *detail || *csvPath != ""
	if needsCampaign {
		campaign, err := session.Run(ctx)
		if err != nil {
			fatalRun(err, *resume)
		}
		if *fig4 {
			fmt.Println(campaign.Fig4())
		}
		if *fig5 {
			fmt.Println(campaign.Fig5())
		}
		if *fig6 {
			fmt.Println(campaign.Fig6())
		}
		if *detail {
			fmt.Println(campaign.DetailTable())
		}
		if *summary {
			fmt.Println(campaign.SummaryText())
		}
		if *csvPath != "" {
			writeCSV(campaign)
		}
	}

	if *fig7 {
		// The W0 sweep aggregates every (app, Np, W0) point into one
		// figure, so it cannot be split across shards; running it on
		// every shard would waste the wall-clock sharding buys.
		if shard.Count != 0 {
			fmt.Println("Figure 7 skipped in shard mode (the W0 sweep is one indivisible figure); run -fig7 unsharded")
		} else {
			out, err := session.Fig7(ctx)
			if err != nil {
				fatalRun(err, *resume)
			}
			fmt.Println(out)
		}
	}

	if *ablation {
		out, err := session.Ablations(ctx)
		if err != nil {
			fatalRun(err, *resume)
		}
		fmt.Println(out)
	}

	if *extended {
		campaign, err := experiments.Extended(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Extension presets (beyond the paper's evaluation):")
		fmt.Println(campaign.DetailTable())
		fmt.Println(campaign.SummaryText())
	}

	if *seeds > 0 {
		list := make([]uint64, *seeds)
		for i := range list {
			list[i] = *seed + uint64(i)
		}
		ms, err := session.MultiSeed(ctx, list)
		if err != nil {
			fatalRun(err, *resume)
		}
		fmt.Println(ms.Render())
	}
}

// parseProcs parses "-procs 32,64,128" into a processor-count list.
func parseProcs(arg string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(arg, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -procs entry %q (want positive counts, e.g. 32,64,128)", tok)
		}
		if n > config.MaxProcessors {
			return nil, fmt.Errorf("-procs entry %d exceeds the %d-processor machine ceiling", n, config.MaxProcessors)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-procs selected no processor counts")
	}
	return out, nil
}

// parseTechs parses "-tech t45,t65-srpg50" into a tech-name list; ""
// means none (the default point for campaigns, as-recorded for
// -reprice). An "@file.json" element loads user-defined points from the
// file (energy.LoadFile) and expands to their names in file order, so
// "-tech @points.json" prices a campaign under a custom point and
// "-tech t65,@points.json -reprice j.jsonl" fans a journal out across
// built-in and loaded points alike.
func parseTechs(arg string) ([]string, error) {
	var out []string
	for _, tok := range strings.Split(arg, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "":
		case strings.HasPrefix(tok, "@"):
			loaded, err := energy.LoadFile(strings.TrimPrefix(tok, "@"))
			if err != nil {
				return nil, err
			}
			for _, tp := range loaded {
				out = append(out, tp.Name)
			}
		default:
			out = append(out, tok)
		}
	}
	return out, nil
}

// parseShard parses "-shard i/n" into a Shard; "" means unsharded.
func parseShard(s string) (experiments.Shard, error) {
	if s == "" {
		return experiments.Shard{}, nil
	}
	idx, count, ok := strings.Cut(s, "/")
	var sh experiments.Shard
	var err error
	if sh.Index, err = strconv.Atoi(idx); ok && err == nil {
		sh.Count, err = strconv.Atoi(count)
	}
	if !ok || err != nil {
		return experiments.Shard{}, fmt.Errorf("bad -shard %q (want \"i/n\", e.g. 0/3)", s)
	}
	if err := sh.Validate(); err != nil {
		return experiments.Shard{}, err
	}
	return sh, nil
}

// selectScenarios resolves the -matrix argument: "all", "done", or a
// comma-separated list of case ids / scenario names.
func selectScenarios(arg string) ([]experiments.Scenario, error) {
	switch arg {
	case "all":
		return experiments.Matrix(), nil
	case "done":
		return experiments.DoneScenarios(), nil
	}
	var out []experiments.Scenario
	for _, tok := range strings.Split(arg, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		s, ok := experiments.ScenarioByID(tok)
		if !ok {
			s, ok = experiments.ScenarioByName(tok)
		}
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (try -matrix-list)", tok)
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenarios selected")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// fatalRun reports a sweep failure. A context cancellation is the user's
// SIGINT, not an error: report what was saved and exit with the
// conventional interrupted status.
func fatalRun(err error, resume string) {
	if errors.Is(err, context.Canceled) {
		if resume != "" {
			fmt.Fprintln(os.Stderr, "experiments: interrupted; completed cells are checkpointed — re-run the same command to resume at the first incomplete cell")
		} else {
			fmt.Fprintln(os.Stderr, "experiments: interrupted (use -resume FILE to make runs restartable)")
		}
		os.Exit(130)
	}
	fatal(err)
}
