// Command powermodel prints the Alpha 21264 @ 65 nm power model (paper
// Table I), its derivation from the component breakdown, and the TCC
// data-cache power curves of Figure 3.
//
// Usage:
//
//	powermodel                 # Table I + derivation
//	powermodel -fig3           # also print the Figure 3 curves
//	powermodel -leakage 0.3    # what-if: different leakage share
//	powermodel -keep 0.25      # SRPG: retain 25% of gated leakage
//	powermodel -tech t45       # a registered technology point's derivation
//	powermodel -tech @my.json  # derive user-defined points from a JSON file
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/cacti"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/power"
)

func main() {
	var (
		fig3     = flag.Bool("fig3", false, "print the Figure 3 cache power curves")
		leakage  = flag.Float64("leakage", 0.20, "leakage share of total power")
		tccxf    = flag.Float64("tccfactor", 1.5, "TCC data cache power multiplier")
		missAct  = flag.Float64("missactivity", 0.5, "cache activity during a miss relative to a hit")
		keep     = flag.Float64("keep", 1.0, "SRPG keep fraction: share of leakage retained while gated, in [0,1]")
		tech     = flag.String("tech", "", "derive a registered energy technology point instead of the flag-built breakdown (see -tech list); \"@file.json\" derives every user-defined point in the file")
		showSRPG = flag.Bool("srpg", false, "show state-retention power gating variants")
	)
	flag.Parse()

	if *tech == "list" {
		for _, tp := range energy.Techs() {
			fmt.Println(tp.Describe())
		}
		return
	}
	if name, ok := strings.CutPrefix(*tech, "@"); ok {
		// User-defined points: load, validate and fingerprint them like
		// registry points, then print each derivation.
		loaded, err := energy.LoadFile(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, tp := range loaded {
			printTech(tp)
		}
		return
	}
	if *tech != "" {
		tp, err := energy.Resolve(*tech)
		if err != nil {
			log.Fatal(err)
		}
		printTech(tp)
		return
	}

	if *keep < 0 || *keep > 1 {
		log.Fatalf("powermodel: -keep %g outside [0,1]", *keep)
	}
	b := power.DefaultBreakdown()
	b.Leakage = *leakage
	b.TCCCacheFactor = *tccxf
	b.MissActivity = *missAct
	m := power.Derive(b).WithSRPG(*keep)

	fmt.Println(experiments.TableI())
	fmt.Println("Derivation with current flags:")
	fmt.Printf("  Commit = %.2f + %.2f*(%.3f + %.2f + %.2f) = %.3f\n",
		b.Leakage, 1-b.Leakage, b.DataCache*b.TCCCacheFactor, b.IO, b.CacheIOClock, m.Commit)
	fmt.Printf("  Miss   = %.2f + %.2f*%.2f*(%.3f + %.2f + %.2f) = %.3f\n",
		b.Leakage, 1-b.Leakage, b.MissActivity, b.DataCache*b.TCCCacheFactor, b.IO, b.CacheIOClock, m.Miss)
	fmt.Printf("  Gated  = leakage * keep = %.2f * %.2f = %.3f\n", b.Leakage, *keep, m.Gated)

	if *showSRPG {
		fmt.Println("\nState-retention power gating (paper §IV: leakage could be gated too):")
		base := power.Derive(b)
		for _, k := range []float64{1.0, 0.5, 0.25, 0.1} {
			fmt.Printf("  retain %.0f%% leakage -> gated factor %.3f\n", k*100, base.WithSRPG(k).Gated)
		}
	}

	if *fig3 {
		fmt.Println()
		fmt.Println(experiments.Fig3())
		cfg := cacti.DefaultConfig()
		fmt.Println("Anchor points:")
		fmt.Printf("  64KB @ 2B word tracking: +%.1f%% (paper: limited to 5%%)\n",
			cfg.RWBitPower(2, 64)-cacti.BasePower)
		fmt.Printf("  full TCC cache factor:   %.2fx (paper: conservatively 1.5x)\n",
			cfg.TCCFactor(2, 64))
	}
}

// printTech renders a registered technology point: its parameters, the
// component breakdown they select, and the per-state power factors the
// Table I derivation produces from it.
func printTech(tp energy.Tech) {
	fmt.Println(tp.Describe())
	b := tp.Breakdown()
	m := tp.Model()
	fmt.Println("Derivation:")
	fmt.Printf("  Commit = %.2f + %.2f*(%.3f + %.2f + %.2f) = %.3f\n",
		b.Leakage, 1-b.Leakage, b.DataCache*b.TCCCacheFactor, b.IO, b.CacheIOClock, m.Commit)
	fmt.Printf("  Miss   = %.2f + %.2f*%.2f*(%.3f + %.2f + %.2f) = %.3f\n",
		b.Leakage, 1-b.Leakage, b.MissActivity, b.DataCache*b.TCCCacheFactor, b.IO, b.CacheIOClock, m.Miss)
	fmt.Printf("  Gated  = leakage * keep = %.2f * %.2f = %.3f\n", b.Leakage, tp.Keep, m.Gated)
	fmt.Printf("Factors: Run %.3f  Miss %.3f  Commit %.3f  Gated %.3f\n",
		m.Run, m.Miss, m.Commit, m.Gated)
}
