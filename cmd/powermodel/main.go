// Command powermodel prints the Alpha 21264 @ 65 nm power model (paper
// Table I), its derivation from the component breakdown, and the TCC
// data-cache power curves of Figure 3.
//
// Usage:
//
//	powermodel                 # Table I + derivation
//	powermodel -fig3           # also print the Figure 3 curves
//	powermodel -leakage 0.3    # what-if: different leakage share
package main

import (
	"flag"
	"fmt"

	"repro/internal/cacti"
	"repro/internal/experiments"
	"repro/internal/power"
)

func main() {
	var (
		fig3     = flag.Bool("fig3", false, "print the Figure 3 cache power curves")
		leakage  = flag.Float64("leakage", 0.20, "leakage share of total power")
		tccxf    = flag.Float64("tccfactor", 1.5, "TCC data cache power multiplier")
		missAct  = flag.Float64("missactivity", 0.5, "cache activity during a miss relative to a hit")
		showSRPG = flag.Bool("srpg", false, "show state-retention power gating variants")
	)
	flag.Parse()

	b := power.DefaultBreakdown()
	b.Leakage = *leakage
	b.TCCCacheFactor = *tccxf
	b.MissActivity = *missAct
	m := power.Derive(b)

	fmt.Println(experiments.TableI())
	fmt.Println("Derivation with current flags:")
	fmt.Printf("  Commit = %.2f + %.2f*(%.3f + %.2f + %.2f) = %.3f\n",
		b.Leakage, 1-b.Leakage, b.DataCache*b.TCCCacheFactor, b.IO, b.CacheIOClock, m.Commit)
	fmt.Printf("  Miss   = %.2f + %.2f*%.2f*(%.3f + %.2f + %.2f) = %.3f\n",
		b.Leakage, 1-b.Leakage, b.MissActivity, b.DataCache*b.TCCCacheFactor, b.IO, b.CacheIOClock, m.Miss)
	fmt.Printf("  Gated  = leakage = %.3f\n", m.Gated)

	if *showSRPG {
		fmt.Println("\nState-retention power gating (paper §IV: leakage could be gated too):")
		for _, keep := range []float64{1.0, 0.5, 0.25, 0.1} {
			fmt.Printf("  retain %.0f%% leakage -> gated factor %.3f\n", keep*100, m.WithSRPG(keep).Gated)
		}
	}

	if *fig3 {
		fmt.Println()
		fmt.Println(experiments.Fig3())
		cfg := cacti.DefaultConfig()
		fmt.Println("Anchor points:")
		fmt.Printf("  64KB @ 2B word tracking: +%.1f%% (paper: limited to 5%%)\n",
			cfg.RWBitPower(2, 64)-cacti.BasePower)
		fmt.Printf("  full TCC cache factor:   %.2fx (paper: conservatively 1.5x)\n",
			cfg.TCCFactor(2, 64))
	}
}
