// Command benchsnap records the engine's perf trajectory: it benchmarks
// the simulation hot path (calendar-queue engine, batched bus, a full
// 32-processor paired run-cell) with testing.Benchmark and writes the
// numbers as one JSON document, BENCH_engine.json by convention. CI runs
// it in the bench smoke step so every build leaves a machine-readable
// perf record next to the logs.
//
//	go run ./cmd/benchsnap -out BENCH_engine.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// snapshot is the BENCH_engine.json schema.
type snapshot struct {
	Schema  string             `json:"schema"`
	Go      string             `json:"go"`
	NumCPU  int                `json:"num_cpu"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("out", "BENCH_engine.json", "output path for the JSON perf record")
	flag.Parse()

	m := map[string]float64{}

	// Raw event throughput: the self-scheduling cascade the processor
	// model produces, on a warm engine.
	{
		const chain = 100_000
		r := testing.Benchmark(func(b *testing.B) {
			e := sim.NewEngine()
			n := 0
			var next func()
			next = func() {
				n++
				if n%chain != 0 {
					e.ScheduleAfter(1, next)
				}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.ScheduleAfter(1, next)
				e.Run()
			}
		})
		m["engine_events_per_sec"] = float64(chain) / r.T.Seconds() * float64(r.N)
		m["engine_allocs_per_event"] = float64(r.AllocsPerOp()) / chain
	}

	// Steady-state allocation guard value (the sim test asserts 0; the
	// snapshot records it so a regression is visible in the trajectory
	// even before the test flips).
	{
		e := sim.NewEngine()
		fn := func() {}
		work := func() {
			for i := 0; i < 64; i++ {
				e.ScheduleAfter(sim.Time(i%37), fn)
			}
			e.Run()
		}
		for i := 0; i < 512; i++ {
			work()
		}
		m["engine_steady_allocs_per_burst"] = testing.AllocsPerRun(50, work)
	}

	// The headline: one paired (ungated + gated) 32-processor run-cell of
	// the high-conflict preset, trace pre-generated.
	{
		spec := stamp.MustSpec(stamp.Intruder)
		spec.TotalTxs /= 4
		tr, err := spec.Generate(32, 42)
		if err != nil {
			fatal(err)
		}
		rs := core.RunSpec{Trace: tr, Processors: 32, Seed: 42}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunPair(rs); err != nil {
					b.Fatal(err)
				}
			}
		})
		m["cell_32p_ns"] = float64(r.NsPerOp())
		m["cell_32p_cells_per_sec"] = 1e9 / float64(r.NsPerOp())
		m["cell_32p_allocs"] = float64(r.AllocsPerOp())
		m["cell_32p_bytes"] = float64(r.AllocedBytesPerOp())

		// The same cell on a reused System — the session pool workers'
		// steady state: one warm SystemCache carried across the whole
		// stream, runs reset in place instead of rebuilt.
		sc := &core.SystemCache{}
		if _, err := core.RunPairCached(context.Background(), rs, sc); err != nil {
			fatal(err)
		}
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunPairCached(context.Background(), rs, sc); err != nil {
					b.Fatal(err)
				}
			}
		})
		m["cell_32p_reuse_ns"] = float64(r.NsPerOp())
		m["cell_32p_reuse_cells_per_sec"] = 1e9 / float64(r.NsPerOp())
		m["cell_32p_reuse_allocs"] = float64(r.AllocsPerOp())
		m["cell_32p_reuse_bytes"] = float64(r.AllocedBytesPerOp())
	}

	// Interconnect scaling: the same 128-processor paired cell on the
	// single-bank and the 4-banked bus, at line-beat occupancy (8 cycles —
	// a 64-byte line on a 64-bit path), where the single bus saturates.
	// Recording both shapes makes the banked model's contention relief a
	// tracked number: interconnect_scaling_128p is the banked/single
	// cells-per-second ratio (BenchmarkInterconnectScaling is the
	// interactive form of the same measurement).
	{
		spec := stamp.MustSpec(stamp.Intruder)
		spec.TotalTxs /= 4
		tr, err := spec.Generate(128, 42)
		if err != nil {
			fatal(err)
		}
		for _, banks := range []int{1, 4} {
			rs := core.RunSpec{Trace: tr, Processors: 128, Seed: 42,
				Configure: func(c *config.Config) {
					c.Machine.Banks = banks
					c.Machine.BusCycles = 8
				}}
			var wait, msgs uint64
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out, err := core.RunPair(rs)
					if err != nil {
						b.Fatal(err)
					}
					wait, msgs = out.Ungated.BusStats.WaitCycles, out.Ungated.BusStats.Messages
				}
			})
			key := fmt.Sprintf("cell_128p_banks%d", banks)
			m[key+"_ns"] = float64(r.NsPerOp())
			m[key+"_cells_per_sec"] = 1e9 / float64(r.NsPerOp())
			m[key+"_wait_cycles_per_msg"] = float64(wait) / float64(msgs)
		}
		m["interconnect_scaling_128p"] = m["cell_128p_banks4_cells_per_sec"] /
			m["cell_128p_banks1_cells_per_sec"]

		// Topology lanes: the same cell on the point-to-point fabrics
		// (mesh at its natural 8x16 fold, full crossbar), banking off.
		// Recording them next to the banked lanes keeps the two
		// interconnect axes comparable; topology_scaling_128p is the
		// mesh/single-bus cells-per-second ratio, and the fabrics'
		// wait-cycles/msg undercutting cell_128p_banks4's is the tentpole
		// payoff number (BenchmarkTopologyScaling is the interactive form).
		for _, topo := range []string{"mesh", "xbar"} {
			rs := core.RunSpec{Trace: tr, Processors: 128, Seed: 42,
				Configure: func(c *config.Config) {
					c.Machine.Topology = topo
					c.Machine.BusCycles = 8
				}}
			var wait, msgs uint64
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out, err := core.RunPair(rs)
					if err != nil {
						b.Fatal(err)
					}
					wait, msgs = out.Ungated.BusStats.WaitCycles, out.Ungated.BusStats.Messages
				}
			})
			key := "cell_128p_" + topo
			m[key+"_ns"] = float64(r.NsPerOp())
			m[key+"_cells_per_sec"] = 1e9 / float64(r.NsPerOp())
			m[key+"_wait_cycles_per_msg"] = float64(wait) / float64(msgs)
		}
		m["topology_scaling_128p"] = m["cell_128p_mesh_cells_per_sec"] /
			m["cell_128p_banks1_cells_per_sec"]
	}

	// Re-pricing throughput: a small campaign is simulated once into a
	// journal, then the journal's records re-price under a non-default
	// technology point in memory. The acceptance floor is 10^4 cells/s —
	// checkpoint arithmetic, orders of magnitude above simulation speed —
	// so this metric doubles as the "reprice never simulates" tripwire.
	{
		dir, err := os.MkdirTemp("", "benchsnap-reprice")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		journal := filepath.Join(dir, "journal.jsonl")
		o := experiments.Options{Seed: 42, Scale: 0.05, Processors: []int{8}}
		s := experiments.NewSession(o)
		if err := s.SetCheckpoint(journal); err != nil {
			s.Close()
			fatal(err)
		}
		if _, err := s.Run(context.Background()); err != nil {
			s.Close()
			fatal(err)
		}
		s.Close()
		recs, err := experiments.ReadJournalFile(journal)
		if err != nil {
			fatal(err)
		}
		techs := []string{"t45", "t32", "t65-srpg50"}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Reprice(recs, techs); err != nil {
					b.Fatal(err)
				}
			}
		})
		cells := float64(len(recs) * len(techs))
		m["reprice_cells_per_sec"] = cells / float64(r.NsPerOp()) * 1e9
		m["reprice_cell_ns"] = float64(r.NsPerOp()) / cells
	}

	// Trace-store provisioning: the same trace generated from scratch
	// (the cold path every process paid before the store), published and
	// loaded back through a cold store, and served as a store hit (the
	// mmap-aliasing load a warm fleet pays). trace_store_speedup is the
	// generation/hit ratio — the per-process provisioning win the shared
	// store buys on top of the in-process cache.
	{
		spec := stamp.MustSpec(stamp.Intruder)
		spec.TotalTxs /= 4
		gen := func() (*workload.Trace, error) { return spec.Generate(32, 42) }
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gen(); err != nil {
					b.Fatal(err)
				}
			}
		})
		m["trace_gen_ns"] = float64(r.NsPerOp())

		dir, err := os.MkdirTemp("", "benchsnap-tracestore")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		key := tracestore.Key{App: "intruder", Threads: 32, Scale: 0.25, Seed: 42}
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cold, err := os.MkdirTemp(dir, "cold")
				if err != nil {
					b.Fatal(err)
				}
				st, err := tracestore.Open(cold, tracestore.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := st.GetOrGenerate(key, gen); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				st.Close()
				os.RemoveAll(cold)
				b.StartTimer()
			}
		})
		m["trace_store_cold_ns"] = float64(r.NsPerOp())

		warm, err := tracestore.Open(filepath.Join(dir, "warm"), tracestore.Options{})
		if err != nil {
			fatal(err)
		}
		if _, err := warm.GetOrGenerate(key, gen); err != nil {
			fatal(err)
		}
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok, err := warm.Load(key); err != nil || !ok {
					b.Fatalf("store hit failed: ok=%v err=%v", ok, err)
				}
			}
		})
		warm.Close()
		m["trace_store_hit_ns"] = float64(r.NsPerOp())
		m["trace_store_hit_allocs"] = float64(r.AllocsPerOp())
		m["trace_store_speedup"] = m["trace_gen_ns"] / m["trace_store_hit_ns"]
	}

	snap := snapshot{
		Schema:  "bench_engine/v1",
		Go:      runtime.Version(),
		NumCPU:  runtime.NumCPU(),
		Metrics: m,
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n%s", *out, buf)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
