// Differential timing-equivalence harness for the point-to-point
// interconnect topologies. A 1×1 mesh and a 1-node ring collapse every
// route onto a single link — tile 0's local port — which serializes
// traffic exactly like the paper's single split-transaction bus. The
// campaign CSVs of the three machines must therefore be byte-identical
// across the whole E2E done-set, outside the topology column that names
// them. This is the golden that lets the fabric implementations claim
// the single-bus results as their baseline: any drift in the hop
// scheduling, the vendor sideband or the stats accounting fails here,
// localized to the first diverging done-set row.
package clockgate

import (
	"context"
	"runtime"
	"strings"
	"testing"
)

// doneSetTopologyCells builds one run-cell per done case of the scenario
// matrix, every cell forced onto the given interconnect topology with
// banking off ("" is the single bus).
func doneSetTopologyCells(seed uint64, topology string) []Cell {
	var cells []Cell
	for _, s := range ScenarioMatrix() {
		if !s.Done() {
			continue
		}
		c := s.Cell(len(cells), seed)
		c.Banks = 0
		c.Topology = topology
		cells = append(cells, c)
	}
	return cells
}

// stripTrailingColumns removes the last n CSV columns from every row.
// The topology golden strips two: the topology column differs between
// the campaigns by construction ("bus" vs the degenerate fabric spec),
// and banks rides behind it as the last column.
func stripTrailingColumns(csv string, n int) string {
	lines := strings.Split(strings.TrimSuffix(csv, "\n"), "\n")
	for i, line := range lines {
		for j := 0; j < n; j++ {
			if cut := strings.LastIndexByte(line, ','); cut >= 0 {
				line = line[:cut]
			}
		}
		lines[i] = line
	}
	return strings.Join(lines, "\n")
}

// TestTopologyDegenerateGoldenOverDoneSet runs every e2e done case three
// times — on the single bus, on a 1×1 mesh and on a 1-node ring — and
// requires the three campaign CSVs to be byte-identical outside the
// trailing topology/banks columns. The per-cell workload is generated
// once and shared (the trace cache ignores the machine axes), so the
// comparison is a pure interconnect differential.
func TestTopologyDegenerateGoldenOverDoneSet(t *testing.T) {
	opts := DefaultCampaignOptions()
	opts.Scale = e2eScale
	opts.Workers = runtime.GOMAXPROCS(0)

	session := NewSession(opts)
	defer session.Close()

	runCSV := func(topology string) (string, []Cell) {
		cells := doneSetTopologyCells(opts.Seed, topology)
		outs, err := session.RunCells(context.Background(), cells)
		if err != nil {
			t.Fatalf("topology=%q campaign: %v", topology, err)
		}
		campaign := &Campaign{Options: opts, Cells: cells, Outcomes: outs}
		var buf strings.Builder
		if err := campaign.WriteCSV(&buf); err != nil {
			t.Fatalf("topology=%q CSV: %v", topology, err)
		}
		return buf.String(), cells
	}
	busCSV, cells := runCSV("")
	bus := strings.Split(stripTrailingColumns(busCSV, 2), "\n")
	for _, degenerate := range []string{"mesh:1x1", "ring:1"} {
		fabricCSV, _ := runCSV(degenerate)
		fabric := strings.Split(stripTrailingColumns(fabricCSV, 2), "\n")
		if len(bus) != len(fabric) {
			t.Fatalf("%s: row counts diverge: %d vs %d", degenerate, len(bus), len(fabric))
		}
		for i := range bus {
			if bus[i] == fabric[i] {
				continue
			}
			// Row 0 is the header; data row i belongs to cells[i-1].
			cell := cells[i-1]
			t.Errorf("%s: first diverging done-set row %d (%s %s):\n  bus:    %s\n  fabric: %s",
				degenerate, i, cell.ID, cell.Label(), bus[i], fabric[i])
			break
		}
	}
}

// TestTopologyDoneCasesRun smoke-executes one representative done case of
// the topology matrix block per fabric kind at reduced scale: the
// non-degenerate machines must complete the paired run with finite
// metrics and per-link stats the CSV can render. (Full done-set coverage
// of the block rides in the E2E harness; this pins that each fabric kind
// at least executes before that suite runs.)
func TestTopologyDoneCasesRun(t *testing.T) {
	opts := DefaultCampaignOptions()
	opts.Scale = 0.01
	session := NewSession(opts)
	defer session.Close()

	var cells []Cell
	for _, topo := range MatrixTopologies() {
		cells = append(cells, Cell{
			Index: len(cells), App: Intruder, Processors: 64,
			Topology: topo, Seed: opts.Seed,
		})
	}
	outs, err := session.RunCells(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out.Gated.Cycles <= 0 || out.Ungated.Cycles <= 0 {
			t.Errorf("%s: non-positive cycle count", cells[i].Label())
		}
		if out.Gated.BusStats.Messages == 0 {
			t.Errorf("%s: fabric carried no messages", cells[i].Label())
		}
		if len(out.Gated.BankStats) < 2 {
			t.Errorf("%s: %d per-link stat entries, want one per link/port",
				cells[i].Label(), len(out.Gated.BankStats))
		}
	}
	campaign := &Campaign{Options: opts, Cells: cells, Outcomes: outs}
	var buf strings.Builder
	if err := campaign.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	for _, topo := range MatrixTopologies() {
		if !strings.Contains(buf.String(), ","+topo) {
			t.Errorf("CSV lacks topology column value %q", topo)
		}
	}
}
