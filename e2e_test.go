// End-to-end scenario-matrix harness. docs/E2E.md is the case table;
// this file executes it: the committed doc must match the generator
// byte-for-byte, and every case the table marks "done" runs here (at
// reduced scale) through the public campaign API on a parallel worker
// pool. A case cannot be listed as done without being executed, and the
// doc cannot drift from the matrix that generated it.
package clockgate

import (
	"context"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// e2eScale shrinks every scenario's workload so the full done-set runs
// in seconds.
const e2eScale = 0.02

// readE2EDoc loads the committed case table.
func readE2EDoc(t *testing.T) string {
	t.Helper()
	raw, err := os.ReadFile("docs/E2E.md")
	if err != nil {
		t.Fatalf("docs/E2E.md missing: %v (regenerate with `go run ./cmd/experiments -e2e-doc > docs/E2E.md`)", err)
	}
	return string(raw)
}

// parseDocCases extracts (case id, status) pairs from the markdown table.
func parseDocCases(t *testing.T, doc string) map[string]string {
	t.Helper()
	cases := map[string]string{}
	for _, line := range strings.Split(doc, "\n") {
		if !strings.HasPrefix(line, "| M") {
			continue
		}
		cols := strings.Split(line, "|")
		// cols[0] is empty, then: case id, category, title, check point,
		// priority, status.
		if len(cols) < 7 {
			t.Fatalf("malformed case row: %q", line)
		}
		id := strings.TrimSpace(cols[1])
		status := strings.TrimSpace(cols[6])
		cases[id] = status
	}
	if len(cases) == 0 {
		t.Fatal("no case rows found in docs/E2E.md")
	}
	return cases
}

// TestE2EDocMatchesGenerator pins docs/E2E.md to the scenario matrix:
// any change to either without the other fails here.
func TestE2EDocMatchesGenerator(t *testing.T) {
	got := readE2EDoc(t)
	want := experiments.E2EDoc()
	if got != want {
		t.Fatalf("docs/E2E.md is stale; regenerate with `go run ./cmd/experiments -e2e-doc > docs/E2E.md`")
	}
}

// TestE2EDocCoversMatrix checks every scenario appears in the doc exactly
// once with the status the matrix reports, and vice versa.
func TestE2EDocCoversMatrix(t *testing.T) {
	cases := parseDocCases(t, readE2EDoc(t))
	matrix := ScenarioMatrix()
	if len(cases) != len(matrix) {
		t.Fatalf("doc lists %d cases, matrix has %d", len(cases), len(matrix))
	}
	for _, s := range matrix {
		status, ok := cases[s.ID]
		if !ok {
			t.Errorf("scenario %s missing from docs/E2E.md", s.ID)
			continue
		}
		if status != s.Status() {
			t.Errorf("%s: doc status %q, matrix says %q", s.ID, status, s.Status())
		}
	}
}

// TestE2EScenarios executes every done case id from docs/E2E.md as one
// streamed session campaign — results collected in completion order,
// reordered into canonical order by CellResult.Pos — and asserts each
// case's check point, table-driven by the doc itself. Streaming the
// harness (instead of batching) exercises the engine's central guarantee
// on every CI run: a reordered stream is the batch result.
func TestE2EScenarios(t *testing.T) {
	cases := parseDocCases(t, readE2EDoc(t))
	var scenarios []Scenario
	for _, s := range ScenarioMatrix() {
		if cases[s.ID] == "done" {
			scenarios = append(scenarios, s)
		}
	}
	if len(scenarios) == 0 {
		t.Fatal("docs/E2E.md marks no case as done")
	}

	opts := DefaultCampaignOptions()
	opts.Scale = e2eScale
	opts.Workers = runtime.GOMAXPROCS(0)
	session := NewSession(opts)
	defer session.Close()

	cells := make([]Cell, len(scenarios))
	for i, s := range scenarios {
		cells[i] = s.Cell(i, opts.Seed)
	}
	outcomes := make([]*Outcome, len(cells))
	delivered := 0
	for res, err := range session.Stream(context.Background(), cells) {
		if err != nil {
			t.Fatalf("cell %s: %v", res.Cell.Label(), err)
		}
		if outcomes[res.Pos] != nil {
			t.Fatalf("cell %d delivered twice", res.Pos)
		}
		outcomes[res.Pos] = res.Outcome
		delivered++
	}
	if delivered != len(scenarios) {
		t.Fatalf("%d outcomes for %d scenarios", delivered, len(scenarios))
	}

	for i, s := range scenarios {
		out := outcomes[i]
		t.Run(s.ID, func(t *testing.T) {
			cmp := out.Comparison
			if cmp.N1 <= 0 || cmp.N2 <= 0 {
				t.Errorf("%s: non-positive cycles N1=%d N2=%d", s.Name(), cmp.N1, cmp.N2)
			}
			if !(cmp.Eug > 0) || !(cmp.Eg > 0) {
				t.Errorf("%s: non-positive energy Eug=%g Eg=%g", s.Name(), cmp.Eug, cmp.Eg)
			}
			for _, v := range []float64{cmp.SpeedUp, cmp.EnergyRatio, cmp.AvgPowerRatio} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
					t.Errorf("%s: metric not positive/finite: %g", s.Name(), v)
				}
			}
			ug, g := out.Ungated.Counters, out.Gated.Counters
			if g.Commits == 0 {
				t.Errorf("%s: gated run committed nothing", s.Name())
			}
			if s.Processors == 1 && ug.Aborts != 0 {
				t.Errorf("%s: uniprocessor run aborted %d times", s.Name(), ug.Aborts)
			}

			// Gating-counter invariants (the check-point column's
			// "counters" clause), asserted for every executed case:
			// the ungated baseline never gates; renewals require a
			// gated processor; a processor can only wake from a gating
			// it entered; self-aborts happen only after wake-ups; a
			// uniprocessor has no conflicts and so never gates; and
			// both runs commit the same transaction count (the trace
			// always completes).
			if ug.Gatings != 0 {
				t.Errorf("%s: ungated baseline recorded %d gatings", s.Name(), ug.Gatings)
			}
			if g.Gatings == 0 && g.Renewals != 0 {
				t.Errorf("%s: %d renewals without a single gating", s.Name(), g.Renewals)
			}
			if g.Ungates > g.Gatings {
				t.Errorf("%s: %d ungates exceed %d gatings", s.Name(), g.Ungates, g.Gatings)
			}
			if g.SelfAborts > g.Ungates {
				t.Errorf("%s: %d self-aborts exceed %d wake-ups", s.Name(), g.SelfAborts, g.Ungates)
			}
			if s.Processors == 1 && g.Gatings != 0 {
				t.Errorf("%s: uniprocessor gated %d times", s.Name(), g.Gatings)
			}
			if ug.Commits != g.Commits {
				t.Errorf("%s: commit counts diverge: ungated %d, gated %d", s.Name(), ug.Commits, g.Commits)
			}
			// Contention-level sharpening: raised contention on a
			// multiprocessor must actually exercise the gating path.
			if s.Contention == ContentionHigh && s.Processors >= 8 && g.Gatings == 0 {
				t.Errorf("%s: high contention at %dp never gated", s.Name(), s.Processors)
			}
		})
	}

	// No cross-scenario comparisons here: each scenario owns a seed
	// derived from its matrix ordinal, so comparing counters across
	// contention levels would compare different random workloads. The
	// contention knob's behavior is asserted pairwise (shared seed) in
	// internal/experiments' TestContentionShapesAborts.
}

// TestE2ECampaignParityWithPublicAPI cross-checks one scenario against
// the single-experiment API: the campaign engine and clockgate.Run must
// agree on the same workload.
func TestE2ECampaignParityWithPublicAPI(t *testing.T) {
	s, ok := ScenarioByName("intruder/8p/W0=8/base")
	if !ok {
		t.Fatal("canonical scenario missing from matrix")
	}
	opts := DefaultCampaignOptions()
	opts.Scale = e2eScale
	campaign, err := RunScenarios(opts, []Scenario{s})
	if err != nil {
		t.Fatal(err)
	}
	cell := campaign.Cells[0]

	spec, err := GenerateTraceScaled(s.App, s.Processors, cell.Seed, e2eScale)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(Experiment{
		Trace:      spec,
		Processors: s.Processors,
		W0:         int64(s.W0),
		Seed:       cell.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	n1, n2 := single.Cycles()
	cmp := campaign.Outcomes[0].Comparison
	if int64(cmp.N1) != n1 || int64(cmp.N2) != n2 {
		t.Fatalf("campaign engine and public Run disagree: campaign N1=%d N2=%d, single N1=%d N2=%d",
			cmp.N1, cmp.N2, n1, n2)
	}
}
