package clockgate_test

import (
	"fmt"
	"log"

	clockgate "repro"
)

// Example demonstrates the paired-run methodology on a small custom
// workload. The printed numbers are exact: the simulator is fully
// deterministic, so this example doubles as a cross-platform determinism
// regression test.
func Example() {
	spec := clockgate.WorkloadSpec{
		Name:         "example",
		TotalTxs:     64,
		MeanTxOps:    8,
		TxOpsJitter:  0.4,
		WriteFrac:    0.5,
		HotLines:     8,
		HotFrac:      0.7,
		ZipfSkew:     1.0,
		PrivateLines: 64,
		ComputeMean:  3,
		InterTxMean:  6,
		TxTypes:      2,
	}
	trace, err := spec.Generate(4, 7)
	if err != nil {
		log.Fatal(err)
	}
	out, err := clockgate.Run(clockgate.Experiment{
		Trace:      trace,
		Processors: 4,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	n1, n2 := out.Cycles()
	fmt.Printf("ungated: %d cycles, %d aborts\n", n1, out.Ungated.Counters.Aborts)
	fmt.Printf("gated:   %d cycles, %d aborts, %d gatings\n",
		n2, out.Gated.Counters.Aborts, out.Gated.Counters.Gatings)
	fmt.Printf("every transaction committed: %v\n",
		out.Ungated.Counters.Commits == 64 && out.Gated.Counters.Commits == 64)

	// Output:
	// ungated: 21493 cycles, 59 aborts
	// gated:   20704 cycles, 46 aborts, 46 gatings
	// every transaction committed: true
}
