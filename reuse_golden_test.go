// Differential golden for System reuse. Each session pool worker carries
// one simulated machine across its whole cell stream, resetting it in
// place between cells; the contract is absolute byte-identity — a reused
// System must reproduce a fresh one's cycles, counters and CSV bytes
// exactly. This golden runs the whole E2E done-set both ways and compares
// the campaign CSVs byte for byte; any state leaking across a Reset
// fails here, localized to the first diverging cell.
package clockgate

import (
	"context"
	"runtime"
	"strings"
	"testing"
)

// TestSystemReuseGoldenOverDoneSet runs every e2e done case twice — on
// per-worker reused Systems (the default) and with reuse disabled — and
// requires the two campaign CSVs to be byte-identical.
func TestSystemReuseGoldenOverDoneSet(t *testing.T) {
	runCSV := func(noReuse bool) ([]string, []Cell) {
		opts := DefaultCampaignOptions()
		opts.Scale = e2eScale
		opts.Workers = runtime.GOMAXPROCS(0)
		opts.NoSystemReuse = noReuse
		session := NewSession(opts)
		defer session.Close()

		cells := doneSetCells(opts.Seed, 0)
		outs, err := session.RunCells(context.Background(), cells)
		if err != nil {
			t.Fatalf("noReuse=%v campaign: %v", noReuse, err)
		}
		campaign := &Campaign{Options: opts, Cells: cells, Outcomes: outs}
		var buf strings.Builder
		if err := campaign.WriteCSV(&buf); err != nil {
			t.Fatalf("noReuse=%v CSV: %v", noReuse, err)
		}
		return strings.Split(buf.String(), "\n"), cells
	}
	reused, cells := runCSV(false)
	fresh, _ := runCSV(true)

	if len(reused) != len(fresh) {
		t.Fatalf("row counts diverge: %d (reused) vs %d (fresh)", len(reused), len(fresh))
	}
	for i := range reused {
		if reused[i] == fresh[i] {
			continue
		}
		// Row 0 is the header; data row i belongs to cells[i-1].
		cell := cells[i-1]
		t.Errorf("first diverging done-set row %d (%s %s):\nreused: %s\nfresh:  %s",
			i, cell.ID, cell.Label(), reused[i], fresh[i])
		break
	}
}
