// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablation benches DESIGN.md calls out. Each
// iteration regenerates the artifact end-to-end (workload generation,
// paired simulation, metric computation) and reports the headline numbers
// as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Figure benches run at a reduced
// workload scale (the experiments binary runs the full scale; the bench
// exists to regenerate the series shape quickly and to track simulator
// performance).
package clockgate

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bus"
	"repro/internal/cacti"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stamp"
)

// benchScale shrinks workloads for the figure benches.
const benchScale = 0.25

func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Scale = benchScale
	return o
}

func benchSpec(b *testing.B, app stamp.App, np int, w0 sim.Time) core.RunSpec {
	b.Helper()
	spec := stamp.MustSpec(app)
	spec.TotalTxs = int(float64(spec.TotalTxs) * benchScale)
	tr, err := spec.Generate(np, 42)
	if err != nil {
		b.Fatal(err)
	}
	return core.RunSpec{Trace: tr, Processors: np, Seed: 42, W0: w0}
}

// BenchmarkTableI regenerates the power-model derivation.
func BenchmarkTableI(b *testing.B) {
	var m power.Model
	for i := 0; i < b.N; i++ {
		m = power.Derive(power.DefaultBreakdown())
	}
	b.ReportMetric(m.Miss, "miss-factor")
	b.ReportMetric(m.Commit, "commit-factor")
	b.ReportMetric(m.Gated, "gated-factor")
}

// BenchmarkTableII regenerates the machine-parameter table.
func BenchmarkTableII(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.TableII()
	}
	if len(out) == 0 {
		b.Fatal("empty table")
	}
}

// BenchmarkFig3 regenerates the TCC data-cache power curves.
func BenchmarkFig3(b *testing.B) {
	cfg := cacti.DefaultConfig()
	var rows []cacti.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = cacti.Figure3(cfg)
	}
	if len(rows) == 0 {
		b.Fatal("no rows")
	}
	b.ReportMetric(cfg.RWBitPower(2, 64)-cacti.BasePower, "pct-at-64KB-2B")
	b.ReportMetric(cfg.TCCFactor(2, 64), "tcc-factor")
}

// benchFigure runs the paired experiment matrix behind Figures 4-6 and
// reports the metric the figure plots.
func benchFigure(b *testing.B, metric func(power.Comparison) float64, unit string) {
	for _, app := range stamp.PaperApps() {
		for _, np := range []int{4, 8, 16} {
			b.Run(fmt.Sprintf("%s/np%d", app, np), func(b *testing.B) {
				rs := benchSpec(b, app, np, 0)
				var cmp power.Comparison
				for i := 0; i < b.N; i++ {
					out, err := core.RunPair(rs)
					if err != nil {
						b.Fatal(err)
					}
					cmp = out.Comparison
				}
				b.ReportMetric(metric(cmp), unit)
			})
		}
	}
}

// BenchmarkFig4 regenerates the parallel-execution-time comparison: the
// reported metric is the speed-up annotation of each gated bar.
func BenchmarkFig4(b *testing.B) {
	benchFigure(b, func(c power.Comparison) float64 { return c.SpeedUp }, "speedup")
}

// BenchmarkFig5 regenerates the energy comparison: the reported metric is
// the energy-reduction factor Eug/Eg of each pair of bars.
func BenchmarkFig5(b *testing.B) {
	benchFigure(b, func(c power.Comparison) float64 { return c.EnergyRatio }, "energy-ratio")
}

// BenchmarkFig6 regenerates the average-power comparison: the reported
// metric is the power-reduction factor of equation (7).
func BenchmarkFig6(b *testing.B) {
	benchFigure(b, func(c power.Comparison) float64 { return c.AvgPowerRatio }, "power-ratio")
}

// BenchmarkFig7 regenerates the W0/Np speed-up sensitivity surface.
func BenchmarkFig7(b *testing.B) {
	for _, np := range []int{4, 8, 16} {
		for _, w0 := range experiments.Fig7W0Values {
			b.Run(fmt.Sprintf("np%d/W0=%d", np, w0), func(b *testing.B) {
				// One representative app keeps the sweep tractable; the
				// experiments binary averages all three.
				rs := benchSpec(b, stamp.Intruder, np, w0)
				var cmp power.Comparison
				for i := 0; i < b.N; i++ {
					out, err := core.RunPair(rs)
					if err != nil {
						b.Fatal(err)
					}
					cmp = out.Comparison
				}
				b.ReportMetric(cmp.SpeedUp, "speedup")
			})
		}
	}
}

// BenchmarkAblationPolicies compares the paper's gating-aware window
// policy against conventional back-off policies driving the same gating
// hardware (paper §VI: plain exponential back-off "does incur significant
// performance penalty for highly contentious applications").
func BenchmarkAblationPolicies(b *testing.B) {
	for _, pk := range []config.PolicyKind{
		config.PolicyGatingAware, config.PolicyExponential,
		config.PolicyLinear, config.PolicyFixed,
	} {
		b.Run(string(pk), func(b *testing.B) {
			rs := benchSpec(b, stamp.Intruder, 16, 0)
			rs.Configure = func(c *config.Config) { c.Gating.Policy = pk }
			var cmp power.Comparison
			for i := 0; i < b.N; i++ {
				out, err := core.RunPair(rs)
				if err != nil {
					b.Fatal(err)
				}
				cmp = out.Comparison
			}
			b.ReportMetric(cmp.SpeedUp, "speedup")
			b.ReportMetric(cmp.EnergyRatio, "energy-ratio")
		})
	}
}

// BenchmarkAblationRenewal measures the renewal mechanism's contribution:
// with renewal disabled the directory un-gates blindly at timer expiry.
func BenchmarkAblationRenewal(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "renewal-on"
		if disable {
			name = "renewal-off"
		}
		b.Run(name, func(b *testing.B) {
			rs := benchSpec(b, stamp.Yada, 16, 0)
			rs.Configure = func(c *config.Config) { c.Gating.DisableRenewal = disable }
			var cmp power.Comparison
			var renewals uint64
			for i := 0; i < b.N; i++ {
				out, err := core.RunPair(rs)
				if err != nil {
					b.Fatal(err)
				}
				cmp = out.Comparison
				renewals = out.Gated.Counters.Renewals
			}
			b.ReportMetric(cmp.EnergyRatio, "energy-ratio")
			b.ReportMetric(float64(renewals), "renewals")
		})
	}
}

// BenchmarkAblationSRPG prices the same pair of runs under state-retention
// power gating (paper §IV: leakage could be gated too) at several retained
// leakage fractions.
func BenchmarkAblationSRPG(b *testing.B) {
	rs := benchSpec(b, stamp.Intruder, 16, 0)
	out, err := core.RunPair(rs)
	if err != nil {
		b.Fatal(err)
	}
	for _, keep := range []float64{1.0, 0.5, 0.25, 0.1} {
		b.Run(fmt.Sprintf("retain%.0f%%", keep*100), func(b *testing.B) {
			var cmp power.Comparison
			for i := 0; i < b.N; i++ {
				m := power.Default().WithSRPG(keep)
				cmp = power.Compare(m, out.Ungated.Ledger, out.Gated.Ledger)
			}
			b.ReportMetric(cmp.EnergyRatio, "energy-ratio")
		})
	}
}

// BenchmarkAblationW0 sweeps the firmware constant the paper says must be
// preset per system size.
func BenchmarkAblationW0(b *testing.B) {
	for _, w0 := range []sim.Time{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("W0=%d", w0), func(b *testing.B) {
			rs := benchSpec(b, stamp.Genome, 16, w0)
			var cmp power.Comparison
			for i := 0; i < b.N; i++ {
				out, err := core.RunPair(rs)
				if err != nil {
					b.Fatal(err)
				}
				cmp = out.Comparison
			}
			b.ReportMetric(cmp.SpeedUp, "speedup")
			b.ReportMetric(cmp.EnergyRatio, "energy-ratio")
		})
	}
}

// benchCampaign runs the paper campaign end-to-end on the given worker
// count and reports the headline energy reduction, so the parallel and
// sequential engines are checked to produce the same science while their
// wall-clock is compared.
func benchCampaign(b *testing.B, workers int) {
	o := benchOptions()
	o.Workers = workers
	var s experiments.Summary
	for i := 0; i < b.N; i++ {
		c, err := experiments.Run(o)
		if err != nil {
			b.Fatal(err)
		}
		s = c.Summarize()
	}
	b.ReportMetric(s.AvgEnergyReduction*100, "energy-reduction-pct")
}

// BenchmarkCampaignSequential is the full paired-run matrix on one
// goroutine — the baseline the parallel engine is measured against.
func BenchmarkCampaignSequential(b *testing.B) {
	benchCampaign(b, 1)
}

// BenchmarkCampaignParallel is the same campaign with one worker per
// core. Comparing ns/op against BenchmarkCampaignSequential measures the
// engine's actual speed-up rather than asserting it.
func BenchmarkCampaignParallel(b *testing.B) {
	benchCampaign(b, runtime.GOMAXPROCS(0))
}

// BenchmarkSimulatorThroughput tracks raw simulator performance: events
// per second on a mid-size gated run. This is the number to watch when
// optimizing the engine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	rs := benchSpec(b, stamp.Genome, 8, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunOne(rs, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineHotPath is the headline simulation-hot-path number: one
// paired (ungated + gated) run-cell of the high-conflict preset on a
// 32-processor machine, trace pre-generated so only the simulators are
// measured. cells/s is what a campaign worker can sustain at 32p.
func BenchmarkEngineHotPath(b *testing.B) {
	for _, np := range []int{8, 32} {
		b.Run(fmt.Sprintf("np%d", np), func(b *testing.B) {
			rs := benchSpec(b, stamp.Intruder, np, 0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunPair(rs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkEngineHotPathReuse is the same paired 32p cell on a reused
// System — the session pool workers' steady state: one warm SystemCache
// carried across the stream, every run a Reset in place instead of a
// rebuild. The gap to EngineHotPath/np32 is pure construction and GC
// (the simulation itself is allocation-free either way; the reuse path
// measures ~142 allocations per paired cell, the ledger and Result).
// cmd/benchsnap records both lanes (cell_32p_* and cell_32p_reuse_*) in
// BENCH_engine.json on every CI run.
func BenchmarkEngineHotPathReuse(b *testing.B) {
	rs := benchSpec(b, stamp.Intruder, 32, 0)
	sc := &core.SystemCache{}
	if _, err := core.RunPairCached(context.Background(), rs, sc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunPairCached(context.Background(), rs, sc); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// interconnectScalingOccupancy is the per-message bus hold time of the
// interconnect scaling study: a 64-byte line on a 64-bit data path is 8
// transfer beats. Table II's 2-cycle occupancy models an aggressive wide
// bus where even 128 processors leave the wires ~25% utilized and
// banking has nothing to relieve; at line-beat occupancy the single bus
// saturates (>90% utilization at 128p) and the scale axis becomes an
// interconnect experiment rather than a memory-latency one.
const interconnectScalingOccupancy = sim.Time(8)

// BenchmarkInterconnectScaling is the banked interconnect's payoff
// measurement: one paired 128-processor run-cell of the high-conflict
// preset per interconnect shape, at line-beat bus occupancy. cells/s
// compares the shapes' simulation throughput (the banked model finishes
// the same workload in fewer simulated cycles); wait-cycles/msg is the
// modeled contention each message suffered. cmd/benchsnap records the
// banks=1 and banks=4 lanes in BENCH_engine.json on every CI run.
func BenchmarkInterconnectScaling(b *testing.B) {
	for _, banks := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("np128/banks%d", banks), func(b *testing.B) {
			rs := benchSpec(b, stamp.Intruder, 128, 0)
			rs.Configure = func(c *config.Config) {
				c.Machine.Banks = banks
				c.Machine.BusCycles = interconnectScalingOccupancy
			}
			b.ReportAllocs()
			var st bus.Stats
			var n1 sim.Time
			for i := 0; i < b.N; i++ {
				out, err := core.RunPair(rs)
				if err != nil {
					b.Fatal(err)
				}
				st = out.Ungated.BusStats
				n1 = out.Ungated.Cycles
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cells/s")
			b.ReportMetric(float64(st.WaitCycles)/float64(st.Messages), "wait-cycles/msg")
			b.ReportMetric(float64(st.BusyCycles)/float64(n1)/float64(banks), "utilization")
		})
	}
}

// BenchmarkTopologyScaling is the point-to-point fabrics' payoff
// measurement, the same 128-processor line-beat-occupancy study as
// BenchmarkInterconnectScaling run across the topology axis: the mesh
// and crossbar spread the load over many links or pair ledgers, so their
// wait-cycles/msg must undercut even the 4-banked bus. cmd/benchsnap
// records the mesh and xbar lanes next to the banked ones in
// BENCH_engine.json, where the two interconnect axes stay comparable.
func BenchmarkTopologyScaling(b *testing.B) {
	for _, topo := range []string{"bus", "xbar", "mesh", "ring"} {
		b.Run("np128/"+topo, func(b *testing.B) {
			rs := benchSpec(b, stamp.Intruder, 128, 0)
			rs.Configure = func(c *config.Config) {
				c.Machine.Topology = topo
				c.Machine.BusCycles = interconnectScalingOccupancy
			}
			b.ReportAllocs()
			var st bus.Stats
			for i := 0; i < b.N; i++ {
				out, err := core.RunPair(rs)
				if err != nil {
					b.Fatal(err)
				}
				st = out.Ungated.BusStats
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cells/s")
			b.ReportMetric(float64(st.WaitCycles)/float64(st.Messages), "wait-cycles/msg")
		})
	}
}
