// Reprice: explore the energy technology axis without re-simulating.
//
// A small campaign (intruder + vacation at 8 cores) is simulated once
// with a checkpoint journal attached. The journal records each cell's
// integer residency totals, and energy is a pure function of those
// totals and a technology point's power model — so the same journal then
// re-prices under every registered technology point in milliseconds,
// byte-identical to what a fresh simulation under that point would
// report. This is the workflow behind `experiments -reprice`: simulate a
// campaign once, sweep the technology axis for free.
//
//	go run ./examples/reprice
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	clockgate "repro"
)

func main() {
	opts := clockgate.DefaultCampaignOptions()
	opts.Apps = []clockgate.App{clockgate.Intruder, clockgate.Vacation}
	opts.Processors = []int{8}
	opts.Scale = 0.25

	dir, err := os.MkdirTemp("", "reprice")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "journal.jsonl")

	session := clockgate.NewSession(opts)
	defer session.Close()
	if err := session.SetCheckpoint(journal); err != nil {
		log.Fatal(err)
	}

	fmt.Println("simulating the campaign once (journal attached)...")
	start := time.Now()
	if _, err := session.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  simulated in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("re-pricing the journal under every technology point (no simulation):")
	fmt.Printf("  %-14s %-28s %-10s %-10s %-10s\n",
		"tech", "cell", "E-ratio", "saved %", "EDP ratio")
	for _, name := range clockgate.TechNames() {
		start = time.Now()
		campaign, err := clockgate.Reprice(journal, name)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		for i, out := range campaign.Outcomes {
			cmp := out.Comparison
			edpRatio := (cmp.Eug * float64(cmp.N1)) / (cmp.Eg * float64(cmp.N2))
			fmt.Printf("  %-14s %-28s %-10.3f %-10.1f %-10.3f\n",
				name, campaign.Cells[i].Label(), cmp.EnergyRatio,
				cmp.EnergySavings*100, edpRatio)
		}
		fmt.Printf("  %-14s re-priced %d cells in %v\n",
			"", len(campaign.Outcomes), elapsed.Round(time.Microsecond))
	}

	fmt.Println("\nEach block above is byte-identical to a fresh simulated run under")
	fmt.Println("that technology point — pinned by the done-set reprice golden.")
}
