// Power-model study: how sensitive the paper's conclusions are to the
// technology assumptions behind Table I.
//
// The gated-state power is the leakage share (0.20 at 65 nm). Scaling to
// leakier or better-controlled processes, or adding state-retention power
// gating (SRPG, paper §IV), changes how much energy each gated cycle
// saves. This example re-runs one experiment under several power models
// to show the headline numbers' sensitivity — the protocol itself is
// unchanged; only the accounting moves.
//
//	go run ./examples/powermodel
package main

import (
	"fmt"
	"log"

	clockgate "repro"
	"repro/internal/power"
	"repro/internal/stats"
)

func main() {
	// One pair of runs; the ledger is re-priced under each model.
	out, err := clockgate.Run(clockgate.Experiment{
		App:        clockgate.Intruder,
		Processors: 16,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	models := []struct {
		name string
		m    power.Model
	}{
		{"paper Table I (65nm, leakage 20%)", power.Default()},
		{"higher leakage (30%)", power.Derive(func() power.Breakdown {
			b := power.DefaultBreakdown()
			b.Leakage = 0.30
			return b
		}())},
		{"low leakage (10%)", power.Derive(func() power.Breakdown {
			b := power.DefaultBreakdown()
			b.Leakage = 0.10
			return b
		}())},
		{"Table I + SRPG retaining 25% leakage", power.Default().WithSRPG(0.25)},
	}

	fmt.Println("power-model sensitivity (intruder, 16 cores; same pair of runs)")
	fmt.Printf("%-40s %-8s %-8s %-8s %-8s %-10s\n",
		"model", "run", "miss", "commit", "gated", "E-ratio")
	for _, mm := range models {
		cmp := power.Compare(mm.m, out.Ungated.Ledger, out.Gated.Ledger)
		fmt.Printf("%-40s %-8.2f %-8.2f %-8.2f %-8.2f %-10.3f\n",
			mm.name,
			mm.m.Factor(stats.StateRun), mm.m.Factor(stats.StateMiss),
			mm.m.Factor(stats.StateCommit), mm.m.Factor(stats.StateGated),
			cmp.EnergyRatio)
	}

	fmt.Println("\nlower gated power (SRPG) deepens the savings; the speed-up is unchanged")
}
