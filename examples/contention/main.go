// Contention study: how the benefit of clock-gate-on-abort scales with
// conflict intensity.
//
// A custom synthetic workload is generated at several contention levels by
// shrinking the shared hot region (the fewer hot lines, the more often
// transactions collide). For each level the example reports abort rates,
// gating activity and the paper's energy/speed-up metrics — reproducing
// the paper's observation that "for highly-conflicting applications ...
// savings in the energy is also reasonable" while low-conflict runs stay
// near the baseline.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"

	clockgate "repro"
)

func main() {
	const procs = 8

	fmt.Println("contention sweep (8 cores, custom workload, shrinking hot region)")
	fmt.Printf("%-10s %-12s %-12s %-10s %-10s %-10s\n",
		"hot lines", "aborts/cmt", "gatings", "renewals", "speed-up", "E-ratio")

	for _, hot := range []int{512, 128, 32, 8} {
		spec := clockgate.WorkloadSpec{
			Name:         fmt.Sprintf("hot%d", hot),
			TotalTxs:     3200,
			MeanTxOps:    16,
			TxOpsJitter:  0.4,
			WriteFrac:    0.4,
			HotLines:     hot,
			HotFrac:      0.6,
			ZipfSkew:     0.9,
			PrivateLines: 256,
			ComputeMean:  4,
			InterTxMean:  20,
			TxTypes:      3,
		}
		trace, err := spec.Generate(procs, 7)
		if err != nil {
			log.Fatal(err)
		}
		out, err := clockgate.Run(clockgate.Experiment{
			Trace:      trace,
			Processors: procs,
			Seed:       7,
		})
		if err != nil {
			log.Fatal(err)
		}
		ug := out.Ungated.Counters
		g := out.Gated.Counters
		fmt.Printf("%-10d %-12.2f %-12d %-10d %-10.3f %-10.3f\n",
			hot,
			float64(ug.Aborts)/float64(ug.Commits),
			g.Gatings, g.Renewals,
			out.SpeedUp(), out.EnergyReductionFactor())
	}

	fmt.Println("\nhigher contention (smaller hot set) -> more aborts -> more gating benefit")
}
