// Sensitivity study: the W0 constant of the gating-aware contention
// manager (paper §VI and Figure 7).
//
// W0 scales every gating window: Wt = W0 * (2^ceil(lg Na) + 2^ceil(lg Nr)).
// The paper notes W0 has "first order significance" — too small and the
// victim wakes into the same conflict; too large and processors oversleep,
// costing performance. For large systems W0 should be preset small, for
// small systems high. This example sweeps W0 across processor counts on
// one application and prints the speed-up and energy surfaces.
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"

	clockgate "repro"
)

func main() {
	w0s := []int64{2, 4, 8, 16, 32, 64}
	procs := []int{4, 8, 16}

	fmt.Println("W0 sensitivity, genome")
	fmt.Print("              ")
	for _, np := range procs {
		fmt.Printf("Np=%-17d", np)
	}
	fmt.Println()
	fmt.Printf("%-14s", "W0")
	for range procs {
		fmt.Printf("%-10s%-10s", "speedup", "E-ratio")
	}
	fmt.Println()

	for _, w0 := range w0s {
		fmt.Printf("%-14d", w0)
		for _, np := range procs {
			out, err := clockgate.Run(clockgate.Experiment{
				App:        clockgate.Genome,
				Processors: np,
				W0:         w0,
				Seed:       42,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10.3f%-10.3f", out.SpeedUp(), out.EnergyReductionFactor())
		}
		fmt.Println()
	}

	fmt.Println("\nthe paper uses W0=8 and reports speed-ups for all cases except genome/8")
}
