// Quickstart: run the paper's headline experiment on one configuration.
//
// The same synthetic "intruder" workload (high-contention, short
// transactions) is executed twice on a simulated 8-core Scalable-TCC
// machine — once as the ungated baseline and once with the clock-gate-on-
// abort protocol — and compared under the Alpha 21264 @ 65 nm power model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	clockgate "repro"
)

func main() {
	out, err := clockgate.Run(clockgate.Experiment{
		App:        clockgate.Intruder,
		Processors: 8,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	n1, n2 := out.Cycles()
	eug, eg := out.Energy()

	fmt.Println("clock gate on abort — quickstart (intruder, 8 cores)")
	fmt.Printf("  parallel execution time: %d -> %d cycles (%.2fx speed-up)\n",
		n1, n2, out.SpeedUp())
	fmt.Printf("  total energy:            %.3g -> %.3g (%.2fx reduction, %.1f%% saved)\n",
		eug, eg, out.EnergyReductionFactor(), out.EnergySavings()*100)
	fmt.Printf("  average power reduction: %.2fx\n", out.PowerReductionFactor())
	fmt.Printf("  aborts:                  %d ungated -> %d gated\n",
		out.Ungated.Counters.Aborts, out.Gated.Counters.Aborts)
	fmt.Printf("  clock gatings:           %d (renewed %d times)\n",
		out.Gated.Counters.Gatings, out.Gated.Counters.Renewals)
}
