// Streaming: run a campaign on a Session and consume per-cell results as
// they complete, then show the engine's central guarantee — reordering
// the stream into canonical order reproduces the batch campaign
// byte-for-byte.
//
// A Session is the engine every sweep runs on: it owns the worker pool,
// a workload-trace cache shared across cells, and (not shown here; see
// `cmd/experiments -resume`) an optional JSONL checkpoint sink that
// makes interrupted campaigns restartable. The context passed to Stream
// cancels promptly: the simulators poll it inside a run, not just
// between cells.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	clockgate "repro"
)

func main() {
	opts := clockgate.DefaultCampaignOptions()
	opts.Scale = 0.25 // quick quarter-size campaign
	opts.Workers = runtime.GOMAXPROCS(0)

	session := clockgate.NewSession(opts)
	defer session.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	cells := opts.Cells()
	fmt.Printf("streaming %d cells across %d workers\n\n", len(cells), opts.Workers)

	// Results arrive in completion order; Pos remembers canonical order.
	outcomes := make([]*clockgate.Outcome, len(cells))
	start := time.Now()
	for res, err := range session.Stream(ctx, cells) {
		if err != nil {
			log.Fatal(err)
		}
		outcomes[res.Pos] = res.Outcome
		fmt.Printf("  [%5.2fs] %-14s speed-up %.3f  energy reduction %.3fx\n",
			time.Since(start).Seconds(), res.Cell.Label(),
			res.Outcome.Comparison.SpeedUp, res.Outcome.Comparison.EnergyRatio)
	}

	// Reordered by Pos, the stream is the batch campaign: same cells,
	// same outcomes, byte-identical CSV and reports.
	streamed := &clockgate.Campaign{Options: opts, Cells: cells, Outcomes: outcomes}
	batch, err := session.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	var a, b strings.Builder
	if err := streamed.WriteCSV(&a); err != nil {
		log.Fatal(err)
	}
	if err := batch.WriteCSV(&b); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreordered stream == batch campaign: %v\n", a.String() == b.String())
	fmt.Println()
	fmt.Println(batch.SummaryText())
}
