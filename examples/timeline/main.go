// Timeline study: watch the gating protocol act on the machine.
//
// Runs a high-contention workload once with gating enabled, records every
// protocol event, and prints (a) an ASCII Gantt chart of per-processor
// power states — run / miss / commit / gated — and (b) the first protocol
// events around the first gating. The '.' bursts in the chart are
// processors parked by the directory after an abort; that parked time is
// billed at 0.20x run power by the Table I model.
//
//	go run ./examples/timeline
package main

import (
	"fmt"
	"log"

	clockgate "repro"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	spec := clockgate.WorkloadSpec{
		Name: "timeline-demo", TotalTxs: 256, MeanTxOps: 10, TxOpsJitter: 0.4,
		WriteFrac: 0.5, HotLines: 8, HotFrac: 0.8, ZipfSkew: 1.0,
		PrivateLines: 64, ComputeMean: 4, InterTxMean: 8, TxTypes: 2,
	}
	const procs = 8
	trace, err := spec.Generate(procs, 11)
	if err != nil {
		log.Fatal(err)
	}

	rec := clockgate.NewEventRecorder()
	res, err := clockgate.RunSingleWithEvents(clockgate.Experiment{
		Trace: trace, Processors: procs, Seed: 11,
	}, true, rec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gated run: %d cycles, %d commits, %d aborts, %d gatings, %d renewals\n\n",
		res.Cycles, res.Counters.Commits, res.Counters.Aborts,
		res.Counters.Gatings, res.Counters.Renewals)

	// Zoom the chart onto the window around the first gating so the
	// parked period is visible.
	var focus sim.Time
	for _, e := range rec.Events() {
		if e.Kind == clockgate.EvGate {
			focus = e.At
			break
		}
	}
	from := focus - 2000
	if from < 0 {
		from = 0
	}
	fmt.Print(report.Timeline{
		Ledger: res.Ledger,
		Width:  96,
		From:   from,
		To:     from + 8000,
	}.Render())

	fmt.Println("\nprotocol events around the first gating:")
	shown := 0
	for _, e := range rec.Events() {
		if e.Kind == clockgate.EvInvalidate || e.Kind == clockgate.EvTxBegin {
			continue // too chatty for a demo
		}
		if e.At < focus {
			continue
		}
		fmt.Println(" ", e)
		shown++
		if shown >= 14 {
			break
		}
	}

	counts := rec.CountByKind()
	fmt.Println("\nevent totals:")
	fmt.Printf("  gate=%d renew=%d ungate=%d self-abort=%d commit=%d abort=%d\n",
		counts[clockgate.EvGate], counts[clockgate.EvRenew], counts[clockgate.EvUngate],
		counts[clockgate.EvSelfAbort], counts[clockgate.EvCommit], counts[clockgate.EvAbort])
}
