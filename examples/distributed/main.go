// Distributed: run one campaign as a fleet job — a coordinator owning
// the canonical cell list, two workers leasing cells over loopback HTTP
// — and verify the merged output is byte-identical to the same campaign
// run on a single in-process session.
//
// In production the three roles are three processes (any machines):
//
//	experiments -serve :7400 -summary -csv out.csv   # coordinator
//	experiments -worker host:7400                    # worker, repeat at will
//
// Here they share one process so the example is self-contained. The
// coordinator's OnListen hook reports the bound address, which is how
// the workers find a ":0" ephemeral port. While the fleet runs, the
// workers heartbeat their leases (slow cells are never re-run), the
// coordinator may re-lease stragglers to whichever worker goes idle
// first, and a mid-run /v1/status snapshot shows the fleet's progress.
// docs/DISTRIBUTED.md specifies the protocol (lease state machine,
// renewal and stealing rules, dedup-on-re-lease, merge ordering).
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	clockgate "repro"
)

func main() {
	opts := clockgate.DefaultCampaignOptions()
	opts.Scale = 0.1 // quick tenth-size campaign

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// The golden: the same campaign on one in-process session.
	session := clockgate.NewSession(opts)
	defer session.Close()
	local, err := session.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// The fleet job: coordinator + two workers on loopback. OnListen
	// fires once the coordinator accepts connections; it launches the
	// workers against the actual address.
	var wg sync.WaitGroup
	cfg := clockgate.ServeConfig{
		LeaseBatch:     2, // small batches so both workers get a share
		StealThreshold: 4, // near the end, idle workers may steal stragglers
		OnListen: func(addr string) {
			fmt.Printf("coordinator listening on %s, launching 2 workers\n", addr)
			for i := 1; i <= 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					name := fmt.Sprintf("worker-%d", i)
					stats, err := clockgate.Work(ctx, addr, clockgate.WorkerConfig{Name: name, Workers: 2})
					if err != nil {
						log.Printf("%s: %v", name, err)
						return
					}
					fmt.Printf("%s: %d cells over %d leases\n", name, stats.Cells, stats.Leases)
				}()
			}
			// The control plane: poll GET /v1/status mid-run, the same
			// snapshot `experiments -status addr` prints.
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(500 * time.Millisecond)
				if st, err := clockgate.FetchFleetStatus(ctx, addr); err == nil {
					fmt.Printf("fleet status: %s\n", st.Progress())
				}
			}()
		},
	}
	merged, err := clockgate.Serve(ctx, "127.0.0.1:0", opts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	var a, b strings.Builder
	if err := local.WriteCSV(&a); err != nil {
		log.Fatal(err)
	}
	if err := merged.WriteCSV(&b); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged %d cells; byte-identical to the local run: %v\n",
		len(merged.Outcomes), a.String() == b.String())
	fmt.Println()
	fmt.Println(merged.SummaryText())
}
