// Reprice golden: the energy subsystem's correctness contract. Re-pricing
// a checkpoint/fleet journal under a technology point T must be
// byte-identical to a fresh simulated campaign under T across the whole
// E2E done-set — energy is a pure function of the recorded integer
// residency totals and T's power model, so the journal path may never
// drift from the simulated one by so much as a formatting bit. This is
// the analogue of the Banks=1 differential golden for the energy axis:
// it is what lets `experiments -reprice` claim a fresh campaign's
// results as its own without simulating anything.
package clockgate

import (
	"context"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// repriceTech is the non-default technology point the golden re-prices
// against. It must differ from the default in every parameter class the
// model derivation consumes (leakage and the cacti-priced cache factor),
// so a pricing path that ignores any of them fails the golden.
const repriceTech = "t45"

// doneSetCellsTech builds one run-cell per done case of the scenario
// matrix, every cell forced onto the given technology point — the energy
// analogue of doneSetCells forcing an interconnect shape. Forcing is
// essential: the done set includes energy-block cases that pin their own
// tech, and both campaigns of the golden must price uniformly.
func doneSetCellsTech(seed uint64, tech string) []Cell {
	cells := doneSetCells(seed, 0)
	for i := range cells {
		cells[i].Tech = tech
	}
	return cells
}

// TestRepriceGoldenOverDoneSet simulates the done-set once under the
// default technology point with a checkpoint journal attached, re-prices
// that journal under repriceTech without any simulation, and requires
// the resulting CSV to be byte-identical to a freshly simulated
// done-set campaign under repriceTech. On a divergence it reports the
// first diverging row.
func TestRepriceGoldenOverDoneSet(t *testing.T) {
	opts := DefaultCampaignOptions()
	opts.Scale = e2eScale
	opts.Workers = runtime.GOMAXPROCS(0)

	// Two sessions: only the default-tech campaign journals its cells —
	// attaching the checkpoint to the fresh-tech campaign too would append
	// its records to the same journal and the reprice would see both.
	session := NewSession(opts)
	defer session.Close()
	fresh := NewSession(opts)
	defer fresh.Close()

	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := session.SetCheckpoint(journal); err != nil {
		t.Fatal(err)
	}

	runCSV := func(s *Session, cells []Cell) string {
		outs, err := s.RunCells(context.Background(), cells)
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		campaign := &Campaign{Options: opts, Cells: cells, Outcomes: outs}
		var buf strings.Builder
		if err := campaign.WriteCSV(&buf); err != nil {
			t.Fatalf("CSV: %v", err)
		}
		return buf.String()
	}

	// The journal campaign simulates under the default tech; the fresh
	// campaign simulates under repriceTech. The trace cache and the
	// simulator never see the tech axis, so the second campaign re-prices
	// identical timings — which is exactly the property the journal path
	// exploits, here proven end to end rather than assumed.
	runCSV(session, doneSetCellsTech(opts.Seed, ""))
	freshCSV := runCSV(fresh, doneSetCellsTech(opts.Seed, repriceTech))

	start := time.Now()
	repriced, err := Reprice(journal, repriceTech)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("reprice: %v", err)
	}
	var buf strings.Builder
	if err := repriced.WriteCSV(&buf); err != nil {
		t.Fatalf("repriced CSV: %v", err)
	}
	repricedCSV := buf.String()

	want := strings.Split(freshCSV, "\n")
	got := strings.Split(repricedCSV, "\n")
	if len(want) != len(got) {
		t.Fatalf("row counts diverge: fresh %d vs repriced %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("first diverging row %d:\n  fresh:    %s\n  repriced: %s", i, want[i], got[i])
		}
	}

	// The reprice path must be checkpoint arithmetic, not simulation: the
	// whole done-set re-prices orders of magnitude faster than it
	// simulates. The bound is generous (the simulated campaigns above take
	// seconds); its job is to catch an accidental re-simulation, which
	// would blow past it by ~100x.
	if n := len(repriced.Outcomes); elapsed > 2*time.Second {
		t.Errorf("re-pricing %d cells took %v — the journal path must not simulate", n, elapsed)
	}
}

// TestRepriceMultiTechBlocks pins the tech-major output shape of a
// multi-tech reprice: every journal cell under techs[0] first, then
// techs[1], with each block byte-identical to a single-tech reprice.
func TestRepriceMultiTechBlocks(t *testing.T) {
	opts := DefaultCampaignOptions()
	opts.Scale = 0.02
	opts.Apps = []App{Intruder}
	opts.Processors = []int{4, 8}
	opts.Workers = 2

	session := NewSession(opts)
	defer session.Close()
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := session.SetCheckpoint(journal); err != nil {
		t.Fatal(err)
	}
	if _, err := session.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	multi, err := Reprice(journal, "t65-srpg50", "t32")
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Outcomes) != 4 {
		t.Fatalf("2 cells x 2 techs should give 4 rows, got %d", len(multi.Outcomes))
	}
	for i, c := range multi.Cells {
		want := "t65-srpg50"
		if i >= 2 {
			want = "t32"
		}
		if c.Tech != want || c.Index != i {
			t.Errorf("row %d: tech %q index %d, want %q index %d", i, c.Tech, c.Index, want, i)
		}
	}
	single, err := Reprice(journal, "t32")
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range single.Outcomes {
		if o.Comparison != multi.Outcomes[2+i].Comparison {
			t.Errorf("t32 block row %d differs between single- and multi-tech reprice", i)
		}
	}
}
