// Differential timing-equivalence harness for the interconnect models.
// The banked bus with one bank must be cycle-identical to the single
// split-transaction bus — not approximately, but byte-for-byte across the
// whole E2E done-set. This is the golden that lets the banked model claim
// the single-bus results as its own baseline: any timing drift between
// the two implementations fails here, localized to the first diverging
// protocol event's cycle.
package clockgate

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// doneSetCells builds one run-cell per done case of the scenario matrix,
// every cell forced onto the given interconnect shape (banks = 0 is the
// single bus, 1 the one-banked model). Topology is cleared: this golden
// differentials the two bus models, and the banked bus does not compose
// with the topology block's point-to-point fabrics (those cells still
// participate, re-homed onto the bus like every other machine axis).
func doneSetCells(seed uint64, banks int) []Cell {
	var cells []Cell
	for _, s := range ScenarioMatrix() {
		if !s.Done() {
			continue
		}
		c := s.Cell(len(cells), seed)
		c.Banks = banks
		c.Topology = ""
		cells = append(cells, c)
	}
	return cells
}

// stripBanksColumn removes the trailing banks column from every CSV row:
// it differs between the two campaigns by construction (0 vs 1), while
// every other byte must match.
func stripBanksColumn(csv string) string {
	lines := strings.Split(strings.TrimSuffix(csv, "\n"), "\n")
	for i, line := range lines {
		cut := strings.LastIndexByte(line, ',')
		if cut >= 0 {
			lines[i] = line[:cut]
		}
	}
	return strings.Join(lines, "\n")
}

// TestBankedOneBankGoldenOverDoneSet runs every e2e done case twice — on
// the single bus and on the banked bus with Banks=1 — and requires the
// two campaign CSVs to be byte-identical outside the banks column. On a
// divergence it re-runs the first diverging cell with protocol event
// recorders on both engines and reports the first cycle at which the two
// interconnects disagree.
func TestBankedOneBankGoldenOverDoneSet(t *testing.T) {
	opts := DefaultCampaignOptions()
	opts.Scale = e2eScale
	opts.Workers = runtime.GOMAXPROCS(0)

	session := NewSession(opts)
	defer session.Close()

	runCSV := func(banks int) (string, []Cell) {
		cells := doneSetCells(opts.Seed, banks)
		outs, err := session.RunCells(context.Background(), cells)
		if err != nil {
			t.Fatalf("banks=%d campaign: %v", banks, err)
		}
		campaign := &Campaign{Options: opts, Cells: cells, Outcomes: outs}
		var buf strings.Builder
		if err := campaign.WriteCSV(&buf); err != nil {
			t.Fatalf("banks=%d CSV: %v", banks, err)
		}
		return buf.String(), cells
	}
	singleCSV, cells := runCSV(0)
	bankedCSV, _ := runCSV(1)

	single := strings.Split(stripBanksColumn(singleCSV), "\n")
	banked := strings.Split(stripBanksColumn(bankedCSV), "\n")
	if len(single) != len(banked) {
		t.Fatalf("row counts diverge: %d vs %d", len(single), len(banked))
	}
	for i := range single {
		if single[i] == banked[i] {
			continue
		}
		// Row 0 is the header; data row i belongs to cells[i-1].
		cell := cells[i-1]
		t.Errorf("first diverging done-set row %d (%s %s):\n  single bus: %s\n  banked(1):  %s\n  first diverging cycle: %s",
			i, cell.ID, cell.Label(), single[i], banked[i], firstDivergingCycle(t, cell))
		break
	}
}

// firstDivergingCycle re-executes one cell on both interconnect shapes
// with protocol event recorders attached and returns a description of the
// first event where the two engines' histories part ways — the debugging
// entry point for a golden failure.
func firstDivergingCycle(t *testing.T, cell Cell) string {
	t.Helper()
	record := func(banks int, gated bool) []Event {
		tr, err := GenerateTraceScaled(cell.App, cell.Processors, cell.Seed, e2eScale)
		if err != nil {
			t.Fatalf("trace for %s: %v", cell.Label(), err)
		}
		rec := NewEventRecorder()
		_, err = RunSingleWithEvents(Experiment{
			Trace:      tr,
			Processors: cell.Processors,
			W0:         int64(cell.W0),
			Seed:       cell.Seed,
			Configure:  func(c *Config) { c.Machine.Banks = banks },
		}, gated, rec)
		if err != nil {
			t.Fatalf("recorded run for %s: %v", cell.Label(), err)
		}
		return rec.Events()
	}
	for _, gated := range []bool{false, true} {
		a, b := record(0, gated), record(1, gated)
		n := min(len(a), len(b))
		for i := 0; i < n; i++ {
			if a[i] != b[i] {
				return fmt.Sprintf("cycle %d (gated=%v event %d: single %+v, banked %+v)",
					min(a[i].At, b[i].At), gated, i, a[i], b[i])
			}
		}
		if len(a) != len(b) {
			return fmt.Sprintf("gated=%v event counts diverge after cycle %d (%d vs %d events)",
				gated, a[n-1].At, len(a), len(b))
		}
	}
	return "no protocol-event divergence (timing drift outside recorded events)"
}

// TestBankedCellSharesWorkloadWithSingleBus pins the layer the golden
// rides on: a cell's workload trace is a function of the workload axes
// only, so the differential comparison above really does execute the
// identical trace on both interconnects (one generation, served twice
// from the session trace cache — asserted directly in
// internal/experiments' TestTraceCacheKeyAudit).
func TestBankedCellSharesWorkloadWithSingleBus(t *testing.T) {
	a, err := GenerateTraceScaled(Intruder, 8, 42, e2eScale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTraceScaled(Intruder, 8, 42, e2eScale)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumThreads() != b.NumThreads() {
		t.Fatalf("trace generation not deterministic: %d vs %d threads", a.NumThreads(), b.NumThreads())
	}
}
