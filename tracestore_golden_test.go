// Differential golden for the on-disk trace store. A campaign with
// -trace-dir provisions every workload through internal/tracestore —
// cold (generate, publish, reload nothing), then warm (every trace
// mmap-loaded from the published CGTRACE2 entries, zero generations in
// the second session) — and the contract is absolute byte-identity with
// a store-less run: the store is a cache, never an axis. This golden
// runs the whole E2E done-set all three ways and compares the campaign
// CSVs byte for byte, localized to the first diverging cell. The CI
// "Trace store golden" lane runs it race-enabled.
package clockgate

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestTraceStoreGoldenOverDoneSet runs every e2e done case without a
// store, with a cold store, and again on the now-warm store, and
// requires the three campaign CSVs to be byte-identical.
func TestTraceStoreGoldenOverDoneSet(t *testing.T) {
	dir := t.TempDir()
	runCSV := func(traceDir, label string) ([]string, []Cell) {
		opts := DefaultCampaignOptions()
		opts.Scale = e2eScale
		opts.Workers = runtime.GOMAXPROCS(0)
		opts.TraceDir = traceDir
		session := NewSession(opts)
		defer session.Close()

		cells := doneSetCells(opts.Seed, 0)
		outs, err := session.RunCells(context.Background(), cells)
		if err != nil {
			t.Fatalf("%s campaign: %v", label, err)
		}
		campaign := &Campaign{Options: opts, Cells: cells, Outcomes: outs}
		var buf strings.Builder
		if err := campaign.WriteCSV(&buf); err != nil {
			t.Fatalf("%s CSV: %v", label, err)
		}
		return strings.Split(buf.String(), "\n"), cells
	}
	storeless, cells := runCSV("", "store-less")
	cold, _ := runCSV(dir, "cold-store")

	// The cold run must actually have published entries, or the warm run
	// below would silently exercise the generation path again.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	published := 0
	for _, de := range ents {
		if filepath.Ext(de.Name()) == ".cgt2" {
			published++
		}
	}
	if published == 0 {
		t.Fatal("cold run published no trace-store entries")
	}
	warm, _ := runCSV(dir, "warm-store")

	for name, got := range map[string][]string{"cold-store": cold, "warm-store": warm} {
		if len(got) != len(storeless) {
			t.Fatalf("%s row count diverges: %d vs %d (store-less)", name, len(got), len(storeless))
		}
		for i := range got {
			if got[i] == storeless[i] {
				continue
			}
			// Row 0 is the header; data row i belongs to cells[i-1].
			cell := cells[i-1]
			t.Errorf("%s: first diverging done-set row %d (%s %s):\nstore-less: %s\n%s: %s",
				name, i, cell.ID, cell.Label(), storeless[i], name, got[i])
			break
		}
	}
}
